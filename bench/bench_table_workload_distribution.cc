/**
 * @file
 * E2 — Sec. III workload distribution: how many threads actually carry
 * the work. Reproduction target: scalable apps distribute tasks nearly
 * uniformly over all requested threads; jython concentrates work on at
 * most 3-4 threads and eclipse on its fixed pipeline roles, no matter
 * how many threads are requested.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E2: workload distribution (scale " << opts.scale
              << ")\n";
    core::SweepSet sweeps;
    for (const auto &app : workload::dacapoAppNames()) {
        std::cerr << "  sweeping " << app << "...\n";
        sweeps[app] = runner.sweep(app, {4, 16, 48});
    }

    core::printWorkloadDistributionTable(std::cout, sweeps);
    if (opts.csv) {
        std::cout << "\n";
        core::writeWorkloadDistributionCsv(std::cout, sweeps);
    }
    return 0;
}
