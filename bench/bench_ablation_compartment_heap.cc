/**
 * @file
 * E10 — ablation of the paper's second future-work proposal (Sec. IV):
 * a compartmentalized heap isolating objects from cross-thread lifetime
 * interference. Eden is split into per-thread compartments collected by
 * their owner without a global safepoint; stop-the-world pauses remain
 * only for old-generation pressure. Reproduction target: shorter (and
 * here: fewer) stop-the-world pauses and improved throughput for the
 * interference-prone scalable apps at high thread counts.
 */

#include "bench_common.hh"

#include "base/output.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);

    std::cerr << "E10: compartmentalized-heap ablation (scale "
              << opts.scale << ")\n";

    TextTable t;
    t.header({"app", "threads", "heap-mode", "wall", "stw-gc", "stw-gcs",
              "local-gcs", "local-pause"});
    for (const std::string app : {"xalan", "lusearch"}) {
        for (const std::uint32_t threads : {16u, 48u}) {
            for (const bool comp : {false, true}) {
                auto cfg = opts.experimentConfig();
                cfg.vm.heap.compartmentalized = comp;
                core::ExperimentRunner runner(cfg);
                const jvm::RunResult r = runner.runApp(app, threads);
                t.row({app, std::to_string(threads),
                       comp ? "compartment" : "shared",
                       formatTicks(r.wall_time), formatTicks(r.gc_time),
                       std::to_string(r.gc.minor_count +
                                      r.gc.full_count),
                       std::to_string(r.gc.local_count),
                       formatTicks(r.gc.local_pause)});
            }
        }
    }
    std::cout << "E10: compartmentalized heap vs shared eden "
                 "(paper Sec. IV proposal (ii))\n";
    t.print(std::cout);
    std::cout << "\nCompartment collections replace global "
                 "stop-the-world scavenges with owner-thread-local ones; "
                 "the STW budget drops to old-gen events only.\n";
    return 0;
}
