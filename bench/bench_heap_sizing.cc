/**
 * @file
 * E11 — the Sec. II-B methodology: heap sized at a multiple of the
 * application's minimum heap requirement. Sweeps the factor from 1.5x
 * to 5x and reports GC count/time, validating the paper's choice of 3x
 * as a point where GC overhead is stable without wasting memory.
 */

#include "bench_common.hh"

#include "base/output.hh"
#include "core/analyze.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);

    std::cerr << "E11: heap-size sensitivity (scale " << opts.scale
              << ")\n";

    TextTable t;
    t.header({"app", "heap-factor", "heap", "wall", "gc-time",
              "gc-share", "minor", "full"});
    for (const std::string app : {"xalan", "h2"}) {
        for (const double factor : {1.5, 2.0, 3.0, 4.0, 5.0}) {
            auto cfg = opts.experimentConfig();
            cfg.heap_factor = factor;
            core::ExperimentRunner runner(cfg);
            const jvm::RunResult r = runner.runApp(app, 16);
            t.row({app, formatFixed(factor, 1),
                   formatBytes(r.heap_capacity), formatTicks(r.wall_time),
                   formatTicks(r.gc_time),
                   formatPercent(core::ScalabilityAnalyzer::gcShare(r)),
                   std::to_string(r.gc.minor_count),
                   std::to_string(r.gc.full_count)});
        }
    }
    std::cout << "E11: heap sizing sweep @ 16 threads (paper uses 3x "
                 "the minimum heap requirement)\n";
    t.print(std::cout);
    return 0;
}
