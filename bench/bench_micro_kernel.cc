/**
 * @file
 * E12 — simulator micro-benchmarks (google-benchmark): throughput of
 * the event queue, the allocation/death path, the monitor fast path and
 * a full simulated application run. These bound the cost of every
 * experiment above and guard against performance regressions in the
 * simulation kernel itself.
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "core/experiment.hh"
#include "jvm/heap/heap.hh"
#include "machine/machine.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

namespace {

using namespace jscale;

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    sim::Simulation sim(1);
    std::uint64_t fired = 0;
    for (auto _ : state) {
        sim.scheduleAfter(1, [&fired] { ++fired; }, "bench");
        sim.step();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_EventQueueDeepHeap(benchmark::State &state)
{
    const std::int64_t depth = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulation sim(1);
        Rng rng(7);
        std::uint64_t fired = 0;
        for (std::int64_t i = 0; i < depth; ++i) {
            sim.scheduleAfter(
                static_cast<TickDelta>(rng.below(1000000) + 1),
                [&fired] { ++fired; }, "bench");
        }
        state.ResumeTiming();
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventQueueDeepHeap)->Arg(1024)->Arg(65536);

void
BM_HeapAllocateDeath(benchmark::State &state)
{
    jvm::HeapConfig cfg;
    cfg.capacity = 1024 * units::MiB;
    jvm::Heap heap(cfg, 4, nullptr);
    Rng rng(11);
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        const Bytes size = 16 + rng.below(512);
        const Bytes ttl = rng.below(4096);
        const auto status = heap.allocate(
            static_cast<jvm::MutatorIndex>(allocs % 4), size, ttl, 0, 0);
        if (status != jvm::AllocStatus::Ok) {
            heap.collectMinor(0);
            continue;
        }
        ++allocs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(allocs));
}
BENCHMARK(BM_HeapAllocateDeath);

void
BM_MinorCollection(benchmark::State &state)
{
    const std::int64_t objects = state.range(0);
    jvm::HeapConfig cfg;
    cfg.capacity = 1024 * units::MiB;
    for (auto _ : state) {
        state.PauseTiming();
        jvm::Heap heap(cfg, 1, nullptr);
        Rng rng(13);
        for (std::int64_t i = 0; i < objects; ++i)
            heap.allocate(0, 64 + rng.below(256), rng.below(2048), 0, 0);
        state.ResumeTiming();
        const auto work = heap.collectMinor(0);
        benchmark::DoNotOptimize(work.scanned_objects);
    }
    state.SetItemsProcessed(state.iterations() * objects);
}
BENCHMARK(BM_MinorCollection)->Arg(10000)->Arg(100000);

void
BM_LogHistogramAdd(benchmark::State &state)
{
    stats::LogHistogram hist;
    Rng rng(17);
    for (auto _ : state)
        hist.add(rng.next() >> (rng.next() % 40));
    benchmark::DoNotOptimize(hist.totalWeight());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(hist.totalWeight()));
}
BENCHMARK(BM_LogHistogramAdd);

void
BM_FullApplicationRun(benchmark::State &state)
{
    // End-to-end: one xalan run at 8 threads, small scale.
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.1;
    for (auto _ : state) {
        core::ExperimentRunner runner(cfg);
        const jvm::RunResult r = runner.runApp("xalan", 8);
        benchmark::DoNotOptimize(r.wall_time);
        state.counters["sim_events"] =
            static_cast<double>(r.sim_events);
    }
}
BENCHMARK(BM_FullApplicationRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
