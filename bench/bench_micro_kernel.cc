/**
 * @file
 * E12 — simulator micro-benchmarks (google-benchmark): throughput of
 * the event queue, the allocation/death path, the monitor fast path and
 * a full simulated application run. These bound the cost of every
 * experiment above and guard against performance regressions in the
 * simulation kernel itself.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "base/random.hh"
#include "core/experiment.hh"
#include "jvm/heap/heap.hh"
#include "jvm/runtime/listener.hh"
#include "machine/machine.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"
#include "traffic/arrival.hh"

namespace {

using namespace jscale;

/**
 * Stamp the *simulator's* build type into the benchmark context. The
 * stock "library_build_type" field only describes how libbenchmark
 * itself was compiled (a distro debug build on some hosts), so
 * bench_perf.sh keys its debug-baseline refusal off this field instead.
 */
const int kRegisterBuildType = [] {
#ifdef NDEBUG
    benchmark::AddCustomContext("jscale_build_type", "optimized");
#else
    benchmark::AddCustomContext("jscale_build_type", "debug");
#endif
    return 0;
}();

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    sim::Simulation sim(1);
    std::uint64_t fired = 0;
    for (auto _ : state) {
        sim.scheduleAfter(1, [&fired] { ++fired; }, "bench");
        sim.step();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_EventQueueDeepHeap(benchmark::State &state)
{
    // Drain throughput at a given backlog depth. Events are reusable
    // CallbackEvents (the simulator's own hot-path idiom since the
    // pooled-event rework) so the timed region measures the queue, not
    // 1M heap frees; the per-event allocate/delete path is covered by
    // BM_EventQueueChurnLambda.
    const std::int64_t depth = state.range(0);
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<sim::CallbackEvent>> events;
    events.reserve(static_cast<std::size_t>(depth));
    for (std::int64_t i = 0; i < depth; ++i) {
        events.push_back(std::make_unique<sim::CallbackEvent>(
            [&fired] { ++fired; }, "bench"));
    }
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulation sim(1);
        Rng rng(7);
        for (auto &ev : events)
            sim.queue().schedule(ev.get(), rng.below(1000000) + 1);
        state.ResumeTiming();
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventQueueDeepHeap)
    ->Arg(1024)
    ->Arg(65536)
    ->Arg(262144)
    ->Arg(1 << 20);

void
BM_EventQueueBucketResize(benchmark::State &state)
{
    // Worst case for the calendar's window tuning: alternate dense
    // near-term bursts with sparse far-future stragglers so every few
    // thousand dispatches the pending span shifts by orders of
    // magnitude and the queue must re-tune its bucket width.
    constexpr std::int64_t kBurst = 4096;
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<sim::CallbackEvent>> events;
    for (std::int64_t i = 0; i < kBurst + 8; ++i) {
        events.push_back(std::make_unique<sim::CallbackEvent>(
            [&fired] { ++fired; }, "resize"));
    }
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulation sim(1);
        Rng rng(11);
        std::size_t n = 0;
        // Dense burst within a 4k-tick window...
        for (std::int64_t i = 0; i < kBurst; ++i)
            sim.queue().schedule(events[n++].get(), rng.below(4096) + 1);
        // ...plus far-future events 6 decades out, so the first
        // rebucket's width is wildly wrong for the dense region and
        // each straggler forces another re-tune as the window crawls.
        for (std::int64_t i = 0; i < 8; ++i) {
            sim.queue().schedule(events[n++].get(),
                                 (i + 1) * 1000000000ULL);
        }
        state.ResumeTiming();
        sim.run();
        state.PauseTiming();
        state.counters["rebuckets"] = static_cast<double>(
            sim.queue().rebucketCount());
        state.ResumeTiming();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * (kBurst + 8));
}
BENCHMARK(BM_EventQueueBucketResize);

void
BM_EventQueueChurnCancel(benchmark::State &state)
{
    // Schedule/cancel/drain churn over reusable member events; range(0)
    // percent of each batch is descheduled before the drain. Arg(0) is
    // the pure hot path — an empty cancellation set must cost exactly
    // one branch per pop.
    const std::int64_t cancel_pct = state.range(0);
    constexpr int kBatch = 64;
    sim::EventQueue q;
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<sim::CallbackEvent>> events;
    for (int i = 0; i < kBatch; ++i) {
        events.push_back(std::make_unique<sim::CallbackEvent>(
            [&fired] { ++fired; }, "churn"));
    }
    Rng rng(23);
    Ticks base = 0;
    for (auto _ : state) {
        for (auto &ev : events)
            q.schedule(ev.get(), base + 1 + rng.below(1000));
        for (auto &ev : events) {
            if (static_cast<std::int64_t>(rng.below(100)) < cancel_pct)
                q.deschedule(ev.get());
        }
        while (sim::Event *ev = q.pop())
            ev->process();
        base += 1001;
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventQueueChurnCancel)->Arg(0)->Arg(25);

void
BM_EventQueueChurnLambda(benchmark::State &state)
{
    // The pre-pool idiom: a fresh heap-allocated self-deleting
    // LambdaEvent (one std::function + string per occurrence). Kept as
    // the baseline the pooled CallbackEvent churn above replaces.
    constexpr int kBatch = 64;
    sim::EventQueue q;
    std::uint64_t fired = 0;
    Rng rng(23);
    Ticks base = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBatch; ++i) {
            q.schedule(
                new sim::LambdaEvent([&fired] { ++fired; }, "churn"),
                base + 1 + rng.below(1000));
        }
        while (sim::Event *ev = q.pop()) {
            ev->process();
            if (ev->selfDeleting())
                delete ev;
        }
        base += 1001;
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventQueueChurnLambda);

void
BM_RecurringEventTick(benchmark::State &state)
{
    // One periodic activity (metric sampling, phase rotation): each
    // step fires the callback and rearms the same pooled event.
    sim::Simulation sim(1);
    std::uint64_t fired = 0;
    sim::RecurringEvent tick(sim.queue(), 10, [&fired] { ++fired; },
                             "bench-tick");
    tick.start(10);
    for (auto _ : state)
        sim.step();
    tick.stop();
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_RecurringEventTick);

void
BM_ListenerDispatchEmpty(benchmark::State &state)
{
    // The overwhelmingly common case: no tools attached, every probe
    // site must reduce to a single branch.
    jvm::ListenerChain chain;
    std::uint64_t calls = 0;
    for (auto _ : state) {
        chain.dispatch([&calls](jvm::RuntimeListener &l) {
            l.onThreadStart(0, 0);
            ++calls;
        });
        benchmark::DoNotOptimize(calls);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ListenerDispatchEmpty);

void
BM_ListenerDispatchSubscribed(benchmark::State &state)
{
    class CountingListener : public jvm::RuntimeListener
    {
      public:
        std::uint64_t starts = 0;
        void
        onThreadStart(jvm::MutatorIndex, Ticks) override
        {
            ++starts;
        }
    };
    jvm::ListenerChain chain;
    CountingListener listener;
    chain.add(&listener);
    for (auto _ : state) {
        chain.dispatch([](jvm::RuntimeListener &l) {
            l.onThreadStart(0, 0);
        });
    }
    benchmark::DoNotOptimize(listener.starts);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(listener.starts));
}
BENCHMARK(BM_ListenerDispatchSubscribed);

void
BM_HeapThreadExitKill(benchmark::State &state)
{
    // End-of-run thread exits on the paper's 48-core machine: every
    // mutator exits in turn while the heap holds range(0) live objects.
    // Each exit must touch only the exiting owner's objects — a full
    // region-list scan per exit makes the combined exits quadratic.
    const std::int64_t objects = state.range(0);
    constexpr std::uint32_t kOwners = 48;
    jvm::HeapConfig cfg;
    cfg.capacity = 1024 * units::MiB;
    const Bytes long_ttl = static_cast<Bytes>(1) << 40;
    for (auto _ : state) {
        state.PauseTiming();
        jvm::Heap heap(cfg, kOwners, nullptr);
        for (std::int64_t i = 0; i < objects; ++i) {
            heap.allocate(
                static_cast<jvm::MutatorIndex>(i % kOwners), 64,
                long_ttl, 0, 0);
        }
        state.ResumeTiming();
        for (std::uint32_t o = 0; o < kOwners; ++o)
            heap.killThreadObjects(o, 0);
        benchmark::DoNotOptimize(heap.heapStats().objects_died);
    }
    state.SetItemsProcessed(state.iterations() * objects);
}
BENCHMARK(BM_HeapThreadExitKill)->Arg(10000)->Arg(100000)->Arg(1000000);

void
BM_HeapAllocateDeath(benchmark::State &state)
{
    jvm::HeapConfig cfg;
    cfg.capacity = 1024 * units::MiB;
    jvm::Heap heap(cfg, 4, nullptr);
    Rng rng(11);
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        const Bytes size = 16 + rng.below(512);
        const Bytes ttl = rng.below(4096);
        const auto status = heap.allocate(
            static_cast<jvm::MutatorIndex>(allocs % 4), size, ttl, 0, 0);
        if (status != jvm::AllocStatus::Ok) {
            heap.collectMinor(0);
            continue;
        }
        ++allocs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(allocs));
}
BENCHMARK(BM_HeapAllocateDeath);

void
BM_MinorCollection(benchmark::State &state)
{
    const std::int64_t objects = state.range(0);
    jvm::HeapConfig cfg;
    cfg.capacity = 1024 * units::MiB;
    for (auto _ : state) {
        state.PauseTiming();
        jvm::Heap heap(cfg, 1, nullptr);
        Rng rng(13);
        for (std::int64_t i = 0; i < objects; ++i)
            heap.allocate(0, 64 + rng.below(256), rng.below(2048), 0, 0);
        state.ResumeTiming();
        const auto work = heap.collectMinor(0);
        benchmark::DoNotOptimize(work.scanned_objects);
    }
    state.SetItemsProcessed(state.iterations() * objects);
}
BENCHMARK(BM_MinorCollection)->Arg(10000)->Arg(100000);

void
BM_LogHistogramAdd(benchmark::State &state)
{
    stats::LogHistogram hist;
    Rng rng(17);
    for (auto _ : state)
        hist.add(rng.next() >> (rng.next() % 40));
    benchmark::DoNotOptimize(hist.totalWeight());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(hist.totalWeight()));
}
BENCHMARK(BM_LogHistogramAdd);

void
BM_ArrivalGapSampling(benchmark::State &state)
{
    // Raw injection-schedule throughput: sampling the next inter-arrival
    // gap is on the hot path of every open-loop event, once per offered
    // request. The bursty process is the costliest (phase bookkeeping on
    // top of the exponential draw).
    traffic::ArrivalSpec spec;
    std::string err;
    const bool ok = traffic::ArrivalSpec::parse(
        "burst:rate=100000:factor=8:on_ms=2:off_ms=8", spec, err);
    if (!ok) {
        state.SkipWithError(err.c_str());
        return;
    }
    traffic::ArrivalProcess proc(spec, Rng(29));
    Ticks now = 0;
    for (auto _ : state) {
        now += proc.nextGap(now);
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArrivalGapSampling);

void
BM_OpenLoopInjection(benchmark::State &state)
{
    // End-to-end open-loop run: arrival events, bounded admission,
    // request dispatch and the per-request latency pipeline, measured in
    // completed requests per second of host time.
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.05;
    cfg.arrivals = "poisson:rate=2000:requests=500";
    std::uint64_t completed = 0;
    for (auto _ : state) {
        core::ExperimentRunner runner(cfg);
        const jvm::RunResult r = runner.runApp("sunflow", 4);
        completed += r.traffic.completed;
        benchmark::DoNotOptimize(r.traffic.completed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_OpenLoopInjection)->Unit(benchmark::kMillisecond);

void
BM_FullApplicationRun(benchmark::State &state)
{
    // End-to-end: one xalan run at 8 threads, small scale.
    core::ExperimentConfig cfg;
    cfg.workload_scale = 0.1;
    for (auto _ : state) {
        core::ExperimentRunner runner(cfg);
        const jvm::RunResult r = runner.runApp("xalan", 8);
        benchmark::DoNotOptimize(r.wall_time);
        state.counters["sim_events"] =
            static_cast<double>(r.sim_events);
    }
}
BENCHMARK(BM_FullApplicationRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
