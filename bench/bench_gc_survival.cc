/**
 * @file
 * E8 — the Sec. III-B causal chain: prolonged lifespans make more
 * objects survive the nursery, so more bytes are copied, more bytes are
 * promoted, and the mature region fills faster. Reproduction target:
 * nursery survival and promotion volume grow with threads for xalan
 * (scalable, interference-prone) and stay flat for eclipse.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E8: GC effectiveness vs threads (scale " << opts.scale
              << ")\n";
    core::SweepSet sweeps;
    for (const std::string app : {"xalan", "eclipse"}) {
        std::cerr << "  sweeping " << app << "...\n";
        sweeps[app] = runner.sweep(app, {4, 8, 16, 32, 48});
    }

    core::printGcSurvivalTable(std::cout, sweeps);

    const auto &xalan = sweeps["xalan"];
    std::cout << "\nxalan nursery survival: "
              << formatPercent(
                     xalan.front().gc.nursery_survival.mean())
              << " @ 4 threads -> "
              << formatPercent(xalan.back().gc.nursery_survival.mean())
              << " @ 48 threads (paper: more objects survive the "
                 "nursery as threads scale)\n";
    if (opts.csv) {
        std::cout << "\n";
        core::writeGcSurvivalCsv(std::cout, sweeps);
    }
    return 0;
}
