/**
 * @file
 * E16 — collector ablation: the paper's stop-the-world throughput
 * collector vs. a CMS-style concurrent old-generation collector on the
 * same workloads. The concurrent marker competes with mutators for
 * cores (the paper's helper-thread effect) but converts long full-GC
 * pauses into short remarks.
 */

#include "bench_common.hh"

#include "base/output.hh"
#include "core/analyze.hh"
#include "workload/task_queue_app.hh"

namespace {

/**
 * A promotion-heavy workload: half of all objects live 64 KiB - 1 MiB of
 * owner-local allocation, so they tenure into the old generation and
 * die there — the regime where the collector choice matters most.
 */
jscale::workload::TaskQueueParams
oldChurnParams(double scale)
{
    using namespace jscale;
    workload::TaskQueueParams p;
    p.name = "oldchurn";
    p.total_tasks = static_cast<std::uint64_t>(9000 * scale);
    p.task_compute_mean = 80 * units::US;
    p.allocs_per_task = 20;
    p.alloc.frac_tiny = 0.20;
    p.alloc.frac_short = 0.20;
    p.alloc.frac_medium = 0.50;
    p.alloc.medium_lo = 32 * units::KiB;
    p.alloc.medium_hi = 256 * units::KiB;
    p.alloc.long_hi = 512 * units::KiB;
    p.pinned_shared = 128 * units::KiB;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);

    std::cerr << "E16: collector ablation (scale " << opts.scale << ")\n";

    TextTable t;
    t.header({"app", "threads", "collector", "wall", "stw-gc",
              "p99-pause", "minor", "full", "cycles", "remarks"});
    for (const std::string app : {"oldchurn", "xalan", "h2"}) {
        for (const std::uint32_t threads : {16u, 48u}) {
            for (const bool concurrent : {false, true}) {
                auto cfg = opts.experimentConfig();
                // Stress the old generation so the collector choice
                // matters: starved heap + early tenuring.
                // The oldchurn live set is heavy-tailed; give it more
                // headroom than the DaCapo apps.
                cfg.heap_factor = app == "oldchurn" ? 1.6 : 1.3;
                cfg.vm.heap.tenure_threshold = 2;
                cfg.vm.concurrent.initiating_occupancy = 0.45;
                // Live sets peak at the largest thread count (lifespan
                // interference); with this starved heap the minimum must
                // be calibrated there, not at the paper's 4 threads.
                cfg.calibration_threads = 48;
                cfg.vm.collector =
                    concurrent ? jvm::CollectorKind::ConcurrentOld
                               : jvm::CollectorKind::Throughput;
                core::ExperimentRunner runner(cfg);
                const double scale = opts.scale;
                const jvm::RunResult r =
                    app == "oldchurn"
                        ? runner.runCustom(
                              [scale] {
                                  return std::make_unique<
                                      workload::TaskQueueApp>(
                                      oldChurnParams(scale));
                              },
                              "oldchurn", threads)
                        : runner.runApp(app, threads);
                t.row({app, std::to_string(threads),
                       concurrent ? "concurrent" : "throughput",
                       formatTicks(r.wall_time), formatTicks(r.gc_time),
                       formatTicks(r.gc.pause_hist.percentile(0.99)),
                       std::to_string(r.gc.minor_count),
                       std::to_string(r.gc.full_count),
                       std::to_string(r.gc.concurrent_cycles),
                       std::to_string(r.gc.remark_count)});
            }
        }
    }
    std::cout << "E16: throughput vs concurrent-old collector on a "
                 "starved heap\n";
    t.print(std::cout);
    std::cout << "\nConcurrent cycles trade background CPU for shorter "
                 "stop-the-world tails; mode failures (if any) fall "
                 "back to full collections.\n";
    return 0;
}
