/**
 * @file
 * E7 — Fig. 2: distribution of mutator and GC times for the three
 * scalable applications. Reproduction targets: (1) ignoring GC, mutator
 * time keeps falling all the way to 48 threads; (2) GC time (and its
 * share of the wall clock) keeps growing with the thread count, capping
 * overall scalability.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E7 (Fig. 2): mutator vs GC time (scale " << opts.scale
              << ")\n";
    core::SweepSet sweeps;
    const auto threads = runner.paperThreadCounts();
    for (const std::string app : {"sunflow", "lusearch", "xalan"}) {
        std::cerr << "  sweeping " << app << "...\n";
        sweeps[app] = runner.sweep(app, threads);
    }

    core::printMutatorGcTable(std::cout, sweeps);

    // The paper's two take-aways, checked explicitly.
    for (const auto &[app, sweep] : sweeps) {
        const bool mutator_falls =
            sweep.back().mutatorTime() < sweep.front().mutatorTime();
        const bool gc_grows = sweep.back().gc_time > sweep.front().gc_time;
        std::cout << app << ": mutator keeps falling to "
                  << sweep.back().threads << " threads: "
                  << (mutator_falls ? "yes" : "NO")
                  << "; GC time grows with threads: "
                  << (gc_grows ? "yes" : "NO") << "\n";
    }
    if (opts.csv) {
        std::cout << "\n";
        core::writeMutatorGcCsv(std::cout, sweeps);
    }
    return 0;
}
