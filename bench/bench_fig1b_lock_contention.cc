/**
 * @file
 * E4 — Fig. 1b: number of lock contention instances vs. thread count.
 * Reproduction target: contention grows with threads for the scalable
 * applications (they synchronize more as work is divided finer) while
 * staying essentially constant for the non-scalable ones (their fixed
 * lock traffic saturates a coarse lock early).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E4 (Fig. 1b): lock contention (scale " << opts.scale
              << ")\n";
    const auto sweeps = bench::sweepAllApps(runner);

    core::printLockContentionTable(std::cout, sweeps);
    if (opts.csv) {
        std::cout << "\n";
        core::writeLockContentionCsv(std::cout, sweeps);
    }
    return 0;
}
