/**
 * @file
 * E14 — mechanism validation for Sec. III-B: "In scalable applications,
 * threads tend to share workload evenly; therefore, there is a greater
 * competition for processors, resulting in longer wait time for a
 * thread in the suspend state. This can prolong the lifetimes of
 * objects created, but not yet used by that thread."
 *
 * The bench reports per-mutator suspend wait (ready wait + lock block)
 * against the lifespan CDF across the thread sweep: for the scalable
 * apps both move together (more suspension, fewer short-lived objects),
 * while eclipse — whose worker set never grows — shows neither effect.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E14: suspend wait vs lifespan (scale " << opts.scale
              << ")\n";
    core::SweepSet sweeps;
    for (const std::string app : {"xalan", "sunflow", "eclipse"}) {
        std::cerr << "  sweeping " << app << "...\n";
        sweeps[app] = runner.sweep(app, {4, 16, 48});
    }

    core::printSuspendWaitTable(std::cout, sweeps);

    const auto &xalan = sweeps["xalan"];
    auto suspend_ratio = [](const jvm::RunResult &r) {
        double suspend = 0.0;
        double cpu = 0.0;
        for (const auto &ts : r.thread_summaries) {
            if (ts.kind == os::ThreadKind::Mutator) {
                suspend += static_cast<double>(ts.ready_time +
                                               ts.blocked_time);
                cpu += static_cast<double>(ts.cpu_time);
            }
        }
        return cpu > 0.0 ? suspend / cpu : 0.0;
    };
    std::cout << "\nxalan suspend wait per unit of useful work: "
              << formatFixed(suspend_ratio(xalan.front()), 2)
              << " @ 4T -> " << formatFixed(suspend_ratio(xalan.back()), 2)
              << " @ 48T, while objects dying within 1 KiB fall "
              << formatPercent(
                     xalan.front().heap.lifespan.fractionBelow(1024))
              << " -> "
              << formatPercent(
                     xalan.back().heap.lifespan.fractionBelow(1024))
              << " (the paper's interference mechanism).\n";
    if (opts.csv) {
        std::cout << "\n";
        core::writeSuspendWaitCsv(std::cout, sweeps);
    }
    return 0;
}
