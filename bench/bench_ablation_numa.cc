/**
 * @file
 * E15 — NUMA sensitivity ablation. The paper's testbed is a four-socket
 * NUMA machine; this bench quantifies how much of the measured GC
 * overhead is NUMA-induced by sweeping the remote-access penalty (1.0 =
 * a hypothetical uniform-memory 48-core part) and the cross-socket
 * migration cost.
 */

#include "bench_common.hh"

#include "base/output.hh"
#include "core/analyze.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);

    std::cerr << "E15: NUMA-sensitivity ablation (scale " << opts.scale
              << ")\n";

    TextTable t;
    t.header({"numa-factor", "migration", "wall", "gc-time", "gc-share",
              "migrations"});
    for (const double numa : {1.0, 1.6, 2.5}) {
        for (const Ticks migration :
             {Ticks{0}, Ticks{12 * units::US}, Ticks{40 * units::US}}) {
            auto cfg = opts.experimentConfig();
            cfg.machine.numa_remote_factor = numa;
            cfg.machine.migration_cost = migration;
            core::ExperimentRunner runner(cfg);
            const jvm::RunResult r = runner.runApp("xalan", 48);
            t.row({formatFixed(numa, 1), formatTicks(migration),
                   formatTicks(r.wall_time), formatTicks(r.gc_time),
                   formatPercent(core::ScalabilityAnalyzer::gcShare(r)),
                   std::to_string(r.sched.migrations)});
        }
    }
    std::cout << "E15: xalan @ 48 threads under varying NUMA costs "
                 "(paper machine: factor 1.6)\n";
    t.print(std::cout);

    // Placement ablation: compact socket fill vs. scatter at partial
    // occupancy, where the policies actually differ.
    TextTable pt;
    pt.header({"threads", "placement", "sockets-used", "wall",
               "gc-time"});
    for (const std::uint32_t threads : {12u, 24u}) {
        for (const bool scatter : {false, true}) {
            auto cfg = opts.experimentConfig();
            cfg.placement = scatter
                                ? machine::Machine::EnablePolicy::Scatter
                                : machine::Machine::EnablePolicy::Compact;
            core::ExperimentRunner runner(cfg);
            const jvm::RunResult r = runner.runApp("xalan", threads);
            machine::Machine probe(cfg.machine);
            probe.enableCores(threads, cfg.placement);
            pt.row({std::to_string(threads),
                    scatter ? "scatter" : "compact",
                    std::to_string(probe.enabledSockets()),
                    formatTicks(r.wall_time), formatTicks(r.gc_time)});
        }
    }
    std::cout << "\ncompact vs scatter core placement:\n";
    pt.print(std::cout);
    std::cout << "\nThe NUMA factor scales the GC copy phase (remote "
                 "traffic), while migration cost prices cross-socket "
                 "thread movement in the scheduler.\n";
    return 0;
}
