/**
 * @file
 * E1 — the Sec. II-C characterization: execution time and speedup for
 * all six applications over the paper's thread/core settings, with the
 * scalable / non-scalable classification. Reproduction target: sunflow,
 * lusearch and xalan keep speeding up toward 48 threads; h2, eclipse
 * and jython flatten at a handful of threads.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E1: scalability characterization (scale " << opts.scale
              << ")\n";
    const auto sweeps = bench::sweepAllApps(runner);

    core::printScalabilityTable(std::cout, sweeps);
    if (opts.csv) {
        std::cout << "\n";
        core::writeScalabilityCsv(std::cout, sweeps);
    }
    return 0;
}
