/**
 * @file
 * E3 — Fig. 1a: number of lock acquisitions vs. thread count, profiled
 * with the DTrace-style LockProfiler (independently cross-checked
 * against the VM's own monitor counters). Reproduction target: rising
 * for the scalable applications, flat for the non-scalable ones.
 */

#include "bench_common.hh"

#include "lockprof/lockprof.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E3 (Fig. 1a): lock acquisitions (scale " << opts.scale
              << ")\n";

    // Cross-check on one configuration that the profiler agrees with
    // the runtime's own counters, then sweep using the cheap counters.
    {
        lockprof::LockProfiler profiler;
        const jvm::RunResult r = runner.runApp(
            "xalan", 8, [&profiler](jvm::JavaVm &vm) {
                vm.listeners().add(&profiler);
            });
        if (profiler.totals().acquisitions != r.locks.acquisitions) {
            std::cerr << "profiler/runtime acquisition mismatch: "
                      << profiler.totals().acquisitions << " vs "
                      << r.locks.acquisitions << "\n";
            return 1;
        }
        std::cerr << "  profiler cross-check OK ("
                  << profiler.totals().acquisitions
                  << " acquisitions)\n";
    }

    const auto sweeps = bench::sweepAllApps(runner);
    core::printLockAcquisitionTable(std::cout, sweeps);
    if (opts.csv) {
        std::cout << "\n";
        core::writeLockAcquisitionCsv(std::cout, sweeps);
    }
    return 0;
}
