/**
 * @file
 * E5 — Fig. 1c: eclipse's object-lifespan CDF across thread counts,
 * measured through the Elephant-Tracks-style tracer. Reproduction
 * target: the CDF barely moves between 4 and 48 threads, because the
 * set of allocating threads (the fixed pipeline) does not grow with the
 * requested thread count.
 */

#include "bench_common.hh"

#include "trace/trace.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E5 (Fig. 1c): eclipse lifespan CDF (scale "
              << opts.scale << ")\n";
    std::vector<jvm::RunResult> sweep;
    for (const std::uint32_t t : {4u, 16u, 48u}) {
        // Run with the tracer attached and verify the traced CDF matches
        // the heap-side histogram before reporting.
        trace::MemoryTraceSink sink;
        trace::ObjectTracer tracer(sink);
        jvm::RunResult r = runner.runApp(
            "eclipse", t,
            [&tracer](jvm::JavaVm &vm) { vm.listeners().add(&tracer); });
        trace::LifespanAnalyzer analyzer;
        analyzer.feedAll(sink.events());
        if (analyzer.deaths() != r.heap.objects_died) {
            std::cerr << "trace/heap death-count mismatch\n";
            return 1;
        }
        sweep.push_back(std::move(r));
    }

    core::printLifespanCdfTable(std::cout, "eclipse", sweep);
    std::cout << "\nmax CDF shift at 1 KiB between settings: "
              << formatPercent(
                     sweep.back().heap.lifespan.fractionBelow(1024) -
                     sweep.front().heap.lifespan.fractionBelow(1024))
              << " (paper: almost no change)\n";
    if (opts.csv) {
        std::cout << "\n";
        core::writeLifespanCdfCsv(std::cout, "eclipse", sweep);
    }
    return 0;
}
