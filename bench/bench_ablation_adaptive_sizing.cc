/**
 * @file
 * E13 — ablation of HotSpot-style adaptive young-generation sizing
 * (-XX:+UseAdaptiveSizePolicy, the default ergonomics of the paper's
 * throughput collector). On a memory-starved heap (1.5x minimum) the
 * policy should trade old-gen headroom for a larger nursery and claw
 * back most of the GC overhead of the fixed geometry.
 */

#include "bench_common.hh"

#include "base/output.hh"
#include "core/analyze.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);

    std::cerr << "E13: adaptive-sizing ablation (scale " << opts.scale
              << ")\n";

    TextTable t;
    t.header({"app", "threads", "heap-factor", "sizing", "wall",
              "gc-time", "gc-share", "minor", "resizes", "young-frac"});
    for (const std::string app : {"xalan", "lusearch"}) {
        for (const double factor : {1.5, 3.0}) {
            for (const bool adaptive : {false, true}) {
                auto cfg = opts.experimentConfig();
                cfg.heap_factor = factor;
                cfg.vm.adaptive.enabled = adaptive;
                core::ExperimentRunner runner(cfg);
                const jvm::RunResult r = runner.runApp(app, 16);
                t.row({app, "16", formatFixed(factor, 1),
                       adaptive ? "adaptive" : "fixed",
                       formatTicks(r.wall_time), formatTicks(r.gc_time),
                       formatPercent(
                           core::ScalabilityAnalyzer::gcShare(r)),
                       std::to_string(r.gc.minor_count),
                       std::to_string(r.gc.young_resizes),
                       adaptive ? formatFixed(
                                      r.gc.adaptive.final_young_fraction,
                                      3)
                                : formatFixed(1.0 / 3.0, 3)});
            }
        }
    }
    std::cout << "E13: fixed vs adaptive young-generation sizing "
                 "(HotSpot UseAdaptiveSizePolicy ergonomics)\n";
    t.print(std::cout);
    std::cout << "\nOn the paper's 3x heap the policy grows the young "
                 "generation toward the GC-time target (fewer, larger "
                 "collections); on the starved 1.5x heap old-gen "
                 "pressure forces it the other way, trading nursery "
                 "space for survival.\n";
    return 0;
}
