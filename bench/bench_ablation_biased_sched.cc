/**
 * @file
 * E9 — ablation of the paper's first future-work proposal (Sec. IV):
 * biased scheduling that staggers worker-thread execution phases to
 * reduce lifetime interference. Sweeps the number of phase groups at 48
 * threads on xalan and reports the trade-off between lifespan/GC
 * improvement and lost mutator parallelism.
 */

#include "bench_common.hh"

#include "base/output.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);

    std::cerr << "E9: biased-scheduling ablation (scale " << opts.scale
              << ")\n";
    const std::uint32_t threads = 48;

    TextTable t;
    t.header({"scheduler", "wall", "mutator", "gc", "survival",
              "lifespan<1KiB", "promoted"});
    CsvWriter csv(std::cout);

    std::vector<std::pair<std::string, jvm::RunResult>> rows;
    {
        core::ExperimentRunner runner(opts.experimentConfig());
        rows.emplace_back("default", runner.runApp("xalan", threads));
    }
    for (const std::uint32_t groups : {2u, 4u, 8u}) {
        auto cfg = opts.experimentConfig();
        cfg.biased_scheduling = true;
        cfg.bias_groups = groups;
        core::ExperimentRunner runner(cfg);
        rows.emplace_back("biased/" + std::to_string(groups) + "g",
                          runner.runApp("xalan", threads));
    }

    for (const auto &[name, r] : rows) {
        t.row({name, formatTicks(r.wall_time),
               formatTicks(r.mutatorTime()), formatTicks(r.gc_time),
               formatPercent(r.gc.nursery_survival.mean()),
               formatPercent(r.heap.lifespan.fractionBelow(1024)),
               formatBytes(r.gc.promoted_bytes)});
    }
    std::cout << "E9: biased scheduling on xalan @ " << threads
              << " threads (paper Sec. IV proposal (i))\n";
    t.print(std::cout);
    std::cout << "\nBias restores short lifespans (less lifetime "
                 "interference) and trims GC work, at the cost of gated "
                 "mutator parallelism on a CPU-bound balanced workload.\n";

    if (opts.csv) {
        csv.row({"scheduler", "wall_ns", "mutator_ns", "gc_ns",
                 "survival", "lifespan_lt_1k", "promoted_bytes"});
        for (const auto &[name, r] : rows) {
            csv.row({name, std::to_string(r.wall_time),
                     std::to_string(r.mutatorTime()),
                     std::to_string(r.gc_time),
                     formatFixed(r.gc.nursery_survival.mean(), 4),
                     formatFixed(r.heap.lifespan.fractionBelow(1024), 4),
                     std::to_string(r.gc.promoted_bytes)});
        }
    }
    return 0;
}
