/**
 * @file
 * Shared plumbing for the experiment benches: flag parsing (--scale,
 * --seed, --csv), the standard sweep driver, and CSV emission next to
 * the console tables so every figure/table is regenerated in both
 * human- and machine-readable form.
 */

#ifndef JSCALE_BENCH_BENCH_COMMON_HH
#define JSCALE_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/dacapo.hh"

namespace jscale::bench {

/** Common bench options. */
struct BenchOptions
{
    double scale = 1.0;
    std::uint64_t seed = 42;
    bool csv = false;
    /** Chrome-trace timeline path ({app}/{threads} placeholders). */
    std::string timeline_path;
    /** Metric-sampler CSV path. */
    std::string metrics_path;
    /** Metric sampling period in ms (0 = off). */
    std::uint64_t metrics_interval_ms = 0;
    /** Host workers for sweeps (0 = one per core, 1 = sequential). */
    std::uint32_t jobs = 0;

    /** Parse argv; unknown flags are fatal. */
    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&](const char *flag) -> const char * {
                if (i + 1 >= argc) {
                    std::cerr << "missing value for " << flag << "\n";
                    std::exit(2);
                }
                return argv[++i];
            };
            if (arg == "--scale") {
                o.scale = std::atof(value("--scale"));
            } else if (arg == "--seed") {
                o.seed = static_cast<std::uint64_t>(
                    std::atoll(value("--seed")));
            } else if (arg == "--csv") {
                o.csv = true;
            } else if (arg == "--timeline") {
                o.timeline_path = value("--timeline");
            } else if (arg == "--metrics") {
                o.metrics_path = value("--metrics");
            } else if (arg == "--metrics-interval-ms") {
                o.metrics_interval_ms = static_cast<std::uint64_t>(
                    std::atoll(value("--metrics-interval-ms")));
            } else if (arg == "--jobs") {
                // 0 legitimately means "one worker per host core", so
                // a mistyped value must not alias to it via atoi.
                const std::string v = value("--jobs");
                if (v.empty() || v.find_first_not_of("0123456789") !=
                                     std::string::npos) {
                    std::cerr << "bad --jobs value '" << v << "'\n";
                    std::exit(2);
                }
                o.jobs = static_cast<std::uint32_t>(std::stoul(v));
            } else if (arg == "--help" || arg == "-h") {
                std::cout << "flags: --scale <f> --seed <n> --csv"
                             " --timeline <path> --metrics <path>"
                             " --metrics-interval-ms <n> --jobs <n>\n";
                std::exit(0);
            } else {
                std::cerr << "unknown flag '" << arg << "'\n";
                std::exit(2);
            }
        }
        return o;
    }

    core::ExperimentConfig
    experimentConfig() const
    {
        core::ExperimentConfig cfg;
        cfg.seed = seed;
        cfg.workload_scale = scale;
        cfg.timeline_path = timeline_path;
        cfg.metrics_path = metrics_path;
        cfg.metrics_interval = metrics_interval_ms * units::MS;
        cfg.jobs = jobs;
        return cfg;
    }
};

/** Sweep every DaCapo app over the paper's thread counts. */
inline core::SweepSet
sweepAllApps(core::ExperimentRunner &runner)
{
    return runner.sweepApps(workload::dacapoAppNames(),
                            runner.paperThreadCounts(),
                            [](const std::string &app) {
                                std::cerr << "  sweeping " << app
                                          << "...\n";
                            });
}

} // namespace jscale::bench

#endif // JSCALE_BENCH_BENCH_COMMON_HH
