/**
 * @file
 * E6 — Fig. 1d: xalan's object-lifespan CDF across thread counts.
 * Reproduction target: over 80% of objects die within 1 KB of global
 * allocation at 4 threads, dropping to roughly 50% at 48 threads —
 * lifespans inflate because suspended threads' objects stay live while
 * every other thread allocates.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace jscale;
    const auto opts = bench::BenchOptions::parse(argc, argv);
    core::ExperimentRunner runner(opts.experimentConfig());

    std::cerr << "E6 (Fig. 1d): xalan lifespan CDF (scale " << opts.scale
              << ")\n";
    std::vector<jvm::RunResult> sweep;
    for (const std::uint32_t t : {4u, 8u, 16u, 32u, 48u})
        sweep.push_back(runner.runApp("xalan", t));

    core::printLifespanCdfTable(std::cout, "xalan", sweep);
    std::cout << "\nfraction of objects with lifespan < 1 KiB: "
              << formatPercent(
                     sweep.front().heap.lifespan.fractionBelow(1024))
              << " @ 4 threads (paper: >80%), "
              << formatPercent(
                     sweep.back().heap.lifespan.fractionBelow(1024))
              << " @ 48 threads (paper: ~50%)\n";
    if (opts.csv) {
        std::cout << "\n";
        core::writeLifespanCdfCsv(std::cout, "xalan", sweep);
    }
    return 0;
}
