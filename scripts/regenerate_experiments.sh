#!/bin/sh
# Regenerate every experiment artifact (the data behind EXPERIMENTS.md)
# into ./experiment-output. Usage: scripts/regenerate_experiments.sh
# [-j N] [build-dir] [scale]
#
# Sweeps fan out across host cores: pass -j N (or set JOBS=N) to pick
# the worker count, JOBS=1 for fully sequential. Results are identical
# for any value — parallelism only changes wall-clock time.
#
# Each bench's stdout goes to $OUT/<name>.txt and its stderr to
# $OUT/<name>.log; a bench that exits non-zero is reported FAIL (with
# its log tail) instead of being silently swallowed, and the script
# exits 1 if any bench failed.
JOBS=${JOBS:-0}
if [ "$1" = "-j" ]; then
    JOBS=$2
    shift 2
fi
BUILD=${1:-build}
SCALE=${2:-1.0}
OUT=experiment-output
mkdir -p "$OUT"

if ! ls "$BUILD"/bench/bench_* > /dev/null 2>&1; then
    echo "error: no benches under '$BUILD/bench' (build first?)" >&2
    exit 1
fi

failures=0
for b in "$BUILD"/bench/bench_*; do
    name=$(basename "$b")
    if [ "$name" = "bench_micro_kernel" ]; then
        "$b" --benchmark_min_time=0.1 \
            > "$OUT/$name.txt" 2> "$OUT/$name.log"
        status=$?
    else
        "$b" --scale "$SCALE" --csv --jobs "$JOBS" \
            > "$OUT/$name.txt" 2> "$OUT/$name.log"
        status=$?
    fi
    if [ "$status" -eq 0 ]; then
        echo "PASS $name -> $OUT/$name.txt"
    else
        failures=$((failures + 1))
        echo "FAIL $name (exit $status); stderr tail:"
        tail -n 5 "$OUT/$name.log" | sed 's/^/    /'
    fi
done

if [ "$failures" -ne 0 ]; then
    echo "$failures bench(es) failed; see $OUT/*.log" >&2
    exit 1
fi
echo "all benches passed"
