#!/bin/sh
# Regenerate every experiment artifact (the data behind EXPERIMENTS.md)
# into ./experiment-output. Usage: scripts/regenerate_experiments.sh
# [-j N] [-S N] [build-dir] [scale]
#
# Benches fan out as real shell-level children: pass -j N (or set
# JOBS=N) to pick how many benches run concurrently, JOBS=1 for fully
# sequential; the default is one bench per host core. Each bench runs
# its own sweep sequentially (--jobs 1), so the host is never
# oversubscribed and results are identical for any -j value —
# parallelism only changes wall-clock time.
#
# Pass -S N (or set SUPERVISE=N) to run every bench under
# `jscale supervise --retries N`: a bench killed by a signal (OOM
# killer, stray SIGKILL) is retried with backoff instead of costing
# the whole regeneration, while a deterministic bench failure still
# fails immediately. See docs/operations.md.
#
# Each bench's stdout goes to $OUT/<name>.txt and its stderr to
# $OUT/<name>.log. Every child is reaped with its own `wait <pid>` so
# each bench's exit status is observed individually — a bench that
# exits non-zero is reported FAIL (with its log tail) instead of being
# silently swallowed by a bare `wait`, and the script exits 1 if any
# bench failed.
JOBS=${JOBS:-0}
SUPERVISE=${SUPERVISE:-}
while :; do
    case $1 in
        -j) JOBS=$2; shift 2 ;;
        -S) SUPERVISE=$2; shift 2 ;;
        *) break ;;
    esac
done
BUILD=${1:-build}
SCALE=${2:-1.0}
OUT=experiment-output
mkdir -p "$OUT"

case $JOBS in
    ''|*[!0-9]*)
        echo "error: -j expects a number, got '$JOBS'" >&2
        exit 2
        ;;
esac
case $SUPERVISE in
    *[!0-9]*)
        echo "error: -S expects a number, got '$SUPERVISE'" >&2
        exit 2
        ;;
esac
if [ -n "$SUPERVISE" ] && [ ! -x "$BUILD/tools/jscale" ]; then
    echo "error: -S needs '$BUILD/tools/jscale' (build first?)" >&2
    exit 1
fi
if [ "$JOBS" -eq 0 ]; then
    JOBS=$(nproc 2> /dev/null || echo 1)
fi

if ! ls "$BUILD"/bench/bench_* > /dev/null 2>&1; then
    echo "error: no benches under '$BUILD/bench' (build first?)" >&2
    exit 1
fi

failures=0
running=0
pids=
names=

# Start one bench in the background and record its pid/name (two
# space-separated lists kept in lockstep — POSIX sh has no arrays).
launch() {
    bench=$1
    name=$(basename "$bench")
    # Under -S, the supervisor re-execs the bench on transient deaths;
    # its own narration joins the bench's stderr in $OUT/<name>.log.
    if [ -n "$SUPERVISE" ]; then
        set -- "$BUILD/tools/jscale" supervise --retries "$SUPERVISE" --
    else
        set --
    fi
    if [ "$name" = "bench_micro_kernel" ]; then
        "$@" "$bench" --benchmark_min_time=0.1 \
            > "$OUT/$name.txt" 2> "$OUT/$name.log" &
    else
        "$@" "$bench" --scale "$SCALE" --csv --jobs 1 \
            > "$OUT/$name.txt" 2> "$OUT/$name.log" &
    fi
    pids="$pids $!"
    names="$names $name"
    running=$((running + 1))
}

# Reap every recorded child with a per-pid wait, in launch order, so
# individual exit statuses survive and the report stays deterministic.
reap_batch() {
    for pid in $pids; do
        names=${names# }
        name=${names%% *}
        names=${names#"$name"}
        wait "$pid"
        status=$?
        if [ "$status" -eq 0 ]; then
            echo "PASS $name -> $OUT/$name.txt"
        else
            failures=$((failures + 1))
            echo "FAIL $name (exit $status); stderr tail:"
            tail -n 5 "$OUT/$name.log" | sed 's/^/    /'
        fi
    done
    pids=
    names=
    running=0
}

for b in "$BUILD"/bench/bench_*; do
    launch "$b"
    if [ "$running" -ge "$JOBS" ]; then
        reap_batch
    fi
done
reap_batch

if [ "$failures" -ne 0 ]; then
    echo "$failures bench(es) failed; see $OUT/*.log" >&2
    exit 1
fi
echo "all benches passed"
