#!/bin/sh
# Regenerate every experiment artifact (the data behind EXPERIMENTS.md)
# into ./experiment-output. Usage: scripts/regenerate_experiments.sh
# [build-dir] [scale]
set -e
BUILD=${1:-build}
SCALE=${2:-1.0}
OUT=experiment-output
mkdir -p "$OUT"
for b in "$BUILD"/bench/bench_*; do
    name=$(basename "$b")
    if [ "$name" = "bench_micro_kernel" ]; then
        "$b" --benchmark_min_time=0.1 > "$OUT/$name.txt" 2>/dev/null
    else
        "$b" --scale "$SCALE" --csv > "$OUT/$name.txt" 2>/dev/null ||
        "$b" > "$OUT/$name.txt" 2>/dev/null
    fi
    echo "wrote $OUT/$name.txt"
done
