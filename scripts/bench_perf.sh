#!/bin/sh
# Kernel performance harness: runs the simulation-kernel
# micro-benchmarks and times an E1-style study at --jobs 1 versus
# --jobs <host cores>, then merges everything into BENCH_kernel.json.
#
# Usage: scripts/bench_perf.sh [--smoke] [build-dir]
#   --smoke   short benchmark repetitions and a reduced study, for CI
#
# The two study runs must produce byte-identical output (the parallel
# determinism contract); the script fails if they differ.
SMOKE=0
if [ "$1" = "--smoke" ]; then
    SMOKE=1
    shift
fi
BUILD=${1:-build}
OUT=BENCH_kernel.json

if [ ! -x "$BUILD/bench/bench_micro_kernel" ] ||
       [ ! -x "$BUILD/tools/jscale" ]; then
    echo "error: build '$BUILD' is missing bench_micro_kernel or" \
         "jscale (build first?)" >&2
    exit 1
fi

CORES=$(nproc 2> /dev/null || getconf _NPROCESSORS_ONLN 2> /dev/null ||
            echo 1)
if [ "$SMOKE" -eq 1 ]; then
    MIN_TIME=0.15
    STUDY="sweep --app xalan --threads 1,2,4 --scale 0.1 --csv"
    PROFRUN="run --app h2 --threads 8 --scale 0.1"
else
    MIN_TIME=0.5
    STUDY="study --scale 0.5 --csv"
    PROFRUN="run --app h2 --threads 32 --scale 0.5"
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== micro-benchmarks (min_time=${MIN_TIME}s) =="
"$BUILD/bench/bench_micro_kernel" \
    --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" \
    > "$TMP/micro.json" || exit 1

# Refuse to write a baseline from a debug build: debug rates are not
# comparable to release rates, and a debug-tainted BENCH_kernel.json
# would poison every future ratchet comparison. The bench binary stamps
# its own build type into the JSON context (the stock
# library_build_type field only describes libbenchmark itself).
if ! grep -q '"jscale_build_type": "optimized"' "$TMP/micro.json"; then
    echo "FAIL: bench_micro_kernel is a debug build; refusing to" \
         "write a $OUT baseline (rebuild with" \
         "-DCMAKE_BUILD_TYPE=Release)" >&2
    exit 1
fi

now_s() {
    date +%s.%N
}

echo "== study: $STUDY, --jobs 1 =="
T0=$(now_s)
# shellcheck disable=SC2086
"$BUILD/tools/jscale" $STUDY --jobs 1 \
    > "$TMP/seq.txt" 2> /dev/null || exit 1
T1=$(now_s)
SEQ_S=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")

echo "== study: $STUDY, --jobs $CORES =="
T0=$(now_s)
# shellcheck disable=SC2086
"$BUILD/tools/jscale" $STUDY --jobs "$CORES" \
    > "$TMP/par.txt" 2> /dev/null || exit 1
T1=$(now_s)
PAR_S=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")

if ! cmp -s "$TMP/seq.txt" "$TMP/par.txt"; then
    echo "FAIL: --jobs 1 and --jobs $CORES output differs" >&2
    diff "$TMP/seq.txt" "$TMP/par.txt" | head -20 >&2
    exit 1
fi
echo "output byte-identical at --jobs 1 and --jobs $CORES"

SPEEDUP=$(awk "BEGIN { if ($PAR_S > 0)
                           printf \"%.2f\", $SEQ_S / $PAR_S;
                       else printf \"0\" }")
echo "study wall clock: ${SEQ_S}s sequential, ${PAR_S}s at" \
     "$CORES jobs (speedup ${SPEEDUP}x)"

# Profiler overhead: the attribution layer is a pure observer, so a
# profiled run must cost only bookkeeping on top of the plain run.
echo "== profiler overhead: $PROFRUN =="
T0=$(now_s)
# shellcheck disable=SC2086
"$BUILD/tools/jscale" $PROFRUN \
    > /dev/null 2>&1 || exit 1
T1=$(now_s)
PLAIN_S=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")
T0=$(now_s)
# shellcheck disable=SC2086
"$BUILD/tools/jscale" $PROFRUN --profile \
    > /dev/null 2>&1 || exit 1
T1=$(now_s)
PROF_S=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")
OVERHEAD=$(awk "BEGIN { if ($PLAIN_S > 0)
                            printf \"%.3f\", $PROF_S / $PLAIN_S - 1;
                        else printf \"0\" }")
echo "profiler overhead: ${PLAIN_S}s plain, ${PROF_S}s profiled" \
     "(+$(awk "BEGIN { printf \"%.1f\", $OVERHEAD * 100 }")%)"

{
    printf '{\n'
    printf '  "host_cores": %s,\n' "$CORES"
    printf '  "smoke": %s,\n' "$SMOKE"
    printf '  "study": {\n'
    printf '    "command": "%s",\n' "$STUDY"
    printf '    "jobs_1_seconds": %s,\n' "$SEQ_S"
    printf '    "jobs_n_seconds": %s,\n' "$PAR_S"
    printf '    "speedup": %s,\n' "$SPEEDUP"
    printf '    "identical_output": true\n'
    printf '  },\n'
    printf '  "profile_overhead": {\n'
    printf '    "command": "%s",\n' "$PROFRUN"
    printf '    "plain_seconds": %s,\n' "$PLAIN_S"
    printf '    "profiled_seconds": %s,\n' "$PROF_S"
    printf '    "relative_overhead": %s\n' "$OVERHEAD"
    printf '  },\n'
    printf '  "micro":\n'
    sed 's/^/  /' "$TMP/micro.json"
    printf '}\n'
} > "$OUT"
echo "wrote $OUT"
