#!/usr/bin/env python3
"""Perf-regression ratchet for the simulation-kernel benchmarks.

Compares a fresh benchmark run against the committed BENCH_kernel.json
baseline on items_per_second for every benchmark name present in both,
and fails (exit 1) when any matching benchmark regressed by more than
the threshold (default 25%). Benchmarks that only exist on one side are
reported but never fail the check, so adding or retiring benchmarks
does not require lockstep baseline updates.

Both inputs accept either the merged BENCH_kernel.json format (micro
results under the "micro" key) or raw google-benchmark JSON output.

Usage:
  scripts/bench_check.py --baseline BENCH_kernel.json --fresh fresh.json
  scripts/bench_check.py --fresh fresh.json          # baseline from repo
"""

import argparse
import json
import sys

# Formally waived regressions: benchmark name -> the recorded decision.
# A waived benchmark still prints with its ratio, but a regression on it
# never fails the check. The entry IS the decision record — remove it to
# re-arm the ratchet for that name.
WAIVERS = {
    # Calendar event queue (PR "data-oriented simulation kernel"): a
    # single self-rescheduling event in an otherwise empty queue pays
    # the calendar lane machinery without amortising it across any
    # neighbours (10 -> 23 ns per cycle, ~0.5x). Every realistic queue
    # depth and the end-to-end application runs are at parity or far
    # ahead; accepted as the price of O(1) scheduling at real depths.
    "BM_RecurringEventTick":
        "solo-cycle lane overhead, end-to-end at parity",
}


def load_rates(path):
    """Map benchmark name -> items_per_second from either JSON shape."""
    with open(path) as f:
        doc = json.load(f)
    if "micro" in doc:
        doc = doc["micro"]
    rates = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type", "iteration") != "iteration":
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        rates[bench["name"]] = float(rate)
    return rates


def fmt_rate(rate):
    if rate >= 1e6:
        return f"{rate / 1e6:8.2f}M/s"
    if rate >= 1e3:
        return f"{rate / 1e3:8.2f}k/s"
    return f"{rate:8.2f}/s "


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_kernel.json",
                    help="committed baseline (default: BENCH_kernel.json)")
    ap.add_argument("--fresh", required=True,
                    help="fresh benchmark run to check")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max tolerated items_per_second regression "
                         "(fraction, default 0.25)")
    ap.add_argument("--normalize", metavar="BENCH", default=None,
                    help="divide every rate by this benchmark's rate "
                         "on its own side first; cancels host speed so "
                         "a baseline recorded on one machine can gate "
                         "runs on another (CI uses BM_LogHistogramAdd)")
    args = ap.parse_args()

    base = load_rates(args.baseline)
    fresh = load_rates(args.fresh)
    if args.normalize is not None:
        for rates in (base, fresh):
            ref = rates.pop(args.normalize, None)
            if not ref:
                print(f"error: normalization benchmark "
                      f"{args.normalize} missing or zero",
                      file=sys.stderr)
                return 2
            for name in rates:
                rates[name] /= ref
    if not base:
        print(f"error: no benchmark rates in baseline {args.baseline}",
              file=sys.stderr)
        return 2
    if not fresh:
        print(f"error: no benchmark rates in fresh run {args.fresh}",
              file=sys.stderr)
        return 2

    common = sorted(set(base) & set(fresh))
    regressions = []
    width = max((len(n) for n in common), default=10)
    if args.normalize is not None:
        print(f"(rates shown as multiples of {args.normalize})")
    print(f"{'benchmark':<{width}}  {'baseline':>11}  {'fresh':>11}"
          f"  {'ratio':>7}")
    for name in common:
        ratio = fresh[name] / base[name] if base[name] > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - args.threshold:
            if name in WAIVERS:
                flag = f"  (waived: {WAIVERS[name]})"
            else:
                flag = "  << REGRESSION"
                regressions.append((name, ratio))
        print(f"{name:<{width}}  {fmt_rate(base[name])}  "
              f"{fmt_rate(fresh[name])}  {ratio:6.2f}x{flag}")

    for name in sorted(set(fresh) - set(base)):
        print(f"{name:<{width}}  {'(new)':>11}  {fmt_rate(fresh[name])}")
    for name in sorted(set(base) - set(fresh)):
        print(f"{name:<{width}}  {fmt_rate(base[name])}  {'(gone)':>11}")

    if not common:
        print("error: no benchmark names in common between baseline "
              "and fresh run", file=sys.stderr)
        return 2
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
              f"than {args.threshold:.0%} on items_per_second:",
              file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x of baseline", file=sys.stderr)
        return 1
    print(f"\nOK: {len(common)} matching benchmarks within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
