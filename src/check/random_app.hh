/**
 * @file
 * RandomApp: a seeded random application generator shared by the
 * randomized property tests and the fuzz driver.
 *
 * Each thread executes a pre-generated balanced script of compute,
 * allocation bursts, ordered nested locking, channel round-trips and
 * pinned allocations drawn from a seeded stream. The scripts are
 * protocol-correct by construction — locks acquire in ascending id
 * order (no deadlocks) and release before the next acquisition round,
 * channel permits always return — so any failure an armed oracle
 * reports is a simulator bug, not a workload bug. The same seed always
 * produces the same application, which makes shrunk fuzz failures
 * replayable from a one-line reproducer.
 */

#ifndef JSCALE_CHECK_RANDOM_APP_HH
#define JSCALE_CHECK_RANDOM_APP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/units.hh"
#include "jvm/runtime/app.hh"

namespace jscale::check {

/**
 * A randomized application: each thread executes a random script of
 * balanced actions drawn from a seeded stream. Task volume and locking
 * vary per seed, covering interleavings hand-written tests never reach.
 */
class RandomApp : public jvm::ApplicationModel
{
  public:
    RandomApp(std::uint64_t seed, std::uint32_t monitors,
              std::uint32_t tasks)
        : seed_(seed), n_monitors_(monitors), tasks_(tasks)
    {}

    std::string appName() const override { return "random-app"; }

    void
    setup(jvm::AppContext &ctx) override
    {
        monitors_.clear();
        for (std::uint32_t i = 0; i < n_monitors_; ++i)
            monitors_.push_back(ctx.createMonitor("m" + std::to_string(i)));
        channel_ = ctx.createChannel("permits", /*permits=*/3);
    }

    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t idx, jvm::AppContext &) override
    {
        return std::make_unique<Src>(*this, Rng(seed_ * 977 + idx));
    }

  private:
    class Src : public jvm::ActionSource
    {
      public:
        Src(const RandomApp &app, Rng rng)
        {
            using jvm::Action;
            // Pre-generate a balanced random script. Locks are always
            // acquired in ascending id order (no deadlocks) and
            // released before the next acquisition round.
            for (std::uint32_t t = 0; t < app.tasks_; ++t) {
                const int shape = static_cast<int>(rng.below(5));
                switch (shape) {
                  case 0: // pure compute
                    script_.push_back(Action::compute(
                        1 + rng.below(40 * units::US)));
                    break;
                  case 1: { // allocation burst
                    const int n = 1 + static_cast<int>(rng.below(8));
                    for (int i = 0; i < n; ++i) {
                        script_.push_back(Action::allocate(
                            16 + rng.below(2048), rng.below(16384)));
                    }
                    break;
                  }
                  case 2: { // nested ordered locks around work
                    const std::size_t first =
                        rng.below(app.monitors_.size());
                    const bool two =
                        rng.chance(0.4) &&
                        first + 1 < app.monitors_.size();
                    script_.push_back(
                        Action::monitorEnter(app.monitors_[first]));
                    if (two) {
                        script_.push_back(Action::monitorEnter(
                            app.monitors_[first + 1]));
                    }
                    script_.push_back(Action::compute(
                        1 + rng.below(4 * units::US)));
                    if (two) {
                        script_.push_back(Action::monitorExit(
                            app.monitors_[first + 1]));
                    }
                    script_.push_back(
                        Action::monitorExit(app.monitors_[first]));
                    break;
                  }
                  case 3: // channel round-trip (bounded: permits return)
                    script_.push_back(
                        Action::channelAcquire(app.channel_));
                    script_.push_back(Action::compute(
                        1 + rng.below(2 * units::US)));
                    script_.push_back(Action::channelPost(app.channel_));
                    break;
                  default: // pinned data
                    script_.push_back(Action::allocatePinned(
                        64 + rng.below(1024)));
                    break;
                }
                script_.push_back(Action::taskDone());
            }
            script_.push_back(Action::end());
        }

        jvm::Action
        next() override
        {
            return script_[pos_ < script_.size() ? pos_++
                                                 : script_.size() - 1];
        }

      private:
        std::vector<jvm::Action> script_;
        std::size_t pos_ = 0;
    };

    std::uint64_t seed_;
    std::uint32_t n_monitors_;
    std::uint32_t tasks_;
    std::vector<jvm::MonitorId> monitors_;
    jvm::ChannelId channel_ = 0;
};

} // namespace jscale::check

#endif // JSCALE_CHECK_RANDOM_APP_HH
