#include "check/golden.hh"

#include <cmath>
#include <fstream>
#include <sstream>

namespace jscale::check {

std::string
GoldenRun::label() const
{
    return app + "@" + std::to_string(threads);
}

std::string
GoldenFile::configValue(const std::string &key) const
{
    for (const auto &[k, v] : config) {
        if (k == key)
            return v;
    }
    return "";
}

std::string
FieldDiff::format() const
{
    std::ostringstream os;
    os.precision(17);
    const std::string where =
        (run.empty() ? std::string() : run + " ") + field;
    if (kind == "missing") {
        os << where << ": recorded " << expected
           << " but absent from the fresh run";
    } else if (kind == "extra") {
        os << where << ": " << actual
           << " in the fresh run but not recorded";
    } else {
        os << where << ": recorded " << expected << " != fresh " << actual;
    }
    return os.str();
}

void
writeGolden(std::ostream &os, const GoldenFile &file)
{
    os << "jscale-golden v1\n";
    os.precision(17);
    for (const auto &[k, v] : file.config)
        os << "config " << k << "=" << v << "\n";
    for (const GoldenRun &r : file.runs) {
        os << "run " << r.app << " " << r.threads << "\n";
        for (const stats::StatValue &s : r.stats.values()) {
            os << "stat " << s.name << " " << s.value;
            if (!s.unit.empty())
                os << " " << s.unit;
            os << "\n";
        }
        os << "end\n";
    }
}

bool
readGolden(std::istream &is, GoldenFile &out, std::string &err)
{
    GoldenFile file;
    std::string line;
    if (!std::getline(is, line) || line != "jscale-golden v1") {
        err = "not a jscale-golden v1 file";
        return false;
    }
    GoldenRun *open = nullptr;
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string verb;
        ls >> verb;
        if (verb == "config") {
            std::string kv;
            std::getline(ls, kv);
            const auto start = kv.find_first_not_of(' ');
            const auto eq = kv.find('=');
            if (start == std::string::npos || eq == std::string::npos ||
                eq <= start) {
                err = "line " + std::to_string(lineno) +
                      ": malformed config entry";
                return false;
            }
            file.config.emplace_back(kv.substr(start, eq - start),
                                     kv.substr(eq + 1));
        } else if (verb == "run") {
            if (open != nullptr) {
                err = "line " + std::to_string(lineno) +
                      ": run opened before previous run ended";
                return false;
            }
            GoldenRun r;
            if (!(ls >> r.app >> r.threads)) {
                err = "line " + std::to_string(lineno) +
                      ": malformed run header";
                return false;
            }
            file.runs.push_back(std::move(r));
            open = &file.runs.back();
        } else if (verb == "stat") {
            std::string name, unit;
            double value = 0.0;
            if (open == nullptr || !(ls >> name >> value)) {
                err = "line " + std::to_string(lineno) +
                      ": malformed stat entry";
                return false;
            }
            ls >> unit; // optional
            open->stats.add(name, value, unit);
        } else if (verb == "end") {
            if (open == nullptr) {
                err = "line " + std::to_string(lineno) +
                      ": end without an open run";
                return false;
            }
            open = nullptr;
        } else {
            err = "line " + std::to_string(lineno) + ": unknown verb '" +
                  verb + "'";
            return false;
        }
    }
    if (open != nullptr) {
        err = "file truncated inside run " + open->label();
        return false;
    }
    if (file.runs.empty()) {
        err = "golden file records no runs";
        return false;
    }
    out = std::move(file);
    return true;
}

bool
readGoldenFile(const std::string &path, GoldenFile &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open '" + path + "'";
        return false;
    }
    return readGolden(in, out, err);
}

std::vector<FieldDiff>
diffSnapshots(const std::string &run, const stats::StatSnapshot &expected,
              const stats::StatSnapshot &actual)
{
    std::vector<FieldDiff> diffs;
    for (const stats::StatValue &s : expected.values()) {
        FieldDiff d;
        d.run = run;
        d.field = s.name;
        d.expected = s.value;
        if (!actual.has(s.name)) {
            d.kind = "missing";
            diffs.push_back(std::move(d));
            continue;
        }
        d.actual = actual.get(s.name);
        // Exact comparison: the simulator is deterministic and values
        // round-trip at full precision. NaN == NaN counts as equal.
        const bool both_nan = std::isnan(d.expected) && std::isnan(d.actual);
        if (!both_nan && d.expected != d.actual) {
            d.kind = "value";
            diffs.push_back(std::move(d));
        }
    }
    for (const stats::StatValue &s : actual.values()) {
        if (expected.has(s.name))
            continue;
        FieldDiff d;
        d.run = run;
        d.field = s.name;
        d.kind = "extra";
        d.actual = s.value;
        diffs.push_back(std::move(d));
    }
    return diffs;
}

std::vector<FieldDiff>
diffGolden(const GoldenFile &expected, const std::vector<GoldenRun> &actual)
{
    std::vector<FieldDiff> diffs;
    const auto find = [&actual](const GoldenRun &want) -> const GoldenRun * {
        for (const GoldenRun &have : actual) {
            if (have.app == want.app && have.threads == want.threads)
                return &have;
        }
        return nullptr;
    };
    for (const GoldenRun &want : expected.runs) {
        const GoldenRun *have = find(want);
        if (have == nullptr) {
            FieldDiff d;
            d.field = want.label();
            d.kind = "missing";
            diffs.push_back(std::move(d));
            continue;
        }
        auto run_diffs = diffSnapshots(want.label(), want.stats,
                                       have->stats);
        diffs.insert(diffs.end(), run_diffs.begin(), run_diffs.end());
    }
    for (const GoldenRun &have : actual) {
        bool recorded = false;
        for (const GoldenRun &want : expected.runs)
            recorded |= want.app == have.app && want.threads == have.threads;
        if (!recorded) {
            FieldDiff d;
            d.field = have.label();
            d.kind = "extra";
            diffs.push_back(std::move(d));
        }
    }
    return diffs;
}

} // namespace jscale::check
