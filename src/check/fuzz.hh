/**
 * @file
 * Deterministic fuzz driver: seeded random workloads x fault schedules
 * x governor configurations, executed with the full oracle suite armed.
 *
 * Every case is derived from a single integer seed, so a campaign is a
 * seed list and a failure is a one-line reproducer. When a case fails
 * (any oracle violation, or the run aborting), the driver greedily
 * shrinks it — halving task counts, reducing threads, dropping fault
 * events, disabling the governor — re-running after each candidate
 * mutation until no smaller failing case is found within the attempt
 * budget, and writes the minimal case as a replayable artifact.
 *
 * A sabotage mode perturbs the event stream the oracles observe
 * (duplicate allocs, phantom deaths, double releases, illegal monitor
 * handoffs) to prove the oracles actually catch seeded bugs
 * end-to-end; it is the fuzz harness's own test fixture.
 */

#ifndef JSCALE_CHECK_FUZZ_HH
#define JSCALE_CHECK_FUZZ_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/units.hh"
#include "check/oracle.hh"
#include "jvm/locks/policy.hh"

namespace jscale::check {

/**
 * Event-stream perturbations used to prove the oracles detect seeded
 * bugs. Each fires exactly once, on the first matching event, so a
 * sabotaged case fails deterministically and stays failing while the
 * shrinker minimizes it.
 */
enum class Sabotage : std::uint8_t
{
    None,
    /** Re-deliver the first allocation (object born twice). */
    DupAlloc,
    /** Deliver a death for the first allocation while it is live. */
    PhantomDeath,
    /** Re-deliver the first monitor release (release by non-holder). */
    DoubleRelease,
    /** Fabricate a contended grant to the releasing thread at the
     *  first release with a queued waiter — a grantee that never
     *  queued, illegal under every admission policy. */
    IllegalHandoff,
};

/** Short stable name ("none", "dup-alloc", ...). */
const char *sabotageName(Sabotage s);

/** Parse a sabotage name; returns false on an unknown name. */
bool parseSabotage(const std::string &name, Sabotage &out);

/** One fuzz case: everything needed to reproduce a run exactly. */
struct FuzzCase
{
    std::uint64_t seed = 1;
    std::uint32_t threads = 4;
    std::uint32_t tasks = 60;
    std::uint32_t monitors = 3;
    Bytes heap = 4 * units::MiB;
    Bytes tlab = 0;
    /** Fault-schedule intensity dial in [0, 1]; 0 = no faults. */
    double fault_intensity = 0.0;
    /** Run under a hill-climbing concurrency governor. */
    bool governed = false;
    /** Monitor admission policy the case runs under (with nonzero
     *  handoff/coherence costs so the penalty paths are exercised). */
    jvm::LockPolicy policy = jvm::LockPolicy::Fifo;
    Sabotage sabotage = Sabotage::None;

    /** One-line key=value form, parseable by parse(). */
    std::string describe() const;

    /** Parse a describe() line. Returns false (with @p err) on junk. */
    static bool parse(const std::string &line, FuzzCase &out,
                      std::string &err);
};

/** Derive a case from a campaign seed (deterministic). */
FuzzCase caseForSeed(std::uint64_t seed);

/** Result of executing one case with oracles armed. */
struct FuzzOutcome
{
    FuzzCase fuzz_case;
    /** The run itself aborted (watchdog, deadlock, runaway). */
    bool run_failed = false;
    std::string run_error;
    std::vector<InvariantViolation> violations;
    /** Invariant evaluations performed. */
    std::uint64_t checks = 0;
    /** Simulated time the case covered. */
    Ticks sim_time = 0;

    bool clean() const { return !run_failed && violations.empty(); }

    /** First violation (or run error) as a one-line diagnosis. */
    std::string diagnosis() const;
};

/** Execute one case with the full oracle suite armed. */
FuzzOutcome runFuzzCase(const FuzzCase &c);

/**
 * Greedily shrink a failing case: repeatedly try halving tasks,
 * halving threads, dropping the fault schedule, disabling the
 * governor, reducing monitors, disabling TLABs and resetting the
 * admission policy to fifo, restarting from the first rule after
 * every successful reduction. Each candidate costs one run; at most
 * @p budget runs are spent.
 *
 * @return the smallest still-failing case found (possibly @p c itself).
 */
FuzzCase shrinkCase(const FuzzCase &c, std::uint32_t budget,
                    std::uint32_t *runs_used = nullptr);

/** Campaign summary. */
struct FuzzReport
{
    std::uint64_t cases_run = 0;
    std::uint64_t total_checks = 0;
    /** Outcomes of failing cases, pre-shrink (campaign order). */
    std::vector<FuzzOutcome> failures;
    /** Shrunk reproducer of the first failure. */
    FuzzCase shrunk;
    std::uint32_t shrink_runs = 0;

    bool failed() const { return !failures.empty(); }
};

/**
 * Sharded / resumable campaign IO. With a cache_dir, every finished
 * case is persisted as an atomic "jscale-fuzz-out v1" record bound to
 * @p fingerprint, and a later process — a retried worker or the merge
 * step — salvages cached outcomes instead of re-running them. With
 * shard_count > 1 only the seeds hashing to shard_index execute here
 * (position-independent, base/chaos.hh shardOfKey); the rest are
 * skipped. A merge runs with shard_count == 1 and the shared cache:
 * every seed is salvaged, or re-run locally when its shard died for
 * good — either way the report covers the full campaign.
 */
struct FuzzCampaignIo
{
    std::string cache_dir; ///< empty = no persistence
    std::string fingerprint;
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 1;
};

/**
 * Run one case per seed, shrink the first failure, and (when @p out is
 * non-null) narrate progress. Shrinking always re-runs locally — cases
 * are deterministic, so a merge shrinks a salvaged failure to the same
 * reproducer the failing worker would have found.
 */
FuzzReport runFuzzCampaign(const std::vector<std::uint64_t> &seeds,
                           Sabotage sabotage, std::uint32_t shrink_budget,
                           std::ostream *out,
                           const FuzzCampaignIo &io = {});

/**
 * Write a replay artifact: the "jscale-fuzz-repro v1" header, the
 * shrunk case line, provenance and the diagnosed violations.
 */
void writeReproducer(std::ostream &os, const FuzzReport &report);

/**
 * Read a replay artifact written by writeReproducer(). Returns false
 * (with @p err) when the file is missing or malformed.
 */
bool readReproducer(const std::string &path, FuzzCase &out,
                    std::string &err);

} // namespace jscale::check

#endif // JSCALE_CHECK_FUZZ_HH
