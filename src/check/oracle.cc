#include "check/oracle.hh"

#include <sstream>

#include "base/logging.hh"
#include "jvm/runtime/vm.hh"
#include "os/policy.hh"
#include "os/scheduler.hh"

namespace jscale::check {

std::string
InvariantViolation::format() const
{
    std::ostringstream os;
    os << oracle << ": " << message << " (at " << formatTicks(at) << ")";
    return os.str();
}

OracleSuite::OracleSuite(OracleConfig config) : config_(config)
{
    live_.reserve(4096);
}

OracleSuite::~OracleSuite()
{
    detach();
}

void
OracleSuite::attach(jvm::JavaVm &vm)
{
    jscale_assert(!attached_, "OracleSuite attached twice");
    vm_ = &vm;
    sched_ = &vm.scheduler();
    group_ = vm.config().tenant;
    locks_ = vm.config().locks;

    // Self-configure gates the run's configuration makes unsound:
    // TLAB reservation reclaims more than the dead-object bytes, and
    // phase-gated or stealing-free scheduling legitimately leaves
    // runnable threads waiting arbitrarily long.
    reclaim_accounting_ = vm.config().heap.tlab_size == 0;
    const os::Scheduler &s = vm.scheduler();
    if (std::string(s.policy().policyName()) != "default" ||
        !s.config().stealing) {
        config_.starvation = false;
    }

    vm.listeners().add(this);
    vm.scheduler().listeners().add(this);

    // The latency-conservation oracle rides its own attribution
    // profiler: the sink reconciles each task's bucket sum against the
    // task's wall time, both in integer simulation ticks.
    if (config_.latency) {
        profiler_.setTaskSink([this](const jvm::SlowTaskRecord &rec) {
            ++checks_;
            Ticks sum = 0;
            for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
                sum += rec.buckets[i];
            if (sum != rec.wall()) {
                std::ostringstream os;
                os << "task " << rec.task << " (thread " << rec.thread
                   << "): buckets sum to " << formatTicks(sum)
                   << " but wall time is " << formatTicks(rec.wall());
                report("latency-conservation", os.str(), rec.end);
            }
            // Open-loop service-window alignment: when the thread is
            // serving a dispatched request, the window just closed must
            // open exactly at the dispatch stamp — that alignment is
            // what makes sojourn == queueing + attributed buckets.
            if (config_.traffic) {
                ServingModel &sv = servingModel(rec.thread);
                if (sv.active) {
                    ++checks_;
                    if (rec.start != sv.dispatch) {
                        std::ostringstream os;
                        os << "request " << sv.request << " (thread "
                           << rec.thread << "): service window opens at "
                           << formatTicks(rec.start)
                           << " but the request was dispatched at "
                           << formatTicks(sv.dispatch);
                        report("request-conservation", os.str(),
                               rec.end);
                    }
                    sv.window_seen = true;
                    sv.window_end = rec.end;
                    settleServing(rec.thread, rec.end);
                }
            }
        });
        profiler_.attach(vm);
    }
    attached_ = true;
}

void
OracleSuite::detach()
{
    if (!attached_)
        return;
    profiler_.detach();
    vm_->listeners().remove(this);
    vm_->scheduler().listeners().remove(this);
    attached_ = false;
}

void
OracleSuite::report(const char *oracle, std::string message, Ticks now)
{
    InvariantViolation v;
    v.oracle = oracle;
    v.message = std::move(message);
    v.at = now;
    ++violation_count_;
    if (violations_.size() < config_.max_violations)
        violations_.push_back(v);
    if (config_.throw_on_violation)
        throw OracleError(v);
}

void
OracleSuite::observeTime(Ticks now)
{
    if (!config_.ordering) {
        last_now_ = now;
        return;
    }
    ++checks_;
    if (now < last_now_) {
        std::ostringstream os;
        os << "time ran backwards: event at " << formatTicks(now)
           << " after " << formatTicks(last_now_);
        report("event-ordering", os.str(), now);
    }
    if (now > last_now_)
        last_now_ = now;
}

Ticks
OracleSuite::stoppedTicks(Ticks now) const
{
    return stopped_accum_ + (world_stopped_ ? now - stop_began_ : 0);
}

Ticks
OracleSuite::starvationLimit() const
{
    if (sched_ == nullptr)
        return config_.starvation_grace;
    const Ticks quantum = sched_->config().quantum;
    const std::uint64_t threads = max_thread_id_ + 1;
    const std::uint64_t cores =
        std::max<std::uint64_t>(1, sched_->onlineCores());
    // Round-robin FIFO dispatch bounds a ready wait by roughly one
    // quantum per thread sharing the core; 4x slack absorbs migration
    // overheads, urgent-lock-holder priority and fault-window churn.
    return config_.starvation_grace +
           4 * quantum * (1 + (threads + cores - 1) / cores);
}

void
OracleSuite::checkReadyWait(std::size_t idx, Ticks now, bool at_dispatch)
{
    if (!config_.starvation)
        return;
    ThreadModel &m = threads_[idx];
    ++checks_;
    const Ticks stopped = stoppedTicks(now) - m.stop_credit;
    const Ticks gross = now - m.ready_since;
    const Ticks wait = gross > stopped ? gross - stopped : 0;
    const Ticks limit = starvationLimit();
    if (wait > limit) {
        std::ostringstream os;
        os << "thread " << idx << " runnable for " << formatTicks(wait)
           << " (limit " << formatTicks(limit) << ") "
           << (at_dispatch ? "before being dispatched"
                           : "and still waiting at run end")
           << " — work conservation violated";
        report("sched-conservation", os.str(), now);
    }
}

OracleSuite::MonitorModel &
OracleSuite::monitorModel(jvm::MonitorId id)
{
    if (monitors_.size() <= id)
        monitors_.resize(id + 1);
    return monitors_[id];
}

OracleSuite::ThreadModel &
OracleSuite::threadModel(std::size_t id)
{
    if (threads_.size() <= id)
        threads_.resize(id + 1);
    if (id > max_thread_id_)
        max_thread_id_ = id;
    return threads_[id];
}

OracleSuite::CoreModel &
OracleSuite::coreModel(std::size_t id)
{
    if (cores_.size() <= id)
        cores_.resize(id + 1);
    return cores_[id];
}

OracleSuite::ServingModel &
OracleSuite::servingModel(jvm::MutatorIndex thread)
{
    if (serving_.size() <= thread)
        serving_.resize(thread + 1);
    return serving_[thread];
}

void
OracleSuite::settleServing(jvm::MutatorIndex thread, Ticks now)
{
    ServingModel &sv = serving_[thread];
    if (!sv.active || !sv.window_seen || !sv.completed)
        return;
    ++checks_;
    if (sv.window_end != sv.completion) {
        std::ostringstream os;
        os << "request " << sv.request << " (thread " << thread
           << "): service window closes at "
           << formatTicks(sv.window_end)
           << " but the completion was stamped at "
           << formatTicks(sv.completion);
        report("request-conservation", os.str(), now);
    }
    sv = ServingModel{};
}

// ---------------------------------------------------------------------
// Heap conservation + lifespan monotonicity
// ---------------------------------------------------------------------

void
OracleSuite::onObjectAlloc(const jvm::ObjectRecord &obj, Ticks now)
{
    observeTime(now);
    if (config_.ordering && at_safepoint_) {
        std::ostringstream os;
        os << "object " << obj.id << " allocated by thread " << obj.owner
           << " inside a stop-the-world window";
        report("event-ordering", os.str(), now);
    }
    if (!config_.heap)
        return;
    ++checks_;
    if (!live_.emplace(obj.id, obj.size).second) {
        std::ostringstream os;
        os << "object " << obj.id << " (owner thread " << obj.owner
           << ") allocated twice";
        report("heap-conservation", os.str(), now);
        return;
    }
    model_live_bytes_ += obj.size;
    if (vm_ != nullptr && vm_->heap().liveBytes() != model_live_bytes_) {
        std::ostringstream os;
        os << "live-byte ledger mismatch after alloc of object " << obj.id
           << ": heap reports " << vm_->heap().liveBytes()
           << " B, event ledger " << model_live_bytes_ << " B";
        report("heap-conservation", os.str(), now);
    }
}

void
OracleSuite::onObjectDeath(const jvm::ObjectRecord &obj, Bytes lifespan,
                           Ticks now)
{
    observeTime(now);
    if (config_.heap) {
        ++checks_;
        auto it = live_.find(obj.id);
        if (it == live_.end()) {
            std::ostringstream os;
            os << "death of object " << obj.id << " (owner thread "
               << obj.owner << ") that is not live "
               << "(double death or unobserved birth)";
            report("heap-conservation", os.str(), now);
        } else {
            if (it->second != obj.size) {
                std::ostringstream os;
                os << "object " << obj.id << " died with size "
                   << obj.size << " B but was born with " << it->second
                   << " B";
                report("heap-conservation", os.str(), now);
            }
            model_live_bytes_ -= it->second;
            live_.erase(it);
            pending_dead_bytes_ += obj.size;
            if (vm_ != nullptr &&
                vm_->heap().liveBytes() != model_live_bytes_) {
                std::ostringstream os;
                os << "live-byte ledger mismatch after death of object "
                   << obj.id << ": heap reports "
                   << vm_->heap().liveBytes() << " B, event ledger "
                   << model_live_bytes_ << " B";
                report("heap-conservation", os.str(), now);
            }
        }
    }
    if (config_.lifespan) {
        ++checks_;
        const Bytes clock = obj.birth_global_bytes + lifespan;
        if (death_clock_.size() <= obj.owner)
            death_clock_.resize(obj.owner + 1, 0);
        if (clock < death_clock_[obj.owner]) {
            std::ostringstream os;
            os << "lifespan clock of owner thread " << obj.owner
               << " ran backwards: object " << obj.id << " died at "
               << clock << " allocated-bytes, after a death at "
               << death_clock_[obj.owner];
            report("lifespan-monotonic", os.str(), now);
        } else {
            death_clock_[obj.owner] = clock;
        }
        if (vm_ != nullptr &&
            clock > vm_->heap().globalAllocatedBytes()) {
            std::ostringstream os;
            os << "object " << obj.id << " died at " << clock
               << " allocated-bytes, beyond the global clock "
               << vm_->heap().globalAllocatedBytes();
            report("lifespan-monotonic", os.str(), now);
        }
    }
}

// ---------------------------------------------------------------------
// Monitor mutual exclusion + per-policy legal handoff
// ---------------------------------------------------------------------

void
OracleSuite::onMonitorAcquire(jvm::MutatorIndex thread,
                              jvm::MonitorId monitor, bool contended,
                              Ticks now)
{
    observeTime(now);
    if (!config_.monitors)
        return;
    MonitorModel &m = monitorModel(monitor);
    ++checks_;
    if (m.holder >= 0) {
        std::ostringstream os;
        os << "monitor " << monitor << " granted to thread " << thread
           << " while held by thread " << m.holder
           << " — mutual exclusion violated";
        report("monitor-exclusion", os.str(), now);
    }
    if (contended) {
        ++m.grants;
        checkContendedGrant(m, thread, monitor, now);
        checkRotationBounds(m, monitor, now);
    } else if (!m.queue.empty() || !m.passive.empty()) {
        std::ostringstream os;
        os << "thread " << thread << " barged monitor " << monitor
           << " past " << (m.queue.size() + m.passive.size())
           << " queued waiter(s) via an uncontended grant";
        report("monitor-fifo", os.str(), now);
    }
    m.holder = thread;
}

void
OracleSuite::checkContendedGrant(MonitorModel &m,
                                 jvm::MutatorIndex thread,
                                 jvm::MonitorId monitor, Ticks now)
{
    // Under every policy a contended grant must come from the active
    // queue; the policies differ only in WHICH active waiter is legal.
    if (m.queue.empty()) {
        std::ostringstream os;
        os << "contended grant of monitor " << monitor << " to thread "
           << thread << " with an empty acquire queue ("
           << jvm::lockPolicyName(locks_.policy) << " policy)";
        report("monitor-fifo", os.str(), now);
        return;
    }
    switch (locks_.policy) {
    case jvm::LockPolicy::Fifo:
        if (m.queue.front() != thread) {
            std::ostringstream os;
            os << "monitor " << monitor << " handed to thread " << thread
               << " ahead of queued thread " << m.queue.front()
               << " — FIFO handoff violated";
            report("monitor-fifo", os.str(), now);
        } else {
            m.queue.pop_front();
        }
        return;
    case jvm::LockPolicy::Barging: {
        // A barging grant is legal anywhere within the first
        // min(window, depth) queue slots, and the policy must grant the
        // head at least once per `window` consecutive handoffs.
        const std::size_t window = std::max<std::uint32_t>(
            1, locks_.barge_window);
        const std::size_t reach = std::min(window, m.queue.size());
        std::size_t pos = reach;
        for (std::size_t i = 0; i < reach; ++i) {
            if (m.queue[i] == thread) {
                pos = i;
                break;
            }
        }
        if (pos == reach) {
            std::ostringstream os;
            os << "monitor " << monitor << " handed to thread " << thread
               << " outside the barging window (first " << reach
               << " of " << m.queue.size() << " waiters)";
            report("monitor-fifo", os.str(), now);
            return;
        }
        if (pos == 0) {
            m.head_miss_streak = 0;
        } else if (++m.head_miss_streak >= window) {
            std::ostringstream os;
            os << "monitor " << monitor << " bypassed its queue head "
               << m.head_miss_streak << " consecutive handoffs — "
               << "barging window " << window << " starvation bound "
               << "violated";
            report("monitor-fifo", os.str(), now);
        }
        m.queue.erase(m.queue.begin() +
                      static_cast<std::ptrdiff_t>(pos));
        return;
    }
    case jvm::LockPolicy::Malthusian:
    case jvm::LockPolicy::Lcr:
        // Culling policies grant strictly from the head of the active
        // set; passivated waiters may only re-enter via an announced
        // reactivation (handled in onMonitorWaiterReactivated).
        if (m.queue.front() != thread) {
            std::ostringstream os;
            os << "monitor " << monitor << " handed to thread " << thread
               << " ahead of active-set head " << m.queue.front()
               << " — " << jvm::lockPolicyName(locks_.policy)
               << " handoff violated";
            report("monitor-fifo", os.str(), now);
        } else {
            m.queue.pop_front();
        }
        return;
    }
}

void
OracleSuite::checkRotationBounds(MonitorModel &m, jvm::MonitorId monitor,
                                 Ticks now)
{
    for (const PassiveEntry &e : m.passive) {
        if (e.bound > 0 && m.grants - e.passivated_at > e.bound) {
            std::ostringstream os;
            os << "passivated thread " << e.thread << " on monitor "
               << monitor << " has waited "
               << (m.grants - e.passivated_at)
               << " handoffs without reactivation (rotation bound "
               << e.bound << ") — starvation bound violated";
            report("monitor-fifo", os.str(), now);
            return;
        }
    }
}

void
OracleSuite::onMonitorWaiterPassivated(jvm::MutatorIndex thread,
                                       jvm::MonitorId monitor, Ticks now)
{
    observeTime(now);
    if (!config_.monitors)
        return;
    MonitorModel &m = monitorModel(monitor);
    ++checks_;
    if (locks_.policy != jvm::LockPolicy::Malthusian &&
        locks_.policy != jvm::LockPolicy::Lcr) {
        std::ostringstream os;
        os << "thread " << thread << " passivated on monitor " << monitor
           << " under non-culling policy "
           << jvm::lockPolicyName(locks_.policy);
        report("monitor-fifo", os.str(), now);
        return;
    }
    // The culling policies always demote from the TAIL of the active
    // set (most recently enqueued first).
    if (m.queue.empty() || m.queue.back() != thread) {
        std::ostringstream os;
        os << "thread " << thread << " passivated on monitor " << monitor
           << " but is not the active-set tail";
        report("monitor-fifo", os.str(), now);
        return;
    }
    m.queue.pop_back();
    // A rotation every R handoffs reactivates the passive head, so a
    // waiter entering at 1-based position p is reactivated within
    // p * R grants of the rotation clock; (p + 1) * R from now is a
    // safe upper bound regardless of clock phase.
    const std::uint64_t bound =
        locks_.rotation_period > 0
            ? (static_cast<std::uint64_t>(m.passive.size()) + 2) *
                  locks_.rotation_period
            : 0;
    m.passive.push_back(PassiveEntry{thread, m.grants, bound});
}

void
OracleSuite::onMonitorWaiterReactivated(jvm::MutatorIndex thread,
                                        jvm::MonitorId monitor,
                                        Ticks now)
{
    observeTime(now);
    if (!config_.monitors)
        return;
    MonitorModel &m = monitorModel(monitor);
    ++checks_;
    if (m.passive.empty() || m.passive.front().thread != thread) {
        std::ostringstream os;
        os << "thread " << thread << " reactivated on monitor "
           << monitor << " but is not the passive-list head";
        report("monitor-fifo", os.str(), now);
        return;
    }
    m.passive.pop_front();
    // Reactivation promotes to the FRONT of the active set; the
    // triggering handoff grants this waiter immediately.
    m.queue.push_front(thread);
}

void
OracleSuite::onMonitorContended(jvm::MutatorIndex thread,
                                jvm::MonitorId monitor, Ticks now)
{
    observeTime(now);
    if (!config_.monitors)
        return;
    monitorModel(monitor).queue.push_back(thread);
}

void
OracleSuite::onMonitorRelease(jvm::MutatorIndex thread,
                              jvm::MonitorId monitor, Ticks now)
{
    observeTime(now);
    if (!config_.monitors)
        return;
    MonitorModel &m = monitorModel(monitor);
    ++checks_;
    if (m.holder != static_cast<std::int64_t>(thread)) {
        std::ostringstream os;
        os << "monitor " << monitor << " released by thread " << thread
           << " but held by "
           << (m.holder < 0 ? std::string("nobody")
                            : "thread " + std::to_string(m.holder));
        report("monitor-exclusion", os.str(), now);
    }
    m.holder = -1;
}

void
OracleSuite::onMonitorWaiterCancelled(jvm::MutatorIndex thread,
                                      jvm::MonitorId monitor, Ticks now)
{
    observeTime(now);
    if (!config_.monitors)
        return;
    MonitorModel &m = monitorModel(monitor);
    ++checks_;
    for (auto it = m.queue.begin(); it != m.queue.end(); ++it) {
        if (*it == thread) {
            m.queue.erase(it);
            return;
        }
    }
    for (auto it = m.passive.begin(); it != m.passive.end(); ++it) {
        if (it->thread == thread) {
            m.passive.erase(it);
            return;
        }
    }
    std::ostringstream os;
    os << "cancelled waiter thread " << thread
       << " was not queued on monitor " << monitor;
    report("monitor-fifo", os.str(), now);
}

// ---------------------------------------------------------------------
// Safepoint / GC sequencing
// ---------------------------------------------------------------------

void
OracleSuite::onSafepointBegin(std::uint64_t sequence, Ticks now)
{
    observeTime(now);
    if (!config_.ordering)
        return;
    ++checks_;
    if (safepoint_pending_) {
        std::ostringstream os;
        os << "safepoint #" << sequence
           << " requested while safepoint #" << safepoint_seq_
           << " is still pending";
        report("event-ordering", os.str(), now);
    }
    safepoint_pending_ = true;
    safepoint_seq_ = sequence;
    safepoint_begin_at_ = now;
}

void
OracleSuite::onSafepointReached(std::uint64_t sequence, Ticks ttsp,
                                Ticks now)
{
    observeTime(now);
    if (config_.ordering) {
        ++checks_;
        if (safepoint_pending_) {
            if (sequence != safepoint_seq_) {
                std::ostringstream os;
                os << "safepoint #" << sequence
                   << " reached but #" << safepoint_seq_
                   << " was requested";
                report("event-ordering", os.str(), now);
            }
            if (ttsp != now - safepoint_begin_at_) {
                std::ostringstream os;
                os << "safepoint #" << sequence << " reports ttsp "
                   << formatTicks(ttsp) << " but "
                   << formatTicks(now - safepoint_begin_at_)
                   << " elapsed since the request";
                report("event-ordering", os.str(), now);
            }
        } else if (!world_stopped_) {
            // Without a pending request, a reached event is only legal
            // for a collection chained inside a still-stopped world
            // (remark -> pending minor/full at one safepoint).
            std::ostringstream os;
            os << "safepoint #" << sequence
               << " reached without a request and outside a "
               << "stop-the-world window";
            report("event-ordering", os.str(), now);
        }
    }
    safepoint_pending_ = false;
    at_safepoint_ = true;
}

void
OracleSuite::onGcStart(jvm::GcKind kind, std::uint64_t sequence, Ticks now)
{
    (void)kind;
    observeTime(now);
    if (config_.ordering) {
        ++checks_;
        if (in_gc_) {
            std::ostringstream os;
            os << "GC #" << sequence << " started while GC #" << gc_seq_
               << " is still in progress";
            report("event-ordering", os.str(), now);
        }
    }
    in_gc_ = true;
    gc_seq_ = sequence;
    gc_started_at_ = now;
    phase_cursor_ = now;
    phases_seen_ = 0;
}

void
OracleSuite::onGcPhase(std::uint64_t sequence, jvm::GcKind kind,
                       const char *phase, Ticks begin, Ticks end)
{
    (void)kind;
    if (!config_.ordering)
        return;
    ++checks_;
    if (!in_gc_ || sequence != gc_seq_) {
        std::ostringstream os;
        os << "GC phase '" << phase << "' of collection #" << sequence
           << " delivered outside that collection";
        report("event-ordering", os.str(), end);
        return;
    }
    if (begin != phase_cursor_ || end < begin) {
        std::ostringstream os;
        os << "GC #" << sequence << " phase '" << phase << "' spans ["
           << formatTicks(begin) << ", " << formatTicks(end)
           << ") but the previous phase ended at "
           << formatTicks(phase_cursor_)
           << " — phases must partition the pause";
        report("event-ordering", os.str(), end);
    }
    phase_cursor_ = end;
    ++phases_seen_;
}

void
OracleSuite::onGcEnd(const jvm::GcEvent &event, Ticks now)
{
    observeTime(now);
    if (config_.ordering) {
        ++checks_;
        if (!in_gc_) {
            std::ostringstream os;
            os << "GC #" << event.sequence << " ended without starting";
            report("event-ordering", os.str(), now);
        } else {
            if (event.safepoint_at != gc_started_at_) {
                std::ostringstream os;
                os << "GC #" << event.sequence << " reports safepoint at "
                   << formatTicks(event.safepoint_at) << " but started at "
                   << formatTicks(gc_started_at_);
                report("event-ordering", os.str(), now);
            }
            if (phases_seen_ > 0 && phase_cursor_ != now) {
                std::ostringstream os;
                os << "GC #" << event.sequence << " phases end at "
                   << formatTicks(phase_cursor_)
                   << " but the collection finished at "
                   << formatTicks(now)
                   << " — phases must partition [safepoint, finish]";
                report("event-ordering", os.str(), now);
            }
        }
    }
    if (config_.heap && reclaim_accounting_) {
        ++checks_;
        if (event.reclaimed_bytes > pending_dead_bytes_) {
            std::ostringstream os;
            os << "GC #" << event.sequence << " reclaimed "
               << event.reclaimed_bytes << " B but only "
               << pending_dead_bytes_
               << " B of objects died since the last collection"
               << " — byte conservation violated";
            report("heap-conservation", os.str(), now);
            pending_dead_bytes_ = 0;
        } else {
            pending_dead_bytes_ -= event.reclaimed_bytes;
        }
    }
    if (config_.heap && config_.deep_heap_checks && vm_ != nullptr) {
        ++checks_;
        vm_->heap().checkInvariants();
    }
    in_gc_ = false;
}

// ---------------------------------------------------------------------
// Scheduler work conservation
// ---------------------------------------------------------------------

namespace {

bool
legalTransition(os::ThreadState from, os::ThreadState to)
{
    using S = os::ThreadState;
    switch (from) {
      case S::New:
        return to == S::Ready;
      case S::Ready:
        return to == S::Running || to == S::Sleeping;
      case S::Running:
        return to == S::Ready || to == S::Blocked || to == S::Sleeping ||
               to == S::Finished;
      case S::Blocked:
        return to == S::Ready;
      case S::Sleeping:
        return to == S::Ready;
      case S::Finished:
        return false;
    }
    return false;
}

} // namespace

void
OracleSuite::onDispatch(const os::OsThread &t, machine::CoreId core,
                        Ticks overhead, bool stolen, Ticks now)
{
    (void)overhead;
    (void)stolen;
    observeTime(now);
    if (!config_.scheduler)
        return;
    ++checks_;
    if (groupStopped(t.group())) {
        std::ostringstream os;
        os << "thread " << t.id() << " ('" << t.name()
           << "') of group " << t.group() << " dispatched on core "
           << core << " while that group's world is stopped";
        report("sched-conservation", os.str(), now);
    }
    CoreModel &c = coreModel(core);
    if (c.running != 0) {
        std::ostringstream os;
        os << "core " << core << " double-booked: thread " << t.id()
           << " dispatched while thread " << (c.running - 1)
           << " is still running";
        report("sched-conservation", os.str(), now);
    }
    c.running = static_cast<std::uint64_t>(t.id()) + 1;
    c.dispatched_at = now;
    c.mutator = t.kind() == os::ThreadKind::Mutator;
}

void
OracleSuite::onBurstEnd(const os::OsThread &t, machine::CoreId core,
                        Ticks started, bool preempted, Ticks now)
{
    (void)preempted;
    observeTime(now);
    if (!config_.scheduler)
        return;
    ++checks_;
    CoreModel &c = coreModel(core);
    if (c.running != static_cast<std::uint64_t>(t.id()) + 1) {
        std::ostringstream os;
        os << "burst of thread " << t.id() << " ended on core " << core
           << " which is "
           << (c.running == 0
                   ? std::string("idle")
                   : "running thread " + std::to_string(c.running - 1));
        report("sched-conservation", os.str(), now);
    } else if (started != c.dispatched_at || now < started) {
        std::ostringstream os;
        os << "burst of thread " << t.id() << " on core " << core
           << " reports start " << formatTicks(started)
           << " but was dispatched at " << formatTicks(c.dispatched_at);
        report("sched-conservation", os.str(), now);
    }
    c.running = 0;
}

void
OracleSuite::onThreadState(const os::OsThread &t, os::ThreadState prev,
                           Ticks now)
{
    observeTime(now);
    if (!config_.scheduler)
        return;
    // Foreign-group threads still obey the state machine and core
    // bookkeeping, but their ready waits span neighbours' pauses the
    // stop-credit model cannot see.
    if (t.group() != group_)
        config_.starvation = false;
    ThreadModel &m = threadModel(t.id());
    const os::ThreadState next = t.state();
    ++checks_;
    if (m.seen && m.state != prev) {
        std::ostringstream os;
        os << "thread " << t.id() << " ('" << t.name()
           << "') left state " << os::threadStateName(prev)
           << " but was last seen in " << os::threadStateName(m.state);
        report("sched-conservation", os.str(), now);
    }
    if (!legalTransition(prev, next)) {
        std::ostringstream os;
        os << "illegal state transition of thread " << t.id() << " ('"
           << t.name() << "'): " << os::threadStateName(prev) << " -> "
           << os::threadStateName(next);
        report("sched-conservation", os.str(), now);
    }
    if (prev == os::ThreadState::Ready && m.seen)
        checkReadyWait(t.id(), now, true);
    if (next == os::ThreadState::Ready) {
        m.ready_since = now;
        m.stop_credit = stoppedTicks(now);
    }
    m.state = next;
    m.seen = true;
}

void
OracleSuite::onWorldStopRequested(std::uint32_t group, Ticks now)
{
    observeTime(now);
    if (group >= group_stopped_.size())
        group_stopped_.resize(group + 1, false);
    if (config_.ordering) {
        ++checks_;
        if (group_stopped_[group]) {
            std::ostringstream os;
            os << "nested stop-the-world request for group " << group;
            report("event-ordering", os.str(), now);
        }
    }
    group_stopped_[group] = true;
    if (group == group_) {
        world_stopped_ = true;
        stop_began_ = now;
    } else {
        // A co-hosted tenant's pauses interleave with ours; the single
        // stop-credit model under the starvation bound is unsound.
        config_.starvation = false;
    }
}

void
OracleSuite::onWorldResumed(std::uint32_t group, Ticks now)
{
    observeTime(now);
    if (config_.ordering) {
        ++checks_;
        if (!groupStopped(group)) {
            std::ostringstream os;
            os << "group " << group
               << " resumed without a stop request";
            report("event-ordering", os.str(), now);
        }
    }
    if (group < group_stopped_.size())
        group_stopped_[group] = false;
    if (group != group_)
        return;
    if (world_stopped_)
        stopped_accum_ += now - stop_began_;
    world_stopped_ = false;
    at_safepoint_ = false;
}

// ---------------------------------------------------------------------
// Request conservation (open-loop traffic)
// ---------------------------------------------------------------------

void
OracleSuite::onRequestArrival(std::uint32_t tenant, std::uint64_t request,
                              Ticks now)
{
    (void)tenant; // probes arrive on our own VM's chain only
    observeTime(now);
    if (!config_.traffic)
        return;
    ++checks_;
    RequestModel r;
    r.arrival = now;
    if (!requests_.emplace(request, r).second) {
        std::ostringstream os;
        os << "request " << request << " admitted twice";
        report("request-conservation", os.str(), now);
        return;
    }
    ++requests_admitted_;
}

void
OracleSuite::onRequestShed(std::uint32_t tenant, std::uint64_t request,
                           Ticks now)
{
    (void)tenant;
    observeTime(now);
    if (!config_.traffic)
        return;
    ++checks_;
    auto it = requests_.find(request);
    if (it == requests_.end()) {
        // Drop-newest rejects at the door, before admission: track the
        // id so a later dispatch of a shed request is still caught.
        RequestModel r;
        r.arrival = now;
        r.shed = true;
        requests_.emplace(request, r);
        ++requests_shed_;
        return;
    }
    RequestModel &r = it->second;
    if (r.shed || r.dispatched || r.completed) {
        std::ostringstream os;
        os << "request " << request << " shed after it was already "
           << (r.shed ? "shed" : r.completed ? "completed" : "dispatched");
        report("request-conservation", os.str(), now);
        return;
    }
    r.shed = true;
    ++requests_shed_;
}

void
OracleSuite::onRequestDispatched(std::uint32_t tenant,
                                 std::uint64_t request,
                                 jvm::MutatorIndex thread, Ticks now)
{
    (void)tenant;
    observeTime(now);
    if (!config_.traffic)
        return;
    ++checks_;
    auto it = requests_.find(request);
    if (it == requests_.end()) {
        std::ostringstream os;
        os << "request " << request
           << " dispatched without being admitted";
        report("request-conservation", os.str(), now);
        return;
    }
    RequestModel &r = it->second;
    if (r.shed) {
        std::ostringstream os;
        os << "shed request " << request << " dispatched to thread "
           << thread;
        report("request-conservation", os.str(), now);
    }
    if (r.dispatched) {
        std::ostringstream os;
        os << "request " << request << " dispatched twice";
        report("request-conservation", os.str(), now);
    }
    if (now < r.arrival) {
        std::ostringstream os;
        os << "request " << request << " dispatched at "
           << formatTicks(now) << ", before its arrival at "
           << formatTicks(r.arrival);
        report("request-conservation", os.str(), now);
    }
    r.dispatched = true;
    r.dispatch = now;
    ServingModel &sv = servingModel(thread);
    if (sv.active) {
        std::ostringstream os;
        os << "thread " << thread << " dispatched request " << request
           << " while still serving request " << sv.request;
        report("request-conservation", os.str(), now);
    }
    sv = ServingModel{};
    sv.active = true;
    sv.request = request;
    sv.dispatch = now;
}

void
OracleSuite::onRequestCompleted(std::uint32_t tenant,
                                std::uint64_t request,
                                jvm::MutatorIndex thread, Ticks now)
{
    (void)tenant;
    observeTime(now);
    if (!config_.traffic)
        return;
    ++checks_;
    auto it = requests_.find(request);
    if (it == requests_.end()) {
        std::ostringstream os;
        os << "request " << request
           << " completed without being admitted";
        report("request-conservation", os.str(), now);
        return;
    }
    RequestModel &r = it->second;
    if (!r.dispatched || r.shed || r.completed) {
        std::ostringstream os;
        os << "request " << request << " completed but was "
           << (r.completed ? "already completed"
                           : r.shed ? "shed" : "never dispatched");
        report("request-conservation", os.str(), now);
        return;
    }
    if (now < r.dispatch) {
        std::ostringstream os;
        os << "request " << request << " completed at "
           << formatTicks(now) << ", before its dispatch at "
           << formatTicks(r.dispatch);
        report("request-conservation", os.str(), now);
    }
    r.completed = true;
    ++requests_completed_;
    ServingModel &sv = servingModel(thread);
    if (!sv.active || sv.request != request) {
        std::ostringstream os;
        os << "request " << request << " completed on thread " << thread
           << " which is serving "
           << (sv.active ? "request " + std::to_string(sv.request)
                         : std::string("nothing"));
        report("request-conservation", os.str(), now);
        return;
    }
    sv.completed = true;
    sv.completion = now;
    settleServing(thread, now);
}

// ---------------------------------------------------------------------
// End-of-run checks
// ---------------------------------------------------------------------

void
OracleSuite::finishRun(Ticks now)
{
    if (config_.latency)
        profiler_.finishRun(now);
    if (config_.heap) {
        ++checks_;
        if (!live_.empty()) {
            std::ostringstream os;
            os << live_.size() << " object(s) leaked (allocated but "
               << "never died); first: object " << live_.begin()->first
               << " of " << live_.begin()->second << " B";
            report("heap-conservation", os.str(), now);
        }
    }
    if (config_.ordering) {
        ++checks_;
        if (world_stopped_)
            report("event-ordering",
                   "run ended inside a stop-the-world window", now);
        if (safepoint_pending_) {
            std::ostringstream os;
            os << "run ended with safepoint #" << safepoint_seq_
               << " still pending";
            report("event-ordering", os.str(), now);
        }
        if (in_gc_) {
            std::ostringstream os;
            os << "run ended with GC #" << gc_seq_ << " in progress";
            report("event-ordering", os.str(), now);
        }
    }
    if (config_.scheduler) {
        for (std::size_t c = 0; c < cores_.size(); ++c) {
            ++checks_;
            // Helper/daemon bursts may be cut short by VM shutdown
            // without a closing onBurstEnd; only a mutator left on a
            // core marks a real accounting hole.
            if (cores_[c].running != 0 && cores_[c].mutator) {
                std::ostringstream os;
                os << "run ended with thread " << (cores_[c].running - 1)
                   << " still running on core " << c;
                report("sched-conservation", os.str(), now);
            }
        }
        for (std::size_t i = 0; i < threads_.size(); ++i) {
            if (threads_[i].seen &&
                threads_[i].state == os::ThreadState::Ready) {
                checkReadyWait(i, now, false);
            }
        }
    }
    if (config_.traffic && !requests_.empty()) {
        ++checks_;
        std::uint64_t undispatched = 0;
        std::uint64_t incomplete = 0;
        for (const auto &[id, r] : requests_) {
            if (r.shed)
                continue;
            if (!r.dispatched)
                ++undispatched;
            else if (!r.completed)
                ++incomplete;
        }
        if (incomplete > 0) {
            std::ostringstream os;
            os << incomplete
               << " request(s) dispatched but never completed";
            report("request-conservation", os.str(), now);
        }
        if (undispatched > 0) {
            std::ostringstream os;
            os << undispatched
               << " admitted request(s) neither shed nor dispatched "
               << "at run end";
            report("request-conservation", os.str(), now);
        }
    }
    if (config_.monitors) {
        for (std::size_t m = 0; m < monitors_.size(); ++m) {
            ++checks_;
            if (monitors_[m].holder >= 0) {
                std::ostringstream os;
                os << "run ended with monitor " << m
                   << " still held by thread " << monitors_[m].holder;
                report("monitor-exclusion", os.str(), now);
            }
        }
    }
}

} // namespace jscale::check
