/**
 * @file
 * Golden-run regression store: a text format for fingerprinted stat
 * snapshots per app/sweep point, plus a field-level differ.
 *
 * The simulator is deterministic, so a recorded snapshot must
 * reproduce bit-for-bit on the same configuration: any drift is either
 * an intended behaviour change (re-record) or a regression (CI fails
 * with the exact fields that moved). Values round-trip through text at
 * max precision, so verify compares doubles exactly — there is no
 * tolerance, by design.
 *
 * This layer is pure format + diff; the CLI drives the experiment
 * harness to produce and re-produce the snapshots.
 */

#ifndef JSCALE_CHECK_GOLDEN_HH
#define JSCALE_CHECK_GOLDEN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "stats/stats.hh"

namespace jscale::check {

/** One recorded sweep point. */
struct GoldenRun
{
    std::string app;
    std::uint32_t threads = 0;
    stats::StatSnapshot stats;

    /** "app@threads" label used in diffs. */
    std::string label() const;
};

/** A golden file: provenance key=value pairs plus recorded runs. */
struct GoldenFile
{
    /** Recording configuration (app list, threads, seed, fingerprint). */
    std::vector<std::pair<std::string, std::string>> config;
    std::vector<GoldenRun> runs;

    /** First value recorded for @p key, or "" when absent. */
    std::string configValue(const std::string &key) const;
};

/** One divergent field between a recorded and a fresh snapshot. */
struct FieldDiff
{
    /** Which sweep point ("app@threads", or "" for file-level). */
    std::string run;
    std::string field;
    /** "value" | "missing" (in fresh) | "extra" (only in fresh). */
    std::string kind;
    double expected = 0.0;
    double actual = 0.0;

    /** One-line human-readable rendering. */
    std::string format() const;
};

/** Serialize in the "jscale-golden v1" text format. */
void writeGolden(std::ostream &os, const GoldenFile &file);

/** Parse a golden file. Returns false (with @p err) on malformed input. */
bool readGolden(std::istream &is, GoldenFile &out, std::string &err);

/** Convenience: read from @p path. */
bool readGoldenFile(const std::string &path, GoldenFile &out,
                    std::string &err);

/**
 * Compare two snapshots field-by-field (exact double equality).
 * @p run labels the diffs.
 */
std::vector<FieldDiff> diffSnapshots(const std::string &run,
                                     const stats::StatSnapshot &expected,
                                     const stats::StatSnapshot &actual);

/**
 * Compare a recorded file against freshly produced runs. Runs are
 * matched by (app, threads); missing or surplus sweep points are
 * file-level diffs.
 */
std::vector<FieldDiff> diffGolden(const GoldenFile &expected,
                                  const std::vector<GoldenRun> &actual);

} // namespace jscale::check

#endif // JSCALE_CHECK_GOLDEN_HH
