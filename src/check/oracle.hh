/**
 * @file
 * Invariant oracles: machine-checked validators for the simulator's
 * core contracts, attached through the existing RuntimeListener /
 * SchedulerListener probe chains (the same interfaces the tracer,
 * lock profiler and telemetry use — the runtime does not know it is
 * being checked).
 *
 * The suite continuously validates, on every delivered event:
 *
 *   1. heap byte conservation — every allocated object dies exactly
 *      once, the suite's independent live-byte ledger reconciles with
 *      the heap's gauge after every alloc/death, and stop-the-world
 *      reclaim never exceeds the bytes that actually died;
 *   2. monitor mutual exclusion + legal handoff — at most one holder
 *      per monitor, releases only by the holder, no uncontended
 *      acquisition past queued waiters, and contended grants legal
 *      under the run's admission policy (jvm::LockPolicy): FIFO grants
 *      the queue head only; barging grants within the barging window
 *      with the head bypassed at most window-1 consecutive times;
 *      Malthusian/LCR grant only the active-set head, passivations
 *      take the active tail, reactivations take the oldest passivated
 *      waiter, and no passivated waiter starves past its rotation
 *      bound;
 *   3. scheduler work conservation — legal thread-state transitions,
 *      no double-booked cores, no dispatch while the world is stopped,
 *      and starvation-freedom: no runnable thread waits longer than a
 *      capacity-scaled grace period (stop-the-world time credited);
 *   4. lifespan-metric monotonicity — per-owner death clocks
 *      (birth_global_bytes + lifespan) never run backwards and never
 *      exceed the global allocation clock;
 *   5. event-queue ordering — observed `now` is monotonic across both
 *      probe chains, safepoints pair begin/reached with exact ttsp,
 *      GC phases partition [safepoint, finish] without gap or overlap,
 *      and no allocation lands inside a stop-the-world window;
 *   6. latency conservation — every task's wait-state attribution
 *      buckets (profile::TaskProfiler) sum to the task's wall time
 *      exactly, in integer simulation ticks;
 *   7. request conservation (open-loop traffic) — request boundaries
 *      are well-ordered per request (arrival <= dispatch <=
 *      completion), shed requests are never dispatched, no worker
 *      serves two requests at once, the profiled service window opens
 *      exactly at the dispatch stamp and closes exactly at the
 *      completion stamp (so sojourn == queueing + attributed service
 *      buckets, integer-exactly), and every admitted request is either
 *      shed or completed by run end.
 *
 * Each failure is reported as a diagnosed InvariantViolation naming
 * the object/monitor/thread and the simulation time.
 */

#ifndef JSCALE_CHECK_ORACLE_HH
#define JSCALE_CHECK_ORACLE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/error.hh"
#include "base/units.hh"
#include "jvm/locks/policy.hh"
#include "jvm/runtime/listener.hh"
#include "os/sched_listener.hh"
#include "profile/profiler.hh"

namespace jscale::jvm {
class JavaVm;
}
namespace jscale::os {
class Scheduler;
}

namespace jscale::check {

/** One diagnosed invariant failure. */
struct InvariantViolation
{
    /** Which oracle fired: "heap-conservation", "monitor-exclusion",
     *  "monitor-fifo", "sched-conservation", "lifespan-monotonic",
     *  "event-ordering", "latency-conservation" or
     *  "request-conservation". */
    std::string oracle;
    /** Diagnosis naming the object/monitor/thread involved. */
    std::string message;
    /** Simulation time of the offending event. */
    Ticks at = 0;

    /** "oracle: message (at <time>)" */
    std::string format() const;
};

/**
 * An armed oracle detected a violation and is configured to abort the
 * run. Derives AbortError so the experiment harness isolates the
 * failure per run (error artifact + failed() marker) exactly like a
 * watchdog timeout.
 */
class OracleError : public AbortError
{
  public:
    explicit OracleError(const InvariantViolation &v)
        : AbortError("invariant violation: " + v.format()), violation(v)
    {}

    InvariantViolation violation;
};

/** Which oracles are armed and how strictly they react. */
struct OracleConfig
{
    bool heap = true;
    bool monitors = true;
    bool scheduler = true;
    bool lifespan = true;
    bool ordering = true;
    /**
     * Latency conservation: attach a TaskProfiler and verify that every
     * attributed task's wait-state buckets sum to its wall time exactly
     * (integer sim-time, no slop).
     */
    bool latency = true;
    /**
     * Request conservation (open-loop traffic): per-request lifecycle
     * ordering, shed-never-dispatched, one request in flight per
     * worker, and service-window alignment against the latency
     * profiler (window == [dispatch, completion] exactly). Inert on
     * closed-loop runs — no request probes ever fire.
     */
    bool traffic = true;

    /** Run Heap::checkInvariants() (deep O(objects) audit) at every
     *  stop-the-world collection end. */
    bool deep_heap_checks = true;

    /**
     * Arm the starvation-freedom check. attach() clears this on
     * configurations where unbounded ready waits are legitimate
     * (biased phase-gated policies, stealing disabled).
     */
    bool starvation = true;
    /** Base ready-wait allowance on top of the capacity-scaled bound. */
    Ticks starvation_grace = 100 * units::MS;

    /**
     * Throw OracleError at the first violation (aborting the run the
     * way a watchdog does). When false, violations are collected and
     * the run continues — the fuzz driver's mode.
     */
    bool throw_on_violation = true;
    /** Collection cap when not throwing. */
    std::size_t max_violations = 16;
};

/**
 * The oracle suite. Subscribe with attach() before JavaVm::run(); call
 * finishRun() after the run returns for end-of-run checks (leaked
 * objects, threads still starving, unbalanced world stops).
 *
 * All per-event work is O(1) amortized (hash-map ledger, deque queue
 * models) so armed oracles stay well under the harness's overhead
 * budget.
 */
class OracleSuite final : public jvm::RuntimeListener,
                          public os::SchedulerListener
{
  public:
    explicit OracleSuite(OracleConfig config = {});
    ~OracleSuite() override;

    OracleSuite(const OracleSuite &) = delete;
    OracleSuite &operator=(const OracleSuite &) = delete;

    /**
     * Subscribe to @p vm's runtime and scheduler probe chains and
     * self-configure gates from the VM/scheduler configuration
     * (compartment mode, TLABs, scheduling policy).
     */
    void attach(jvm::JavaVm &vm);

    /** Unsubscribe (safe to call twice; the destructor calls it). */
    void detach();

    /** End-of-run checks; @p now is the final simulation time. */
    void finishRun(Ticks now);

    /** Violations recorded so far (empty on a clean run). */
    const std::vector<InvariantViolation> &violations() const
    {
        return violations_;
    }

    /** Total violations detected (may exceed the collection cap). */
    std::uint64_t violationCount() const { return violation_count_; }

    /** Individual invariant evaluations performed. */
    std::uint64_t checksPerformed() const { return checks_; }

    const OracleConfig &config() const { return config_; }

    /** @name RuntimeListener probes */
    /** @{ */
    void onObjectAlloc(const jvm::ObjectRecord &obj, Ticks now) override;
    void onObjectDeath(const jvm::ObjectRecord &obj, Bytes lifespan,
                       Ticks now) override;
    void onMonitorAcquire(jvm::MutatorIndex thread, jvm::MonitorId monitor,
                          bool contended, Ticks now) override;
    void onMonitorContended(jvm::MutatorIndex thread,
                            jvm::MonitorId monitor, Ticks now) override;
    void onMonitorRelease(jvm::MutatorIndex thread, jvm::MonitorId monitor,
                          Ticks now) override;
    void onMonitorWaiterCancelled(jvm::MutatorIndex thread,
                                  jvm::MonitorId monitor,
                                  Ticks now) override;
    void onMonitorWaiterPassivated(jvm::MutatorIndex thread,
                                   jvm::MonitorId monitor,
                                   Ticks now) override;
    void onMonitorWaiterReactivated(jvm::MutatorIndex thread,
                                    jvm::MonitorId monitor,
                                    Ticks now) override;
    void onSafepointBegin(std::uint64_t sequence, Ticks now) override;
    void onSafepointReached(std::uint64_t sequence, Ticks ttsp,
                            Ticks now) override;
    void onGcStart(jvm::GcKind kind, std::uint64_t sequence,
                   Ticks now) override;
    void onGcPhase(std::uint64_t sequence, jvm::GcKind kind,
                   const char *phase, Ticks begin, Ticks end) override;
    void onGcEnd(const jvm::GcEvent &event, Ticks now) override;
    void onRequestArrival(std::uint32_t tenant, std::uint64_t request,
                          Ticks now) override;
    void onRequestShed(std::uint32_t tenant, std::uint64_t request,
                       Ticks now) override;
    void onRequestDispatched(std::uint32_t tenant, std::uint64_t request,
                             jvm::MutatorIndex thread,
                             Ticks now) override;
    void onRequestCompleted(std::uint32_t tenant, std::uint64_t request,
                            jvm::MutatorIndex thread,
                            Ticks now) override;
    /** @} */

    /** @name SchedulerListener probes */
    /** @{ */
    void onDispatch(const os::OsThread &t, machine::CoreId core,
                    Ticks overhead, bool stolen, Ticks now) override;
    void onBurstEnd(const os::OsThread &t, machine::CoreId core,
                    Ticks started, bool preempted, Ticks now) override;
    void onThreadState(const os::OsThread &t, os::ThreadState prev,
                       Ticks now) override;
    void onWorldStopRequested(std::uint32_t group, Ticks now) override;
    void onWorldResumed(std::uint32_t group, Ticks now) override;
    /** @} */

  private:
    /** Record a violation; throws OracleError when configured. */
    void report(const char *oracle, std::string message, Ticks now);

    /** Monotonic-time check shared by every probe. */
    void observeTime(Ticks now);

    /** Ready-wait bound for the current capacity (threads vs cores). */
    Ticks starvationLimit() const;

    /** Stop-the-world time accumulated up to @p now. */
    Ticks stoppedTicks(Ticks now) const;

    /** Check one thread's ready wait against the bound. */
    void checkReadyWait(std::size_t idx, Ticks now, bool at_dispatch);

    /** One passivated waiter and its starvation bound. */
    struct PassiveEntry
    {
        jvm::MutatorIndex thread = 0;
        /** MonitorModel::grants at the moment of passivation. */
        std::uint64_t passivated_at = 0;
        /** Max contended grants before it must be reactivated (0 = no
         *  bound — rotation disabled). */
        std::uint64_t bound = 0;
    };

    struct MonitorModel
    {
        /** Holder mutator index; -1 = free. */
        std::int64_t holder = -1;
        /** Active acquire queue (onMonitorContended order, minus
         *  passivated waiters). */
        std::deque<jvm::MutatorIndex> queue;
        /** Cold passivated waiters, oldest first (culling policies). */
        std::deque<PassiveEntry> passive;
        /** Contended grants observed on this monitor. */
        std::uint64_t grants = 0;
        /** Consecutive contended grants that bypassed the queue head
         *  (barging-window starvation bound). */
        std::uint32_t head_miss_streak = 0;
    };

    struct ThreadModel
    {
        os::ThreadState state = os::ThreadState::New;
        bool seen = false;
        Ticks ready_since = 0;
        /** stoppedTicks() at the moment the thread became Ready. */
        Ticks stop_credit = 0;
    };

    struct CoreModel
    {
        /** Occupying thread id + 1; 0 = idle. */
        std::uint64_t running = 0;
        Ticks dispatched_at = 0;
        /** Occupant is a mutator (helper bursts may be truncated by
         *  VM shutdown without a closing onBurstEnd). */
        bool mutator = false;
    };

    /** One open-loop request's observed lifecycle. */
    struct RequestModel
    {
        Ticks arrival = 0;
        Ticks dispatch = 0;
        bool dispatched = false;
        bool shed = false;
        bool completed = false;
    };

    /** The request a worker thread is currently serving. */
    struct ServingModel
    {
        bool active = false;
        std::uint64_t request = 0;
        Ticks dispatch = 0;
        /** onRequestCompleted has stamped the completion time. */
        bool completed = false;
        Ticks completion = 0;
        /** The profiler's closed window has been cross-checked. */
        bool window_seen = false;
        Ticks window_end = 0;
    };

    MonitorModel &monitorModel(jvm::MonitorId id);

    /** Per-policy legality of one contended grant (removes the grantee
     *  from the model queue when legal). */
    void checkContendedGrant(MonitorModel &m, jvm::MutatorIndex thread,
                             jvm::MonitorId monitor, Ticks now);

    /** No passivated waiter may starve past its rotation bound. */
    void checkRotationBounds(MonitorModel &m, jvm::MonitorId monitor,
                             Ticks now);
    ThreadModel &threadModel(std::size_t id);
    CoreModel &coreModel(std::size_t id);
    ServingModel &servingModel(jvm::MutatorIndex thread);

    /** Reconcile a closed serving record once both the completion probe
     *  and the profiler window have been observed. */
    void settleServing(jvm::MutatorIndex thread, Ticks now);

    /** Is scheduling group @p g inside a stop-the-world window? */
    bool groupStopped(std::uint32_t g) const
    {
        return g < group_stopped_.size() && group_stopped_[g];
    }

    OracleConfig config_;
    /** Admission policy of the attached VM (attach() reads it); the
     *  handoff model validates against this discipline. */
    jvm::LockPolicyConfig locks_;
    jvm::JavaVm *vm_ = nullptr;
    const os::Scheduler *sched_ = nullptr;
    bool attached_ = false;

    /** Latency-conservation oracle: an embedded attribution profiler
     *  whose task sink reconciles bucket sums against wall time. */
    profile::TaskProfiler profiler_;

    /** TLAB reservation makes reclaim exceed dead-object bytes. */
    bool reclaim_accounting_ = true;

    std::vector<InvariantViolation> violations_;
    std::uint64_t violation_count_ = 0;
    std::uint64_t checks_ = 0;

    /** @name Heap-conservation state */
    /** @{ */
    std::unordered_map<std::uint64_t, Bytes> live_; ///< id -> size
    Bytes model_live_bytes_ = 0;
    Bytes pending_dead_bytes_ = 0;
    /** @} */

    /** @name Lifespan-monotonicity state (per-owner death clocks) */
    std::vector<Bytes> death_clock_;

    /** @name Monitor state */
    std::vector<MonitorModel> monitors_;

    /** @name Scheduler state */
    /** @{ */
    std::vector<ThreadModel> threads_;
    std::vector<CoreModel> cores_;
    std::size_t max_thread_id_ = 0;
    /** @} */

    /** @name Request-conservation state (open-loop traffic) */
    /** @{ */
    std::unordered_map<std::uint64_t, RequestModel> requests_;
    std::vector<ServingModel> serving_;
    std::uint64_t requests_admitted_ = 0;
    std::uint64_t requests_shed_ = 0;
    std::uint64_t requests_completed_ = 0;
    /** @} */

    /** @name Ordering / safepoint / GC state */
    /** @{ */
    Ticks last_now_ = 0;
    /** The attached VM's scheduling group (tenant); set by attach(). */
    std::uint32_t group_ = 0;
    /** Per-group stop-the-world windows (shared scheduler). Index is
     *  the scheduling group; world_stopped_ mirrors our own group's
     *  entry for the safepoint/GC pairing checks. */
    std::vector<bool> group_stopped_;
    bool world_stopped_ = false;
    bool at_safepoint_ = false;
    Ticks stop_began_ = 0;
    Ticks stopped_accum_ = 0;
    bool safepoint_pending_ = false;
    std::uint64_t safepoint_seq_ = 0;
    Ticks safepoint_begin_at_ = 0;
    bool in_gc_ = false;
    std::uint64_t gc_seq_ = 0;
    Ticks gc_started_at_ = 0;
    Ticks phase_cursor_ = 0;
    std::uint64_t phases_seen_ = 0;
    /** @} */
};

} // namespace jscale::check

#endif // JSCALE_CHECK_ORACLE_HH
