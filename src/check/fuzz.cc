#include "check/fuzz.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "base/atomic_file.hh"
#include "base/chaos.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "check/random_app.hh"
#include "control/governor.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "jvm/runtime/vm.hh"
#include "machine/machine.hh"
#include "os/scheduler.hh"
#include "sim/simulation.hh"

namespace jscale::check {

const char *
sabotageName(Sabotage s)
{
    switch (s) {
      case Sabotage::None: return "none";
      case Sabotage::DupAlloc: return "dup-alloc";
      case Sabotage::PhantomDeath: return "phantom-death";
      case Sabotage::DoubleRelease: return "double-release";
      case Sabotage::IllegalHandoff: return "illegal-handoff";
    }
    return "?";
}

bool
parseSabotage(const std::string &name, Sabotage &out)
{
    for (const Sabotage s :
         {Sabotage::None, Sabotage::DupAlloc, Sabotage::PhantomDeath,
          Sabotage::DoubleRelease, Sabotage::IllegalHandoff}) {
        if (name == sabotageName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

std::string
FuzzCase::describe() const
{
    std::ostringstream os;
    os.precision(17);
    os << "seed=" << seed << " threads=" << threads << " tasks=" << tasks
       << " monitors=" << monitors << " heap=" << heap << " tlab=" << tlab
       << " intensity=" << fault_intensity
       << " governed=" << (governed ? 1 : 0)
       << " policy=" << jvm::lockPolicyName(policy)
       << " sabotage=" << sabotageName(sabotage);
    return os.str();
}

bool
FuzzCase::parse(const std::string &line, FuzzCase &out, std::string &err)
{
    FuzzCase c;
    std::istringstream is(line);
    std::string tok;
    bool saw_seed = false;
    while (is >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos) {
            err = "malformed token '" + tok + "' (expected key=value)";
            return false;
        }
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        try {
            if (key == "seed") {
                c.seed = std::stoull(val);
                saw_seed = true;
            } else if (key == "threads") {
                c.threads = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "tasks") {
                c.tasks = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "monitors") {
                c.monitors = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "heap") {
                c.heap = std::stoull(val);
            } else if (key == "tlab") {
                c.tlab = std::stoull(val);
            } else if (key == "intensity") {
                c.fault_intensity = std::stod(val);
            } else if (key == "governed") {
                c.governed = val != "0";
            } else if (key == "policy") {
                // Absent on pre-policy case lines; defaults to fifo.
                if (!jvm::parseLockPolicy(val, c.policy)) {
                    err = "unknown lock policy '" + val + "'";
                    return false;
                }
            } else if (key == "sabotage") {
                if (!parseSabotage(val, c.sabotage)) {
                    err = "unknown sabotage '" + val + "'";
                    return false;
                }
            } else {
                err = "unknown key '" + key + "'";
                return false;
            }
        } catch (const std::exception &) {
            err = "bad value for '" + key + "': " + val;
            return false;
        }
    }
    if (!saw_seed) {
        err = "case line has no seed";
        return false;
    }
    if (c.threads == 0 || c.tasks == 0 || c.monitors == 0 ||
        c.heap < units::MiB) {
        err = "degenerate case (threads/tasks/monitors must be >= 1, "
              "heap >= 1 MiB)";
        return false;
    }
    out = c;
    return true;
}

FuzzCase
caseForSeed(std::uint64_t seed)
{
    Rng rng(seed * 7919 + 17);
    FuzzCase c;
    c.seed = seed;
    c.threads = 1 + static_cast<std::uint32_t>(rng.below(8));
    c.tasks = 20 + static_cast<std::uint32_t>(rng.below(121));
    c.monitors = 1 + static_cast<std::uint32_t>(rng.below(5));
    c.heap = (3 + rng.below(4)) * units::MiB;
    c.tlab = rng.chance(0.3) ? 8 * units::KiB : 0;
    c.fault_intensity = rng.chance(0.4) ? (rng.chance(0.5) ? 0.3 : 0.6)
                                        : 0.0;
    c.governed = rng.chance(0.25);
    // Drawn last so the policy dimension extends the case space
    // without perturbing the geometry older seeds derive.
    c.policy = jvm::kAllLockPolicies[rng.below(
        sizeof(jvm::kAllLockPolicies) / sizeof(jvm::kAllLockPolicies[0]))];
    return c;
}

namespace {

/**
 * Event-stream saboteur: re-delivers or fabricates one event directly
 * into the oracle suite. Registered after the suite on the listener
 * chain, so the suite always observes the genuine event first.
 */
class Saboteur : public jvm::RuntimeListener
{
  public:
    Saboteur(OracleSuite &suite, Sabotage kind)
        : suite_(suite), kind_(kind)
    {}

    void
    onObjectAlloc(const jvm::ObjectRecord &obj, Ticks now) override
    {
        if (fired_)
            return;
        if (kind_ == Sabotage::DupAlloc) {
            fired_ = true;
            suite_.onObjectAlloc(obj, now);
        } else if (kind_ == Sabotage::PhantomDeath) {
            fired_ = true;
            suite_.onObjectDeath(obj, /*lifespan=*/0, now);
        }
    }

    void
    onMonitorContended(jvm::MutatorIndex thread, jvm::MonitorId monitor,
                       Ticks now) override
    {
        (void)thread;
        (void)now;
        if (kind_ == Sabotage::IllegalHandoff)
            ++queued_[monitor];
    }

    void
    onMonitorAcquire(jvm::MutatorIndex thread, jvm::MonitorId monitor,
                     bool contended, Ticks now) override
    {
        (void)thread;
        (void)now;
        if (kind_ == Sabotage::IllegalHandoff && contended &&
            queued_[monitor] > 0)
            --queued_[monitor];
    }

    void
    onMonitorWaiterCancelled(jvm::MutatorIndex thread,
                             jvm::MonitorId monitor, Ticks now) override
    {
        (void)thread;
        (void)now;
        if (kind_ == Sabotage::IllegalHandoff && queued_[monitor] > 0)
            --queued_[monitor];
    }

    void
    onMonitorRelease(jvm::MutatorIndex thread, jvm::MonitorId monitor,
                     Ticks now) override
    {
        if (fired_)
            return;
        if (kind_ == Sabotage::DoubleRelease) {
            fired_ = true;
            suite_.onMonitorRelease(thread, monitor, now);
        } else if (kind_ == Sabotage::IllegalHandoff &&
                   queued_[monitor] > 0) {
            // The releasing thread never sat in the acquire queue, so
            // a contended grant to it is illegal under every admission
            // policy — fifo, barging window, or culling active set.
            fired_ = true;
            suite_.onMonitorAcquire(thread, monitor, /*contended=*/true,
                                    now);
        }
    }

  private:
    OracleSuite &suite_;
    Sabotage kind_;
    bool fired_ = false;
    /** Per-monitor queued-waiter mirror (IllegalHandoff trigger). */
    std::map<jvm::MonitorId, std::uint32_t> queued_;
};

} // namespace

std::string
FuzzOutcome::diagnosis() const
{
    if (!violations.empty())
        return violations.front().format();
    if (run_failed)
        return "run aborted: " + run_error;
    return "clean";
}

FuzzOutcome
runFuzzCase(const FuzzCase &c)
{
    FuzzOutcome out;
    out.fuzz_case = c;

    sim::Simulation sim(c.seed);
    machine::Machine mach(machine::Machine::testMachine_2p8c());
    mach.enableCores(std::min<std::uint32_t>(c.threads, 8));
    os::Scheduler sched(sim, mach);

    jvm::VmConfig cfg;
    cfg.heap.capacity = c.heap;
    cfg.heap.tlab_size = c.tlab;
    cfg.enable_helpers = false;
    cfg.locks.policy = c.policy;
    // Nonzero handoff costs so the coherence-penalty accounting runs
    // under oracle scrutiny too.
    cfg.locks.handoff_base = 250;
    cfg.locks.coherence_cost = 500;

    jvm::JavaVm vm(sim, mach, sched, cfg);

    std::optional<control::ConcurrencyGovernor> governor;
    if (c.governed) {
        control::GovernorConfig gc;
        gc.mode = control::GovernorMode::HillClimb;
        gc.interval = units::MS;
        governor.emplace(sim, vm, gc);
        vm.setTaskAdmission(&*governor);
    }

    std::optional<fault::FaultInjector> injector;
    if (c.fault_intensity > 0.0) {
        injector.emplace(sim, mach, vm,
                         fault::FaultPlan::fromIntensity(
                             c.fault_intensity, c.seed, 30 * units::MS));
    }

    OracleConfig ocfg;
    ocfg.throw_on_violation = false;
    OracleSuite suite(ocfg);
    suite.attach(vm);

    Saboteur saboteur(suite, c.sabotage);
    if (c.sabotage != Sabotage::None)
        vm.listeners().add(&saboteur);

    RandomApp app(c.seed, c.monitors, c.tasks);
    try {
        if (injector)
            injector->arm(sim.now());
        const jvm::RunResult r = vm.run(app, c.threads);
        suite.finishRun(sim.now());
        if (r.failed()) {
            out.run_failed = true;
            out.run_error = r.run_error;
        }
    } catch (const AbortError &e) {
        out.run_failed = true;
        out.run_error = e.what();
    }

    if (c.sabotage != Sabotage::None)
        vm.listeners().remove(&saboteur);
    suite.detach();

    out.violations = suite.violations();
    out.checks = suite.checksPerformed();
    out.sim_time = sim.now();
    return out;
}

FuzzCase
shrinkCase(const FuzzCase &c, std::uint32_t budget,
           std::uint32_t *runs_used)
{
    FuzzCase best = c;
    std::uint32_t used = 0;

    // Candidate reductions, most aggressive first. Returns false when
    // the rule cannot shrink the case any further.
    const auto mutate = [](FuzzCase &m, int rule) -> bool {
        switch (rule) {
          case 0:
            if (m.tasks <= 1)
                return false;
            m.tasks /= 2;
            return true;
          case 1:
            if (m.threads <= 1)
                return false;
            m.threads /= 2;
            return true;
          case 2:
            if (m.fault_intensity == 0.0)
                return false;
            m.fault_intensity = 0.0; // drop the whole fault schedule
            return true;
          case 3:
            if (!m.governed)
                return false;
            m.governed = false;
            return true;
          case 4:
            if (m.monitors <= 1)
                return false;
            m.monitors /= 2;
            return true;
          case 5:
            if (m.tlab == 0)
                return false;
            m.tlab = 0;
            return true;
          case 6:
            if (m.policy == jvm::LockPolicy::Fifo)
                return false;
            m.policy = jvm::LockPolicy::Fifo; // simplest admission order
            return true;
          default:
            return false;
        }
    };

    bool progressed = true;
    while (progressed && used < budget) {
        progressed = false;
        for (int rule = 0; rule <= 6 && used < budget; ++rule) {
            FuzzCase candidate = best;
            if (!mutate(candidate, rule))
                continue;
            ++used;
            if (!runFuzzCase(candidate).clean()) {
                best = candidate;
                progressed = true;
                break; // restart from the most aggressive rule
            }
        }
    }
    if (runs_used != nullptr)
        *runs_used = used;
    return best;
}

namespace {

/** One-line escape for cache records: newlines and backslashes only
 *  (values sit last on their line, so spaces need no quoting). */
std::string
escapeLine(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
unescapeLine(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            out += s[i] == 'n' ? '\n' : s[i];
        } else {
            out += s[i];
        }
    }
    return out;
}

std::string
outcomePath(const std::string &dir, std::uint64_t seed)
{
    return dir + "/fuzz-" + std::to_string(seed) + ".out";
}

/** Persist one finished case durably (atomic publish, then the chaos
 *  crash point fires — fuzz workers die at record boundaries too). */
void
storeOutcome(const FuzzCampaignIo &io, std::uint64_t seed,
             const FuzzOutcome &o)
{
    AtomicFileWriter writer(outcomePath(io.cache_dir, seed));
    if (!writer.ok()) {
        warn("cannot open fuzz outcome record for seed ", seed);
        return;
    }
    std::ostream &os = writer.stream();
    os << "jscale-fuzz-out v1\n";
    os << "fp " << escapeLine(io.fingerprint) << '\n';
    os << "case " << o.fuzz_case.describe() << '\n';
    os << "run_failed " << (o.run_failed ? 1 : 0) << '\n';
    os << "run_error " << escapeLine(o.run_error) << '\n';
    os << "checks " << o.checks << '\n';
    os << "sim_time " << o.sim_time << '\n';
    for (const InvariantViolation &v : o.violations) {
        os << "v " << v.at << ' ' << escapeLine(v.oracle) << ' '
           << escapeLine(v.message) << '\n';
    }
    os << "end\n";
    std::string err;
    if (!writer.commit(err)) {
        warn("fuzz outcome store failed: ", err);
        return;
    }
    chaosCrashPoint();
}

/** Load one cached case. Any malformation — torn record, foreign
 *  fingerprint — is a miss (with a warning); the seed just re-runs. */
bool
loadOutcome(const FuzzCampaignIo &io, std::uint64_t seed, FuzzOutcome &out)
{
    const std::string path = outcomePath(io.cache_dir, seed);
    std::ifstream in(path);
    if (!in)
        return false;

    const auto miss = [&path](const char *why) {
        warn("ignoring fuzz outcome '", path, "': ", why);
        return false;
    };
    std::string line;
    if (!std::getline(in, line) || line != "jscale-fuzz-out v1")
        return miss("bad header");
    if (!std::getline(in, line) || line.rfind("fp ", 0) != 0 ||
        unescapeLine(line.substr(3)) != io.fingerprint)
        return miss("campaign fingerprint mismatch");

    FuzzOutcome o;
    std::string err;
    if (!std::getline(in, line) || line.rfind("case ", 0) != 0 ||
        !FuzzCase::parse(line.substr(5), o.fuzz_case, err))
        return miss("bad case line");
    if (!std::getline(in, line) || line.rfind("run_failed ", 0) != 0)
        return miss("bad run_failed line");
    o.run_failed = line.substr(11) == "1";
    if (!std::getline(in, line) || line.rfind("run_error ", 0) != 0)
        return miss("bad run_error line");
    o.run_error = unescapeLine(line.substr(10));
    if (!std::getline(in, line) || line.rfind("checks ", 0) != 0)
        return miss("bad checks line");
    o.checks = std::strtoull(line.c_str() + 7, nullptr, 10);
    if (!std::getline(in, line) || line.rfind("sim_time ", 0) != 0)
        return miss("bad sim_time line");
    o.sim_time = std::strtoull(line.c_str() + 9, nullptr, 10);

    bool ended = false;
    while (std::getline(in, line)) {
        if (line == "end") {
            ended = true;
            break;
        }
        if (line.rfind("v ", 0) != 0)
            return miss("bad violation line");
        std::istringstream vs(line.substr(2));
        InvariantViolation v;
        std::string oracle;
        if (!(vs >> v.at >> oracle))
            return miss("bad violation line");
        v.oracle = unescapeLine(oracle);
        std::string msg;
        std::getline(vs, msg);
        if (!msg.empty() && msg.front() == ' ')
            msg.erase(0, 1);
        v.message = unescapeLine(msg);
        o.violations.push_back(std::move(v));
    }
    if (!ended)
        return miss("missing 'end' trailer (torn write?)");
    out = std::move(o);
    return true;
}

} // namespace

FuzzReport
runFuzzCampaign(const std::vector<std::uint64_t> &seeds, Sabotage sabotage,
                std::uint32_t shrink_budget, std::ostream *out,
                const FuzzCampaignIo &io)
{
    const bool cached = !io.cache_dir.empty();
    if (cached) {
        std::error_code ec;
        std::filesystem::create_directories(io.cache_dir, ec);
    }
    const std::uint32_t of = std::max<std::uint32_t>(1, io.shard_count);

    FuzzReport report;
    for (const std::uint64_t seed : seeds) {
        FuzzOutcome o;
        bool have = cached && loadOutcome(io, seed, o);
        if (!have) {
            if (of > 1 &&
                shardOfKey("fuzz|" + std::to_string(seed), of) !=
                    io.shard_index)
                continue; // another shard's seed
            FuzzCase c = caseForSeed(seed);
            c.sabotage = sabotage;
            o = runFuzzCase(c);
            if (cached)
                storeOutcome(io, seed, o);
        }
        ++report.cases_run;
        report.total_checks += o.checks;
        if (!o.clean()) {
            if (out != nullptr) {
                *out << "FAIL seed " << seed << ": " << o.diagnosis()
                     << "\n";
            }
            report.failures.push_back(std::move(o));
        } else if (out != nullptr && report.cases_run % 25 == 0) {
            *out << "... " << report.cases_run << "/" << seeds.size()
                 << " cases clean\n";
        }
    }
    if (report.failed()) {
        if (out != nullptr)
            *out << "shrinking first failure...\n";
        report.shrunk = shrinkCase(report.failures.front().fuzz_case,
                                   shrink_budget, &report.shrink_runs);
    }
    return report;
}

void
writeReproducer(std::ostream &os, const FuzzReport &report)
{
    os << "jscale-fuzz-repro v1\n";
    os << "case " << report.shrunk.describe() << "\n";
    os << "# shrunk from: " << report.failures.front().fuzz_case.describe()
       << " in " << report.shrink_runs << " run(s)\n";
    const FuzzOutcome proof = runFuzzCase(report.shrunk);
    for (const InvariantViolation &v : proof.violations)
        os << "# violation: " << v.format() << "\n";
    if (proof.run_failed)
        os << "# run error: " << proof.run_error << "\n";
}

bool
readReproducer(const std::string &path, FuzzCase &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open '" + path + "'";
        return false;
    }
    std::string line;
    if (!std::getline(in, line) || line != "jscale-fuzz-repro v1") {
        err = "'" + path + "' is not a jscale-fuzz-repro v1 file";
        return false;
    }
    while (std::getline(in, line)) {
        if (line.rfind("case ", 0) == 0)
            return FuzzCase::parse(line.substr(5), out, err);
    }
    err = "'" + path + "' has no case line";
    return false;
}

} // namespace jscale::check
