/**
 * @file
 * MetricSampler: periodic polling of live gauges into a time series.
 *
 * Every interval the sampler reads heap occupancy (eden / survivor /
 * old / live bytes), scheduler pressure (run-queue backlog, running
 * threads) and lock pressure (threads blocked on monitor queues right
 * now) from the running VM. Samples accumulate in memory, feed
 * stats::SampleStats summaries per column, dump as CSV, and can
 * optionally mirror into a Timeline as Chrome-trace counter tracks.
 *
 * Sampling is read-only and draws no random numbers, so enabling it
 * never perturbs a run's schedule.
 */

#ifndef JSCALE_TELEMETRY_SAMPLER_HH
#define JSCALE_TELEMETRY_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "base/units.hh"
#include "sim/event.hh"
#include "stats/stats.hh"

namespace jscale::sim {
class Simulation;
} // namespace jscale::sim

namespace jscale::jvm {
class JavaVm;
} // namespace jscale::jvm

namespace jscale::telemetry {

class Timeline;

/** One polled row. */
struct MetricSample
{
    Ticks at = 0;
    Bytes eden_used = 0;
    Bytes survivor_used = 0;
    Bytes old_used = 0;
    Bytes live_bytes = 0;
    /** Threads queued ready (not running) across all cores. */
    std::uint64_t run_queue = 0;
    /** Threads executing on cores. */
    std::uint64_t running = 0;
    /** Threads blocked on monitor acquire queues. */
    std::uint64_t lock_blocked = 0;
    /** Governor admission target (0 when no governor is installed). */
    std::uint64_t gov_target = 0;
    /** Mutators admission-parked right now. */
    std::uint64_t gov_parked = 0;
};

/** Per-column summary statistics over all samples. */
struct MetricSummary
{
    stats::SampleStats eden_used;
    stats::SampleStats old_used;
    stats::SampleStats live_bytes;
    stats::SampleStats run_queue;
    stats::SampleStats running;
    stats::SampleStats lock_blocked;
    stats::SampleStats gov_parked;
};

/**
 * The periodic sampler. Construct, optionally attachTimeline(), then
 * start() before Simulation::run; ticks self-reschedule every interval
 * until the simulation drains.
 */
class MetricSampler
{
  public:
    /** @param interval polling period (must be > 0). */
    MetricSampler(sim::Simulation &sim, jvm::JavaVm &vm, Ticks interval);

    /** Mirror samples into @p timeline as counter tracks. */
    void attachTimeline(Timeline *timeline) { timeline_ = timeline; }

    /**
     * Register an extra polled gauge, appended as a named CSV column
     * after the fixed schema (and mirrored onto a "gauges" counter
     * track). Registration is the caller's opt-in: runs that register
     * nothing — every single-tenant campaign — keep the exact fixed
     * CSV schema, byte for byte. The multi-tenant host registers one
     * queue-depth and one in-flight gauge per tenant here. Must be
     * called before start().
     */
    void addGauge(std::string name,
                  std::function<std::uint64_t()> poll)
    {
        gauges_.emplace_back(std::move(name), std::move(poll));
    }

    /** Schedule the first tick at now + interval. */
    void start();

    /**
     * Flush one final row at @p end (the run's last simulation time).
     * Runs whose length is not an exact multiple of the interval used
     * to lose everything after the last periodic tick; finish() closes
     * that gap. No-op when a row at @p end already exists.
     */
    void finish(Ticks end);

    /** All samples, in time order. */
    const std::vector<MetricSample> &samples() const { return samples_; }

    /** Per-column summaries. */
    const MetricSummary &summary() const { return summary_; }

    /** Fixed-schema CSV header (registered gauge columns append). */
    static const char *csvHeader();

    /** Dump the sample table as CSV (header + one row per sample). */
    void writeCsv(std::ostream &os) const;

    Ticks interval() const { return interval_; }

  private:
    void tick();

    /** Poll every gauge into one row at @p now. */
    void sample(Ticks now);

    sim::Simulation &sim_;
    jvm::JavaVm &vm_;
    Ticks interval_;
    Timeline *timeline_ = nullptr;
    /** Self-rescheduling tick; one closure for the whole run. */
    std::unique_ptr<sim::RecurringEvent> tick_event_;
    std::vector<MetricSample> samples_;
    MetricSummary summary_;
    /** Registered extra gauges, polled in registration order. */
    std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
        gauges_;
    /** One row of gauge readings per sample (gauges_ order). */
    std::vector<std::vector<std::uint64_t>> gauge_rows_;
};

} // namespace jscale::telemetry

#endif // JSCALE_TELEMETRY_SAMPLER_HH
