/**
 * @file
 * Strict, dependency-free JSON validator.
 *
 * Used by the telemetry tests and the CI smoke check to confirm that
 * emitted Chrome-trace files are well-formed JSON (RFC 8259): no
 * trailing commas, no unquoted keys, no NaN/Infinity literals. It
 * validates only — it does not build a document tree.
 */

#ifndef JSCALE_TELEMETRY_JSON_HH
#define JSCALE_TELEMETRY_JSON_HH

#include <string>

namespace jscale::telemetry {

/**
 * Validate @p text as a single JSON value (plus surrounding
 * whitespace).
 * @return true when the text parses; otherwise false with a
 * human-readable position/description in @p err (when non-null).
 */
bool validateJson(const std::string &text, std::string *err = nullptr);

} // namespace jscale::telemetry

#endif // JSCALE_TELEMETRY_JSON_HH
