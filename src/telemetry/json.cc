#include "telemetry/json.hh"

#include <cctype>
#include <cstddef>

namespace jscale::telemetry {

namespace {

/** Recursive-descent validator over a string; tracks one error. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool run(std::string *err)
    {
        skipWs();
        if (!value()) {
            report(err);
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            error_ = "trailing content after JSON value";
            error_at_ = pos_;
            report(err);
            return false;
        }
        return true;
    }

  private:
    bool fail(const char *what)
    {
        if (error_.empty()) {
            error_ = what;
            error_at_ = pos_;
        }
        return false;
    }

    void report(std::string *err) const
    {
        if (err == nullptr)
            return;
        *err = error_.empty() ? "invalid JSON" : error_;
        *err += " at offset " + std::to_string(error_at_);
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    bool eof() const { return pos_ >= text_.size(); }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool literal(const char *word)
    {
        std::size_t i = 0;
        while (word[i] != '\0') {
            if (pos_ + i >= text_.size() || text_[pos_ + i] != word[i])
                return fail("invalid literal");
            ++i;
        }
        pos_ += i;
        return true;
    }

    bool value()
    {
        if (eof())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                return fail("expected object key string");
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':' in object");
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool hexDigit(char c) const
    {
        return std::isxdigit(static_cast<unsigned char>(c)) != 0;
    }

    bool string()
    {
        ++pos_; // '"'
        while (true) {
            if (eof())
                return fail("unterminated string");
            const char c = text_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (eof())
                    return fail("unterminated escape");
                const char e = text_[pos_];
                switch (e) {
                  case '"': case '\\': case '/': case 'b': case 'f':
                  case 'n': case 'r': case 't':
                    ++pos_;
                    break;
                  case 'u':
                    ++pos_;
                    for (int i = 0; i < 4; ++i) {
                        if (eof() || !hexDigit(text_[pos_]))
                            return fail("bad \\u escape");
                        ++pos_;
                    }
                    break;
                  default:
                    return fail("bad escape character");
                }
            } else {
                ++pos_;
            }
        }
    }

    bool digits()
    {
        if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
            return fail("expected digit");
        while (!eof() &&
               std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            ++pos_;
        }
        return true;
    }

    bool number()
    {
        if (peek() == '-')
            ++pos_;
        if (eof())
            return fail("expected number");
        if (peek() == '0') {
            ++pos_; // leading zero must stand alone
            if (!eof() &&
                std::isdigit(static_cast<unsigned char>(peek())) != 0) {
                return fail("leading zero in number");
            }
        } else if (!digits()) {
            return false;
        }
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
    std::size_t error_at_ = 0;
};

} // namespace

bool
validateJson(const std::string &text, std::string *err)
{
    return Parser(text).run(err);
}

} // namespace jscale::telemetry
