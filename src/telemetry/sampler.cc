#include "telemetry/sampler.hh"

#include "base/logging.hh"
#include "jvm/runtime/vm.hh"
#include "sim/simulation.hh"
#include "telemetry/recorder.hh"
#include "telemetry/timeline.hh"

namespace jscale::telemetry {

MetricSampler::MetricSampler(sim::Simulation &sim, jvm::JavaVm &vm,
                             Ticks interval)
    : sim_(sim), vm_(vm), interval_(interval)
{
    jscale_assert(interval_ > 0, "sampling interval must be positive");
    tick_event_ = std::make_unique<sim::RecurringEvent>(
        sim_.queue(), static_cast<TickDelta>(interval_),
        [this] { tick(); }, "metric-sample");
}

void
MetricSampler::start()
{
    tick_event_->start(sim_.now() + interval_);
}

void
MetricSampler::tick()
{
    sample(sim_.now());
    // The RecurringEvent rearms itself after this callback returns.
}

void
MetricSampler::finish(Ticks end)
{
    if (!samples_.empty() && samples_.back().at >= end)
        return;
    sample(end);
}

void
MetricSampler::sample(Ticks now)
{
    MetricSample s;
    s.at = now;
    s.eden_used = vm_.heap().edenUsed();
    s.survivor_used = vm_.heap().survivorUsed();
    s.old_used = vm_.heap().oldUsed();
    s.live_bytes = vm_.heap().liveBytes();
    s.run_queue = vm_.scheduler().totalReadyQueued();
    s.running = vm_.scheduler().runningCount();
    s.lock_blocked = vm_.monitors().totalQueuedWaiters();
    if (const jvm::TaskAdmission *adm = vm_.taskAdmission()) {
        s.gov_target = adm->admissionTarget();
        s.gov_parked = adm->parkedNow();
    }
    samples_.push_back(s);

    summary_.eden_used.add(static_cast<double>(s.eden_used));
    summary_.old_used.add(static_cast<double>(s.old_used));
    summary_.live_bytes.add(static_cast<double>(s.live_bytes));
    summary_.run_queue.add(static_cast<double>(s.run_queue));
    summary_.running.add(static_cast<double>(s.running));
    summary_.lock_blocked.add(static_cast<double>(s.lock_blocked));
    summary_.gov_parked.add(static_cast<double>(s.gov_parked));

    if (timeline_ != nullptr) {
        timeline_->counter(kVmPid, "heap", now,
                           {targ("eden", s.eden_used),
                            targ("survivor", s.survivor_used),
                            targ("old", s.old_used),
                            targ("live", s.live_bytes)});
        timeline_->counter(kVmPid, "scheduler", now,
                           {targ("run_queue", s.run_queue),
                            targ("running", s.running)});
        timeline_->counter(kVmPid, "locks", now,
                           {targ("blocked_now", s.lock_blocked)});
        // The "governor" counter track belongs to the recorder (one
        // point per decision); the sampler mirrors its own polled view
        // on a separate track, and only when a governor is installed so
        // ungoverned timelines keep their track set.
        if (vm_.taskAdmission() != nullptr) {
            timeline_->counter(kVmPid, "admission", now,
                               {targ("target", s.gov_target),
                                targ("parked", s.gov_parked)});
        }
    }

    if (!gauges_.empty()) {
        std::vector<std::uint64_t> row;
        row.reserve(gauges_.size());
        std::vector<TraceArg> args;
        for (const auto &[name, poll] : gauges_) {
            const std::uint64_t v = poll();
            row.push_back(v);
            if (timeline_ != nullptr)
                args.push_back(targ(name, v));
        }
        gauge_rows_.push_back(std::move(row));
        if (timeline_ != nullptr)
            timeline_->counter(kVmPid, "gauges", now, args);
    }
}

const char *
MetricSampler::csvHeader()
{
    return "time_ns,eden_used,survivor_used,old_used,live_bytes,"
           "run_queue,running,lock_blocked,gov_target,gov_parked";
}

void
MetricSampler::writeCsv(std::ostream &os) const
{
    os << csvHeader();
    for (const auto &[name, poll] : gauges_)
        os << "," << name;
    os << "\n";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const MetricSample &s = samples_[i];
        os << s.at << "," << s.eden_used << "," << s.survivor_used << ","
           << s.old_used << "," << s.live_bytes << "," << s.run_queue
           << "," << s.running << "," << s.lock_blocked << ","
           << s.gov_target << "," << s.gov_parked;
        if (!gauges_.empty()) {
            for (const std::uint64_t v : gauge_rows_[i])
                os << "," << v;
        }
        os << "\n";
    }
}

} // namespace jscale::telemetry
