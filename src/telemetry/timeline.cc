#include "telemetry/timeline.hh"

#include <cstdio>

#include "base/logging.hh"

namespace jscale::telemetry {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

TraceArg
targ(std::string key, std::string value)
{
    return {std::move(key), std::move(value), /*quoted=*/true};
}

TraceArg
targ(std::string key, const char *value)
{
    return {std::move(key), std::string(value), /*quoted=*/true};
}

TraceArg
targ(std::string key, std::uint64_t value)
{
    return {std::move(key), std::to_string(value), /*quoted=*/false};
}

TraceArg
targ(std::string key, std::int64_t value)
{
    return {std::move(key), std::to_string(value), /*quoted=*/false};
}

TraceArg
targ(std::string key, std::uint32_t value)
{
    return targ(std::move(key), static_cast<std::uint64_t>(value));
}

TraceArg
targ(std::string key, double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return {std::move(key), std::string(buf), /*quoted=*/false};
}

namespace {

/** Render nanosecond Ticks as exact microseconds ("12.345"). */
std::string
microseconds(Ticks ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string(buf);
}

} // namespace

Timeline::Timeline(std::ostream &os) : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

Timeline::~Timeline()
{
    finish();
}

void
Timeline::beginEvent(const std::string &name, const std::string &cat,
                     char ph, std::uint32_t pid, std::uint32_t tid,
                     Ticks ts)
{
    jscale_assert(!finished_, "event recorded after Timeline::finish");
    if (events_ > 0)
        os_ << ",";
    os_ << "\n{\"name\":\"" << jsonEscape(name) << "\"";
    if (!cat.empty())
        os_ << ",\"cat\":\"" << jsonEscape(cat) << "\"";
    os_ << ",\"ph\":\"" << ph << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"ts\":" << microseconds(ts);
    ++events_;
}

void
Timeline::writeArgs(const TraceArgs &args)
{
    if (args.empty())
        return;
    os_ << ",\"args\":{";
    bool first = true;
    for (const TraceArg &a : args) {
        if (!first)
            os_ << ",";
        first = false;
        os_ << "\"" << jsonEscape(a.key) << "\":";
        if (a.quoted)
            os_ << "\"" << jsonEscape(a.value) << "\"";
        else
            os_ << a.value;
    }
    os_ << "}";
}

void
Timeline::endEvent()
{
    os_ << "}";
}

void
Timeline::processName(std::uint32_t pid, const std::string &name)
{
    beginEvent("process_name", "", 'M', pid, 0, 0);
    writeArgs({targ("name", name)});
    endEvent();
}

void
Timeline::threadName(std::uint32_t pid, std::uint32_t tid,
                     const std::string &name)
{
    beginEvent("thread_name", "", 'M', pid, tid, 0);
    writeArgs({targ("name", name)});
    endEvent();
}

void
Timeline::span(std::uint32_t pid, std::uint32_t tid,
               const std::string &name, const std::string &cat,
               Ticks begin, Ticks end, const TraceArgs &args)
{
    jscale_assert(end >= begin, "span '", name, "' ends before it begins");
    beginEvent(name, cat, 'X', pid, tid, begin);
    os_ << ",\"dur\":" << microseconds(end - begin);
    writeArgs(args);
    endEvent();
}

void
Timeline::instant(std::uint32_t pid, std::uint32_t tid,
                  const std::string &name, const std::string &cat,
                  Ticks at, const TraceArgs &args)
{
    beginEvent(name, cat, 'i', pid, tid, at);
    os_ << ",\"s\":\"t\""; // thread-scoped instant
    writeArgs(args);
    endEvent();
}

void
Timeline::counter(std::uint32_t pid, const std::string &name, Ticks at,
                  const TraceArgs &args)
{
    beginEvent(name, "metrics", 'C', pid, 0, at);
    writeArgs(args);
    endEvent();
}

void
Timeline::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "\n]}\n";
    os_.flush();
}

} // namespace jscale::telemetry
