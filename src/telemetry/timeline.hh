/**
 * @file
 * Timeline: a streaming Chrome trace-event JSON writer.
 *
 * Produces the "JSON Array Format" understood by Perfetto and
 * chrome://tracing: one object per event with pid/tid (track), phase
 * ("X" complete span, "i" instant, "C" counter, "M" metadata), a
 * microsecond timestamp and optional args. Events are written as they
 * are recorded, so memory stays O(1) in trace length; Perfetto sorts by
 * timestamp at load time, so emission order does not matter.
 *
 * Timestamps are rendered from integer nanosecond Ticks as exact
 * "<us>.<ns>" decimals — no double rounding — so span totals in the
 * JSON match the simulator's tick accounting.
 */

#ifndef JSCALE_TELEMETRY_TIMELINE_HH
#define JSCALE_TELEMETRY_TIMELINE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/units.hh"

namespace jscale::telemetry {

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** One key/value argument attached to a trace event. */
struct TraceArg
{
    std::string key;
    /** Rendered value; quoted and escaped when @p quoted. */
    std::string value;
    bool quoted = true;
};

/** String argument. */
TraceArg targ(std::string key, std::string value);
TraceArg targ(std::string key, const char *value);

/** Numeric arguments (rendered unquoted). */
TraceArg targ(std::string key, std::uint64_t value);
TraceArg targ(std::string key, std::int64_t value);
TraceArg targ(std::string key, std::uint32_t value);
TraceArg targ(std::string key, double value);

/** Trace-event argument list. */
using TraceArgs = std::vector<TraceArg>;

/**
 * The streaming writer. Construct over an output stream, record events,
 * then call finish() (the destructor finishes implicitly). Not
 * thread-safe; the simulator is single-threaded by design.
 */
class Timeline
{
  public:
    explicit Timeline(std::ostream &os);
    ~Timeline();

    Timeline(const Timeline &) = delete;
    Timeline &operator=(const Timeline &) = delete;

    /** Name the track group @p pid ("process_name" metadata). */
    void processName(std::uint32_t pid, const std::string &name);

    /** Name track @p tid within @p pid ("thread_name" metadata). */
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    /** Complete span [begin, end] on track (pid, tid). */
    void span(std::uint32_t pid, std::uint32_t tid,
              const std::string &name, const std::string &cat,
              Ticks begin, Ticks end, const TraceArgs &args = {});

    /** Instant event at @p at on track (pid, tid). */
    void instant(std::uint32_t pid, std::uint32_t tid,
                 const std::string &name, const std::string &cat,
                 Ticks at, const TraceArgs &args = {});

    /**
     * Counter event: every numeric arg becomes one series on the
     * counter track @p name of process @p pid.
     */
    void counter(std::uint32_t pid, const std::string &name, Ticks at,
                 const TraceArgs &args);

    /** Terminate the JSON document; further events are rejected. */
    void finish();

    /** Total events written so far (including metadata). */
    std::uint64_t events() const { return events_; }

  private:
    void beginEvent(const std::string &name, const std::string &cat,
                    char ph, std::uint32_t pid, std::uint32_t tid,
                    Ticks ts);
    void writeArgs(const TraceArgs &args);
    void endEvent();

    std::ostream &os_;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

} // namespace jscale::telemetry

#endif // JSCALE_TELEMETRY_TIMELINE_HH
