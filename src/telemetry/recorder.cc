#include "telemetry/recorder.hh"

#include "jvm/runtime/vm.hh"
#include "os/scheduler.hh"

namespace jscale::telemetry {

TelemetryRecorder::TelemetryRecorder(Timeline &timeline)
    : timeline_(timeline)
{
    timeline_.processName(kCoresPid, "cores");
    timeline_.processName(kThreadsPid, "threads");
    timeline_.processName(kVmPid, "vm");
    timeline_.threadName(kVmPid, kSafepointTid, "safepoint");
    timeline_.threadName(kVmPid, kGcTid, "gc");
    timeline_.threadName(kVmPid, kConcMarkTid, "concurrent-mark");
}

TelemetryRecorder::~TelemetryRecorder()
{
    detach();
}

void
TelemetryRecorder::attach(jvm::JavaVm &vm)
{
    detach();
    vm_ = &vm;
    vm_->listeners().add(this);
    vm_->scheduler().listeners().add(this);
}

void
TelemetryRecorder::detach()
{
    if (vm_ == nullptr)
        return;
    vm_->listeners().remove(this);
    vm_->scheduler().listeners().remove(this);
    vm_ = nullptr;
}

TelemetryRecorder::ThreadTrack &
TelemetryRecorder::threadTrack(const os::OsThread &t)
{
    auto [it, inserted] = threads_.try_emplace(t.id());
    if (inserted) {
        it->second.tid = t.id();
        timeline_.threadName(kThreadsPid, t.id(), t.name());
    }
    return it->second;
}

TelemetryRecorder::CoreTrack &
TelemetryRecorder::coreTrack(machine::CoreId core)
{
    CoreTrack &ct = cores_[core];
    if (!ct.named) {
        ct.named = true;
        timeline_.threadName(kCoresPid, core,
                             "core " + std::to_string(core));
    }
    return ct;
}

void
TelemetryRecorder::closeState(ThreadTrack &tr, Ticks now)
{
    if (!tr.open) {
        return;
    }
    tr.open = false;
    if (now == tr.since)
        return; // zero-length state; skip the noise
    TraceArgs args;
    if (tr.monitor != kNoMonitor)
        args.push_back(
            targ("monitor", static_cast<std::uint64_t>(tr.monitor)));
    timeline_.span(kThreadsPid, tr.tid, tr.label, "state", tr.since, now,
                   args);
}

void
TelemetryRecorder::onDispatch(const os::OsThread &t, machine::CoreId core,
                              Ticks overhead, bool stolen, Ticks now)
{
    CoreTrack &ct = coreTrack(core);
    if (!ct.busy && now > ct.idle_since) {
        timeline_.span(kCoresPid, core, "idle", "idle", ct.idle_since,
                       now);
    }
    ct.busy = true;
    ct.runner = t.name();
    ct.runner_id = t.id();
    ct.stolen = stolen;
    ct.overhead = overhead;
    ct.burst_since = now;
}

void
TelemetryRecorder::onBurstEnd(const os::OsThread &t, machine::CoreId core,
                              Ticks started, bool preempted, Ticks now)
{
    CoreTrack &ct = coreTrack(core);
    TraceArgs args = {
        targ("thread", static_cast<std::uint64_t>(t.id())),
        targ("overhead_ns", static_cast<std::uint64_t>(ct.overhead)),
    };
    if (ct.stolen)
        args.push_back(targ("stolen", "true"));
    if (preempted)
        args.push_back(targ("preempted", "true"));
    timeline_.span(kCoresPid, core, t.name(), "burst", started, now, args);
    if (preempted) {
        timeline_.instant(kCoresPid, core, "preempt", "sched", now,
                          {targ("thread",
                                static_cast<std::uint64_t>(t.id()))});
    }
    ct.busy = false;
    ct.idle_since = now;
}

void
TelemetryRecorder::onMigrate(const os::OsThread &t, machine::CoreId from,
                             machine::CoreId to, Ticks now)
{
    timeline_.instant(kCoresPid, to, "migrate", "sched", now,
                      {targ("thread", static_cast<std::uint64_t>(t.id())),
                       targ("from", static_cast<std::uint64_t>(from)),
                       targ("to", static_cast<std::uint64_t>(to))});
}

void
TelemetryRecorder::onThreadState(const os::OsThread &t,
                                 os::ThreadState prev, Ticks now)
{
    (void)prev;
    ThreadTrack &tr = threadTrack(t);
    std::string label;
    std::uint32_t monitor = kNoMonitor;
    switch (t.state()) {
      case os::ThreadState::Running:
        label = "running";
        break;
      case os::ThreadState::Ready:
        label = in_safepoint_ ? "at-safepoint" : "ready-wait";
        break;
      case os::ThreadState::Blocked: {
        label = "blocked";
        if (t.kind() == os::ThreadKind::Mutator) {
            // Mutators are registered first, so ThreadId == MutatorIndex.
            const auto it = pending_monitor_.find(
                static_cast<jvm::MutatorIndex>(t.id()));
            if (it != pending_monitor_.end()) {
                label = "lock-blocked";
                monitor = it->second;
                pending_monitor_.erase(it);
            }
        }
        break;
      }
      case os::ThreadState::Sleeping:
        label = "sleeping";
        break;
      case os::ThreadState::New:
      case os::ThreadState::Finished:
        break;
    }
    closeState(tr, now);
    if (label.empty())
        return;
    tr.label = std::move(label);
    tr.since = now;
    tr.open = true;
    tr.monitor = monitor;
}

void
TelemetryRecorder::onWorldStopRequested(Ticks now)
{
    in_safepoint_ = true;
    // Threads already queued keep waiting through the safepoint; relabel
    // the remainder of their wait so safepoint time is visible per thread.
    for (auto &[id, tr] : threads_) {
        (void)id;
        if (tr.open && tr.label == "ready-wait") {
            closeState(tr, now);
            tr.label = "at-safepoint";
            tr.since = now;
            tr.open = true;
            tr.monitor = kNoMonitor;
        }
    }
}

void
TelemetryRecorder::onWorldResumed(Ticks now)
{
    in_safepoint_ = false;
    for (auto &[id, tr] : threads_) {
        (void)id;
        if (tr.open && tr.label == "at-safepoint") {
            closeState(tr, now);
            tr.label = "ready-wait";
            tr.since = now;
            tr.open = true;
            tr.monitor = kNoMonitor;
        }
    }
}

void
TelemetryRecorder::onMonitorContended(jvm::MutatorIndex thread,
                                      jvm::MonitorId monitor, Ticks now)
{
    (void)now;
    pending_monitor_[thread] = monitor;
}

void
TelemetryRecorder::onSafepointReached(std::uint64_t sequence, Ticks ttsp,
                                      Ticks now)
{
    timeline_.span(kVmPid, kSafepointTid, "bring-to-stop", "safepoint",
                   now - ttsp, now, {targ("sequence", sequence)});
}

void
TelemetryRecorder::onGcPhase(std::uint64_t sequence, jvm::GcKind kind,
                             const char *phase, Ticks begin, Ticks end)
{
    timeline_.span(kVmPid, kGcTid, phase, "gc-phase", begin, end,
                   {targ("sequence", sequence),
                    targ("kind", jvm::gcKindName(kind))});
}

void
TelemetryRecorder::onGcEnd(const jvm::GcEvent &event, Ticks now)
{
    (void)now;
    timeline_.span(
        kVmPid, kGcTid, jvm::gcKindName(event.kind), "gc",
        event.safepoint_at, event.finished_at,
        {targ("sequence", event.sequence),
         targ("ttsp_ns", static_cast<std::uint64_t>(
                             event.timeToSafepoint())),
         targ("moved_bytes", static_cast<std::uint64_t>(event.moved_bytes)),
         targ("promoted_bytes",
              static_cast<std::uint64_t>(event.promoted_bytes)),
         targ("reclaimed_bytes",
              static_cast<std::uint64_t>(event.reclaimed_bytes))});
}

void
TelemetryRecorder::onConcurrentMarkBegin(std::uint64_t cycle, Ticks now)
{
    mark_open_ = true;
    mark_cycle_ = cycle;
    mark_since_ = now;
}

void
TelemetryRecorder::onConcurrentMarkEnd(std::uint64_t cycle, bool aborted,
                                       Ticks now)
{
    if (!mark_open_)
        return;
    mark_open_ = false;
    TraceArgs args = {targ("cycle", cycle)};
    if (aborted)
        args.push_back(targ("aborted", "true"));
    timeline_.span(kVmPid, kConcMarkTid, "concurrent-mark", "gc",
                   mark_since_, now, args);
}

void
TelemetryRecorder::onGovernorDecision(std::uint32_t target,
                                      std::uint32_t active,
                                      std::uint32_t parked,
                                      std::uint64_t tasks_delta, Ticks now)
{
    timeline_.counter(
        kVmPid, "governor", now,
        {targ("target", static_cast<std::uint64_t>(target)),
         targ("active", static_cast<std::uint64_t>(active)),
         targ("parked", static_cast<std::uint64_t>(parked)),
         targ("tasks", tasks_delta)});
}

void
TelemetryRecorder::trafficCounter(Ticks now)
{
    timeline_.counter(
        kVmPid, "traffic", now,
        {targ("queued",
              static_cast<std::uint64_t>(queued_requests_.size())),
         targ("inflight", requests_inflight_)});
}

void
TelemetryRecorder::onRequestArrival(std::uint32_t tenant,
                                    std::uint64_t request, Ticks now)
{
    (void)tenant; // one recorder per VM; probes arrive on its chain only
    queued_requests_.insert(request);
    trafficCounter(now);
}

void
TelemetryRecorder::onRequestShed(std::uint32_t tenant,
                                 std::uint64_t request, Ticks now)
{
    (void)tenant;
    ++requests_shed_;
    timeline_.instant(kVmPid, kSafepointTid, "request-shed", "traffic",
                      now,
                      {targ("request", request),
                       targ("shed_total", requests_shed_)});
    if (queued_requests_.erase(request) > 0)
        trafficCounter(now);
}

void
TelemetryRecorder::onRequestDispatched(std::uint32_t tenant,
                                       std::uint64_t request,
                                       jvm::MutatorIndex thread, Ticks now)
{
    (void)tenant;
    (void)thread;
    queued_requests_.erase(request);
    ++requests_inflight_;
    trafficCounter(now);
}

void
TelemetryRecorder::onRequestCompleted(std::uint32_t tenant,
                                      std::uint64_t request,
                                      jvm::MutatorIndex thread, Ticks now)
{
    (void)tenant;
    (void)request;
    (void)thread;
    if (requests_inflight_ > 0)
        --requests_inflight_;
    trafficCounter(now);
}

void
TelemetryRecorder::finish(Ticks end)
{
    if (finished_)
        return;
    finished_ = true;
    for (auto &[id, tr] : threads_) {
        (void)id;
        closeState(tr, end);
    }
    for (auto &[core, ct] : cores_) {
        if (ct.busy) {
            timeline_.span(kCoresPid, core, ct.runner, "burst",
                           ct.burst_since, end,
                           {targ("thread", static_cast<std::uint64_t>(
                                               ct.runner_id)),
                            targ("truncated", "true")});
        } else if (end > ct.idle_since) {
            timeline_.span(kCoresPid, core, "idle", "idle", ct.idle_since,
                           end);
        }
    }
    if (mark_open_) {
        mark_open_ = false;
        timeline_.span(kVmPid, kConcMarkTid, "concurrent-mark", "gc",
                       mark_since_, end,
                       {targ("cycle", mark_cycle_),
                        targ("truncated", "true")});
    }
}

} // namespace jscale::telemetry
