#include "telemetry/profile_tracks.hh"

#include <string>

#include "jvm/runtime/vm.hh"
#include "telemetry/recorder.hh"
#include "telemetry/timeline.hh"

namespace jscale::telemetry {

void
emitProfileTracks(Timeline &timeline, const jvm::ProfileSummary &profile,
                  Ticks end)
{
    if (!profile.enabled)
        return;

    timeline.processName(kProfilePid, "profile");

    // Blame decomposition as a counter track: one series per non-empty
    // bucket, two points so the bands span the whole run.
    TraceArgs blame;
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        if (profile.bucket_total[i] == 0)
            continue;
        blame.push_back(
            targ(jvm::waitBucketName(static_cast<jvm::WaitBucket>(i)),
                 static_cast<std::uint64_t>(profile.bucket_total[i])));
    }
    if (!blame.empty()) {
        timeline.counter(kProfilePid, "blame", 0, blame);
        timeline.counter(kProfilePid, "blame", end, blame);
    }

    // Top-K slowest tasks: one track each, span args carry the full
    // bucket breakdown so the tail is inspectable in Perfetto.
    std::uint32_t rank = 1;
    for (const jvm::SlowTaskRecord &rec : profile.slowest) {
        timeline.threadName(kProfilePid, rank,
                            "slow #" + std::to_string(rank));
        TraceArgs args;
        args.push_back(targ("task", rec.task));
        args.push_back(targ("thread",
                            static_cast<std::uint64_t>(rec.thread)));
        args.push_back(targ("wall_ns",
                            static_cast<std::uint64_t>(rec.wall())));
        for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
            if (rec.buckets[i] == 0)
                continue;
            args.push_back(
                targ(jvm::waitBucketName(static_cast<jvm::WaitBucket>(i)),
                     static_cast<std::uint64_t>(rec.buckets[i])));
        }
        timeline.span(kProfilePid, rank,
                      "task " + std::to_string(rec.task), "slow-task",
                      rec.start, rec.end, args);
        ++rank;
    }
}

} // namespace jscale::telemetry
