/**
 * @file
 * Profile-to-timeline bridge: renders a run's wait-state attribution
 * (jvm::ProfileSummary) into its own Perfetto track group.
 *
 * Emitted tracks, all under the "profile" process (kProfilePid):
 *
 *   - one counter track "blame" with one series per wait bucket, two
 *     points (run start and end) so Perfetto draws the run's total
 *     blame decomposition as flat bands;
 *   - one span track per slowest task ("slow #<rank>"), carrying the
 *     task's full bucket breakdown as span args, so the top-K tail
 *     tasks can be inspected next to the core/thread tracks they
 *     overlap.
 *
 * Pure rendering: reads the summary, writes trace events, touches no
 * simulation state.
 */

#ifndef JSCALE_TELEMETRY_PROFILE_TRACKS_HH
#define JSCALE_TELEMETRY_PROFILE_TRACKS_HH

#include "base/units.hh"

namespace jscale::jvm {
struct ProfileSummary;
} // namespace jscale::jvm

namespace jscale::telemetry {

class Timeline;

/**
 * Render @p profile into @p timeline. @p end is the run's final
 * simulation time (closes the blame counter bands). No-op when the
 * summary is disabled.
 */
void emitProfileTracks(Timeline &timeline,
                       const jvm::ProfileSummary &profile, Ticks end);

} // namespace jscale::telemetry

#endif // JSCALE_TELEMETRY_PROFILE_TRACKS_HH
