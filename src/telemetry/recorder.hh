/**
 * @file
 * TelemetryRecorder: turns the runtime and scheduler probe streams into
 * a Chrome-trace timeline.
 *
 * The recorder subscribes to both probe chains (jvm::RuntimeListener and
 * os::SchedulerListener) and emits three track groups:
 *
 *  - pid 1 "cores":   one track per core. CPU bursts as spans named by
 *    the thread that ran (with dispatch overhead / steal / preempt
 *    args), idle gaps as explicit "idle" spans, migrations and
 *    preemptions as instants.
 *  - pid 2 "threads": one track per OS thread. Contiguous state spans:
 *    running, ready-wait, at-safepoint (ready while a stop-the-world is
 *    in progress), lock-blocked (with the contended monitor id),
 *    blocked, sleeping.
 *  - pid 3 "vm":      safepoint bring-to-stop spans (track 0), GC
 *    umbrella + component-phase spans (track 1), concurrent-mark cycle
 *    spans (track 2).
 *
 * Span arithmetic is exact: bring-to-stop spans sum to the run's
 * total_ttsp and GC phase spans partition [safepoint, finish], so the
 * timeline totals reconcile with RunResult's tick accounting.
 */

#ifndef JSCALE_TELEMETRY_RECORDER_HH
#define JSCALE_TELEMETRY_RECORDER_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "base/units.hh"
#include "jvm/runtime/listener.hh"
#include "os/sched_listener.hh"
#include "telemetry/timeline.hh"

namespace jscale::jvm {
class JavaVm;
} // namespace jscale::jvm

namespace jscale::telemetry {

/** Track-group (pid) layout of the emitted trace. */
enum TrackGroup : std::uint32_t
{
    kCoresPid = 1,
    kThreadsPid = 2,
    kVmPid = 3,
    kFaultsPid = 4,
    kProfilePid = 5,
};

/** Tracks within the "vm" group. */
enum VmTrack : std::uint32_t
{
    kSafepointTid = 0,
    kGcTid = 1,
    kConcMarkTid = 2,
};

/**
 * The probe-to-timeline bridge. Construct over a Timeline, attach() to a
 * VM before run(), call finish() with the run end time afterwards.
 */
class TelemetryRecorder : public jvm::RuntimeListener,
                          public os::SchedulerListener
{
  public:
    explicit TelemetryRecorder(Timeline &timeline);
    ~TelemetryRecorder() override;

    TelemetryRecorder(const TelemetryRecorder &) = delete;
    TelemetryRecorder &operator=(const TelemetryRecorder &) = delete;

    /** Subscribe to @p vm's runtime and scheduler probe chains. */
    void attach(jvm::JavaVm &vm);

    /** Unsubscribe (idempotent; also run by the destructor). */
    void detach();

    /**
     * Close all open spans at @p end (run end): per-thread state spans,
     * in-flight bursts, trailing idle gaps and an unfinished concurrent
     * mark cycle.
     */
    void finish(Ticks end);

    Timeline &timeline() { return timeline_; }

    /** @name os::SchedulerListener */
    /** @{ */
    void onDispatch(const os::OsThread &t, machine::CoreId core,
                    Ticks overhead, bool stolen, Ticks now) override;
    void onBurstEnd(const os::OsThread &t, machine::CoreId core,
                    Ticks started, bool preempted, Ticks now) override;
    void onMigrate(const os::OsThread &t, machine::CoreId from,
                   machine::CoreId to, Ticks now) override;
    void onThreadState(const os::OsThread &t, os::ThreadState prev,
                       Ticks now) override;
    void onWorldStopRequested(Ticks now) override;
    void onWorldResumed(Ticks now) override;
    /** @} */

    /** @name jvm::RuntimeListener */
    /** @{ */
    void onMonitorContended(jvm::MutatorIndex thread,
                            jvm::MonitorId monitor, Ticks now) override;
    void onSafepointReached(std::uint64_t sequence, Ticks ttsp,
                            Ticks now) override;
    void onGcPhase(std::uint64_t sequence, jvm::GcKind kind,
                   const char *phase, Ticks begin, Ticks end) override;
    void onGcEnd(const jvm::GcEvent &event, Ticks now) override;
    void onConcurrentMarkBegin(std::uint64_t cycle, Ticks now) override;
    void onConcurrentMarkEnd(std::uint64_t cycle, bool aborted,
                             Ticks now) override;
    void onGovernorDecision(std::uint32_t target, std::uint32_t active,
                            std::uint32_t parked,
                            std::uint64_t tasks_delta, Ticks now) override;
    void onRequestArrival(std::uint32_t tenant, std::uint64_t request,
                          Ticks now) override;
    void onRequestShed(std::uint32_t tenant, std::uint64_t request,
                       Ticks now) override;
    void onRequestDispatched(std::uint32_t tenant, std::uint64_t request,
                             jvm::MutatorIndex thread,
                             Ticks now) override;
    void onRequestCompleted(std::uint32_t tenant, std::uint64_t request,
                            jvm::MutatorIndex thread,
                            Ticks now) override;
    /** @} */

  private:
    /** Open state span on a thread track. */
    struct ThreadTrack
    {
        os::ThreadId tid = 0;
        std::string label;
        Ticks since = 0;
        bool open = false;
        /** Monitor id attached to the current lock-blocked span. */
        std::uint32_t monitor = kNoMonitor;
    };

    /** Core-track bookkeeping: the in-flight burst and the idle gap. */
    struct CoreTrack
    {
        bool busy = false;
        std::string runner;
        os::ThreadId runner_id = 0;
        bool stolen = false;
        Ticks overhead = 0;
        Ticks burst_since = 0;
        Ticks idle_since = 0;
        bool named = false;
    };

    static constexpr std::uint32_t kNoMonitor = ~0u;

    /** Current-state label for @p t given the safepoint flag. */
    std::string stateLabel(const os::OsThread &t);

    /** Ensure the per-thread track exists and is named. */
    ThreadTrack &threadTrack(const os::OsThread &t);
    CoreTrack &coreTrack(machine::CoreId core);

    /** Close the open state span (if any) and start @p label at @p now. */
    void switchState(const os::OsThread &t, const std::string &label,
                     Ticks now);
    void closeState(ThreadTrack &tr, Ticks now);

    Timeline &timeline_;
    jvm::JavaVm *vm_ = nullptr;

    std::map<os::ThreadId, ThreadTrack> threads_;
    std::map<machine::CoreId, CoreTrack> cores_;
    /** Monitor a mutator is about to block on (set by contention probe,
     *  consumed by the matching Blocked transition). */
    std::map<jvm::MutatorIndex, jvm::MonitorId> pending_monitor_;

    /** Emit the "traffic" counter point (queued + in-flight) at @p now. */
    void trafficCounter(Ticks now);

    /** Open-loop traffic model: ids admitted but not yet dispatched
     *  (drop-newest sheds are rejected pre-admission and never enter),
     *  plus the number of requests currently being served. */
    std::set<std::uint64_t> queued_requests_;
    std::uint64_t requests_inflight_ = 0;
    std::uint64_t requests_shed_ = 0;

    bool in_safepoint_ = false;
    bool mark_open_ = false;
    std::uint64_t mark_cycle_ = 0;
    Ticks mark_since_ = 0;
    bool finished_ = false;
};

} // namespace jscale::telemetry

#endif // JSCALE_TELEMETRY_RECORDER_HH
