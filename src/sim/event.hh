/**
 * @file
 * Discrete-event kernel: events and the event queue.
 *
 * Events are processed in (time, sequence) order, so two events scheduled
 * for the same tick always fire in the order they were scheduled — the
 * determinism guarantee the rest of the simulator builds on.
 *
 * The queue is a *calendar queue*: an array of time-bucketed FIFO lanes
 * (one "day" of simulated time per lane) plus an overflow store for
 * events beyond the current window. Scheduling appends to a lane in O(1);
 * dispatch walks the current lane, lazily sorting it by (time, sequence)
 * the first time it is consumed, so the dispatch order is identical to
 * the min-heap this structure replaced while deep queues stay
 * cache-friendly: a 256k-event backlog costs a handful of contiguous
 * lane scans instead of log-depth pointer-hops through a binary heap.
 * When the window drains, the overflow is redistributed and the bucket
 * width re-tuned to the pending events' span (see rebucket()).
 *
 * Cancellation is tombstone-based: descheduling records the entry's
 * sequence number in a cancellation set, and stale lane entries are
 * skimmed off without ever dereferencing the (possibly already
 * destroyed) event. The contract for event owners is therefore simple:
 * deschedule your events in your destructor and the queue may safely
 * outlive you. Cancellations are rare relative to dispatches, so the
 * set is a sorted small-vector probed by binary search, and the check on
 * every pop reduces to a single emptiness branch when nothing is
 * cancelled.
 */

#ifndef JSCALE_SIM_EVENT_HH
#define JSCALE_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/units.hh"

namespace jscale::sim {

class EventQueue;

/**
 * An occurrence scheduled at a simulated time. Subclasses implement
 * process(). Events are owned by their components (they are *not* deleted
 * by the queue) unless they opt into self-deletion via selfDeleting().
 */
class Event
{
  public:
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event's scheduled time is reached. */
    virtual void process() = 0;

    /** Human-readable name for diagnostics. */
    virtual std::string name() const { return "event"; }

    /** Whether the queue should delete this event after processing. */
    virtual bool selfDeleting() const { return false; }

    /** Time this event is scheduled for (valid only while scheduled). */
    Ticks when() const { return when_; }

    /** True while the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return scheduled_; }

  protected:
    Event() = default;

  private:
    friend class EventQueue;

    Ticks when_ = 0;
    std::uint64_t seq_ = 0;
    bool scheduled_ = false;
};

/** Convenience event wrapping a callable; self-deletes after firing. */
class LambdaEvent : public Event
{
  public:
    /** @param fn callback to run; @param what diagnostic label. */
    explicit LambdaEvent(std::function<void()> fn,
                         std::string what = "lambda")
        : fn_(std::move(fn)), what_(std::move(what))
    {}

    void process() override { fn_(); }
    std::string name() const override { return what_; }
    bool selfDeleting() const override { return true; }

  private:
    std::function<void()> fn_;
    std::string what_;
};

/**
 * Reusable callback event: the closure is allocated once at
 * construction and the event can be scheduled again after each firing,
 * so recurring uses pay no per-occurrence heap allocation (unlike a
 * fresh LambdaEvent per tick). Owned by its creator, never the queue.
 */
class CallbackEvent : public Event
{
  public:
    explicit CallbackEvent(std::function<void()> fn,
                           std::string what = "callback")
        : fn_(std::move(fn)), what_(std::move(what))
    {}

    void process() override { fn_(); }
    std::string name() const override { return what_; }

  private:
    std::function<void()> fn_;
    std::string what_;
};

/**
 * Deterministic calendar queue of events keyed by (time, insertion
 * sequence). Dispatch order is a total order — identical to a min-heap
 * keyed the same way — but schedule and dispatch are O(1) amortized
 * regardless of backlog depth.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p ev at absolute time @p when. Scheduling an
     * already-scheduled event is a simulator bug.
     */
    void schedule(Event *ev, Ticks when);

    /**
     * Remove @p ev from the queue; no-op if not scheduled. A
     * self-deleting event is deleted here (it can never be popped
     * again, so this is its last reachable moment); the caller must
     * not touch it afterwards.
     */
    void deschedule(Event *ev);

    /**
     * Deschedule (if needed) and schedule at a new time. Unlike
     * deschedule(), never deletes: the event is live again on exit.
     */
    void reschedule(Event *ev, Ticks when);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return live_; }

    /** Time of the earliest live event; queue must not be empty. */
    Ticks nextTime();

    /**
     * Pop and return the earliest live event, marking it unscheduled.
     * Returns nullptr when empty. The caller runs process() and honours
     * selfDeleting().
     */
    Event *pop();

    /** @name Calendar introspection (tests, benchmarks, docs) */
    /** @{ */
    /** Current number of lanes (always a power of two). */
    std::size_t laneCount() const { return lane_count_; }
    /** Current bucket width in ticks (one lane covers one width). */
    Ticks bucketWidth() const { return width_; }
    /** Times the window was re-tuned (lane count / width resized). */
    std::uint64_t rebucketCount() const { return rebuckets_; }
    /** @} */

  private:
    struct Entry
    {
        Ticks when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator<(const Entry &o) const
        {
            if (when != o.when)
                return when < o.when;
            return seq < o.seq;
        }
    };

    /**
     * Consumption state of one lane. Bulk entries (laid out by the
     * counting sort in rebucket()) and spill entries (appended by
     * schedule() afterwards) are folded together lazily, the first time
     * the lane is consumed from.
     */
    enum class LaneState : std::uint8_t
    {
        /** Untouched since rebucket/reset; bulk unsorted, spill maybe. */
        Raw,
        /** Bulk range sorted, no spill: consume straight from the arena. */
        Bulk,
        /** Bulk folded into spill and sorted: consume from the spill. */
        SpillSorted,
        /** Spill received an out-of-order append: re-sort on consume. */
        SpillDirty,
    };

    /** Remove @p ev from the queue without the self-deletion step. */
    void cancel(Event *ev);

    /** Place an entry into its lane, or the overflow when out-of-window. */
    void insertEntry(const Entry &e);

    /**
     * Settle the calendar on the earliest live entry and return it
     * (always the head of the current lane), or nullptr when no live
     * events remain. Advances past tombstones, sorts the current lane
     * when dirty, and refills the window from the overflow when a full
     * window drains.
     */
    Entry *front();

    /** Prepare the current lane for consumption (fold/sort as needed). */
    void settleLane(std::size_t i);

    /** Step past the consumed head entry of the current (settled) lane. */
    void consumeHead(std::size_t i);

    /**
     * True when lane @p i holds no unconsumed entries. Reads only the
     * flat index columns — never the spill vectors themselves — so the
     * day-by-day drain walk stays within a few densely packed arrays.
     */
    bool
    laneDrained(std::size_t i) const
    {
        if (lane_head_[i] < lane_begin_[i + 1])
            return false;
        return spill_head_[i] >= spill_count_[i];
    }

    /** Recycle a drained lane for its next day. */
    void resetLane(std::size_t i);

    /** Spill every unconsumed lane entry into the overflow. */
    void collapseLanes();

    /**
     * Re-tune the calendar to the overflow's contents: lane count scales
     * with the number of pending events, bucket width with their time
     * span (so the whole pending horizon fits in one window), and the
     * entries are laid out into the flat arena with a two-pass counting
     * sort — no per-lane allocation. Cancelled entries are dropped here.
     */
    void rebucket();

    /** Drop all remaining tombstones and reset the calendar (live_==0). */
    void purge();

    bool
    isCancelled(std::uint64_t seq) const
    {
        if (cancelled_.empty()) [[likely]]
            return false;
        return isCancelledSlow(seq);
    }

    bool isCancelledSlow(std::uint64_t seq) const;
    void dropCancelled(std::uint64_t seq);

    std::size_t laneOf(std::uint64_t day) const
    {
        return day & (lane_count_ - 1);
    }

    /** Number of lanes (power of two). */
    std::size_t lane_count_;
    /**
     * Flat bulk arena: rebucket() lays all in-window entries out here,
     * grouped by lane. Lane i owns [lane_begin_[i], lane_begin_[i+1])
     * and consumes from lane_head_[i].
     */
    std::vector<Entry> arena_;
    std::vector<std::uint32_t> lane_begin_;
    std::vector<std::uint32_t> lane_head_;
    /** Post-rebucket appends, per lane; consumed from spill_head_. */
    std::vector<std::vector<Entry>> spill_;
    std::vector<std::uint32_t> spill_head_;
    /** spill_[i].size() mirrored flat (drain never touches spill_). */
    std::vector<std::uint32_t> spill_count_;
    std::vector<LaneState> lane_state_;
    /** Unconsumed entries sitting in spill vectors (fast empty check). */
    std::size_t spill_used_ = 0;
    /** Entries beyond the current window, in no particular order. */
    std::vector<Entry> overflow_;
    /** Scratch buffer for rebucket()'s head-spacing sample. */
    std::vector<Ticks> head_whens_;
    /** Sequence numbers of cancelled entries, kept sorted. */
    std::vector<std::uint64_t> cancelled_;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
    /** Entries resident in lanes (tombstoned ones included). */
    std::size_t in_lanes_ = 0;
    /** Ticks covered by one lane (always 1 << width_shift_). */
    Ticks width_ = 1;
    /** log2(width_): day extraction is a shift, never a division. */
    unsigned width_shift_ = 0;
    /** Virtual day (when / width_) the calendar is currently draining. */
    std::uint64_t cur_day_ = 0;
    /**
     * Earliest day of any overflow entry (kNoDay when empty). The
     * cursor must never dispatch a lane entry of that day or later
     * without first folding the overflow back in — the window slides
     * forward as days drain, so "beyond the window at insert time" does
     * not stay beyond the window forever.
     */
    std::uint64_t overflow_min_day_ = ~std::uint64_t{0};
    /** Consecutive empty lanes stepped over (sparse-window detector). */
    std::size_t empty_streak_ = 0;
    std::uint64_t rebuckets_ = 0;
};

/**
 * Self-rescheduling periodic event: fires every @p period ticks from
 * start() until stop() or destruction. The callback is allocated once,
 * so periodic activities (metric sampling, phase rotation) stop paying
 * a heap-allocated closure per occurrence. The owner controls lifetime;
 * the destructor deschedules, so it may die before the queue.
 */
class RecurringEvent : public Event
{
  public:
    RecurringEvent(EventQueue &queue, TickDelta period,
                   std::function<void()> fn,
                   std::string what = "recurring")
        : queue_(queue), period_(period), fn_(std::move(fn)),
          what_(std::move(what))
    {}

    ~RecurringEvent() override { stop(); }

    /** Schedule the first firing at absolute time @p first. */
    void
    start(Ticks first)
    {
        stopped_ = false;
        queue_.schedule(this, first);
    }

    /** Cancel the pending firing and suppress rearming. */
    void
    stop()
    {
        stopped_ = true;
        queue_.deschedule(this);
    }

    void
    process() override
    {
        fn_();
        // Rearm after the callback (matching the fire-then-schedule
        // order of a hand-rolled lambda chain) unless the callback
        // stopped this event or rescheduled it itself.
        if (!stopped_ && !scheduled())
            queue_.schedule(this, when() + static_cast<Ticks>(period_));
    }

    std::string name() const override { return what_; }

    TickDelta period() const { return period_; }

  private:
    EventQueue &queue_;
    TickDelta period_;
    std::function<void()> fn_;
    std::string what_;
    bool stopped_ = false;
};

} // namespace jscale::sim

#endif // JSCALE_SIM_EVENT_HH
