/**
 * @file
 * Discrete-event kernel: events and the event queue.
 *
 * Events are processed in (time, sequence) order, so two events scheduled
 * for the same tick always fire in the order they were scheduled — the
 * determinism guarantee the rest of the simulator builds on.
 *
 * Cancellation is tombstone-based: descheduling records the entry's
 * sequence number in a cancellation set, and stale heap entries are
 * skimmed off without ever dereferencing the (possibly already
 * destroyed) event. The contract for event owners is therefore simple:
 * deschedule your events in your destructor and the queue may safely
 * outlive you.
 */

#ifndef JSCALE_SIM_EVENT_HH
#define JSCALE_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/units.hh"

namespace jscale::sim {

class EventQueue;

/**
 * An occurrence scheduled at a simulated time. Subclasses implement
 * process(). Events are owned by their components (they are *not* deleted
 * by the queue) unless they opt into self-deletion via selfDeleting().
 */
class Event
{
  public:
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event's scheduled time is reached. */
    virtual void process() = 0;

    /** Human-readable name for diagnostics. */
    virtual std::string name() const { return "event"; }

    /** Whether the queue should delete this event after processing. */
    virtual bool selfDeleting() const { return false; }

    /** Time this event is scheduled for (valid only while scheduled). */
    Ticks when() const { return when_; }

    /** True while the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return scheduled_; }

  protected:
    Event() = default;

  private:
    friend class EventQueue;

    Ticks when_ = 0;
    std::uint64_t seq_ = 0;
    bool scheduled_ = false;
};

/** Convenience event wrapping a callable; self-deletes after firing. */
class LambdaEvent : public Event
{
  public:
    /** @param fn callback to run; @param what diagnostic label. */
    explicit LambdaEvent(std::function<void()> fn,
                         std::string what = "lambda")
        : fn_(std::move(fn)), what_(std::move(what))
    {}

    void process() override { fn_(); }
    std::string name() const override { return what_; }
    bool selfDeleting() const override { return true; }

  private:
    std::function<void()> fn_;
    std::string what_;
};

/**
 * Deterministic min-heap of events keyed by (time, insertion sequence).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p ev at absolute time @p when. Scheduling an
     * already-scheduled event is a simulator bug.
     */
    void schedule(Event *ev, Ticks when);

    /** Remove @p ev from the queue; no-op if not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule (if needed) and schedule at a new time. */
    void reschedule(Event *ev, Ticks when);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return live_; }

    /** Time of the earliest live event; queue must not be empty. */
    Ticks nextTime();

    /**
     * Pop and return the earliest live event, marking it unscheduled.
     * Returns nullptr when empty. The caller runs process() and honours
     * selfDeleting().
     */
    Event *pop();

  private:
    struct Entry
    {
        Ticks when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** Drop cancelled entries off the heap top without touching them. */
    void skim();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
};

} // namespace jscale::sim

#endif // JSCALE_SIM_EVENT_HH
