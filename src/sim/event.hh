/**
 * @file
 * Discrete-event kernel: events and the event queue.
 *
 * Events are processed in (time, sequence) order, so two events scheduled
 * for the same tick always fire in the order they were scheduled — the
 * determinism guarantee the rest of the simulator builds on.
 *
 * Cancellation is tombstone-based: descheduling records the entry's
 * sequence number in a cancellation set, and stale heap entries are
 * skimmed off without ever dereferencing the (possibly already
 * destroyed) event. The contract for event owners is therefore simple:
 * deschedule your events in your destructor and the queue may safely
 * outlive you. Cancellations are rare relative to dispatches, so the
 * set is a sorted small-vector probed by binary search, and the skim on
 * every pop reduces to a single emptiness branch when nothing is
 * cancelled.
 */

#ifndef JSCALE_SIM_EVENT_HH
#define JSCALE_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "base/units.hh"

namespace jscale::sim {

class EventQueue;

/**
 * An occurrence scheduled at a simulated time. Subclasses implement
 * process(). Events are owned by their components (they are *not* deleted
 * by the queue) unless they opt into self-deletion via selfDeleting().
 */
class Event
{
  public:
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event's scheduled time is reached. */
    virtual void process() = 0;

    /** Human-readable name for diagnostics. */
    virtual std::string name() const { return "event"; }

    /** Whether the queue should delete this event after processing. */
    virtual bool selfDeleting() const { return false; }

    /** Time this event is scheduled for (valid only while scheduled). */
    Ticks when() const { return when_; }

    /** True while the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return scheduled_; }

  protected:
    Event() = default;

  private:
    friend class EventQueue;

    Ticks when_ = 0;
    std::uint64_t seq_ = 0;
    bool scheduled_ = false;
};

/** Convenience event wrapping a callable; self-deletes after firing. */
class LambdaEvent : public Event
{
  public:
    /** @param fn callback to run; @param what diagnostic label. */
    explicit LambdaEvent(std::function<void()> fn,
                         std::string what = "lambda")
        : fn_(std::move(fn)), what_(std::move(what))
    {}

    void process() override { fn_(); }
    std::string name() const override { return what_; }
    bool selfDeleting() const override { return true; }

  private:
    std::function<void()> fn_;
    std::string what_;
};

/**
 * Reusable callback event: the closure is allocated once at
 * construction and the event can be scheduled again after each firing,
 * so recurring uses pay no per-occurrence heap allocation (unlike a
 * fresh LambdaEvent per tick). Owned by its creator, never the queue.
 */
class CallbackEvent : public Event
{
  public:
    explicit CallbackEvent(std::function<void()> fn,
                           std::string what = "callback")
        : fn_(std::move(fn)), what_(std::move(what))
    {}

    void process() override { fn_(); }
    std::string name() const override { return what_; }

  private:
    std::function<void()> fn_;
    std::string what_;
};

/**
 * Deterministic min-heap of events keyed by (time, insertion sequence).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p ev at absolute time @p when. Scheduling an
     * already-scheduled event is a simulator bug.
     */
    void schedule(Event *ev, Ticks when);

    /**
     * Remove @p ev from the queue; no-op if not scheduled. A
     * self-deleting event is deleted here (it can never be popped
     * again, so this is its last reachable moment); the caller must
     * not touch it afterwards.
     */
    void deschedule(Event *ev);

    /**
     * Deschedule (if needed) and schedule at a new time. Unlike
     * deschedule(), never deletes: the event is live again on exit.
     */
    void reschedule(Event *ev, Ticks when);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return live_; }

    /** Time of the earliest live event; queue must not be empty. */
    Ticks nextTime();

    /**
     * Pop and return the earliest live event, marking it unscheduled.
     * Returns nullptr when empty. The caller runs process() and honours
     * selfDeleting().
     */
    Event *pop();

  private:
    struct Entry
    {
        Ticks when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** Remove @p ev from the queue without the self-deletion step. */
    void cancel(Event *ev);

    /** Drop cancelled entries off the heap top without touching them. */
    void
    skim()
    {
        // Hot path: nothing cancelled, nothing to do — one branch.
        if (cancelled_.empty()) [[likely]]
            return;
        skimSlow();
    }

    void skimSlow();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    /** Sequence numbers of cancelled entries, kept sorted. */
    std::vector<std::uint64_t> cancelled_;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
};

/**
 * Self-rescheduling periodic event: fires every @p period ticks from
 * start() until stop() or destruction. The callback is allocated once,
 * so periodic activities (metric sampling, phase rotation) stop paying
 * a heap-allocated closure per occurrence. The owner controls lifetime;
 * the destructor deschedules, so it may die before the queue.
 */
class RecurringEvent : public Event
{
  public:
    RecurringEvent(EventQueue &queue, TickDelta period,
                   std::function<void()> fn,
                   std::string what = "recurring")
        : queue_(queue), period_(period), fn_(std::move(fn)),
          what_(std::move(what))
    {}

    ~RecurringEvent() override { stop(); }

    /** Schedule the first firing at absolute time @p first. */
    void
    start(Ticks first)
    {
        stopped_ = false;
        queue_.schedule(this, first);
    }

    /** Cancel the pending firing and suppress rearming. */
    void
    stop()
    {
        stopped_ = true;
        queue_.deschedule(this);
    }

    void
    process() override
    {
        fn_();
        // Rearm after the callback (matching the fire-then-schedule
        // order of a hand-rolled lambda chain) unless the callback
        // stopped this event or rescheduled it itself.
        if (!stopped_ && !scheduled())
            queue_.schedule(this, when() + static_cast<Ticks>(period_));
    }

    std::string name() const override { return what_; }

    TickDelta period() const { return period_; }

  private:
    EventQueue &queue_;
    TickDelta period_;
    std::function<void()> fn_;
    std::string what_;
    bool stopped_ = false;
};

} // namespace jscale::sim

#endif // JSCALE_SIM_EVENT_HH
