/**
 * @file
 * The Simulation object: global clock, event dispatch loop and the
 * experiment-wide deterministic random seed from which every subsystem
 * forks its private stream.
 */

#ifndef JSCALE_SIM_SIMULATION_HH
#define JSCALE_SIM_SIMULATION_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/random.hh"
#include "base/units.hh"
#include "sim/event.hh"

namespace jscale::sim {

/**
 * Owns the event queue and the simulated clock. One Simulation per
 * experiment run; components hold a reference and schedule against it.
 */
class Simulation
{
  public:
    /** @param seed master seed; all component Rngs fork from it. */
    explicit Simulation(std::uint64_t seed = 1);

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    Ticks now() const { return now_; }

    /** Event queue (for schedule/deschedule). */
    EventQueue &queue() { return queue_; }

    /** Schedule @p ev at absolute time @p when (must be >= now()). */
    void schedule(Event *ev, Ticks when);

    /** Schedule @p ev @p delta ticks in the future. */
    void scheduleIn(Event *ev, TickDelta delta);

    /** Schedule a one-shot callback at absolute time @p when. */
    void scheduleAt(Ticks when, std::function<void()> fn,
                    std::string what = "lambda");

    /** Schedule a one-shot callback @p delta ticks in the future. */
    void scheduleAfter(TickDelta delta, std::function<void()> fn,
                       std::string what = "lambda");

    /**
     * Run until the queue drains or @p until is reached (0 = no limit).
     * @return the time at which the loop stopped.
     */
    Ticks run(Ticks until = 0);

    /** Process exactly one event; returns false if the queue was empty. */
    bool step();

    /** Request the run() loop to exit after the current event. */
    void requestStop() { stop_requested_ = true; }

    /** Number of events processed so far. */
    std::uint64_t eventsProcessed() const { return events_processed_; }

    /** Master seed the simulation was built with. */
    std::uint64_t seed() const { return seed_; }

    /** Fork a named random stream deterministically from the master seed. */
    Rng forkRng(std::uint64_t stream_id) const { return master_rng_.fork(stream_id); }

  private:
    EventQueue queue_;
    Ticks now_ = 0;
    bool stop_requested_ = false;
    std::uint64_t events_processed_ = 0;
    std::uint64_t seed_;
    Rng master_rng_;
};

} // namespace jscale::sim

#endif // JSCALE_SIM_SIMULATION_HH
