#include "sim/event.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"

namespace jscale::sim {

namespace {

/** Smallest calendar (idle queues stay tiny). */
constexpr std::size_t kMinLanes = 16;
/** Largest calendar; deeper backlogs share lanes (still O(1) amortized). */
constexpr std::size_t kMaxLanes = 1 << 16;
/**
 * Consecutive empty lanes stepped over before the calendar collapses
 * and re-tunes itself: bounds the cost of walking a window that became
 * much sparser than it was when the bucket width was last chosen.
 */
constexpr std::size_t kCollapseStreak = 256;
/** Soonest events sampled to estimate the head's inter-event spacing. */
constexpr std::size_t kHeadSample = 64;

} // namespace

Event::~Event()
{
    // Owners must deschedule their events before destroying them; a
    // scheduled event dying would leave a dangling pointer in the queue.
    jscale_assert(!scheduled_, "event destroyed while scheduled");
}

EventQueue::EventQueue()
    : lane_count_(kMinLanes), lane_begin_(kMinLanes + 1, 0),
      lane_head_(kMinLanes, 0), spill_(kMinLanes),
      spill_head_(kMinLanes, 0), spill_count_(kMinLanes, 0),
      lane_state_(kMinLanes, LaneState::Raw)
{}

EventQueue::~EventQueue()
{
    // Drain remaining live events, honouring self-deletion so no
    // LambdaEvents leak when a simulation ends early.
    while (Event *ev = pop()) {
        if (ev->selfDeleting())
            delete ev;
    }
}

void
EventQueue::schedule(Event *ev, Ticks when)
{
    jscale_assert(ev != nullptr, "schedule of null event");
    jscale_assert(!ev->scheduled_,
                  "event '", ev->name(), "' is already scheduled");
    ev->when_ = when;
    ev->seq_ = next_seq_++;
    ev->scheduled_ = true;
    if (in_lanes_ == 0 && overflow_.empty()) {
        // Empty calendar: snap the window to the event so it lands in a
        // lane instead of the overflow.
        cur_day_ = when >> width_shift_;
        empty_streak_ = 0;
    }
    insertEntry(Entry{when, ev->seq_, ev});
    ++live_;
}

void
EventQueue::insertEntry(const Entry &e)
{
    std::uint64_t day = e.when >> width_shift_;
    if (day < cur_day_) {
        // Scheduled behind the cursor (the min-heap allowed this too):
        // it joins the current lane and sorts to its front.
        day = cur_day_;
    }
    if (day - cur_day_ >= lane_count_) {
        overflow_.push_back(e);
        overflow_min_day_ = std::min(overflow_min_day_, day);
        return;
    }
    const std::size_t i = laneOf(day);
    std::vector<Entry> &spill = spill_[i];
    switch (lane_state_[i]) {
      case LaneState::Raw:
        break; // spill is folded and sorted on first consumption
      case LaneState::Bulk:
        // The lane's bulk remainder was being consumed directly; fold
        // it with the new spill entry when next consumed.
        lane_state_[i] = LaneState::Raw;
        break;
      case LaneState::SpillSorted:
        if (spill_head_[i] < spill.size() && e < spill.back()) {
            // Keep the active lane consumable: insert in position
            // rather than re-sorting the remainder on the next pop.
            // The memmove is bounded by the lane population, while a
            // dirty-flag re-sort would pay O(k log k) per interleaved
            // schedule/pop cycle.
            spill.insert(std::upper_bound(spill.begin() + spill_head_[i],
                                          spill.end(), e),
                         e);
            ++spill_count_[i];
            ++spill_used_;
            ++in_lanes_;
            return;
        }
        break;
      case LaneState::SpillDirty:
        break;
    }
    spill.push_back(e);
    ++spill_count_[i];
    ++spill_used_;
    ++in_lanes_;
}

void
EventQueue::cancel(Event *ev)
{
    jscale_assert(ev != nullptr, "deschedule of null event");
    if (!ev->scheduled_)
        return;
    ev->scheduled_ = false;
    cancelled_.insert(
        std::lower_bound(cancelled_.begin(), cancelled_.end(), ev->seq_),
        ev->seq_);
    --live_;
}

void
EventQueue::deschedule(Event *ev)
{
    jscale_assert(ev != nullptr, "deschedule of null event");
    if (!ev->scheduled_)
        return;
    cancel(ev);
    // A cancelled self-deleting event will never be popped again (the
    // tombstone is dropped without dereferencing it), so deleting it
    // here is the only way it is ever reclaimed.
    if (ev->selfDeleting())
        delete ev;
}

void
EventQueue::reschedule(Event *ev, Ticks when)
{
    cancel(ev);
    schedule(ev, when);
}

bool
EventQueue::isCancelledSlow(std::uint64_t seq) const
{
    const auto it =
        std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
    return it != cancelled_.end() && *it == seq;
}

void
EventQueue::dropCancelled(std::uint64_t seq)
{
    const auto it =
        std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
    jscale_assert(it != cancelled_.end() && *it == seq,
                  "tombstone missing from cancellation set");
    cancelled_.erase(it);
}

void
EventQueue::resetLane(std::size_t i)
{
    // Collapse the (drained) bulk range and recycle the spill storage;
    // its capacity is retained so steady-state scheduling allocates
    // nothing once warm.
    lane_head_[i] = lane_begin_[i + 1];
    if (spill_count_[i] != 0) {
        spill_[i].clear();
        spill_head_[i] = 0;
        spill_count_[i] = 0;
    }
    lane_state_[i] = LaneState::Raw;
}

void
EventQueue::purge()
{
    arena_.clear();
    std::fill(lane_begin_.begin(), lane_begin_.end(), 0u);
    std::fill(lane_head_.begin(), lane_head_.end(), 0u);
    if (spill_used_ > 0) {
        for (std::vector<Entry> &s : spill_)
            s.clear();
        std::fill(spill_head_.begin(), spill_head_.end(), 0u);
        std::fill(spill_count_.begin(), spill_count_.end(), 0u);
        spill_used_ = 0;
    }
    std::fill(lane_state_.begin(), lane_state_.end(), LaneState::Raw);
    overflow_.clear();
    overflow_min_day_ = ~std::uint64_t{0};
    cancelled_.clear();
    in_lanes_ = 0;
    empty_streak_ = 0;
}

void
EventQueue::collapseLanes()
{
    for (std::size_t i = 0; i < lane_count_; ++i) {
        for (std::uint32_t b = lane_head_[i]; b < lane_begin_[i + 1]; ++b)
            overflow_.push_back(arena_[b]);
        const std::vector<Entry> &spill = spill_[i];
        for (std::size_t s = spill_head_[i]; s < spill.size(); ++s)
            overflow_.push_back(spill[s]);
        resetLane(i);
    }
    arena_.clear();
    std::fill(lane_begin_.begin(), lane_begin_.end(), 0u);
    std::fill(lane_head_.begin(), lane_head_.end(), 0u);
    spill_used_ = 0;
    in_lanes_ = 0;
    // overflow_min_day_ is refreshed by the rebucket that follows.
}

void
EventQueue::rebucket()
{
    // Compact the overflow in place, dropping tombstones (each is
    // touched exactly once here) and measuring the pending span.
    std::size_t out = 0;
    Ticks min_when = ~Ticks{0};
    Ticks max_when = 0;
    for (const Entry &e : overflow_) {
        if (isCancelled(e.seq)) {
            dropCancelled(e.seq);
            continue;
        }
        overflow_[out++] = e;
        min_when = std::min(min_when, e.when);
        max_when = std::max(max_when, e.when);
    }
    overflow_.resize(out);
    overflow_min_day_ = ~std::uint64_t{0};
    if (out == 0)
        return;

    // ~1 entry per lane, clamped.
    std::size_t nl = lane_count_;
    while (nl < kMaxLanes && nl < out)
        nl <<= 1;
    while (nl > kMinLanes && nl >= out * 4)
        nl >>= 1;
    // Lane width from the event spacing near the *head* of the backlog
    // (Brown's calendar-queue sizing), not the global span: one
    // far-future straggler would otherwise stretch every lane until the
    // whole near-term backlog shared the current lane and inserts
    // degenerated into linear memmoves. Anything beyond the window just
    // waits in the overflow until the cursor gets there.
    Ticks head_gap;
    if (out <= kHeadSample) {
        head_gap = (max_when - min_when) / static_cast<Ticks>(out) + 1;
    } else {
        head_whens_.clear();
        for (const Entry &e : overflow_)
            head_whens_.push_back(e.when);
        std::nth_element(head_whens_.begin(),
                         head_whens_.begin() + (kHeadSample - 1),
                         head_whens_.end());
        head_gap = (head_whens_[kHeadSample - 1] - min_when) /
                       static_cast<Ticks>(kHeadSample) +
                   1;
    }
    // A few events per lane; power-of-two width so the per-insert day
    // extraction is a shift, never a 64-bit division (the division
    // dominated the schedule/pop cycle of a near-empty calendar).
    const Ticks span = head_gap * 3;
    width_shift_ = span <= 1 ? 0 : std::bit_width(span - 1);
    width_ = Ticks{1} << width_shift_;
    cur_day_ = min_when >> width_shift_;
    if (nl != lane_count_) {
        lane_count_ = nl;
        lane_begin_.assign(nl + 1, 0);
        lane_head_.assign(nl, 0);
        spill_.resize(nl);
        spill_head_.assign(nl, 0);
        spill_count_.assign(nl, 0);
        lane_state_.assign(nl, LaneState::Raw);
    }

    // Counting sort into the flat arena: pass 1 sizes each lane, pass 2
    // scatters. The rare boundary entry one day beyond the window stays
    // in the overflow.
    std::vector<Entry> moved;
    moved.swap(overflow_);
    std::fill(lane_begin_.begin(), lane_begin_.end(), 0u);
    std::size_t kept = 0;
    for (const Entry &e : moved) {
        const std::uint64_t day = e.when >> width_shift_;
        if (day - cur_day_ >= lane_count_) {
            overflow_.push_back(e);
            overflow_min_day_ = std::min(overflow_min_day_, day);
            continue;
        }
        ++lane_begin_[laneOf(day) + 1];
        ++kept;
    }
    for (std::size_t i = 1; i <= lane_count_; ++i)
        lane_begin_[i] += lane_begin_[i - 1];
    std::copy(lane_begin_.begin(), lane_begin_.end() - 1,
              lane_head_.begin());
    arena_.resize(kept);
    std::vector<std::uint32_t> cursor(lane_head_);
    for (const Entry &e : moved) {
        const std::uint64_t day = e.when >> width_shift_;
        if (day - cur_day_ >= lane_count_)
            continue;
        arena_[cursor[laneOf(day)]++] = e;
    }
    in_lanes_ = kept;
    ++rebuckets_;
}

void
EventQueue::settleLane(std::size_t i)
{
    std::vector<Entry> &spill = spill_[i];
    switch (lane_state_[i]) {
      case LaneState::Raw: {
        const std::uint32_t bulk_begin = lane_head_[i];
        const std::uint32_t bulk_end = lane_begin_[i + 1];
        if (spill_head_[i] >= spill_count_[i]) {
            // No spill: consume the arena range directly.
            if (bulk_end - bulk_begin > 1) {
                std::sort(arena_.begin() + bulk_begin,
                          arena_.begin() + bulk_end);
            }
            lane_state_[i] = LaneState::Bulk;
            return;
        }
        // Fold the bulk remainder into the spill and sort the whole
        // unconsumed range once.
        for (std::uint32_t b = bulk_begin; b < bulk_end; ++b)
            spill.push_back(arena_[b]);
        spill_count_[i] += bulk_end - bulk_begin;
        spill_used_ += bulk_end - bulk_begin;
        lane_head_[i] = bulk_end;
        if (spill.size() - spill_head_[i] > 1)
            std::sort(spill.begin() + spill_head_[i], spill.end());
        lane_state_[i] = LaneState::SpillSorted;
        return;
      }
      case LaneState::Bulk:
      case LaneState::SpillSorted:
        return;
      case LaneState::SpillDirty:
        std::sort(spill.begin() + spill_head_[i], spill.end());
        lane_state_[i] = LaneState::SpillSorted;
        return;
    }
}

void
EventQueue::consumeHead(std::size_t i)
{
    if (lane_state_[i] == LaneState::Bulk) {
        ++lane_head_[i];
    } else {
        ++spill_head_[i];
        --spill_used_;
    }
    --in_lanes_;
    // Eagerly recycle a drained lane: the cursor may be repositioned by
    // a later schedule() without revisiting it.
    if (laneDrained(i))
        resetLane(i);
}

EventQueue::Entry *
EventQueue::front()
{
    for (;;) {
        if (live_ == 0) {
            if (in_lanes_ > 0 || !overflow_.empty())
                purge(); // only tombstones remain; drop them all
            return nullptr;
        }
        if (cur_day_ >= overflow_min_day_) [[unlikely]] {
            // The cursor caught up to overflow territory: fold
            // everything together and re-tune so (time, sequence) order
            // holds across lanes and overflow alike.
            collapseLanes();
            rebucket();
            empty_streak_ = 0;
            continue;
        }
        const std::size_t i = laneOf(cur_day_);
        if (!laneDrained(i)) {
            empty_streak_ = 0;
            settleLane(i);
            Entry &e = lane_state_[i] == LaneState::Bulk
                           ? arena_[lane_head_[i]]
                           : spill_[i][spill_head_[i]];
            if (isCancelled(e.seq)) [[unlikely]] {
                dropCancelled(e.seq);
                consumeHead(i);
                continue;
            }
            return &e;
        }
        resetLane(i);
        if (in_lanes_ > 0) {
            ++cur_day_;
            if (++empty_streak_ >= kCollapseStreak) {
                // The window went sparse (events drained or cancelled
                // out from under the chosen width): re-tune instead of
                // crawling lane by lane.
                collapseLanes();
                rebucket();
                empty_streak_ = 0;
            }
            continue;
        }
        // Window fully drained; refill from the overflow.
        jscale_assert(!overflow_.empty(),
                      "live events missing from the calendar");
        rebucket();
    }
}

Ticks
EventQueue::nextTime()
{
    Entry *e = front();
    jscale_assert(e != nullptr, "nextTime() on empty event queue");
    return e->when;
}

Event *
EventQueue::pop()
{
    Entry *e = front();
    if (e == nullptr)
        return nullptr;
    Event *ev = e->ev;
    consumeHead(laneOf(cur_day_));
    --live_;
    ev->scheduled_ = false;
    return ev;
}

} // namespace jscale::sim
