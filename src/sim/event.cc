#include "sim/event.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jscale::sim {

Event::~Event()
{
    // Owners must deschedule their events before destroying them; a
    // scheduled event dying would leave a dangling pointer in the queue.
    jscale_assert(!scheduled_, "event destroyed while scheduled");
}

EventQueue::~EventQueue()
{
    // Drain remaining live events, honouring self-deletion so no
    // LambdaEvents leak when a simulation ends early.
    while (Event *ev = pop()) {
        if (ev->selfDeleting())
            delete ev;
    }
}

void
EventQueue::schedule(Event *ev, Ticks when)
{
    jscale_assert(ev != nullptr, "schedule of null event");
    jscale_assert(!ev->scheduled_,
                  "event '", ev->name(), "' is already scheduled");
    ev->when_ = when;
    ev->seq_ = next_seq_++;
    ev->scheduled_ = true;
    heap_.push(Entry{when, ev->seq_, ev});
    ++live_;
}

void
EventQueue::cancel(Event *ev)
{
    jscale_assert(ev != nullptr, "deschedule of null event");
    if (!ev->scheduled_)
        return;
    ev->scheduled_ = false;
    cancelled_.insert(
        std::lower_bound(cancelled_.begin(), cancelled_.end(), ev->seq_),
        ev->seq_);
    --live_;
}

void
EventQueue::deschedule(Event *ev)
{
    jscale_assert(ev != nullptr, "deschedule of null event");
    if (!ev->scheduled_)
        return;
    cancel(ev);
    // A cancelled self-deleting event will never be popped again (the
    // skim drops its tombstone without dereferencing it), so deleting
    // it here is the only way it is ever reclaimed.
    if (ev->selfDeleting())
        delete ev;
}

void
EventQueue::reschedule(Event *ev, Ticks when)
{
    cancel(ev);
    schedule(ev, when);
}

void
EventQueue::skimSlow()
{
    while (!heap_.empty()) {
        const auto it = std::lower_bound(cancelled_.begin(),
                                         cancelled_.end(),
                                         heap_.top().seq);
        if (it == cancelled_.end() || *it != heap_.top().seq)
            return;
        cancelled_.erase(it);
        heap_.pop();
        if (cancelled_.empty())
            return;
    }
}

Ticks
EventQueue::nextTime()
{
    skim();
    jscale_assert(!heap_.empty(), "nextTime() on empty event queue");
    return heap_.top().when;
}

Event *
EventQueue::pop()
{
    skim();
    if (heap_.empty())
        return nullptr;
    Entry top = heap_.top();
    heap_.pop();
    top.ev->scheduled_ = false;
    --live_;
    return top.ev;
}

} // namespace jscale::sim
