#include "sim/simulation.hh"

#include "base/logging.hh"

namespace jscale::sim {

Simulation::Simulation(std::uint64_t seed)
    : seed_(seed), master_rng_(seed)
{
}

void
Simulation::schedule(Event *ev, Ticks when)
{
    jscale_assert(when >= now_, "scheduling event '", ev->name(),
                  "' in the past: ", when, " < ", now_);
    queue_.schedule(ev, when);
}

void
Simulation::scheduleIn(Event *ev, TickDelta delta)
{
    jscale_assert(delta >= 0, "negative delay for event '", ev->name(), "'");
    schedule(ev, now_ + static_cast<Ticks>(delta));
}

void
Simulation::scheduleAt(Ticks when, std::function<void()> fn,
                       std::string what)
{
    schedule(new LambdaEvent(std::move(fn), std::move(what)), when);
}

void
Simulation::scheduleAfter(TickDelta delta, std::function<void()> fn,
                          std::string what)
{
    jscale_assert(delta >= 0, "negative delay for lambda event");
    scheduleAt(now_ + static_cast<Ticks>(delta), std::move(fn),
               std::move(what));
}

bool
Simulation::step()
{
    Event *ev = queue_.pop();
    if (!ev)
        return false;
    jscale_assert(ev->when() >= now_, "event time went backwards");
    now_ = ev->when();
    ++events_processed_;
    const bool self_delete = ev->selfDeleting();
    ev->process();
    if (self_delete)
        delete ev;
    return true;
}

Ticks
Simulation::run(Ticks until)
{
    stop_requested_ = false;
    while (!stop_requested_) {
        if (queue_.empty())
            break;
        if (until != 0 && queue_.nextTime() > until) {
            now_ = until;
            break;
        }
        step();
    }
    return now_;
}

} // namespace jscale::sim
