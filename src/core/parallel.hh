/**
 * @file
 * ParallelExecutor: fans independent, pre-planned experiment runs
 * across host cores.
 *
 * The determinism contract: every task must be self-contained (its own
 * Simulation, seed, and pre-claimed artifact paths) so that execution
 * order and host thread assignment cannot influence what any task
 * computes. The executor only reorders *when* tasks run; results are
 * returned in submission order, which makes a parallel sweep
 * byte-identical to the sequential one.
 */

#ifndef JSCALE_CORE_PARALLEL_HH
#define JSCALE_CORE_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "jvm/runtime/vm.hh"

namespace jscale::core {

/** One isolated task's result: either a RunResult or an error. */
struct RunOutcome
{
    jvm::RunResult result;
    /** True when the task completed; false = @p error describes why. */
    bool ok = false;
    std::string error;
};

/** Executes a batch of independent run closures on a worker pool. */
class ParallelExecutor
{
  public:
    /** @param jobs host worker count (>= 1). */
    explicit ParallelExecutor(std::size_t jobs) : jobs_(jobs) {}

    /** Worker count this executor was built with. */
    std::size_t jobs() const { return jobs_; }

    /**
     * Run every task (FIFO dispatch across the pool) and return their
     * results indexed exactly like @p tasks. Blocks until all complete.
     * If a task throws, the first exception (in task order) is
     * rethrown after the batch drains.
     */
    std::vector<jvm::RunResult>
    run(std::vector<std::function<jvm::RunResult()>> tasks) const;

    /**
     * Like run(), but a throwing task never takes the batch down: its
     * exception is captured as that slot's RunOutcome::error and every
     * other task still executes. Jobs == 1 degenerates to a sequential
     * loop with the same isolation, so sequential and parallel batches
     * fail identically.
     */
    std::vector<RunOutcome>
    runIsolated(std::vector<std::function<jvm::RunResult()>> tasks) const;

  private:
    std::size_t jobs_;
};

} // namespace jscale::core

#endif // JSCALE_CORE_PARALLEL_HH
