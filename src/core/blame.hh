/**
 * @file
 * E20 — blame decomposition study: which wait state dominates each
 * application's task latency, and how the blame shifts as threads grow.
 *
 * Every (app, threads) cell runs through the experiment harness with
 * the wait-state attribution profiler attached, decomposing per-task
 * latency into exact buckets (cpu, run-queue, lock, GC stop-the-world,
 * time-to-safepoint, allocation stall, governor park, ...). The study
 * reports each cell's blame shares and tail quantiles, names the
 * dominant wait state, and cross-references the blame flip against the
 * USL knee (E17) fitted from the study's own speedup curve: the thread
 * count where a non-cpu bucket takes over is the mechanism behind the
 * knee the model predicts.
 */

#ifndef JSCALE_CORE_BLAME_HH
#define JSCALE_CORE_BLAME_HH

#include <ostream>
#include <string>
#include <vector>

#include "control/usl.hh"
#include "core/experiment.hh"
#include "jvm/runtime/vm.hh"

namespace jscale::core {

/** Configuration of the E20 blame study. */
struct BlameConfig
{
    /** Apps on the study's rows (default: the paper's six). */
    std::vector<std::string> apps = {"sunflow", "lusearch", "xalan",
                                     "h2",      "eclipse",  "jython"};
    /** Thread counts per app; empty = the paper ladder for the machine. */
    std::vector<std::uint32_t> threads;
    /** Slowest-task records kept per cell. */
    std::uint32_t topk = 5;
    /**
     * Base campaign settings (machine, seed, scale, jobs). The study
     * forces profile = true and leaves everything else untouched, so a
     * blame sweep is the ordinary E1 sweep plus attribution.
     */
    ExperimentConfig base;
};

/** One (app, threads) cell of the study. */
struct BlamePoint
{
    std::string app;
    std::uint32_t threads = 0;
    jvm::RunResult run;
};

/** One app's fitted knee, from the study's own speedup curve. */
struct BlameAppFit
{
    std::string app;
    control::UslFit usl;
    /** Dominant non-cpu wait at the sweep's largest thread count. */
    jvm::WaitBucket dominant = jvm::WaitBucket::RunQueue;
};

/** The full study result. */
struct BlameStudy
{
    /** Cells in (app, ascending threads) order. */
    std::vector<BlamePoint> points;
    std::vector<BlameAppFit> fits;
};

/**
 * Run the study: |apps| x |threads| profiled runs through the isolated
 * batch executor (a cell that aborts carries a failed() marker; the
 * study completes), then fit the USL per app from the measured wall
 * times.
 */
BlameStudy runBlameStudy(const BlameConfig &config);

/** Aligned-text report: per-cell blame shares, tails and USL knees. */
void printBlameStudyTable(std::ostream &os, const BlameStudy &study);

/** Machine-readable report: one row per (app, threads) cell. */
void writeBlameStudyCsv(std::ostream &os, const BlameStudy &study);

} // namespace jscale::core

#endif // JSCALE_CORE_BLAME_HH
