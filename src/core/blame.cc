#include "core/blame.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "base/output.hh"
#include "core/report.hh"

namespace jscale::core {

namespace {

/** Share of one bucket in a cell's aggregate task wall time. */
double
bucketShare(const jvm::ProfileSummary &p, jvm::WaitBucket b)
{
    const Ticks total = p.total();
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               p.bucket_total[static_cast<std::size_t>(b)]) /
           static_cast<double>(total);
}

std::string
cellStatus(const jvm::RunResult &r)
{
    if (r.failed())
        return "failed";
    if (r.skipped)
        return "skipped";
    return "ok";
}

} // namespace

BlameStudy
runBlameStudy(const BlameConfig &config)
{
    ExperimentConfig cfg = config.base;
    cfg.profile = true;
    cfg.profile_topk = config.topk;
    ExperimentRunner runner(std::move(cfg));

    std::vector<std::uint32_t> threads = config.threads;
    if (threads.empty())
        threads = runner.paperThreadCounts();

    // One batch over the whole (app x threads) cross product, so the
    // study parallelizes across cells exactly like an E1 sweep.
    const SweepSet sweeps = runner.sweepApps(
        config.apps, threads, [](const std::string &app) {
            inform("blame study: planning ", app);
        });

    BlameStudy study;
    for (const std::string &app : config.apps) {
        const auto it = sweeps.find(app);
        jscale_assert(it != sweeps.end(), "missing sweep for ", app);
        const std::vector<jvm::RunResult> &sweep = it->second;

        // Speedup curve for the USL cross-reference, anchored at the
        // smallest measured thread count.
        std::vector<control::UslPoint> usl_points;
        const jvm::RunResult *base_run = nullptr;
        for (const jvm::RunResult &r : sweep) {
            if (!r.skipped && !r.failed() && r.wall_time > 0) {
                base_run = &r;
                break;
            }
        }
        for (const jvm::RunResult &r : sweep) {
            if (base_run != nullptr && !r.skipped && !r.failed() &&
                r.wall_time > 0) {
                usl_points.push_back(
                    {static_cast<double>(r.threads),
                     static_cast<double>(base_run->wall_time) /
                         static_cast<double>(r.wall_time)});
            }
        }

        BlameAppFit fit;
        fit.app = app;
        fit.usl = control::UslModel::fit(usl_points);
        for (auto rit = sweep.rbegin(); rit != sweep.rend(); ++rit) {
            if (!rit->skipped && !rit->failed() &&
                rit->profile.enabled) {
                fit.dominant = rit->profile.dominantWait();
                break;
            }
        }
        study.fits.push_back(std::move(fit));

        for (const jvm::RunResult &r : sweep) {
            BlamePoint point;
            point.app = app;
            point.threads = r.threads;
            point.run = r;
            study.points.push_back(std::move(point));
        }
    }
    return study;
}

void
printBlameStudyTable(std::ostream &os, const BlameStudy &study)
{
    os << "E20 — blame decomposition vs. threads (shares of aggregate "
          "task wall time)\n";
    TextTable t;
    t.header({"app", "threads", "status", "cpu", "runq", "lock", "gc-stw",
              "ttsp", "alloc", "gov", "other", "dominant", "p50", "p99"});
    for (const BlamePoint &p : study.points) {
        const jvm::RunResult &r = p.run;
        if (r.skipped || r.failed() || !r.profile.enabled) {
            t.row({p.app, std::to_string(p.threads), cellStatus(r), "-",
                   "-", "-", "-", "-", "-", "-", "-", "-", "-", "-"});
            continue;
        }
        const jvm::ProfileSummary &prof = r.profile;
        // "runq" folds pure run-queue wait with waitset/channel parks
        // and "other" collects the residual buckets, keeping the table
        // readable; the CSV carries every bucket separately.
        const double runq =
            bucketShare(prof, jvm::WaitBucket::RunQueue) +
            bucketShare(prof, jvm::WaitBucket::Waitset) +
            bucketShare(prof, jvm::WaitBucket::Channel);
        const double other =
            bucketShare(prof, jvm::WaitBucket::Stall) +
            bucketShare(prof, jvm::WaitBucket::Other);
        t.row({p.app, std::to_string(p.threads), cellStatus(r),
               formatPercent(bucketShare(prof, jvm::WaitBucket::Cpu)),
               formatPercent(runq),
               formatPercent(bucketShare(prof, jvm::WaitBucket::Lock)),
               formatPercent(bucketShare(prof, jvm::WaitBucket::GcStw)),
               formatPercent(bucketShare(prof, jvm::WaitBucket::Ttsp)),
               formatPercent(
                   bucketShare(prof, jvm::WaitBucket::AllocStall)),
               formatPercent(
                   bucketShare(prof, jvm::WaitBucket::Governor)),
               formatPercent(other),
               jvm::waitBucketName(prof.dominantWait()),
               formatTicks(prof.latency.quantile(0.5)),
               formatTicks(prof.latency.quantile(0.99))});
    }
    t.print(os);

    os << "USL cross-reference (E17): fitted knee vs. the wait state "
          "dominating at the largest sweep point\n";
    TextTable f;
    f.header({"app", "sigma", "kappa", "n*", "dominant wait"});
    for (const BlameAppFit &fit : study.fits) {
        f.row({fit.app,
               fit.usl.valid ? formatFixed(fit.usl.sigma, 4) : "-",
               fit.usl.valid ? formatFixed(fit.usl.kappa, 6) : "-",
               fit.usl.valid && fit.usl.n_star > 0
                   ? formatFixed(fit.usl.n_star, 1)
                   : "-",
               jvm::waitBucketName(fit.dominant)});
    }
    f.print(os);
}

void
writeBlameStudyCsv(std::ostream &os, const BlameStudy &study)
{
    os << "app,threads,status,wall_ticks,tasks";
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        os << ",share_"
           << jvm::waitBucketName(static_cast<jvm::WaitBucket>(i));
    }
    os << ",dominant,p50_ns,p90_ns,p99_ns,p999_ns,max_ns,usl_n_star\n";

    for (const BlamePoint &p : study.points) {
        const jvm::RunResult &r = p.run;
        double n_star = 0.0;
        for (const BlameAppFit &fit : study.fits) {
            if (fit.app == p.app && fit.usl.valid) {
                n_star = fit.usl.n_star;
                break;
            }
        }
        os << p.app << ',' << p.threads << ',' << cellStatus(r) << ','
           << r.wall_time << ',' << r.profile.tasks;
        for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
            os << ','
               << formatFixed(
                      bucketShare(r.profile,
                                  static_cast<jvm::WaitBucket>(i)),
                      6);
        }
        const bool measured =
            !r.skipped && !r.failed() && r.profile.enabled;
        os << ','
           << (measured ? jvm::waitBucketName(r.profile.dominantWait())
                        : "-")
           << ',' << r.profile.latency.quantile(0.5) << ','
           << r.profile.latency.quantile(0.9) << ','
           << r.profile.latency.quantile(0.99) << ','
           << r.profile.latency.quantile(0.999) << ','
           << r.profile.latency.max() << ',' << formatFixed(n_star, 2)
           << '\n';
    }
}

} // namespace jscale::core
