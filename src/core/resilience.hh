/**
 * @file
 * E18 — resilience study: throughput and GC/lock shares as a function
 * of fault intensity, governed vs. ungoverned.
 *
 * Each point on the intensity axis expands into a reproducible
 * mixed-fault schedule (fault::FaultPlan::fromIntensity) and runs the
 * same app/thread configuration twice: once ungoverned and once under
 * the concurrency governor, to show how admission control re-targets
 * after capacity loss. Runs execute through the experiment harness, so
 * aborted points become per-run error artifacts and failed() markers
 * while the rest of the study completes.
 */

#ifndef JSCALE_CORE_RESILIENCE_HH
#define JSCALE_CORE_RESILIENCE_HH

#include <ostream>
#include <string>
#include <vector>

#include "control/governor.hh"
#include "core/experiment.hh"
#include "jvm/runtime/vm.hh"

namespace jscale::core {

/** Configuration of the E18 resilience study. */
struct ResilienceConfig
{
    std::string app = "xalan";
    std::uint32_t threads = 16;
    /** The x-axis: fault intensity dial in [0, 1] per point. */
    std::vector<double> intensities = {0.0, 0.25, 0.5, 0.75, 1.0};
    /**
     * Window within which each expanded schedule fires. 0 = auto: an
     * unfaulted probe run measures the wall time and the horizon is set
     * to 3/4 of it, so the schedule always lands inside the run.
     */
    Ticks horizon = 0;
    /** Admission policy of the governed arm. */
    control::GovernorMode governed_mode = control::GovernorMode::HillClimb;
    /**
     * Base campaign settings (machine, seed, heap, watchdog,
     * checkpointing). Artifact and checkpoint paths are tagged per
     * point/arm so the arms never clobber each other.
     */
    ExperimentConfig base;
};

/** One intensity point: the same run with and without the governor. */
struct ResiliencePoint
{
    double intensity = 0.0;
    /** The expanded fault schedule (reporting / reproduction). */
    std::string plan;
    jvm::RunResult ungoverned;
    jvm::RunResult governed;
};

/**
 * Run the study: |intensities| points x {ungoverned, governed}. A point
 * whose run aborts (watchdog, sim-time guard) carries a failed() marker
 * in the corresponding arm; the study itself always completes.
 */
std::vector<ResiliencePoint>
runResilienceStudy(const ResilienceConfig &config);

/** Aligned-text study report (throughput, shares, governor target). */
void printResilienceTable(std::ostream &os,
                          const std::vector<ResiliencePoint> &points);

/** Machine-readable study report: one row per (point, arm). */
void writeResilienceCsv(std::ostream &os,
                        const std::vector<ResiliencePoint> &points);

} // namespace jscale::core

#endif // JSCALE_CORE_RESILIENCE_HH
