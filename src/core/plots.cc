#include "core/plots.hh"

#include <algorithm>
#include <fstream>

#include "base/logging.hh"
#include "trace/trace.hh"

namespace jscale::core {

namespace {

std::ofstream
openOut(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        jscale_fatal("cannot write '", path, "'");
    return os;
}

/** Common gnuplot prologue. */
void
prologue(std::ofstream &gp, const std::string &out_png,
         const std::string &title, const std::string &xlabel,
         const std::string &ylabel)
{
    gp << "set terminal pngcairo size 900,600\n"
       << "set output '" << out_png << "'\n"
       << "set title '" << title << "'\n"
       << "set xlabel '" << xlabel << "'\n"
       << "set ylabel '" << ylabel << "'\n"
       << "set key outside right\n"
       << "set grid\n";
}

} // namespace

std::vector<std::string>
writeLockFigure(const std::string &dir, const SweepSet &sweeps,
                bool contentions)
{
    const std::string stem =
        dir + (contentions ? "/fig1b_contentions" : "/fig1a_acquisitions");
    const std::string dat = stem + ".dat";
    const std::string gp = stem + ".gp";

    std::ofstream d = openOut(dat);
    d << "# threads";
    for (const auto &[app, sweep] : sweeps)
        d << ' ' << app;
    d << '\n';
    // All sweeps share the thread axis of the first app.
    jscale_assert(!sweeps.empty(), "no sweeps to plot");
    const std::size_t points = sweeps.begin()->second.size();
    for (std::size_t i = 0; i < points; ++i) {
        d << sweeps.begin()->second[i].threads;
        for (const auto &[app, sweep] : sweeps) {
            jscale_assert(sweep.size() == points,
                          "inconsistent sweep lengths");
            d << ' '
              << (contentions ? sweep[i].locks.contentions
                              : sweep[i].locks.acquisitions);
        }
        d << '\n';
    }

    std::ofstream g = openOut(gp);
    prologue(g, stem + ".png",
             contentions ? "Fig. 1b: lock contentions vs. threads"
                         : "Fig. 1a: lock acquisitions vs. threads",
             "threads (= enabled cores)",
             contentions ? "contention instances" : "acquisitions");
    g << "plot";
    int col = 2;
    for (const auto &[app, sweep] : sweeps) {
        g << (col == 2 ? " " : ", ") << "'" << dat << "' using 1:" << col
          << " with linespoints title '" << app << "'";
        ++col;
    }
    g << '\n';
    return {dat, gp};
}

std::vector<std::string>
writeLifespanFigure(const std::string &dir, const std::string &app,
                    const std::vector<jvm::RunResult> &sweep)
{
    const std::string stem = dir + "/lifespan_" + app;
    const std::string dat = stem + ".dat";
    const std::string gp = stem + ".gp";

    std::ofstream d = openOut(dat);
    d << "# threshold_bytes";
    for (const auto &r : sweep)
        d << " t" << r.threads;
    d << '\n';
    for (const auto thr : trace::paperLifespanThresholds()) {
        d << thr;
        for (const auto &r : sweep)
            d << ' ' << r.heap.lifespan.fractionBelow(thr);
        d << '\n';
    }

    std::ofstream g = openOut(gp);
    prologue(g, stem + ".png",
             "Object lifespan CDF: " + app +
                 " (Fig. 1c/1d style)",
             "lifespan threshold (bytes allocated between birth and "
             "death)",
             "fraction of objects below");
    g << "set logscale x 2\n";
    g << "plot";
    int col = 2;
    for (const auto &r : sweep) {
        g << (col == 2 ? " " : ", ") << "'" << dat << "' using 1:" << col
          << " with linespoints title '" << r.threads << " threads'";
        ++col;
    }
    g << '\n';
    return {dat, gp};
}

std::vector<std::string>
writeMutatorGcFigure(const std::string &dir, const SweepSet &sweeps)
{
    const std::string stem = dir + "/fig2_mutator_gc";
    const std::string dat = stem + ".dat";
    const std::string gp = stem + ".gp";

    std::ofstream d = openOut(dat);
    d << "# app threads mutator_ms gc_ms\n";
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            d << app << ' ' << r.threads << ' '
              << static_cast<double>(r.mutatorTime()) / 1e6 << ' '
              << static_cast<double>(r.gc_time) / 1e6 << '\n';
        }
        d << "\n\n"; // gnuplot dataset separator
    }

    std::ofstream g = openOut(gp);
    prologue(g, stem + ".png",
             "Fig. 2: distribution of mutator and GC times",
             "threads (= enabled cores)", "time (ms)");
    g << "set style data histograms\n"
      << "set style histogram rowstacked\n"
      << "set style fill solid 0.8 border -1\n"
      << "set logscale y\n";
    g << "plot";
    int index = 0;
    for (const auto &[app, sweep] : sweeps) {
        g << (index == 0 ? " " : ", ") << "'" << dat << "' index "
          << index << " using 3:xtic(2) title '" << app
          << " mutator', '' index " << index << " using 4 title '" << app
          << " gc'";
        ++index;
    }
    g << '\n';
    return {dat, gp};
}

std::vector<std::string>
writeBlameFigure(const std::string &dir, const std::string &app,
                 const std::vector<jvm::RunResult> &sweep)
{
    const std::string stem = dir + "/e20_blame_" + app;
    const std::string dat = stem + ".dat";
    const std::string gp = stem + ".gp";

    std::ofstream d = openOut(dat);
    d << "# threads";
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
        d << ' ' << jvm::waitBucketName(static_cast<jvm::WaitBucket>(i));
    d << '\n';
    for (const auto &r : sweep) {
        if (r.skipped || r.failed() || !r.profile.enabled)
            continue;
        const Ticks total = r.profile.total();
        const double denom =
            total > 0 ? static_cast<double>(total) : 1.0;
        d << r.threads;
        for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
            d << ' '
              << static_cast<double>(r.profile.bucket_total[i]) / denom;
        }
        d << '\n';
    }

    std::ofstream g = openOut(gp);
    prologue(g, stem + ".png",
             "E20: wait-state blame shares vs. threads: " + app,
             "threads (= enabled cores)",
             "share of aggregate task wall time");
    g << "set style data histograms\n"
      << "set style histogram rowstacked\n"
      << "set style fill solid 0.8 border -1\n"
      << "set yrange [0:1]\n";
    g << "plot";
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        g << (i == 0 ? " " : ", ") << "'" << dat << "' using "
          << (i + 2) << (i == 0 ? ":xtic(1)" : "") << " title '"
          << jvm::waitBucketName(static_cast<jvm::WaitBucket>(i))
          << "'";
    }
    g << '\n';
    return {dat, gp};
}

std::vector<std::string>
writeAllFigures(const std::string &dir, const SweepSet &sweeps)
{
    std::vector<std::string> files;
    auto append = [&files](std::vector<std::string> more) {
        files.insert(files.end(), more.begin(), more.end());
    };
    append(writeLockFigure(dir, sweeps, false));
    append(writeLockFigure(dir, sweeps, true));
    for (const auto &[app, sweep] : sweeps) {
        if (app == "eclipse" || app == "xalan")
            append(writeLifespanFigure(dir, app, sweep));
    }
    SweepSet scalable;
    for (const auto &[app, sweep] : sweeps) {
        if (app == "sunflow" || app == "lusearch" || app == "xalan")
            scalable[app] = sweep;
    }
    if (!scalable.empty())
        append(writeMutatorGcFigure(dir, scalable));
    for (const auto &[app, sweep] : sweeps) {
        const bool profiled =
            std::any_of(sweep.begin(), sweep.end(),
                        [](const jvm::RunResult &r) {
                            return r.profile.enabled;
                        });
        if (profiled)
            append(writeBlameFigure(dir, app, sweep));
    }
    return files;
}

} // namespace jscale::core
