#include "core/traffic_study.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "base/error.hh"
#include "base/logging.hh"
#include "base/output.hh"
#include "control/governor.hh"

namespace jscale::core {

namespace {

/** Canonical fixed-point rate rendering, shared by spec and report. */
std::string
formatRate(double rate)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << rate;
    return os.str();
}

/** The poisson arrival spec for one rung. */
std::string
rungSpec(double rate, std::uint64_t requests)
{
    return "poisson:rate=" + formatRate(rate) +
           ":requests=" + std::to_string(requests);
}

/** Run one cell with per-run isolation (an abort becomes a marker). */
jvm::RunResult
isolatedRun(ExperimentRunner &runner, const std::string &app,
            std::uint32_t threads)
{
    try {
        return runner.runApp(app, threads);
    } catch (const AbortError &e) {
        jvm::RunResult marker;
        marker.app_name = app;
        marker.threads = threads;
        marker.run_error = e.what();
        return marker;
    }
}

Ticks
p99(const jvm::RunResult &r)
{
    return r.traffic.sojourn.quantile(0.99);
}

std::string
pointStatus(const jvm::RunResult &r)
{
    if (r.failed())
        return "failed";
    return "ok";
}

/** Dominant service bucket of one traffic summary. */
std::string
dominantServiceBucket(const jvm::TrafficSummary &t)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < jvm::kWaitBucketCount; ++i) {
        if (t.service_bucket_total[i] > t.service_bucket_total[best])
            best = i;
    }
    return jvm::waitBucketName(static_cast<jvm::WaitBucket>(best));
}

} // namespace

TrafficStudy
runTrafficStudy(const TrafficStudyConfig &config)
{
    jscale_assert(!config.apps.empty(), "study needs apps");
    jscale_assert(!config.threads.empty(), "study needs thread counts");
    jscale_assert(!config.load_factors.empty(), "study needs a ladder");

    // One runner per arm: the closed-loop capacity probe, the
    // ungoverned open loop, and the two remedy arms. Separate runners
    // keep per-arm campaign fingerprints distinct while sharing each
    // arm's heap-calibration cache across all of its rungs.
    ExperimentConfig closed_cfg = config.base;
    closed_cfg.arrivals.clear();
    ExperimentRunner closed(closed_cfg);

    ExperimentConfig open_cfg = config.base;
    open_cfg.governor.mode = control::GovernorMode::Off;
    open_cfg.biased_scheduling = false;
    ExperimentRunner open(open_cfg);

    ExperimentConfig gov_cfg = open_cfg;
    gov_cfg.governor.mode = control::GovernorMode::HillClimb;
    ExperimentRunner governed(gov_cfg);

    ExperimentConfig bias_cfg = open_cfg;
    bias_cfg.biased_scheduling = true;
    ExperimentRunner biased(bias_cfg);

    // The remedy arms run the top two rungs — where the tail is sick
    // enough for admission control to matter.
    std::vector<double> top_rungs(config.load_factors);
    std::sort(top_rungs.begin(), top_rungs.end());
    if (top_rungs.size() > 2)
        top_rungs.erase(top_rungs.begin(), top_rungs.end() - 2);

    TrafficStudy study;
    for (const std::string &app : config.apps) {
        for (const std::uint32_t threads : config.threads) {
            if (threads > config.base.machine.totalCores())
                continue;

            // 1. Closed-loop capacity: the service rate at this thread
            // count with the task pool always full.
            const jvm::RunResult cap_run =
                isolatedRun(closed, app, threads);
            TrafficCapacity cap;
            cap.app = app;
            cap.threads = threads;
            if (!cap_run.failed() && cap_run.wall_time > 0) {
                cap.rate = static_cast<double>(cap_run.total_tasks) *
                           static_cast<double>(units::SEC) /
                           static_cast<double>(cap_run.wall_time);
            }
            study.capacities.push_back(cap);
            if (cap.rate <= 0.0) {
                inform("traffic study: no capacity for ", app, " t",
                       threads, ", skipping cell");
                continue;
            }
            inform("traffic study: ", app, " t", threads, " capacity ",
                   formatRate(cap.rate), " req/s");

            // 2. The ungoverned offered-load ladder.
            std::vector<const TrafficPoint *> ladder;
            for (const double factor : config.load_factors) {
                const double rate = factor * cap.rate;
                open.setArrivals(rungSpec(rate, config.requests));
                TrafficPoint p;
                p.app = app;
                p.threads = threads;
                p.load_factor = factor;
                p.offered_rate = rate;
                p.arm = "open";
                p.run = isolatedRun(open, app, threads);
                study.points.push_back(std::move(p));
            }
            for (const TrafficPoint &p : study.points) {
                if (p.app == app && p.threads == threads &&
                    p.arm == "open") {
                    ladder.push_back(&p);
                }
            }

            // 3. Knee detection on the ungoverned ladder: smallest rung
            // whose p99 is knee_ratio x the rung below.
            TrafficKnee knee;
            knee.app = app;
            knee.threads = threads;
            for (std::size_t i = 1; i < ladder.size(); ++i) {
                const jvm::RunResult &lo = ladder[i - 1]->run;
                const jvm::RunResult &hi = ladder[i]->run;
                if (lo.failed() || hi.failed() || p99(lo) == 0)
                    continue;
                if (static_cast<double>(p99(hi)) >=
                    config.knee_ratio * static_cast<double>(p99(lo))) {
                    knee.knee_factor = ladder[i]->load_factor;
                    knee.p99_at_knee = p99(hi);
                    knee.p99_below = p99(lo);
                    break;
                }
            }
            study.knees.push_back(knee);

            // 4. Remedy arms at the top rungs.
            for (const double factor : top_rungs) {
                const double rate = factor * cap.rate;
                const std::string spec = rungSpec(rate, config.requests);
                if (config.governed_arm) {
                    governed.setArrivals(spec);
                    TrafficPoint p;
                    p.app = app;
                    p.threads = threads;
                    p.load_factor = factor;
                    p.offered_rate = rate;
                    p.arm = "governed";
                    p.run = isolatedRun(governed, app, threads);
                    study.points.push_back(std::move(p));
                }
                if (config.biased_arm) {
                    biased.setArrivals(spec);
                    TrafficPoint p;
                    p.app = app;
                    p.threads = threads;
                    p.load_factor = factor;
                    p.offered_rate = rate;
                    p.arm = "biased";
                    p.run = isolatedRun(biased, app, threads);
                    study.points.push_back(std::move(p));
                }
            }
        }
    }
    return study;
}

void
printTrafficStudyTable(std::ostream &os, const TrafficStudy &study)
{
    os << "E21 — open-system tail latency vs. offered load\n\n";

    os << "closed-loop capacity (the ladder's 1.0x rung)\n";
    TextTable cap;
    cap.header({"app", "threads", "capacity req/s"});
    for (const TrafficCapacity &c : study.capacities) {
        cap.row({c.app, std::to_string(c.threads),
                 c.rate > 0.0 ? formatRate(c.rate) : "-"});
    }
    cap.print(os);

    os << "\nper-request sojourn tails by offered load\n";
    TextTable t;
    t.header({"app", "threads", "arm", "load", "req/s", "status",
              "shed", "p50", "p99", "p999", "queue p99", "svc p99",
              "svc dominant"});
    for (const TrafficPoint &p : study.points) {
        const jvm::RunResult &r = p.run;
        if (r.failed() || !r.traffic.enabled) {
            t.row({p.app, std::to_string(p.threads), p.arm,
                   formatRate(p.load_factor), formatRate(p.offered_rate),
                   pointStatus(r), "-", "-", "-", "-", "-", "-", "-"});
            continue;
        }
        const jvm::TrafficSummary &s = r.traffic;
        t.row({p.app, std::to_string(p.threads), p.arm,
               formatRate(p.load_factor), formatRate(p.offered_rate),
               pointStatus(r), std::to_string(s.shed),
               formatTicks(s.sojourn.quantile(0.50)),
               formatTicks(s.sojourn.quantile(0.99)),
               formatTicks(s.sojourn.quantile(0.999)),
               formatTicks(s.queueing.quantile(0.99)),
               formatTicks(s.service.quantile(0.99)),
               dominantServiceBucket(s)});
    }
    t.print(os);

    os << "\noffered-load knee (p99 growth >= ratio across one rung)\n";
    TextTable k;
    k.header({"app", "threads", "knee load", "p99 below", "p99 at knee",
              "growth"});
    for (const TrafficKnee &kn : study.knees) {
        if (kn.knee_factor == 0.0) {
            k.row({kn.app, std::to_string(kn.threads), "none", "-", "-",
                   "-"});
            continue;
        }
        std::ostringstream growth;
        growth << std::fixed << std::setprecision(1)
               << (kn.p99_below > 0
                       ? static_cast<double>(kn.p99_at_knee) /
                             static_cast<double>(kn.p99_below)
                       : 0.0)
               << "x";
        k.row({kn.app, std::to_string(kn.threads),
               formatRate(kn.knee_factor), formatTicks(kn.p99_below),
               formatTicks(kn.p99_at_knee), growth.str()});
    }
    k.print(os);
}

void
writeTrafficStudyCsv(std::ostream &os, const TrafficStudy &study)
{
    os << "app,threads,arm,load_factor,offered_rate,arrivals,admitted,"
          "shed,completed,max_queue_depth,sojourn_p50_ns,sojourn_p99_ns,"
          "sojourn_p999_ns,queueing_p99_ns,service_p99_ns";
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        os << ",svc_"
           << jvm::waitBucketName(static_cast<jvm::WaitBucket>(i))
           << "_ns";
    }
    os << "\n";
    for (const TrafficPoint &p : study.points) {
        const jvm::TrafficSummary &s = p.run.traffic;
        os << p.app << "," << p.threads << "," << p.arm << ","
           << formatRate(p.load_factor) << ","
           << formatRate(p.offered_rate) << "," << s.arrivals << ","
           << s.admitted << "," << s.shed << "," << s.completed << ","
           << s.max_queue_depth << "," << s.sojourn.quantile(0.50) << ","
           << s.sojourn.quantile(0.99) << ","
           << s.sojourn.quantile(0.999) << ","
           << s.queueing.quantile(0.99) << ","
           << s.service.quantile(0.99);
        for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
            os << "," << s.service_bucket_total[i];
        os << "\n";
    }
}

} // namespace jscale::core
