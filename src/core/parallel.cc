#include "core/parallel.hh"

#include <algorithm>
#include <exception>
#include <mutex>

#include "base/thread_pool.hh"

namespace jscale::core {

std::vector<jvm::RunResult>
ParallelExecutor::run(std::vector<std::function<jvm::RunResult()>> tasks)
    const
{
    std::vector<jvm::RunResult> results(tasks.size());
    if (tasks.empty())
        return results;

    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::size_t first_error_index = tasks.size();

    ThreadPool pool(std::min(jobs_, tasks.size()));
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        pool.submit([i, &tasks, &results, &error_mutex, &first_error,
                     &first_error_index] {
            try {
                results[i] = tasks[i]();
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (i < first_error_index) {
                    first_error = std::current_exception();
                    first_error_index = i;
                }
            }
        });
    }
    pool.wait();

    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace jscale::core
