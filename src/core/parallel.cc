#include "core/parallel.hh"

#include <algorithm>
#include <exception>
#include <mutex>

#include "base/thread_pool.hh"

namespace jscale::core {

std::vector<jvm::RunResult>
ParallelExecutor::run(std::vector<std::function<jvm::RunResult()>> tasks)
    const
{
    std::vector<jvm::RunResult> results(tasks.size());
    if (tasks.empty())
        return results;

    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::size_t first_error_index = tasks.size();

    ThreadPool pool(std::min(jobs_, tasks.size()));
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        pool.submit([i, &tasks, &results, &error_mutex, &first_error,
                     &first_error_index] {
            try {
                results[i] = tasks[i]();
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (i < first_error_index) {
                    first_error = std::current_exception();
                    first_error_index = i;
                }
            }
        });
    }
    pool.wait();

    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

std::vector<RunOutcome>
ParallelExecutor::runIsolated(
    std::vector<std::function<jvm::RunResult()>> tasks) const
{
    std::vector<RunOutcome> outcomes(tasks.size());
    if (tasks.empty())
        return outcomes;

    const auto runOne = [&tasks, &outcomes](std::size_t i) {
        try {
            outcomes[i].result = tasks[i]();
            outcomes[i].ok = true;
        } catch (const std::exception &e) {
            outcomes[i].error = e.what();
        } catch (...) {
            outcomes[i].error = "unknown error";
        }
    };

    const std::size_t jobs = std::min(jobs_, tasks.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            runOne(i);
        return outcomes;
    }
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        pool.submit([i, &runOne] { runOne(i); });
    pool.wait();
    return outcomes;
}

} // namespace jscale::core
