#include "core/resilience.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "base/output.hh"
#include "core/analyze.hh"
#include "fault/fault.hh"

namespace jscale::core {

namespace {

/** Insert "-<tag>" before the extension of an artifact path. */
std::string
tagPath(const std::string &path, const std::string &tag)
{
    if (path.empty())
        return path;
    const auto dot = path.find_last_of('.');
    const auto slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "-" + tag;
    return path.substr(0, dot) + "-" + tag + path.substr(dot);
}

/** Tasks per second of simulated time (0 for failed/empty runs). */
double
throughput(const jvm::RunResult &r)
{
    if (r.wall_time == 0)
        return 0.0;
    return static_cast<double>(r.total_tasks) /
           (static_cast<double>(r.wall_time) /
            static_cast<double>(units::SEC));
}

/** Share of total thread-time spent blocked on locks. */
double
lockShare(const jvm::RunResult &r)
{
    if (r.wall_time == 0 || r.threads == 0)
        return 0.0;
    return static_cast<double>(r.locks.block_time) /
           (static_cast<double>(r.wall_time) *
            static_cast<double>(r.threads));
}

std::string
armStatus(const jvm::RunResult &r)
{
    if (r.failed())
        return "failed";
    if (r.skipped)
        return "skipped";
    return "ok";
}

} // namespace

std::vector<ResiliencePoint>
runResilienceStudy(const ResilienceConfig &config)
{
    std::vector<ResiliencePoint> points;
    points.reserve(config.intensities.size());

    // Calibrate the heap once; every arm then runs with the same fixed
    // capacity, so the intensity axis is the only thing that varies.
    Bytes heap = config.base.heap_override;
    if (heap == 0) {
        ExperimentRunner calib(config.base);
        heap = static_cast<Bytes>(
            config.base.heap_factor *
            static_cast<double>(calib.minHeapRequirement(config.app)));
    }

    // Auto-horizon: measure an unfaulted run and fire every schedule
    // within 3/4 of its wall time. A fixed default would silently land
    // the whole plan past the end of short (scaled-down) runs.
    Ticks horizon = config.horizon;
    if (horizon == 0) {
        ExperimentConfig probe_cfg = config.base;
        probe_cfg.heap_override = heap;
        probe_cfg.faults = {};
        probe_cfg.governor.mode = control::GovernorMode::Off;
        probe_cfg.timeline_path.clear();
        probe_cfg.metrics_path.clear();
        probe_cfg.checkpoint_path.clear();
        ExperimentRunner probe(std::move(probe_cfg));
        const jvm::RunResult r = probe.runApp(config.app, config.threads);
        horizon = std::max<Ticks>(1 * units::MS, r.wall_time * 3 / 4);
        inform("resilience: auto horizon ", formatTicks(horizon),
               " (3/4 of the unfaulted ", formatTicks(r.wall_time),
               " run)");
    }

    for (const double intensity : config.intensities) {
        ResiliencePoint point;
        point.intensity = intensity;

        const fault::FaultPlan plan = fault::FaultPlan::fromIntensity(
            intensity, config.base.seed, horizon);
        point.plan = plan.describe();

        for (const bool governed : {false, true}) {
            ExperimentConfig arm = config.base;
            arm.heap_override = heap;
            arm.faults = plan;
            arm.governor.mode = governed ? config.governed_mode
                                         : control::GovernorMode::Off;

            // Tag every per-arm artifact so the arms never collide.
            const std::string tag =
                "i" + formatFixed(intensity, 2) +
                (governed ? "-gov" : "-ungov");
            arm.timeline_path = tagPath(arm.timeline_path, tag);
            arm.metrics_path = tagPath(arm.metrics_path, tag);
            arm.error_path = tagPath(arm.error_path, tag);
            arm.checkpoint_path = tagPath(arm.checkpoint_path, tag);

            ExperimentRunner runner(std::move(arm));
            // sweep() routes through the isolated batch executor: an
            // aborted run becomes an error artifact + failed() marker
            // and the study continues.
            jvm::RunResult r =
                std::move(runner.sweep(config.app, {config.threads})[0]);
            if (governed)
                point.governed = std::move(r);
            else
                point.ungoverned = std::move(r);
        }
        inform("resilience: intensity ", formatFixed(intensity, 2),
               " done (ungoverned ", armStatus(point.ungoverned),
               ", governed ", armStatus(point.governed), ")");
        points.push_back(std::move(point));
    }
    return points;
}

void
printResilienceTable(std::ostream &os,
                     const std::vector<ResiliencePoint> &points)
{
    os << "E18 — resilience under fault injection "
          "(throughput in tasks/s of simulated time)\n";
    TextTable t;
    t.header({"intensity", "arm", "status", "wall", "tput", "gc-share",
              "lock-share", "inject", "recover", "killed", "target"});
    for (const auto &p : points) {
        for (const bool governed : {false, true}) {
            const jvm::RunResult &r =
                governed ? p.governed : p.ungoverned;
            const std::string target =
                r.governor.enabled
                    ? std::to_string(r.governor.final_target)
                    : "-";
            if (r.failed()) {
                t.row({formatFixed(p.intensity, 2),
                       governed ? "gov" : "ungov", "failed", "-", "-",
                       "-", "-", "-", "-", "-", target});
                continue;
            }
            t.row({formatFixed(p.intensity, 2),
                   governed ? "gov" : "ungov", armStatus(r),
                   formatTicks(r.wall_time),
                   formatFixed(throughput(r), 1),
                   formatPercent(ScalabilityAnalyzer::gcShare(r)),
                   formatPercent(lockShare(r)),
                   std::to_string(r.faults.injections),
                   std::to_string(r.faults.recoveries),
                   std::to_string(r.faults.mutators_killed), target});
        }
    }
    t.print(os);
    for (const auto &p : points) {
        if (p.ungoverned.failed())
            os << "failed: intensity " << formatFixed(p.intensity, 2)
               << " ungoverned: " << p.ungoverned.run_error << "\n";
        if (p.governed.failed())
            os << "failed: intensity " << formatFixed(p.intensity, 2)
               << " governed: " << p.governed.run_error << "\n";
    }
}

void
writeResilienceCsv(std::ostream &os,
                   const std::vector<ResiliencePoint> &points)
{
    os << "intensity,arm,status,wall_ticks,throughput,gc_share,"
          "lock_share,injections,recoveries,cores_offlined,"
          "mutators_killed,tasks_reassigned,gov_target\n";
    for (const auto &p : points) {
        for (const bool governed : {false, true}) {
            const jvm::RunResult &r =
                governed ? p.governed : p.ungoverned;
            os << formatFixed(p.intensity, 2) << ','
               << (governed ? "gov" : "ungov") << ',' << armStatus(r)
               << ',' << r.wall_time << ','
               << formatFixed(throughput(r), 3) << ','
               << formatFixed(ScalabilityAnalyzer::gcShare(r), 4) << ','
               << formatFixed(lockShare(r), 4) << ','
               << r.faults.injections << ',' << r.faults.recoveries
               << ',' << r.faults.cores_offlined << ','
               << r.faults.mutators_killed << ','
               << r.faults.tasks_reassigned << ','
               << (r.governor.enabled
                       ? std::to_string(r.governor.final_target)
                       : std::string("-"))
               << '\n';
        }
    }
}

} // namespace jscale::core
