#include "core/checkpoint.hh"

#include <filesystem>
#include <utility>

#include "base/logging.hh"

namespace jscale::core {

namespace {
constexpr const char *kMagic = "jscale-checkpoint|";
} // namespace

CheckpointStore::CheckpointStore(std::string path, std::string fingerprint)
    : path_(std::move(path)), fingerprint_(std::move(fingerprint))
{
    jscale_assert(!path_.empty(), "checkpoint path must not be empty");
}

std::size_t
CheckpointStore::load()
{
    std::lock_guard<std::mutex> lock(mutex_);
    done_.clear();
    file_valid_ = false;
    std::ifstream in(path_);
    if (!in)
        return 0;
    std::string line;
    if (!std::getline(in, line) || line != kMagic + fingerprint_) {
        inform("checkpoint '", path_,
               "' belongs to a different configuration; starting fresh");
        return 0;
    }
    while (std::getline(in, line)) {
        if (!line.empty())
            done_.insert(line);
    }
    file_valid_ = true;
    return done_.size();
}

bool
CheckpointStore::completed(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_.count(key) > 0;
}

void
CheckpointStore::ensureOpen()
{
    if (out_.is_open())
        return;
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    if (file_valid_) {
        out_.open(path_, std::ios::out | std::ios::app);
    } else {
        // Fresh or mismatched ledger: rewrite with our header, then
        // replay the keys already known in memory (normally none).
        out_.open(path_, std::ios::out | std::ios::trunc);
        if (out_) {
            out_ << kMagic << fingerprint_ << '\n';
            for (const auto &key : done_)
                out_ << key << '\n';
            out_.flush();
            file_valid_ = true;
        }
    }
    if (!out_)
        inform("cannot write checkpoint '", path_,
               "'; resume will not see this study's progress");
}

void
CheckpointStore::record(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!done_.insert(key).second)
        return;
    ensureOpen();
    if (out_) {
        out_ << key << '\n';
        out_.flush();
    }
}

} // namespace jscale::core
