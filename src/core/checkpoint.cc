#include "core/checkpoint.hh"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/logging.hh"

namespace jscale::core {

namespace {

constexpr const char *kMagic = "jscale-checkpoint|";

/** A ledger entry is one printable-ASCII line; anything else is
 *  corruption (partial write, disk scribble) to skip, not trust. */
bool
printableLine(const std::string &line)
{
    for (const char c : line) {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20 || u > 0x7e)
            return false;
    }
    return true;
}

} // namespace

CheckpointStore::CheckpointStore(std::string path, std::string fingerprint)
    : path_(std::move(path)), fingerprint_(std::move(fingerprint))
{
    jscale_assert(!path_.empty(), "checkpoint path must not be empty");
}

CheckpointStore::~CheckpointStore()
{
    if (out_)
        std::fclose(out_);
}

std::size_t
CheckpointStore::load()
{
    std::lock_guard<std::mutex> lock(mutex_);
    done_.clear();
    file_valid_ = false;
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return 0;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    if (data.empty())
        return 0;

    const std::size_t header_end = data.find('\n');
    if (header_end == std::string::npos ||
        data.substr(0, header_end) != kMagic + fingerprint_) {
        inform("checkpoint '", path_,
               "' belongs to a different configuration; starting fresh");
        return 0;
    }

    bool dirty = false;
    std::size_t start = header_end + 1;
    while (start < data.size()) {
        const std::size_t end = data.find('\n', start);
        if (end == std::string::npos) {
            // Torn trailing entry: the writer died mid-append. Skip it
            // — that run re-executes — and rewrite the ledger clean.
            warn("checkpoint '", path_, "': dropping torn trailing ",
                 "entry; the affected run will re-execute");
            dirty = true;
            break;
        }
        const std::string line = data.substr(start, end - start);
        start = end + 1;
        if (line.empty())
            continue;
        if (!printableLine(line)) {
            warn("checkpoint '", path_, "': skipping corrupt entry; ",
                 "the affected run will re-execute");
            dirty = true;
            continue;
        }
        done_.insert(line);
    }
    // A dirty ledger keeps its salvaged keys in memory but is rewritten
    // from them on the next record().
    file_valid_ = !dirty;
    return done_.size();
}

bool
CheckpointStore::completed(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_.count(key) > 0;
}

void
CheckpointStore::ensureOpen()
{
    if (out_)
        return;
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    if (file_valid_) {
        out_ = std::fopen(path_.c_str(), "ae");
    } else {
        // Fresh, mismatched or corrupt ledger: rewrite with our header,
        // then replay the keys already known in memory.
        out_ = std::fopen(path_.c_str(), "we");
        if (out_) {
            std::fputs(kMagic, out_);
            std::fputs(fingerprint_.c_str(), out_);
            std::fputc('\n', out_);
            for (const auto &key : done_) {
                std::fputs(key.c_str(), out_);
                std::fputc('\n', out_);
            }
            std::fflush(out_);
            ::fsync(::fileno(out_));
            file_valid_ = true;
        }
    }
    if (!out_)
        inform("cannot write checkpoint '", path_,
               "'; resume will not see this study's progress");
}

void
CheckpointStore::record(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_.count(key) > 0)
        return;
    // Open (and, after corruption, rewrite from done_) before inserting
    // the new key, so the append below is its only occurrence.
    ensureOpen();
    done_.insert(key);
    if (out_) {
        std::fputs(key.c_str(), out_);
        std::fputc('\n', out_);
        std::fflush(out_);
        // Durable before the caller reports the run complete: a crash
        // later never forgets a recorded key.
        ::fsync(::fileno(out_));
    }
}

} // namespace jscale::core
