#include "core/run_record.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

namespace jscale::core {

namespace {

constexpr const char *kHeader = "jscale-run v1";

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else if (c == '\r')
            out += "\\r";
        else
            out += c;
    }
    return out;
}

std::string
unescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        const char next = s[++i];
        if (next == 'n')
            out += '\n';
        else if (next == 'r')
            out += '\r';
        else
            out += next;
    }
    return out;
}

/** Lossless double rendering: C hexfloat (inf/nan print as names). */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/**
 * Sequential field writer. The reader consumes fields in the exact
 * order the writer emits them, so field names double as a structural
 * checksum: any skew fails the parse instead of mis-assigning values.
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    void u(const char *name, std::uint64_t v)
    {
        os_ << "u " << name << ' ' << v << '\n';
    }

    void d(const char *name, double v)
    {
        os_ << "d " << name << ' ' << fmtDouble(v) << '\n';
    }

    void s(const char *name, const std::string &v)
    {
        os_ << "s " << name << ' ' << escape(v) << '\n';
    }

    void sample(const char *name, const stats::SampleStats &v)
    {
        os_ << "ss " << name << ' ' << v.count() << ' '
            << fmtDouble(v.sum()) << ' ' << fmtDouble(v.welfordMean())
            << ' ' << fmtDouble(v.m2()) << ' ' << fmtDouble(v.min())
            << ' ' << fmtDouble(v.max()) << '\n';
    }

    void logHist(const char *name, const stats::LogHistogram &h)
    {
        std::size_t nonzero = 0;
        for (std::size_t i = 0; i < stats::LogHistogram::kBuckets; ++i)
            nonzero += h.bucket(i) != 0;
        os_ << "lh " << name << ' ' << nonzero << '\n';
        for (std::size_t i = 0; i < stats::LogHistogram::kBuckets; ++i) {
            if (h.bucket(i) != 0)
                os_ << "lb " << i << ' ' << h.bucket(i) << '\n';
        }
    }

    void latHist(const char *name, const stats::LatencyHistogram &h)
    {
        std::size_t nonzero = 0;
        for (std::size_t i = 0; i < stats::LatencyHistogram::kBuckets;
             ++i) {
            nonzero += h.bucket(i) != 0;
        }
        os_ << "ah " << name << ' ' << nonzero << ' ' << h.count() << ' '
            << h.sum() << ' ' << h.min() << ' ' << h.max() << '\n';
        for (std::size_t i = 0; i < stats::LatencyHistogram::kBuckets;
             ++i) {
            if (h.bucket(i) != 0)
                os_ << "ab " << i << ' ' << h.bucket(i) << '\n';
        }
    }

  private:
    std::ostream &os_;
};

/**
 * Sequential field reader, the writer's mirror. The first malformed or
 * out-of-order field latches an error; later calls become no-ops so the
 * call site stays a linear field list with one error check at the end.
 */
class Reader
{
  public:
    explicit Reader(std::istream &is) : is_(is) {}

    bool ok() const { return err_.empty(); }
    const std::string &error() const { return err_; }

    /** Read one raw line; false at EOF (latches an error). */
    bool line(std::string &out)
    {
        if (!ok())
            return false;
        if (!std::getline(is_, out)) {
            fail("unexpected end of record");
            return false;
        }
        return true;
    }

    std::uint64_t u(const char *name)
    {
        const std::string rest = tagged("u", name);
        return parseU64(rest, name);
    }

    double d(const char *name)
    {
        const std::string rest = tagged("d", name);
        return parseDouble(rest, name);
    }

    std::string s(const char *name)
    {
        return unescape(tagged("s", name));
    }

    stats::SampleStats sample(const char *name)
    {
        std::istringstream ss(tagged("ss", name));
        std::uint64_t count = 0;
        std::string sum, mean, m2, mn, mx;
        if (ok() && !(ss >> count >> sum >> mean >> m2 >> mn >> mx))
            fail(std::string("malformed sample stats '") + name + "'");
        if (!ok())
            return {};
        return stats::SampleStats::restore(
            count, parseDouble(sum, name), parseDouble(mean, name),
            parseDouble(m2, name), parseDouble(mn, name),
            parseDouble(mx, name));
    }

    void logHist(const char *name, stats::LogHistogram &h)
    {
        std::istringstream ss(tagged("lh", name));
        std::uint64_t nonzero = 0;
        if (ok() && !(ss >> nonzero))
            fail(std::string("malformed histogram header '") + name +
                 "'");
        for (std::uint64_t n = 0; ok() && n < nonzero; ++n) {
            std::string ln;
            if (!line(ln))
                break;
            std::istringstream bs(ln);
            std::string tag;
            std::uint64_t i = 0, w = 0;
            if (!(bs >> tag >> i >> w) || tag != "lb" ||
                i >= stats::LogHistogram::kBuckets) {
                fail(std::string("malformed histogram bucket in '") +
                     name + "'");
                break;
            }
            // Re-add at the bucket's lower edge: exact reconstruction,
            // since bucketing only keeps the index anyway.
            h.add(i == 0 ? 0 : (1ULL << (i - 1)), w);
        }
    }

    void latHist(const char *name, stats::LatencyHistogram &h)
    {
        std::istringstream ss(tagged("ah", name));
        std::uint64_t nonzero = 0, count = 0, sum = 0, mn = 0, mx = 0;
        if (ok() && !(ss >> nonzero >> count >> sum >> mn >> mx))
            fail(std::string("malformed histogram header '") + name +
                 "'");
        std::uint64_t restored = 0;
        for (std::uint64_t n = 0; ok() && n < nonzero; ++n) {
            std::string ln;
            if (!line(ln))
                break;
            std::istringstream bs(ln);
            std::string tag;
            std::uint64_t i = 0, w = 0;
            if (!(bs >> tag >> i >> w) || tag != "ab" ||
                i >= stats::LatencyHistogram::kBuckets) {
                fail(std::string("malformed histogram bucket in '") +
                     name + "'");
                break;
            }
            h.restoreBucket(static_cast<std::size_t>(i), w);
            restored += w;
        }
        if (ok() && restored != count)
            fail(std::string("histogram weight mismatch in '") + name +
                 "'");
        if (ok() && count > 0)
            h.restoreAggregates(sum, mn, mx);
    }

    void fail(const std::string &msg)
    {
        if (err_.empty())
            err_ = msg;
    }

  private:
    /** Expect "<tag> <name> "; return the rest of the line. */
    std::string tagged(const char *tag, const char *name)
    {
        std::string ln;
        if (!line(ln))
            return {};
        const std::string prefix =
            std::string(tag) + ' ' + name + ' ';
        if (ln.compare(0, prefix.size(), prefix) != 0) {
            // A tag line with an empty value has no trailing space.
            const std::string bare = std::string(tag) + ' ' + name;
            if (ln == bare)
                return {};
            fail("expected field '" + std::string(name) + "', got '" +
                 ln + "'");
            return {};
        }
        return ln.substr(prefix.size());
    }

    std::uint64_t parseU64(const std::string &v, const char *name)
    {
        if (!ok())
            return 0;
        char *end = nullptr;
        const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
        if (v.empty() || end != v.c_str() + v.size()) {
            fail(std::string("malformed integer field '") + name + "'");
            return 0;
        }
        return static_cast<std::uint64_t>(x);
    }

    double parseDouble(const std::string &v, const char *name)
    {
        if (!ok())
            return 0.0;
        char *end = nullptr;
        const double x = std::strtod(v.c_str(), &end);
        if (v.empty() || end != v.c_str() + v.size()) {
            fail(std::string("malformed double field '") + name + "'");
            return 0.0;
        }
        return x;
    }

    std::istream &is_;
    std::string err_;
};

void
writeBuckets(std::ostream &os, const char *name,
             const Ticks (&buckets)[jvm::kWaitBucketCount])
{
    os << "bk " << name;
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
        os << ' ' << buckets[i];
    os << '\n';
}

bool
readBuckets(Reader &in, const char *name,
            Ticks (&buckets)[jvm::kWaitBucketCount])
{
    std::string ln;
    if (!in.line(ln))
        return false;
    std::istringstream ss(ln);
    std::string tag, got;
    if (!(ss >> tag >> got) || tag != "bk" || got != name) {
        in.fail(std::string("expected bucket row '") + name + "'");
        return false;
    }
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        if (!(ss >> buckets[i])) {
            in.fail(std::string("short bucket row '") + name + "'");
            return false;
        }
    }
    return true;
}

} // namespace

void
writeRunRecord(std::ostream &os, const std::string &key,
               const std::string &fingerprint, const jvm::RunResult &r)
{
    os << kHeader << '\n';
    os << "key " << escape(key) << '\n';
    os << "fp " << escape(fingerprint) << '\n';

    Writer w(os);
    w.s("app_name", r.app_name);
    w.u("threads", r.threads);
    w.u("cores", r.cores);
    w.u("heap_capacity", r.heap_capacity);
    w.u("wall_time", r.wall_time);
    w.u("gc_time", r.gc_time);

    const jvm::GcRunStats &gc = r.gc;
    w.u("gc.minor_count", gc.minor_count);
    w.u("gc.full_count", gc.full_count);
    w.u("gc.local_count", gc.local_count);
    w.u("gc.concurrent_cycles", gc.concurrent_cycles);
    w.u("gc.concurrent_failures", gc.concurrent_failures);
    w.u("gc.remark_count", gc.remark_count);
    w.u("gc.local_pause", gc.local_pause);
    w.u("gc.total_pause", gc.total_pause);
    w.u("gc.total_ttsp", gc.total_ttsp);
    w.u("gc.copied_bytes", gc.copied_bytes);
    w.u("gc.promoted_bytes", gc.promoted_bytes);
    w.u("gc.reclaimed_bytes", gc.reclaimed_bytes);
    w.sample("gc.minor_pauses", gc.minor_pauses);
    w.sample("gc.full_pauses", gc.full_pauses);
    w.logHist("gc.pause_hist", gc.pause_hist);
    w.sample("gc.nursery_survival", gc.nursery_survival);
    w.u("gc.adaptive.grows", gc.adaptive.grows);
    w.u("gc.adaptive.shrinks", gc.adaptive.shrinks);
    w.d("gc.adaptive.final_young_fraction",
        gc.adaptive.final_young_fraction);
    w.u("gc.young_resizes", gc.young_resizes);
    // Only the event count is observable after a run (snapshots and
    // reports never read individual events), so the count suffices for
    // byte-identical rendering.
    w.u("gc.events", gc.events.size());

    const jvm::HeapStats &heap = r.heap;
    w.u("heap.objects_allocated", heap.objects_allocated);
    w.u("heap.objects_died", heap.objects_died);
    w.u("heap.bytes_allocated", heap.bytes_allocated);
    w.u("heap.bytes_died", heap.bytes_died);
    w.u("heap.peak_live_bytes", heap.peak_live_bytes);
    w.u("heap.tlab_refills", heap.tlab_refills);
    w.u("heap.tlab_waste", heap.tlab_waste);
    w.logHist("heap.lifespan", heap.lifespan);

    const jvm::LockTotals &locks = r.locks;
    w.u("locks.acquisitions", locks.acquisitions);
    w.u("locks.contentions", locks.contentions);
    w.u("locks.block_time", locks.block_time);
    w.u("locks.monitors", locks.monitors);
    w.u("locks.biased_acquisitions", locks.biased_acquisitions);
    w.u("locks.thin_acquisitions", locks.thin_acquisitions);
    w.u("locks.fat_acquisitions", locks.fat_acquisitions);
    w.u("locks.bias_revocations", locks.bias_revocations);
    w.u("locks.inflations", locks.inflations);
    w.u("locks.waits", locks.waits);
    w.u("locks.notifies", locks.notifies);
    w.u("locks.handoffs", locks.handoffs);
    w.u("locks.barged_grants", locks.barged_grants);
    w.u("locks.waiters_passivated", locks.waiters_passivated);
    w.u("locks.waiters_reactivated", locks.waiters_reactivated);
    w.u("locks.coherence_penalty", locks.coherence_penalty);
    w.u("locks.circulation_sum", locks.circulation_sum);
    w.latHist("locks.block_hist", locks.block_hist);

    w.u("threads.count", r.thread_summaries.size());
    for (const jvm::ThreadSummary &t : r.thread_summaries) {
        w.s("t.name", t.name);
        w.u("t.kind", static_cast<std::uint64_t>(t.kind));
        w.u("t.cpu_time", t.cpu_time);
        w.u("t.ready_time", t.ready_time);
        w.u("t.blocked_time", t.blocked_time);
        w.u("t.sleep_time", t.sleep_time);
        w.u("t.dispatches", t.dispatches);
        w.u("t.migrations", t.migrations);
        w.u("t.tasks_completed", t.tasks_completed);
        w.u("t.allocations", t.allocations);
        w.u("t.bytes_allocated", t.bytes_allocated);
    }

    const os::SchedulerStats &sc = r.sched;
    w.u("sched.dispatches", sc.dispatches);
    w.u("sched.context_switches", sc.context_switches);
    w.u("sched.migrations", sc.migrations);
    w.u("sched.steals", sc.steals);
    w.u("sched.preemptions", sc.preemptions);
    w.u("sched.admission_parks", sc.admission_parks);
    w.u("sched.admission_unparks", sc.admission_unparks);
    w.u("sched.core_offlines", sc.core_offlines);
    w.u("sched.core_onlines", sc.core_onlines);
    w.u("sched.displaced_threads", sc.displaced_threads);
    w.u("sched.forced_preemptions", sc.forced_preemptions);
    w.u("sched.forced_stalls", sc.forced_stalls);
    w.u("sched.busy_ticks", sc.busy_ticks);
    w.u("sched.overhead_ticks", sc.overhead_ticks);

    const jvm::GovernorSummary &gov = r.governor;
    w.u("gov.enabled", gov.enabled ? 1 : 0);
    w.s("gov.policy", gov.policy);
    w.u("gov.final_target", gov.final_target);
    w.u("gov.min_target", gov.min_target);
    w.u("gov.max_target", gov.max_target);
    w.u("gov.decisions", gov.decisions);
    w.u("gov.parks", gov.parks);
    w.u("gov.unparks", gov.unparks);
    w.d("gov.usl_sigma", gov.usl_sigma);
    w.d("gov.usl_kappa", gov.usl_kappa);
    w.d("gov.usl_nstar", gov.usl_nstar);

    const jvm::FaultSummary &f = r.faults;
    w.u("faults.injections", f.injections);
    w.u("faults.recoveries", f.recoveries);
    w.u("faults.cores_offlined", f.cores_offlined);
    w.u("faults.cores_onlined", f.cores_onlined);
    w.u("faults.slowdowns", f.slowdowns);
    w.u("faults.preempt_bursts", f.preempt_bursts);
    w.u("faults.lock_holders_preempted", f.lock_holders_preempted);
    w.u("faults.mutators_killed", f.mutators_killed);
    w.u("faults.mutators_stalled", f.mutators_stalled);
    w.u("faults.heap_spikes", f.heap_spikes);
    w.u("faults.gc_worker_losses", f.gc_worker_losses);
    w.u("faults.tasks_reassigned", f.tasks_reassigned);

    const jvm::ProfileSummary &p = r.profile;
    w.u("profile.enabled", p.enabled ? 1 : 0);
    w.u("profile.tasks", p.tasks);
    w.u("profile.tasks_discarded", p.tasks_discarded);
    writeBuckets(os, "profile.bucket_total", p.bucket_total);
    w.latHist("profile.latency", p.latency);
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
        w.latHist("profile.bucket_hist", p.bucket_hist[i]);
    w.u("profile.slowest", p.slowest.size());
    for (const jvm::SlowTaskRecord &slow : p.slowest) {
        os << "sl " << slow.task << ' ' << slow.thread << ' '
           << slow.start << ' ' << slow.end;
        for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
            os << ' ' << slow.buckets[i];
        os << '\n';
    }
    w.u("profile.lock_waits", p.lock_waits.size());
    for (const jvm::MonitorWaitTotal &mw : p.lock_waits) {
        os << "mw " << mw.monitor << ' ' << mw.wait << ' ' << mw.blocks
           << '\n';
    }

    const jvm::TrafficSummary &tr = r.traffic;
    w.u("traffic.enabled", tr.enabled ? 1 : 0);
    w.u("traffic.tenant", tr.tenant);
    w.s("traffic.arrival_spec", tr.arrival_spec);
    w.u("traffic.arrivals", tr.arrivals);
    w.u("traffic.admitted", tr.admitted);
    w.u("traffic.shed", tr.shed);
    w.u("traffic.dispatched", tr.dispatched);
    w.u("traffic.completed", tr.completed);
    w.u("traffic.max_queue_depth", tr.max_queue_depth);
    w.latHist("traffic.sojourn", tr.sojourn);
    w.latHist("traffic.queueing", tr.queueing);
    w.latHist("traffic.service", tr.service);
    writeBuckets(os, "traffic.service_bucket_total",
                 tr.service_bucket_total);

    w.u("total_tasks", r.total_tasks);
    w.u("sim_events", r.sim_events);
    w.s("timeline_file", r.timeline_file);
    w.s("metrics_file", r.metrics_file);
    w.u("timeline_events", r.timeline_events);
    w.u("metric_rows", r.metric_rows);
    w.u("artifact_errors", r.artifact_errors.size());
    for (const std::string &e : r.artifact_errors)
        w.s("ae", e);
    w.s("run_error", r.run_error);
    w.u("skipped", r.skipped ? 1 : 0);
    os << "end\n";
}

bool
readRunRecord(std::istream &is, const std::string &expect_key,
              const std::string &expect_fingerprint, jvm::RunResult &out,
              std::string &err)
{
    Reader in(is);
    std::string ln;
    if (!in.line(ln) || ln != kHeader) {
        err = in.ok() ? "not a jscale-run v1 record" : in.error();
        return false;
    }
    if (!in.line(ln) || ln.compare(0, 4, "key ") != 0) {
        err = "record missing key line";
        return false;
    }
    if (unescape(ln.substr(4)) != expect_key) {
        err = "record key mismatch";
        return false;
    }
    if (!in.line(ln) || ln.compare(0, 3, "fp ") != 0) {
        err = "record missing fingerprint line";
        return false;
    }
    if (unescape(ln.substr(3)) != expect_fingerprint) {
        err = "record belongs to a different campaign configuration";
        return false;
    }

    jvm::RunResult r;
    r.app_name = in.s("app_name");
    r.threads = static_cast<std::uint32_t>(in.u("threads"));
    r.cores = static_cast<std::uint32_t>(in.u("cores"));
    r.heap_capacity = in.u("heap_capacity");
    r.wall_time = in.u("wall_time");
    r.gc_time = in.u("gc_time");

    jvm::GcRunStats &gc = r.gc;
    gc.minor_count = in.u("gc.minor_count");
    gc.full_count = in.u("gc.full_count");
    gc.local_count = in.u("gc.local_count");
    gc.concurrent_cycles = in.u("gc.concurrent_cycles");
    gc.concurrent_failures = in.u("gc.concurrent_failures");
    gc.remark_count = in.u("gc.remark_count");
    gc.local_pause = in.u("gc.local_pause");
    gc.total_pause = in.u("gc.total_pause");
    gc.total_ttsp = in.u("gc.total_ttsp");
    gc.copied_bytes = in.u("gc.copied_bytes");
    gc.promoted_bytes = in.u("gc.promoted_bytes");
    gc.reclaimed_bytes = in.u("gc.reclaimed_bytes");
    gc.minor_pauses = in.sample("gc.minor_pauses");
    gc.full_pauses = in.sample("gc.full_pauses");
    in.logHist("gc.pause_hist", gc.pause_hist);
    gc.nursery_survival = in.sample("gc.nursery_survival");
    gc.adaptive.grows = in.u("gc.adaptive.grows");
    gc.adaptive.shrinks = in.u("gc.adaptive.shrinks");
    gc.adaptive.final_young_fraction =
        in.d("gc.adaptive.final_young_fraction");
    gc.young_resizes = in.u("gc.young_resizes");
    gc.events.resize(static_cast<std::size_t>(in.u("gc.events")));

    jvm::HeapStats &heap = r.heap;
    heap.objects_allocated = in.u("heap.objects_allocated");
    heap.objects_died = in.u("heap.objects_died");
    heap.bytes_allocated = in.u("heap.bytes_allocated");
    heap.bytes_died = in.u("heap.bytes_died");
    heap.peak_live_bytes = in.u("heap.peak_live_bytes");
    heap.tlab_refills = in.u("heap.tlab_refills");
    heap.tlab_waste = in.u("heap.tlab_waste");
    in.logHist("heap.lifespan", heap.lifespan);

    jvm::LockTotals &locks = r.locks;
    locks.acquisitions = in.u("locks.acquisitions");
    locks.contentions = in.u("locks.contentions");
    locks.block_time = in.u("locks.block_time");
    locks.monitors = in.u("locks.monitors");
    locks.biased_acquisitions = in.u("locks.biased_acquisitions");
    locks.thin_acquisitions = in.u("locks.thin_acquisitions");
    locks.fat_acquisitions = in.u("locks.fat_acquisitions");
    locks.bias_revocations = in.u("locks.bias_revocations");
    locks.inflations = in.u("locks.inflations");
    locks.waits = in.u("locks.waits");
    locks.notifies = in.u("locks.notifies");
    locks.handoffs = in.u("locks.handoffs");
    locks.barged_grants = in.u("locks.barged_grants");
    locks.waiters_passivated = in.u("locks.waiters_passivated");
    locks.waiters_reactivated = in.u("locks.waiters_reactivated");
    locks.coherence_penalty = in.u("locks.coherence_penalty");
    locks.circulation_sum = in.u("locks.circulation_sum");
    in.latHist("locks.block_hist", locks.block_hist);

    const std::uint64_t n_threads = in.u("threads.count");
    for (std::uint64_t i = 0; in.ok() && i < n_threads; ++i) {
        jvm::ThreadSummary t;
        t.name = in.s("t.name");
        t.kind = static_cast<os::ThreadKind>(in.u("t.kind"));
        t.cpu_time = in.u("t.cpu_time");
        t.ready_time = in.u("t.ready_time");
        t.blocked_time = in.u("t.blocked_time");
        t.sleep_time = in.u("t.sleep_time");
        t.dispatches = in.u("t.dispatches");
        t.migrations = in.u("t.migrations");
        t.tasks_completed = in.u("t.tasks_completed");
        t.allocations = in.u("t.allocations");
        t.bytes_allocated = in.u("t.bytes_allocated");
        r.thread_summaries.push_back(std::move(t));
    }

    os::SchedulerStats &sc = r.sched;
    sc.dispatches = in.u("sched.dispatches");
    sc.context_switches = in.u("sched.context_switches");
    sc.migrations = in.u("sched.migrations");
    sc.steals = in.u("sched.steals");
    sc.preemptions = in.u("sched.preemptions");
    sc.admission_parks = in.u("sched.admission_parks");
    sc.admission_unparks = in.u("sched.admission_unparks");
    sc.core_offlines = in.u("sched.core_offlines");
    sc.core_onlines = in.u("sched.core_onlines");
    sc.displaced_threads = in.u("sched.displaced_threads");
    sc.forced_preemptions = in.u("sched.forced_preemptions");
    sc.forced_stalls = in.u("sched.forced_stalls");
    sc.busy_ticks = in.u("sched.busy_ticks");
    sc.overhead_ticks = in.u("sched.overhead_ticks");

    jvm::GovernorSummary &gov = r.governor;
    gov.enabled = in.u("gov.enabled") != 0;
    gov.policy = in.s("gov.policy");
    gov.final_target = static_cast<std::uint32_t>(in.u("gov.final_target"));
    gov.min_target = static_cast<std::uint32_t>(in.u("gov.min_target"));
    gov.max_target = static_cast<std::uint32_t>(in.u("gov.max_target"));
    gov.decisions = in.u("gov.decisions");
    gov.parks = in.u("gov.parks");
    gov.unparks = in.u("gov.unparks");
    gov.usl_sigma = in.d("gov.usl_sigma");
    gov.usl_kappa = in.d("gov.usl_kappa");
    gov.usl_nstar = in.d("gov.usl_nstar");

    jvm::FaultSummary &f = r.faults;
    f.injections = in.u("faults.injections");
    f.recoveries = in.u("faults.recoveries");
    f.cores_offlined = in.u("faults.cores_offlined");
    f.cores_onlined = in.u("faults.cores_onlined");
    f.slowdowns = in.u("faults.slowdowns");
    f.preempt_bursts = in.u("faults.preempt_bursts");
    f.lock_holders_preempted = in.u("faults.lock_holders_preempted");
    f.mutators_killed = in.u("faults.mutators_killed");
    f.mutators_stalled = in.u("faults.mutators_stalled");
    f.heap_spikes = in.u("faults.heap_spikes");
    f.gc_worker_losses = in.u("faults.gc_worker_losses");
    f.tasks_reassigned = in.u("faults.tasks_reassigned");

    jvm::ProfileSummary &p = r.profile;
    p.enabled = in.u("profile.enabled") != 0;
    p.tasks = in.u("profile.tasks");
    p.tasks_discarded = in.u("profile.tasks_discarded");
    readBuckets(in, "profile.bucket_total", p.bucket_total);
    in.latHist("profile.latency", p.latency);
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
        in.latHist("profile.bucket_hist", p.bucket_hist[i]);
    const std::uint64_t n_slow = in.u("profile.slowest");
    for (std::uint64_t i = 0; in.ok() && i < n_slow; ++i) {
        if (!in.line(ln))
            break;
        std::istringstream ss(ln);
        std::string tag;
        jvm::SlowTaskRecord slow;
        if (!(ss >> tag >> slow.task >> slow.thread >> slow.start >>
              slow.end) ||
            tag != "sl") {
            in.fail("malformed slow-task row");
            break;
        }
        bool short_row = false;
        for (std::size_t b = 0; b < jvm::kWaitBucketCount; ++b) {
            if (!(ss >> slow.buckets[b])) {
                short_row = true;
                break;
            }
        }
        if (short_row) {
            in.fail("short slow-task row");
            break;
        }
        p.slowest.push_back(slow);
    }
    const std::uint64_t n_mw = in.u("profile.lock_waits");
    for (std::uint64_t i = 0; in.ok() && i < n_mw; ++i) {
        if (!in.line(ln))
            break;
        std::istringstream ss(ln);
        std::string tag;
        jvm::MonitorWaitTotal mw;
        if (!(ss >> tag >> mw.monitor >> mw.wait >> mw.blocks) ||
            tag != "mw") {
            in.fail("malformed monitor-wait row");
            break;
        }
        p.lock_waits.push_back(mw);
    }

    jvm::TrafficSummary &tr = r.traffic;
    tr.enabled = in.u("traffic.enabled") != 0;
    tr.tenant = static_cast<std::uint32_t>(in.u("traffic.tenant"));
    tr.arrival_spec = in.s("traffic.arrival_spec");
    tr.arrivals = in.u("traffic.arrivals");
    tr.admitted = in.u("traffic.admitted");
    tr.shed = in.u("traffic.shed");
    tr.dispatched = in.u("traffic.dispatched");
    tr.completed = in.u("traffic.completed");
    tr.max_queue_depth = in.u("traffic.max_queue_depth");
    in.latHist("traffic.sojourn", tr.sojourn);
    in.latHist("traffic.queueing", tr.queueing);
    in.latHist("traffic.service", tr.service);
    readBuckets(in, "traffic.service_bucket_total",
                tr.service_bucket_total);

    r.total_tasks = in.u("total_tasks");
    r.sim_events = in.u("sim_events");
    r.timeline_file = in.s("timeline_file");
    r.metrics_file = in.s("metrics_file");
    r.timeline_events = in.u("timeline_events");
    r.metric_rows = in.u("metric_rows");
    const std::uint64_t n_ae = in.u("artifact_errors");
    for (std::uint64_t i = 0; in.ok() && i < n_ae; ++i)
        r.artifact_errors.push_back(in.s("ae"));
    r.run_error = in.s("run_error");
    r.skipped = in.u("skipped") != 0;

    if (in.ok() && (!in.line(ln) || ln != "end"))
        in.fail("record missing 'end' trailer (torn write?)");
    if (!in.ok()) {
        err = in.error();
        return false;
    }
    out = std::move(r);
    return true;
}

} // namespace jscale::core
