/**
 * @file
 * CheckpointStore: crash-safe completed-run ledger for sweeps.
 *
 * A checkpoint file is a line-oriented ledger: a header binding it to
 * one campaign configuration (the fingerprint), then one line per
 * completed run key. Runs are recorded with an append + flush + fsync
 * as they finish, so a killed study — power loss included — loses at
 * most the in-flight runs; a subsequent `--resume` invocation loads
 * the ledger and skips every recorded key. A torn trailing line (the
 * writer died mid-append) or a garbage line is skipped with a warning
 * — that run simply re-executes — and the ledger is rewritten clean on
 * the next record(). A fingerprint mismatch (different seed, faults,
 * governor, ...) discards the stale ledger and starts fresh — resuming
 * across configurations would silently mix incompatible results.
 *
 * Format:
 *   jscale-checkpoint|<fingerprint>
 *   <run key>
 *   ...
 */

#ifndef JSCALE_CORE_CHECKPOINT_HH
#define JSCALE_CORE_CHECKPOINT_HH

#include <cstdio>
#include <mutex>
#include <set>
#include <string>

namespace jscale::core {

/** The ledger. Construct, then load() once before any queries. */
class CheckpointStore
{
  public:
    /**
     * @param path ledger file (created on first record)
     * @param fingerprint campaign-configuration identity string
     */
    CheckpointStore(std::string path, std::string fingerprint);
    ~CheckpointStore();

    CheckpointStore(const CheckpointStore &) = delete;
    CheckpointStore &operator=(const CheckpointStore &) = delete;

    /**
     * Read the existing ledger. A missing file or a fingerprint
     * mismatch yields an empty store (the stale file is replaced on
     * the next record()). Returns the number of completed keys loaded.
     */
    std::size_t load();

    /** Whether @p key was recorded as completed. */
    bool completed(const std::string &key) const;

    /**
     * Append @p key to the ledger (flushed and fsynced immediately;
     * thread-safe).
     */
    void record(const std::string &key);

    std::size_t size() const { return done_.size(); }

    const std::string &path() const { return path_; }

  private:
    /** Open the ledger for appending, writing the header if fresh. */
    void ensureOpen();

    std::string path_;
    std::string fingerprint_;
    std::set<std::string> done_;
    /** True when the on-disk file matches the fingerprint and is clean
     *  (no torn or corrupt lines); false forces a rewrite on record. */
    bool file_valid_ = false;
    /** C stream so appends can be fsynced through the descriptor. */
    std::FILE *out_ = nullptr;
    mutable std::mutex mutex_;
};

} // namespace jscale::core

#endif // JSCALE_CORE_CHECKPOINT_HH
