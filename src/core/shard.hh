/**
 * @file
 * Sharded campaign execution: slice assignment and the per-point run
 * result cache.
 *
 * A campaign's plans are split into N deterministic, disjoint,
 * position-independent slices by hashing each run's checkpoint key
 * (base/chaos.hh shardOfKey). A shard worker executes only its slice
 * and persists every completed point — full RunResult, failed markers
 * included — as an atomic "jscale-run v1" record in a shared cache
 * directory. The merge step is then just the original command run with
 * the cache populated: every point is a cache hit, all rendering flows
 * through the same code over the same values, and the merged tables /
 * CSVs / golden snapshots come out byte-identical to a single-process
 * run by construction.
 *
 * Records are bound to the campaign fingerprint, so a stale cache from
 * a differently configured campaign reads as a miss, never as silent
 * result mixing.
 */

#ifndef JSCALE_CORE_SHARD_HH
#define JSCALE_CORE_SHARD_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "jvm/runtime/vm.hh"

namespace jscale::core {

/** One worker's identity within a sharded campaign. */
struct ShardSpec
{
    std::uint32_t index = 0;
    std::uint32_t count = 1;

    /** True when the campaign is actually split (count > 1). */
    bool active() const { return count > 1; }

    /** Whether this shard owns the point keyed @p key. */
    bool owns(const std::string &key) const;
};

/**
 * Per-point result cache keyed by checkpoint key. Thread-safe: points
 * store to distinct files via write-temp-then-rename, so pool workers
 * can commit concurrently and a SIGKILL never publishes a torn record.
 */
class RunCache
{
  public:
    RunCache(std::string dir, std::string fingerprint);

    const std::string &dir() const { return dir_; }

    /**
     * Load the record for @p key. False on a missing file; a corrupt
     * or foreign-campaign record is also a miss (with a warning), so
     * the point simply re-runs.
     */
    bool load(const std::string &key, jvm::RunResult &out) const;

    /**
     * Durably persist @p r under @p key (atomic publish, then the
     * chaos crash point fires). A store failure is a warning, not an
     * error: the run itself succeeded and the caller still has it.
     */
    void store(const std::string &key, const jvm::RunResult &r) const;

    /** Cache file (not path) a key maps to, for tests and tooling. */
    static std::string recordFileName(const std::string &key);

  private:
    std::string dir_;
    std::string fingerprint_;
};

/**
 * Per-process accounting of how each campaign point was satisfied, so
 * the CLI can report every point as salvaged (cache hit), executed
 * (ran here), failed (ran and aborted) or missing (strict merge hit a
 * gap) — the no-silent-gaps guarantee. Reset before each dispatch.
 */
struct CampaignPointStats
{
    std::atomic<std::uint64_t> salvaged{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> missing{0};
    std::atomic<std::uint64_t> skipped{0};
};

/** The process-wide instance (filled by ExperimentRunner). */
CampaignPointStats &campaignPointStats();

/** Zero all counters (call before dispatching a campaign command). */
void resetCampaignPointStats();

} // namespace jscale::core

#endif // JSCALE_CORE_SHARD_HH
