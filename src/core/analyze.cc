#include "core/analyze.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace jscale::core {

double
ScalabilityAnalyzer::speedup(const jvm::RunResult &base,
                             const jvm::RunResult &r)
{
    jscale_assert(r.wall_time > 0, "run with zero wall time");
    return static_cast<double>(base.wall_time) /
           static_cast<double>(r.wall_time);
}

double
ScalabilityAnalyzer::mutatorSpeedup(const jvm::RunResult &base,
                                    const jvm::RunResult &r)
{
    jscale_assert(r.mutatorTime() > 0, "run with zero mutator time");
    return static_cast<double>(base.mutatorTime()) /
           static_cast<double>(r.mutatorTime());
}

bool
ScalabilityAnalyzer::isScalable(const std::vector<jvm::RunResult> &sweep,
                                double threshold)
{
    jscale_assert(sweep.size() >= 2, "need at least two sweep points");
    if (speedup(sweep.front(), sweep.back()) < threshold)
        return false;
    // The paper's criterion: execution time keeps dropping as threads
    // and cores are added. The largest setting must (approximately) be
    // the best one, not a rebound past an earlier optimum.
    Ticks best = sweep.front().wall_time;
    for (const auto &r : sweep)
        best = std::min(best, r.wall_time);
    return static_cast<double>(sweep.back().wall_time) <=
           1.05 * static_cast<double>(best);
}

namespace {

std::vector<std::uint64_t>
mutatorTaskCounts(const jvm::RunResult &r)
{
    std::vector<std::uint64_t> tasks;
    for (const auto &ts : r.thread_summaries) {
        if (ts.kind == os::ThreadKind::Mutator)
            tasks.push_back(ts.tasks_completed);
    }
    return tasks;
}

} // namespace

std::uint32_t
ScalabilityAnalyzer::effectiveWorkers(const jvm::RunResult &r,
                                      double coverage)
{
    auto tasks = mutatorTaskCounts(r);
    std::sort(tasks.begin(), tasks.end(), std::greater<>());
    std::uint64_t total = 0;
    for (const auto t : tasks)
        total += t;
    if (total == 0)
        return 0;
    std::uint64_t acc = 0;
    std::uint32_t n = 0;
    for (const auto t : tasks) {
        acc += t;
        ++n;
        if (static_cast<double>(acc) >=
            coverage * static_cast<double>(total)) {
            break;
        }
    }
    return n;
}

double
ScalabilityAnalyzer::topThreadShare(const jvm::RunResult &r)
{
    const auto tasks = mutatorTaskCounts(r);
    std::uint64_t total = 0;
    std::uint64_t top = 0;
    for (const auto t : tasks) {
        total += t;
        top = std::max(top, t);
    }
    return total == 0 ? 0.0
                      : static_cast<double>(top) /
                            static_cast<double>(total);
}

double
ScalabilityAnalyzer::taskDistributionCv(const jvm::RunResult &r)
{
    const auto tasks = mutatorTaskCounts(r);
    if (tasks.empty())
        return 0.0;
    double mean = 0.0;
    for (const auto t : tasks)
        mean += static_cast<double>(t);
    mean /= static_cast<double>(tasks.size());
    if (mean == 0.0)
        return 0.0;
    double var = 0.0;
    for (const auto t : tasks) {
        const double d = static_cast<double>(t) - mean;
        var += d * d;
    }
    var /= static_cast<double>(tasks.size());
    return std::sqrt(var) / mean;
}

double
ScalabilityAnalyzer::gcShare(const jvm::RunResult &r)
{
    return r.wall_time == 0 ? 0.0
                            : static_cast<double>(r.gc_time) /
                                  static_cast<double>(r.wall_time);
}

control::UslFit
ScalabilityAnalyzer::uslFit(const std::vector<jvm::RunResult> &sweep)
{
    std::vector<control::UslPoint> pts;
    pts.reserve(sweep.size());
    if (sweep.empty())
        return control::UslModel::fit(pts);
    const jvm::RunResult &base = sweep.front();
    const double base_n = static_cast<double>(base.threads);
    for (const auto &r : sweep) {
        // Normalize thread counts to the base point so sweeps that do
        // not start at one thread still fit a relative curve.
        pts.push_back({static_cast<double>(r.threads) / base_n,
                       speedup(base, r)});
    }
    return control::UslModel::fit(pts);
}

std::uint32_t
ScalabilityAnalyzer::observedKnee(const std::vector<jvm::RunResult> &sweep)
{
    std::uint32_t knee = 0;
    Ticks best = 0;
    for (const auto &r : sweep) {
        if (knee == 0 || r.wall_time < best) {
            knee = r.threads;
            best = r.wall_time;
        }
    }
    return knee;
}

double
ScalabilityAnalyzer::lifespanFractionBelow(const jvm::RunResult &r,
                                           Bytes threshold)
{
    return r.heap.lifespan.fractionBelow(threshold);
}

ScalabilityAnalyzer::Confidence
ScalabilityAnalyzer::confidence(const std::vector<double> &samples)
{
    Confidence c;
    c.n = samples.size();
    if (c.n == 0)
        return c;
    double sum = 0.0;
    for (const double s : samples)
        sum += s;
    c.mean = sum / static_cast<double>(c.n);
    if (c.n < 2)
        return c;
    double var = 0.0;
    for (const double s : samples)
        var += (s - c.mean) * (s - c.mean);
    var /= static_cast<double>(c.n - 1);
    c.stddev = std::sqrt(var);
    c.ci95 = 1.96 * c.stddev / std::sqrt(static_cast<double>(c.n));
    return c;
}

ScalabilityAnalyzer::Confidence
ScalabilityAnalyzer::wallTimeConfidence(
    const std::vector<jvm::RunResult> &replicas)
{
    std::vector<double> walls;
    walls.reserve(replicas.size());
    for (const auto &r : replicas)
        walls.push_back(static_cast<double>(r.wall_time));
    return confidence(walls);
}

} // namespace jscale::core
