/**
 * @file
 * E21 — open-system tail latency: p99 sojourn vs. offered load vs.
 * thread count, and what admission control buys back.
 *
 * Closed-loop experiments (E1..E20) measure completion time of a fixed
 * work volume; an open system instead faces an arrival process that
 * does not slow down when the server saturates. This study measures,
 * per (app, threads):
 *
 *   1. the closed-loop capacity (tasks/s with the task pool always
 *      full) — the service rate the arrival ladder is scaled against;
 *   2. open-loop runs at an offered-load ladder (fractions of that
 *      capacity), recording p50/p99/p999 of the sojourn time and its
 *      exact decomposition into queueing delay + attributed service
 *      buckets;
 *   3. the offered-load *knee*: the smallest rung whose p99 sojourn is
 *      at least `knee_ratio` times the p99 half a ladder-step below —
 *      the open-system signature of saturation, which arrives well
 *      before throughput collapses;
 *   4. governed and biased-scheduling arms at the top rungs, comparing
 *      tail latency (not throughput) against the ungoverned baseline —
 *      the paper's remedies re-evaluated on the metric open systems
 *      actually care about.
 */

#ifndef JSCALE_CORE_TRAFFIC_STUDY_HH
#define JSCALE_CORE_TRAFFIC_STUDY_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "jvm/runtime/vm.hh"

namespace jscale::core {

/** Configuration of the E21 traffic study. */
struct TrafficStudyConfig
{
    /** Apps on the study's rows. */
    std::vector<std::string> apps = {"sunflow", "h2", "jython"};
    /** Thread counts per app (clipped to the machine). */
    std::vector<std::uint32_t> threads = {8, 16};
    /** Offered-load ladder, as fractions of closed-loop capacity. */
    std::vector<double> load_factors = {0.25, 0.5, 1.0, 2.0};
    /** Requests per open-loop run. */
    std::uint64_t requests = 2000;
    /** p99 growth ratio between adjacent rungs that marks the knee. */
    double knee_ratio = 5.0;
    /** Re-run the top two rungs with the HillClimb governor. */
    bool governed_arm = true;
    /** Re-run the top two rungs with biased (phase-staggered)
     *  scheduling. */
    bool biased_arm = true;
    /**
     * Base campaign settings (machine, seed, scale). The study forces
     * the arrival spec per rung and the governor / biased flags per
     * arm; everything else passes through.
     */
    ExperimentConfig base;
};

/** Closed-loop capacity of one (app, threads) cell. */
struct TrafficCapacity
{
    std::string app;
    std::uint32_t threads = 0;
    /** Tasks per second with the task pool always full. */
    double rate = 0.0;
};

/** One open-loop run of the study. */
struct TrafficPoint
{
    std::string app;
    std::uint32_t threads = 0;
    /** Rung of the ladder (fraction of closed-loop capacity). */
    double load_factor = 0.0;
    /** Offered arrival rate (req/s) this rung resolves to. */
    double offered_rate = 0.0;
    /** "open", "governed" or "biased". */
    std::string arm;
    jvm::RunResult run;
};

/** One cell's detected knee. */
struct TrafficKnee
{
    std::string app;
    std::uint32_t threads = 0;
    /** Smallest rung with p99 >= knee_ratio x p99(previous rung);
     *  0 = no knee inside the ladder. */
    double knee_factor = 0.0;
    /** p99 sojourn at the knee rung and the rung below it. */
    Ticks p99_at_knee = 0;
    Ticks p99_below = 0;
};

/** The full study result. */
struct TrafficStudy
{
    std::vector<TrafficCapacity> capacities;
    /** Runs in (app, threads, arm, ascending load) order. */
    std::vector<TrafficPoint> points;
    std::vector<TrafficKnee> knees;
};

/** Run the study (sequential; every run is seeded independently). */
TrafficStudy runTrafficStudy(const TrafficStudyConfig &config);

/** Aligned-text report: capacities, the ladder and the knees. */
void printTrafficStudyTable(std::ostream &os, const TrafficStudy &study);

/** Machine-readable report: one row per open-loop run. */
void writeTrafficStudyCsv(std::ostream &os, const TrafficStudy &study);

} // namespace jscale::core

#endif // JSCALE_CORE_TRAFFIC_STUDY_HH
