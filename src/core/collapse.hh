/**
 * @file
 * E19 — scalability-collapse study: throughput of one lock-saturated
 * workload as a function of thread count, under each monitor admission
 * policy (jvm::LockPolicy).
 *
 * The workload ("hotlock") funnels every operation through one hot
 * monitor with a short critical section. Under FIFO the circulating
 * set widens with the thread count, the coherence-footprint handoff
 * penalty grows with it, and throughput collapses past the saturation
 * point — the paper's non-scalable regime in its purest form. The
 * bounded-barging arm shows unfairness alone does not help (its
 * circulation is just as wide); the Malthusian and LCR arms restrict
 * the active set near the service capacity and recover to near-peak
 * throughput at every thread count.
 *
 * Each (policy, threads) point runs through the experiment harness —
 * aborted points become error artifacts and failed() markers while the
 * study completes — and an optional governed arm per policy cross-wires
 * the E17 concurrency governor with the admission policies.
 */

#ifndef JSCALE_CORE_COLLAPSE_HH
#define JSCALE_CORE_COLLAPSE_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "jvm/locks/policy.hh"
#include "jvm/runtime/vm.hh"

namespace jscale::core {

/** Configuration of the E19 collapse study. */
struct CollapseConfig
{
    std::string app = "hotlock";
    /** The x-axis; empty = the paper thread ladder of the machine. */
    std::vector<std::uint32_t> threads;
    /** Policies swept (arm order). */
    std::vector<jvm::LockPolicy> policies = {
        jvm::LockPolicy::Fifo, jvm::LockPolicy::Barging,
        jvm::LockPolicy::Malthusian, jvm::LockPolicy::Lcr};
    /** Also run each policy under the E17 hill-climbing governor. */
    bool governed_arms = false;
    /**
     * Base campaign settings. The study overrides vm.locks.policy per
     * arm; the remaining policy knobs (windows, targets, handoff
     * costs) are taken from base.vm.locks, with the E19 cost defaults
     * applied on top when both handoff costs are zero (a costless
     * handoff cannot collapse, so zero-cost configs get the study
     * defaults: base 250 ns, coherence 500 ns/owner).
     */
    ExperimentConfig base;
};

/** One swept arm: a policy (optionally governed) over the ladder. */
struct CollapseArm
{
    jvm::LockPolicy policy = jvm::LockPolicy::Fifo;
    bool governed = false;
    /** One result per CollapseStudy::threads entry, same order. */
    std::vector<jvm::RunResult> runs;
};

/** Per-arm scalability summary (failed points excluded). */
struct CollapseSummary
{
    /** Peak throughput over the ladder and the thread count at it. */
    double peak_throughput = 0.0;
    std::uint32_t peak_threads = 0;
    /** Throughput at the largest thread count. */
    double max_threads_throughput = 0.0;
    /** max_threads_throughput / peak_throughput (1.0 = no collapse). */
    double retention = 0.0;
};

struct CollapseStudy
{
    std::vector<std::uint32_t> threads;
    std::vector<CollapseArm> arms;
};

/**
 * Run the study: |policies| x (1 + governed_arms) arms over the thread
 * ladder. A point whose run aborts carries a failed() marker; the
 * study itself always completes.
 */
CollapseStudy runCollapseStudy(const CollapseConfig &config);

/** Scalability summary of one arm. */
CollapseSummary summarizeCollapseArm(const CollapseStudy &study,
                                     const CollapseArm &arm);

/** Aligned-text study report (throughput, circulation, tails). */
void printCollapseTable(std::ostream &os, const CollapseStudy &study);

/** Machine-readable report: one row per (arm, threads) point. */
void writeCollapseCsv(std::ostream &os, const CollapseStudy &study);

} // namespace jscale::core

#endif // JSCALE_CORE_COLLAPSE_HH
