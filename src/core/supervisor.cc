#include "core/supervisor.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <ostream>
#include <thread>

#include "base/chaos.hh"
#include "base/logging.hh"

namespace jscale::core {

namespace {

using Clock = std::chrono::steady_clock;

struct LiveWorker
{
    pid_t pid = -1;
    std::uint32_t shard = 0;
    unsigned attempt = 0;
    Clock::time_point deadline{};
    bool has_deadline = false;
    bool killed_for_timeout = false;
    std::string log_path;
};

struct PendingLaunch
{
    std::uint32_t shard = 0;
    unsigned attempt = 0;
    Clock::time_point launch_at{};
};

std::string
attemptLogPath(const SupervisorConfig &cfg, std::uint32_t shard,
               unsigned attempt)
{
    if (cfg.log_dir.empty())
        return {};
    return cfg.log_dir + "/shard-" + std::to_string(shard) + ".attempt-" +
           std::to_string(attempt) + ".log";
}

/// Fork and exec one worker attempt. Returns -1 on fork failure.
pid_t
launchWorker(const SupervisorConfig &cfg,
             const std::vector<std::string> &argv, std::uint32_t shard,
             unsigned attempt, const std::string &log_path)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;

    // Child. Only async-signal-safe work between fork and exec.
    if (!log_path.empty()) {
        const int fd = ::open(log_path.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            ::dup2(fd, STDOUT_FILENO);
            ::dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO)
                ::close(fd);
        }
    }
    if (cfg.chaos_kill_after > 0 && shard == cfg.chaos_victim &&
        attempt == 1) {
        ::setenv(kChaosKillEnv,
                 std::to_string(cfg.chaos_kill_after).c_str(), 1);
    } else {
        ::unsetenv(kChaosKillEnv);
    }

    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
}

} // namespace

const char *
failureClassName(FailureClass c)
{
    switch (c) {
      case FailureClass::None:
        return "none";
      case FailureClass::Deterministic:
        return "deterministic";
      case FailureClass::Transient:
        return "transient";
      case FailureClass::Timeout:
        return "timeout";
    }
    return "unknown";
}

FailureClass
classifyWorkerExit(bool exited, int exit_code, bool signaled,
                   bool timed_out)
{
    if (timed_out)
        return FailureClass::Timeout;
    if (signaled)
        return FailureClass::Transient;
    if (exited && exit_code == 0)
        return FailureClass::None;
    // Normal nonzero exit: the sim is deterministic, so this repeats.
    return FailureClass::Deterministic;
}

std::uint64_t
backoffDelayMs(std::uint64_t base_ms, unsigned retry)
{
    constexpr std::uint64_t kCapMs = 30'000;
    if (retry == 0 || base_ms == 0)
        return 0;
    const unsigned shift = std::min(retry - 1, 20u);
    return std::min(kCapMs, base_ms << shift);
}

bool
SupervisorReport::allSucceeded() const
{
    return std::all_of(workers.begin(), workers.end(),
                       [](const WorkerOutcome &w) { return w.succeeded; });
}

unsigned
SupervisorReport::totalAttempts() const
{
    unsigned n = 0;
    for (const WorkerOutcome &w : workers)
        n += static_cast<unsigned>(w.attempts.size());
    return n;
}

void
SupervisorReport::print(std::ostream &os) const
{
    os << "campaign supervisor: " << workers.size() << " shard(s), "
       << totalAttempts() << " attempt(s)\n";
    for (const WorkerOutcome &w : workers) {
        os << "  shard " << w.shard << ": "
           << (w.succeeded ? "ok" : "FAILED") << " after "
           << w.attempts.size() << " attempt(s)";
        for (const WorkerAttempt &a : w.attempts) {
            if (a.failure == FailureClass::None)
                continue;
            os << "; attempt " << a.attempt << " "
               << failureClassName(a.failure);
            if (a.failure == FailureClass::Deterministic)
                os << " (exit " << a.exit_code << ")";
            else if (a.failure == FailureClass::Transient)
                os << " (signal " << a.term_signal << ")";
        }
        os << '\n';
    }
}

SupervisorReport
superviseWorkers(std::uint32_t shard_count, const SupervisorConfig &cfg,
                 const ArgvBuilder &argv_for, std::ostream &log)
{
    SupervisorReport report;
    report.workers.resize(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i)
        report.workers[i].shard = i;

    if (!cfg.log_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg.log_dir, ec);
    }

    std::vector<LiveWorker> live;
    std::vector<PendingLaunch> pending;
    for (std::uint32_t i = 0; i < shard_count; ++i)
        pending.push_back({i, 1, Clock::now()});

    auto start = [&](const PendingLaunch &p) {
        const std::string log_path =
            attemptLogPath(cfg, p.shard, p.attempt);
        const pid_t pid = launchWorker(cfg, argv_for(p.shard), p.shard,
                                       p.attempt, log_path);
        if (pid < 0) {
            // fork failed; treat as a transient attempt and retry via
            // the normal path so the budget still bounds us.
            WorkerAttempt a;
            a.attempt = p.attempt;
            a.failure = FailureClass::Transient;
            a.term_signal = 0;
            a.log_path = log_path;
            report.workers[p.shard].attempts.push_back(a);
            if (p.attempt <= cfg.retries) {
                pending.push_back(
                    {p.shard, p.attempt + 1,
                     Clock::now() + std::chrono::milliseconds(
                                        backoffDelayMs(cfg.backoff_ms,
                                                       p.attempt))});
            }
            warn("fork failed for shard ", p.shard, ": ",
                 std::strerror(errno));
            return;
        }
        LiveWorker w;
        w.pid = pid;
        w.shard = p.shard;
        w.attempt = p.attempt;
        w.log_path = log_path;
        if (cfg.timeout_s > 0) {
            w.deadline =
                Clock::now() + std::chrono::seconds(cfg.timeout_s);
            w.has_deadline = true;
        }
        live.push_back(w);
        log << "supervisor: shard " << p.shard << " attempt " << p.attempt
            << " started (pid " << pid << ")\n";
    };

    auto reap = [&](LiveWorker &w, int status) {
        WorkerAttempt a;
        a.attempt = w.attempt;
        a.log_path = w.log_path;
        const bool exited = WIFEXITED(status);
        const bool signaled = WIFSIGNALED(status);
        a.exit_code = exited ? WEXITSTATUS(status) : 0;
        a.term_signal = signaled ? WTERMSIG(status) : 0;
        a.failure = classifyWorkerExit(exited, a.exit_code, signaled,
                                       w.killed_for_timeout);
        WorkerOutcome &outcome = report.workers[w.shard];
        outcome.attempts.push_back(a);

        switch (a.failure) {
          case FailureClass::None:
            outcome.succeeded = true;
            log << "supervisor: shard " << w.shard << " attempt "
                << w.attempt << " succeeded\n";
            break;
          case FailureClass::Deterministic:
            log << "supervisor: shard " << w.shard << " attempt "
                << w.attempt << " exited " << a.exit_code
                << " (deterministic failure; not retrying)\n";
            break;
          case FailureClass::Transient:
          case FailureClass::Timeout: {
            const char *what = a.failure == FailureClass::Timeout
                                   ? "timed out"
                                   : "crashed";
            if (w.attempt <= cfg.retries) {
                const std::uint64_t delay =
                    backoffDelayMs(cfg.backoff_ms, w.attempt);
                log << "supervisor: shard " << w.shard << " attempt "
                    << w.attempt << " " << what << "; retrying in "
                    << delay << " ms\n";
                pending.push_back(
                    {w.shard, w.attempt + 1,
                     Clock::now() + std::chrono::milliseconds(delay)});
            } else {
                log << "supervisor: shard " << w.shard << " attempt "
                    << w.attempt << " " << what
                    << "; retry budget exhausted\n";
            }
            break;
          }
        }
    };

    while (!live.empty() || !pending.empty()) {
        // Launch everything whose backoff has elapsed.
        const Clock::time_point now = Clock::now();
        for (std::size_t i = 0; i < pending.size();) {
            if (pending[i].launch_at <= now) {
                const PendingLaunch p = pending[i];
                pending.erase(pending.begin() +
                              static_cast<std::ptrdiff_t>(i));
                start(p);
            } else {
                ++i;
            }
        }

        // Enforce wall-clock deadlines.
        for (LiveWorker &w : live) {
            if (w.has_deadline && !w.killed_for_timeout &&
                Clock::now() >= w.deadline) {
                log << "supervisor: shard " << w.shard << " attempt "
                    << w.attempt << " exceeded " << cfg.timeout_s
                    << " s wall clock; killing pid " << w.pid << "\n";
                w.killed_for_timeout = true;
                ::kill(w.pid, SIGKILL);
            }
        }

        // Reap any finished workers without blocking.
        bool reaped = false;
        int status = 0;
        pid_t pid;
        while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
            auto it = std::find_if(
                live.begin(), live.end(),
                [pid](const LiveWorker &w) { return w.pid == pid; });
            if (it == live.end())
                continue; // not ours (shouldn't happen)
            reap(*it, status);
            live.erase(it);
            reaped = true;
        }

        if (!reaped && (!live.empty() || !pending.empty()))
            std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }

    return report;
}

} // namespace jscale::core
