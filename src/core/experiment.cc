#include "core/experiment.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "base/atomic_file.hh"
#include "base/error.hh"
#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "check/oracle.hh"
#include "core/checkpoint.hh"
#include "core/parallel.hh"
#include "core/shard.hh"
#include "fault/injector.hh"
#include "fault/watchdog.hh"
#include "os/policy.hh"
#include "profile/profiler.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"
#include "telemetry/profile_tracks.hh"
#include "telemetry/recorder.hh"
#include "telemetry/sampler.hh"
#include "telemetry/timeline.hh"
#include "workload/dacapo.hh"

namespace jscale::core {

namespace {

/** Substitute "{app}" / "{threads}" placeholders in an artifact path. */
std::string
substitutePlaceholders(std::string path, const std::string &app,
                       std::uint32_t threads)
{
    const auto replaceAll = [&path](const std::string &from,
                                    const std::string &to) {
        for (std::size_t pos = path.find(from); pos != std::string::npos;
             pos = path.find(from, pos + to.size())) {
            path.replace(pos, from.size(), to);
        }
    };
    replaceAll("{app}", app);
    replaceAll("{threads}", std::to_string(threads));
    return path;
}

/**
 * Open an atomic writer for @p path. Failure is per-artifact, not
 * fatal: the message lands in @p errors and the run (and the rest of
 * the sweep) continues without it.
 */
bool
openArtifact(std::optional<AtomicFileWriter> &writer,
             const std::string &path, std::vector<std::string> &errors)
{
    writer.emplace(path);
    if (!writer->ok()) {
        writer.reset();
        errors.push_back("cannot open artifact '" + path + "'");
        return false;
    }
    return true;
}

/**
 * Publish a finished artifact (flush + fsync + rename). A mid-write
 * stream failure or a failed rename lands in @p errors; a killed
 * process never leaves a torn file under the final name.
 */
bool
commitArtifact(std::optional<AtomicFileWriter> &writer,
               std::vector<std::string> &errors)
{
    std::string err;
    if (writer->commit(err)) {
        writer.reset();
        return true;
    }
    errors.push_back("artifact '" + writer->path() + "': " + err);
    writer.reset();
    return false;
}

} // namespace

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config))
{
    jscale_assert(config_.heap_factor >= 1.0,
                  "heap factor below the minimum heap requirement");
}

std::uint64_t
ExperimentRunner::runSeed(const std::string &app, std::uint32_t threads,
                          bool calibration) const
{
    std::uint64_t s = config_.seed;
    for (const char c : app)
        s = s * 0x100000001b3ULL + static_cast<unsigned char>(c);
    s ^= static_cast<std::uint64_t>(threads) << 32;
    s ^= calibration ? 0xca11'b8a7e5ULL : 0;
    std::uint64_t state = s;
    return splitMix64(state);
}

std::vector<std::uint32_t>
ExperimentRunner::paperThreadCounts() const
{
    const std::vector<std::uint32_t> paper = {1, 2, 4, 8, 16, 24, 32, 48};
    std::vector<std::uint32_t> out;
    for (const auto t : paper) {
        if (t <= config_.machine.totalCores())
            out.push_back(t);
    }
    return out;
}

std::string
ExperimentRunner::claimArtifactPath(const std::string &templ,
                                    const std::string &app,
                                    std::uint32_t threads)
{
    const std::string resolved = substitutePlaceholders(templ, app, threads);
    if (used_artifact_paths_.insert(resolved).second)
        return resolved;

    // Collision (e.g. a sweep with a placeholder-free path): suffix the
    // run identity before the extension, then a serial if still taken.
    std::string stem = resolved;
    std::string ext;
    const auto dot = resolved.find_last_of('.');
    const auto slash = resolved.find_last_of('/');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        stem = resolved.substr(0, dot);
        ext = resolved.substr(dot);
    }
    const std::string base =
        stem + "-" + app + "-t" + std::to_string(threads);
    std::string candidate = base + ext;
    for (int serial = 2; !used_artifact_paths_.insert(candidate).second;
         ++serial) {
        candidate = base + "-" + std::to_string(serial) + ext;
    }
    return candidate;
}

ExperimentRunner::RunPlan
ExperimentRunner::planRun(const AppFactory &factory,
                          const std::string &cache_key,
                          std::uint32_t threads)
{
    RunPlan plan;
    plan.threads = threads;
    plan.heap_capacity =
        config_.heap_override != 0
            ? config_.heap_override
            : static_cast<Bytes>(config_.heap_factor *
                                 static_cast<double>(
                                     minHeapFor(factory, cache_key)));
    plan.app = factory();
    plan.seed = runSeed(plan.app->appName(), threads,
                        /*calibration=*/false);
    if (!config_.timeline_path.empty()) {
        plan.timeline_file = claimArtifactPath(
            config_.timeline_path, plan.app->appName(), threads);
    }
    if (config_.metrics_interval > 0) {
        std::string templ = config_.metrics_path;
        if (templ.empty()) {
            templ = config_.timeline_path.empty()
                        ? "metrics-{app}-t{threads}.csv"
                        : config_.timeline_path + ".metrics.csv";
        }
        plan.metrics_file =
            claimArtifactPath(templ, plan.app->appName(), threads);
    }
    if (!config_.error_path.empty()) {
        plan.error_file = claimArtifactPath(config_.error_path,
                                            plan.app->appName(), threads);
    }
    {
        std::ostringstream key;
        key << plan.app->appName() << "|t" << threads << "|s" << std::hex
            << plan.seed;
        plan.checkpoint_key = key.str();
    }
    return plan;
}

std::string
ExperimentRunner::campaignFingerprint() const
{
    std::ostringstream os;
    os << "seed=" << config_.seed << " scale=" << config_.workload_scale
       << " heap=" << config_.heap_factor << "/" << config_.heap_override
       << " machine=" << config_.machine.sockets << "x"
       << config_.machine.cores_per_socket
       << " place=" << static_cast<int>(config_.placement)
       << " gov=" << control::governorModeName(config_.governor.mode)
       << " faults="
       << (config_.faults.spec.empty() ? "-" : config_.faults.spec)
       << " watchdog=" << (config_.watchdog ? 1 : 0)
       << " oracles=" << (config_.oracles ? 1 : 0)
       << " profile=" << (config_.profile ? 1 : 0)
       << " compart=" << (config_.vm.heap.compartmentalized ? 1 : 0)
       << " biased=" << (config_.biased_scheduling ? 1 : 0)
       << " locks=" << jvm::describeLockPolicyConfig(config_.vm.locks)
       << " arrivals="
       << (config_.arrivals.empty() ? "-" : config_.arrivals);
    return os.str();
}

jvm::RunResult
ExperimentRunner::executePlan(RunPlan &plan,
                              const VmAttachHook &attach) const
{
    const std::uint32_t threads = plan.threads;
    jscale_assert(threads >= 1 &&
                      threads <= config_.machine.totalCores(),
                  "thread count ", threads, " exceeds machine cores");
    jvm::ApplicationModel &app = *plan.app;

    sim::Simulation sim(plan.seed);
    machine::Machine mach(config_.machine);
    mach.enableCores(threads, config_.placement);
    os::Scheduler sched(sim, mach, config_.sched);
    // Declared after sched so it is descheduled before the queue dies.
    std::optional<sim::RecurringEvent> rotator;
    if (config_.biased_scheduling) {
        sched.setPolicy(std::make_unique<os::BiasedPolicy>(
            config_.bias_groups, config_.bias_quantum));
        // Phase rotations must re-kick idle cores: one pooled event
        // fires at every phase edge for the whole run.
        rotator.emplace(
            sim.queue(), static_cast<TickDelta>(config_.bias_quantum),
            [&sched] { sched.kickAll(); }, "bias-phase-rotate");
        rotator->start(sim.now() + config_.bias_quantum);
    }

    jvm::VmConfig vm_cfg = config_.vm;
    vm_cfg.heap.capacity = plan.heap_capacity;
    jvm::JavaVm vm(sim, mach, sched, vm_cfg);

    // Open-loop traffic: a seeded arrival process injects requests into
    // the engine's admission queue and workers serve them through an
    // accept loop, replacing the closed loop's pre-filled task pool.
    // The engine is constructed first so its embedded service-window
    // profiler sits ahead of the oracles on the probe chains (the
    // request-conservation oracle relies on completion probes firing
    // before its own profiler closes the window).
    std::unique_ptr<traffic::RequestModel> request_model;
    std::optional<traffic::TrafficEngine> engine;
    std::optional<traffic::OpenLoopApp> open_loop;
    if (!config_.arrivals.empty()) {
        traffic::ArrivalSpec arrival;
        std::string err;
        const bool ok =
            traffic::ArrivalSpec::parse(config_.arrivals, arrival, err);
        jscale_assert(ok, "bad arrival spec: ", err);
        request_model =
            traffic::makeRequestModel(app.appName(), err);
        jscale_assert(request_model != nullptr, err);
        engine.emplace(vm, arrival);
        open_loop.emplace(*request_model, *engine);
    }
    jvm::ApplicationModel &run_app = open_loop ? *open_loop : app;

    // Concurrency governor (admission control). Unlike the telemetry
    // taps below it *does* steer the run — that is its job — but its
    // decisions depend only on simulation state, never on host timing.
    std::optional<control::ConcurrencyGovernor> governor;
    if (config_.governor.mode != control::GovernorMode::Off) {
        governor.emplace(sim, vm, config_.governor);
        vm.setTaskAdmission(&*governor);
    }

    // Fault injection and the livelock watchdog run as ordinary sim
    // events, so a faulted run is as deterministic as a clean one.
    std::optional<fault::FaultInjector> injector;
    if (!config_.faults.empty())
        injector.emplace(sim, mach, vm, config_.faults);
    std::optional<fault::RunWatchdog> watchdog;
    if (config_.watchdog)
        watchdog.emplace(sim, vm, config_.watchdog_config);

    // Invariant oracles: pure observers on the probe chains that abort
    // the run (OracleError, an AbortError) at the first violated
    // simulator contract. Armed before any attach hook so test taps
    // see the same chain order as production tools.
    std::optional<check::OracleSuite> oracles;
    if (config_.oracles) {
        oracles.emplace();
        oracles->attach(vm);
    }

    // Wait-state attribution profiler: another pure observer on the
    // probe chains. Its blame totals, histograms and slowest-task
    // records land in RunResult::profile; the run's primary stats stay
    // byte-identical to an unprofiled run.
    std::optional<profile::TaskProfiler> profiler;
    if (config_.profile) {
        profiler.emplace();
        profiler->attach(vm);
    }

    // Telemetry taps: a timeline recorder on the probe chains and/or a
    // periodic metric sampler. Both are pure observers — attaching them
    // never changes the run's schedule or results. An artifact that
    // cannot be opened (or fails mid-write) is reported per-run and the
    // run continues without it.
    std::vector<std::string> artifact_errors;
    std::optional<AtomicFileWriter> timeline_writer;
    std::optional<telemetry::Timeline> timeline;
    std::optional<telemetry::TelemetryRecorder> recorder;
    std::optional<telemetry::MetricSampler> sampler;
    if (!plan.timeline_file.empty() &&
        openArtifact(timeline_writer, plan.timeline_file,
                     artifact_errors)) {
        timeline.emplace(timeline_writer->stream());
        recorder.emplace(*timeline);
        recorder->attach(vm);
        if (injector) {
            timeline->processName(telemetry::kFaultsPid, "faults");
            timeline->threadName(telemetry::kFaultsPid, 0, "injections");
            telemetry::Timeline *tl = &*timeline;
            injector->setProbe([tl](const char *kind, bool recovery,
                                    const std::string &detail, Ticks now) {
                tl->instant(telemetry::kFaultsPid, 0,
                            std::string(kind) +
                                (recovery ? ".recover" : ".inject"),
                            "fault", now,
                            {telemetry::targ("detail", detail)});
            });
        }
    }
    if (!plan.metrics_file.empty()) {
        sampler.emplace(sim, vm, config_.metrics_interval);
        if (timeline)
            sampler->attachTimeline(&*timeline);
        sampler->start();
    }

    if (attach)
        attach(vm);
    if (injector)
        injector->arm(sim.now());
    if (watchdog)
        watchdog->start(sim.now());
    jvm::RunResult r = vm.run(run_app, threads);

    if (engine)
        r.traffic = engine->summary();
    if (oracles)
        oracles->finishRun(sim.now());
    if (profiler) {
        profiler->finishRun(sim.now());
        r.profile = profiler->summary(config_.profile_topk);
    }
    if (injector) {
        r.faults = injector->summary();
        r.faults.tasks_reassigned = vm.tasksReassigned();
    }
    // Final sampler row before the timeline closes (it mirrors there).
    if (sampler)
        sampler->finish(sim.now());
    if (recorder) {
        recorder->finish(sim.now());
        recorder->detach();
        if (profiler)
            telemetry::emitProfileTracks(*timeline, r.profile, sim.now());
        timeline->finish();
        commitArtifact(timeline_writer, artifact_errors);
        r.timeline_file = plan.timeline_file;
        r.timeline_events = timeline->events();
    }
    if (sampler) {
        std::optional<AtomicFileWriter> csv;
        if (openArtifact(csv, plan.metrics_file, artifact_errors)) {
            sampler->writeCsv(csv->stream());
            commitArtifact(csv, artifact_errors);
            r.metrics_file = plan.metrics_file;
            r.metric_rows = sampler->samples().size();
        }
    }
    r.artifact_errors = std::move(artifact_errors);
    return r;
}

std::vector<jvm::RunResult>
ExperimentRunner::executePlans(std::vector<RunPlan> plans)
{
    const std::size_t requested =
        config_.jobs != 0 ? config_.jobs : ThreadPool::hardwareConcurrency();
    const std::size_t jobs =
        std::max<std::size_t>(1, std::min(requested, plans.size()));

    // Checkpoint ledger: skip runs already recorded complete for this
    // exact campaign configuration. The skip happens here, after
    // planning, so artifact-path claiming (and therefore de-collision
    // suffixes) is identical with and without resume.
    std::optional<CheckpointStore> store;
    if (!config_.checkpoint_path.empty()) {
        store.emplace(config_.checkpoint_path, campaignFingerprint());
        const std::size_t known = store->load();
        if (config_.resume && known > 0)
            inform("resume: checkpoint '", store->path(), "' lists ",
                   known, " completed run(s)");
    }

    // Shard slice and shared result cache. Every process plans the
    // whole campaign (identical artifact claiming everywhere); the
    // slice filter and cache decide per point what actually runs here.
    const ShardSpec shard{config_.shard_index, config_.shard_count};
    std::optional<RunCache> cache;
    if (!config_.run_cache_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config_.run_cache_dir, ec);
        cache.emplace(config_.run_cache_dir, campaignFingerprint());
    }
    CampaignPointStats &points = campaignPointStats();

    std::vector<std::function<jvm::RunResult()>> tasks;
    tasks.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
        const bool skip = config_.resume && store &&
                          store->completed(plans[i].checkpoint_key);
        tasks.push_back([this, &plans, i, skip, &shard, &cache, &store,
                         &points]() -> jvm::RunResult {
            RunPlan &plan = plans[i];
            // Salvage first: a point persisted by any earlier worker —
            // deterministic failures included — renders from the cache
            // instead of re-simulating.
            if (cache) {
                jvm::RunResult cached;
                if (cache->load(plan.checkpoint_key, cached)) {
                    ++points.salvaged;
                    return cached;
                }
            }
            const auto marker = [&plan]() {
                jvm::RunResult m;
                m.app_name = plan.app->appName();
                m.threads = plan.threads;
                return m;
            };
            if (!shard.owns(plan.checkpoint_key)) {
                ++points.skipped;
                jvm::RunResult m = marker();
                m.skipped = true;
                return m;
            }
            if (skip) {
                ++points.skipped;
                jvm::RunResult m = marker();
                m.skipped = true;
                return m;
            }
            if (config_.merge_strict) {
                // Assembling a partial campaign: a gap is an honest
                // failure row, never a silent multi-minute re-run.
                ++points.missing;
                jvm::RunResult m = marker();
                m.run_error =
                    "missing from shard result cache (incomplete "
                    "campaign)";
                return m;
            }
            jvm::RunResult r = executePlan(plan, {});
            ++points.executed;
            // Persist before moving on: a worker killed after this
            // point still contributes it to a later retry or merge.
            // The chaos crash point fires inside store(), right after
            // the record is durable.
            if (cache)
                cache->store(plan.checkpoint_key, r);
            if (store)
                store->record(plan.checkpoint_key);
            return r;
        });
    }

    // Isolated execution for every batch (sequential included), so a
    // run that aborts fails the same way at any jobs setting: it
    // becomes an error artifact plus a failed() marker, and the rest
    // of the batch completes.
    std::vector<RunOutcome> outcomes =
        ParallelExecutor(jobs).runIsolated(std::move(tasks));

    std::vector<jvm::RunResult> results;
    results.reserve(plans.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        RunOutcome &o = outcomes[i];
        if (o.ok) {
            results.push_back(std::move(o.result));
            continue;
        }
        ++points.failed;
        inform("run ", plans[i].checkpoint_key, " failed: ", o.error);
        if (!plans[i].error_file.empty()) {
            std::vector<std::string> open_errors;
            std::optional<AtomicFileWriter> err_os;
            if (openArtifact(err_os, plans[i].error_file, open_errors)) {
                err_os->stream()
                    << "run: " << plans[i].checkpoint_key << '\n'
                    << "error: " << o.error << '\n';
                commitArtifact(err_os, open_errors);
            }
            for (const std::string &e : open_errors)
                inform(e);
        }
        jvm::RunResult marker;
        marker.app_name = plans[i].app->appName();
        marker.threads = plans[i].threads;
        marker.run_error = o.error;
        // Failed runs are cached too: a retry does not repeat a
        // deterministic abort, and the merge renders the failure row
        // exactly as a single-process run would.
        if (cache && shard.owns(plans[i].checkpoint_key))
            cache->store(plans[i].checkpoint_key, marker);
        results.push_back(std::move(marker));
    }
    return results;
}

Bytes
ExperimentRunner::minHeapFor(const AppFactory &factory,
                             const std::string &cache_key)
{
    auto it = min_heap_cache_.find(cache_key);
    if (it != min_heap_cache_.end())
        return it->second;

    // Calibration: generous heap, reference thread count, helpers off
    // for speed. The minimum requirement is the smallest heap whose old
    // generation holds the peak live footprint.
    const std::uint32_t threads = std::min(
        config_.calibration_threads, config_.machine.totalCores());

    sim::Simulation sim(runSeed(cache_key, threads, /*calibration=*/true));
    machine::Machine mach(config_.machine);
    mach.enableCores(threads);
    os::Scheduler sched(sim, mach, config_.sched);

    jvm::VmConfig vm_cfg = config_.vm;
    vm_cfg.heap.capacity = 512 * units::MiB;
    vm_cfg.heap.compartmentalized = false;
    jvm::JavaVm vm(sim, mach, sched, vm_cfg);
    auto app = factory();
    const jvm::RunResult r = vm.run(*app, threads);

    const double old_fraction = 1.0 - config_.vm.heap.young_fraction;
    Bytes min_heap = static_cast<Bytes>(
        static_cast<double>(r.heap.peak_live_bytes) / old_fraction * 1.10);
    min_heap = std::max<Bytes>(min_heap, 1 * units::MiB);
    min_heap_cache_[cache_key] = min_heap;
    inform("min heap for ", cache_key, ": ", formatBytes(min_heap),
           " (peak live ", formatBytes(r.heap.peak_live_bytes), ")");
    return min_heap;
}

Bytes
ExperimentRunner::minHeapRequirement(const std::string &app_name)
{
    const double scale = config_.workload_scale;
    return minHeapFor(
        [&app_name, scale] {
            return workload::makeDacapoApp(app_name, scale);
        },
        app_name);
}

jvm::RunResult
ExperimentRunner::runApp(const std::string &app_name,
                         std::uint32_t threads, const VmAttachHook &attach)
{
    const double scale = config_.workload_scale;
    return runCustom(
        [&app_name, scale] {
            return workload::makeDacapoApp(app_name, scale);
        },
        app_name, threads, attach);
}

jvm::RunResult
ExperimentRunner::runCustom(const AppFactory &factory,
                            const std::string &cache_key,
                            std::uint32_t threads,
                            const VmAttachHook &attach)
{
    RunPlan plan = planRun(factory, cache_key, threads);
    return executePlan(plan, attach);
}

std::vector<jvm::RunResult>
ExperimentRunner::runTenants(const std::vector<traffic::TenantSpec> &specs)
{
    jscale_assert(!specs.empty(), "need at least one tenant");
    std::uint32_t total_threads = 0;
    std::ostringstream ident;
    for (const traffic::TenantSpec &spec : specs) {
        total_threads += spec.threads;
        ident << spec.describe() << ";";
    }
    const std::uint32_t cores =
        std::min(total_threads, config_.machine.totalCores());

    sim::Simulation sim(runSeed(ident.str(), total_threads,
                                /*calibration=*/false));
    machine::Machine mach(config_.machine);
    mach.enableCores(cores, config_.placement);
    os::Scheduler sched(sim, mach, config_.sched);

    traffic::TenantHost host(sim, mach, sched);
    for (const traffic::TenantSpec &spec : specs) {
        jvm::VmConfig vm_cfg = config_.vm;
        vm_cfg.heap.capacity =
            config_.heap_override != 0
                ? config_.heap_override
                : static_cast<Bytes>(config_.heap_factor *
                                     static_cast<double>(
                                         minHeapRequirement(spec.app)));
        std::string err;
        const bool ok = host.addTenant(spec, vm_cfg, err);
        jscale_assert(ok, err);
    }

    // Per-tenant observers: each VM gets its own oracle suite and
    // attribution profiler — the probe chains are per VM, so neighbour
    // tenants are invisible to them apart from the shared scheduler
    // stream (which both filter by scheduling group).
    std::vector<std::unique_ptr<check::OracleSuite>> oracles;
    std::vector<std::unique_ptr<profile::TaskProfiler>> profilers;
    for (std::size_t i = 0; i < host.tenantCount(); ++i) {
        if (config_.oracles) {
            oracles.push_back(std::make_unique<check::OracleSuite>());
            oracles.back()->attach(host.vm(i));
        }
        if (config_.profile) {
            profilers.push_back(std::make_unique<profile::TaskProfiler>());
            profilers.back()->attach(host.vm(i));
        }
    }

    // Metric sampling: one sampler on tenant 0's VM, with per-tenant
    // queue-depth and in-flight gauges appended — the columns exist
    // only on multi-tenant runs, so single-tenant CSV schemas never
    // change shape.
    std::vector<std::string> artifact_errors;
    std::optional<telemetry::MetricSampler> sampler;
    std::string metrics_file;
    if (config_.metrics_interval > 0) {
        std::string templ = config_.metrics_path;
        if (templ.empty())
            templ = "metrics-{app}-t{threads}.csv";
        metrics_file =
            claimArtifactPath(templ, "tenants", total_threads);
        sampler.emplace(sim, host.vm(0), config_.metrics_interval);
        if (host.tenantCount() > 1) {
            for (std::size_t i = 0; i < host.tenantCount(); ++i) {
                traffic::TrafficEngine *eng = &host.engine(i);
                const std::string prefix =
                    "tenant" + std::to_string(i) + "_" + specs[i].app;
                sampler->addGauge(prefix + "_queued",
                                  [eng] { return eng->queueDepth(); });
                sampler->addGauge(prefix + "_inflight",
                                  [eng] { return eng->inflightCount(); });
            }
        }
        sampler->start();
    }

    std::vector<jvm::RunResult> results = host.run();

    for (auto &suite : oracles)
        suite->finishRun(sim.now());
    for (std::size_t i = 0; i < profilers.size(); ++i) {
        profilers[i]->finishRun(sim.now());
        results[i].profile = profilers[i]->summary(config_.profile_topk);
    }
    if (sampler) {
        sampler->finish(sim.now());
        std::optional<AtomicFileWriter> csv;
        if (openArtifact(csv, metrics_file, artifact_errors)) {
            sampler->writeCsv(csv->stream());
            commitArtifact(csv, artifact_errors);
            for (jvm::RunResult &r : results) {
                r.metrics_file = metrics_file;
                r.metric_rows = sampler->samples().size();
            }
        }
    }
    for (jvm::RunResult &r : results)
        r.artifact_errors = artifact_errors;
    return results;
}

std::vector<jvm::RunResult>
ExperimentRunner::sweep(const std::string &app_name,
                        const std::vector<std::uint32_t> &threads)
{
    const double scale = config_.workload_scale;
    const AppFactory factory = [&app_name, scale] {
        return workload::makeDacapoApp(app_name, scale);
    };
    std::vector<RunPlan> plans;
    plans.reserve(threads.size());
    for (const auto t : threads)
        plans.push_back(planRun(factory, app_name, t));
    return executePlans(std::move(plans));
}

std::map<std::string, std::vector<jvm::RunResult>>
ExperimentRunner::sweepApps(const std::vector<std::string> &apps,
                            const std::vector<std::uint32_t> &threads,
                            const SweepProgress &progress)
{
    // Plan the full (app x threads) cross product up front — the
    // calibration runs and artifact claims happen here, on this thread,
    // in the same order the sequential per-app sweeps would do them —
    // then execute the whole batch on the worker pool at once.
    const double scale = config_.workload_scale;
    std::vector<RunPlan> plans;
    plans.reserve(apps.size() * threads.size());
    for (const auto &app_name : apps) {
        if (progress)
            progress(app_name);
        const AppFactory factory = [&app_name, scale] {
            return workload::makeDacapoApp(app_name, scale);
        };
        for (const auto t : threads)
            plans.push_back(planRun(factory, app_name, t));
    }

    std::vector<jvm::RunResult> flat = executePlans(std::move(plans));
    std::map<std::string, std::vector<jvm::RunResult>> by_app;
    std::size_t next = 0;
    for (const auto &app_name : apps) {
        auto &runs = by_app[app_name];
        for (std::size_t i = 0; i < threads.size(); ++i)
            runs.push_back(std::move(flat[next++]));
    }
    return by_app;
}

std::vector<jvm::RunResult>
ExperimentRunner::runReplicated(const std::string &app_name,
                                std::uint32_t threads,
                                std::uint32_t replicas)
{
    jscale_assert(replicas >= 1, "need at least one replica");
    const double scale = config_.workload_scale;
    const AppFactory factory = [&app_name, scale] {
        return workload::makeDacapoApp(app_name, scale);
    };
    std::vector<RunPlan> plans;
    plans.reserve(replicas);
    const std::uint64_t base_seed = config_.seed;
    for (std::uint32_t i = 0; i < replicas; ++i) {
        // Derive a distinct campaign seed per replica; restore after.
        config_.seed = base_seed + 0x9e3779b97f4a7c15ULL * (i + 1);
        plans.push_back(planRun(factory, app_name, threads));
    }
    config_.seed = base_seed;
    return executePlans(std::move(plans));
}

} // namespace jscale::core
