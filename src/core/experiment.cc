#include "core/experiment.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "os/policy.hh"
#include "sim/simulation.hh"
#include "workload/dacapo.hh"

namespace jscale::core {

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config))
{
    jscale_assert(config_.heap_factor >= 1.0,
                  "heap factor below the minimum heap requirement");
}

std::uint64_t
ExperimentRunner::runSeed(const std::string &app, std::uint32_t threads,
                          bool calibration) const
{
    std::uint64_t s = config_.seed;
    for (const char c : app)
        s = s * 0x100000001b3ULL + static_cast<unsigned char>(c);
    s ^= static_cast<std::uint64_t>(threads) << 32;
    s ^= calibration ? 0xca11'b8a7e5ULL : 0;
    std::uint64_t state = s;
    return splitMix64(state);
}

std::vector<std::uint32_t>
ExperimentRunner::paperThreadCounts() const
{
    const std::vector<std::uint32_t> paper = {1, 2, 4, 8, 16, 24, 32, 48};
    std::vector<std::uint32_t> out;
    for (const auto t : paper) {
        if (t <= config_.machine.totalCores())
            out.push_back(t);
    }
    return out;
}

jvm::RunResult
ExperimentRunner::runOnce(jvm::ApplicationModel &app, std::uint32_t threads,
                          Bytes heap_capacity, const VmAttachHook &attach)
{
    jscale_assert(threads >= 1 &&
                      threads <= config_.machine.totalCores(),
                  "thread count ", threads, " exceeds machine cores");

    sim::Simulation sim(runSeed(app.appName(), threads,
                                /*calibration=*/false));
    machine::Machine mach(config_.machine);
    mach.enableCores(threads, config_.placement);
    os::Scheduler sched(sim, mach, config_.sched);
    if (config_.biased_scheduling) {
        sched.setPolicy(std::make_unique<os::BiasedPolicy>(
            config_.bias_groups, config_.bias_quantum));
        // Phase rotations must re-kick idle cores: a self-rescheduling
        // event fires at every phase edge for the whole run. Each
        // pending event holds the shared_ptr, keeping the rotator alive
        // until the simulation tears the last event down.
        struct Rotator
        {
            sim::Simulation &sim;
            os::Scheduler &sched;
            Ticks quantum;

            static void
            arm(const std::shared_ptr<Rotator> &self)
            {
                self->sim.scheduleAfter(
                    static_cast<TickDelta>(self->quantum),
                    [self] {
                        self->sched.kickAll();
                        arm(self);
                    },
                    "bias-phase-rotate");
            }
        };
        Rotator::arm(std::make_shared<Rotator>(
            Rotator{sim, sched, config_.bias_quantum}));
    }

    jvm::VmConfig vm_cfg = config_.vm;
    vm_cfg.heap.capacity = heap_capacity;
    jvm::JavaVm vm(sim, mach, sched, vm_cfg);
    if (attach)
        attach(vm);
    return vm.run(app, threads);
}

Bytes
ExperimentRunner::minHeapFor(const AppFactory &factory,
                             const std::string &cache_key)
{
    auto it = min_heap_cache_.find(cache_key);
    if (it != min_heap_cache_.end())
        return it->second;

    // Calibration: generous heap, reference thread count, helpers off
    // for speed. The minimum requirement is the smallest heap whose old
    // generation holds the peak live footprint.
    const std::uint32_t threads = std::min(
        config_.calibration_threads, config_.machine.totalCores());

    sim::Simulation sim(runSeed(cache_key, threads, /*calibration=*/true));
    machine::Machine mach(config_.machine);
    mach.enableCores(threads);
    os::Scheduler sched(sim, mach, config_.sched);

    jvm::VmConfig vm_cfg = config_.vm;
    vm_cfg.heap.capacity = 512 * units::MiB;
    vm_cfg.heap.compartmentalized = false;
    jvm::JavaVm vm(sim, mach, sched, vm_cfg);
    auto app = factory();
    const jvm::RunResult r = vm.run(*app, threads);

    const double old_fraction = 1.0 - config_.vm.heap.young_fraction;
    Bytes min_heap = static_cast<Bytes>(
        static_cast<double>(r.heap.peak_live_bytes) / old_fraction * 1.10);
    min_heap = std::max<Bytes>(min_heap, 1 * units::MiB);
    min_heap_cache_[cache_key] = min_heap;
    inform("min heap for ", cache_key, ": ", formatBytes(min_heap),
           " (peak live ", formatBytes(r.heap.peak_live_bytes), ")");
    return min_heap;
}

Bytes
ExperimentRunner::minHeapRequirement(const std::string &app_name)
{
    const double scale = config_.workload_scale;
    return minHeapFor(
        [&app_name, scale] {
            return workload::makeDacapoApp(app_name, scale);
        },
        app_name);
}

jvm::RunResult
ExperimentRunner::runApp(const std::string &app_name,
                         std::uint32_t threads, const VmAttachHook &attach)
{
    const double scale = config_.workload_scale;
    return runCustom(
        [&app_name, scale] {
            return workload::makeDacapoApp(app_name, scale);
        },
        app_name, threads, attach);
}

jvm::RunResult
ExperimentRunner::runCustom(const AppFactory &factory,
                            const std::string &cache_key,
                            std::uint32_t threads,
                            const VmAttachHook &attach)
{
    const Bytes heap = config_.heap_override != 0
                           ? config_.heap_override
                           : static_cast<Bytes>(
                                 config_.heap_factor *
                                 static_cast<double>(
                                     minHeapFor(factory, cache_key)));
    auto app = factory();
    return runOnce(*app, threads, heap, attach);
}

std::vector<jvm::RunResult>
ExperimentRunner::sweep(const std::string &app_name,
                        const std::vector<std::uint32_t> &threads)
{
    std::vector<jvm::RunResult> results;
    results.reserve(threads.size());
    for (const auto t : threads)
        results.push_back(runApp(app_name, t));
    return results;
}

std::vector<jvm::RunResult>
ExperimentRunner::runReplicated(const std::string &app_name,
                                std::uint32_t threads,
                                std::uint32_t replicas)
{
    jscale_assert(replicas >= 1, "need at least one replica");
    std::vector<jvm::RunResult> results;
    results.reserve(replicas);
    const std::uint64_t base_seed = config_.seed;
    for (std::uint32_t i = 0; i < replicas; ++i) {
        // Derive a distinct campaign seed per replica; restore after.
        config_.seed = base_seed + 0x9e3779b97f4a7c15ULL * (i + 1);
        results.push_back(runApp(app_name, threads));
    }
    config_.seed = base_seed;
    return results;
}

} // namespace jscale::core
