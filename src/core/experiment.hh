/**
 * @file
 * ExperimentRunner: reproduces the paper's methodology end to end.
 *
 * For each run it builds a fresh simulated machine (paper preset:
 * 4 x AMD 6168, 48 cores), enables exactly as many cores as application
 * threads, sizes the heap at heap_factor (default 3x) times the
 * application's measured minimum heap requirement (found by a
 * calibration run, cached per app), configures the throughput collector
 * with one GC worker per enabled core, and executes the application to
 * completion, returning the full RunResult.
 */

#ifndef JSCALE_CORE_EXPERIMENT_HH
#define JSCALE_CORE_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/units.hh"
#include "control/governor.hh"
#include "fault/fault.hh"
#include "fault/watchdog.hh"
#include "jvm/runtime/app.hh"
#include "jvm/runtime/vm.hh"
#include "machine/machine.hh"
#include "os/scheduler.hh"
#include "traffic/tenancy.hh"

namespace jscale::core {

/** Configuration of one experiment campaign. */
struct ExperimentConfig
{
    /** Master seed; per-run streams are derived from (seed, app, T). */
    std::uint64_t seed = 42;
    machine::MachineConfig machine = machine::Machine::amd6168_4p48c();
    jvm::VmConfig vm;
    os::SchedulerConfig sched;
    /** Heap = heap_factor x minimum heap requirement (paper: 3x). */
    double heap_factor = 3.0;
    /** Non-zero overrides automatic heap sizing. */
    Bytes heap_override = 0;
    /** Thread count of the min-heap calibration run. */
    std::uint32_t calibration_threads = 4;
    /** Core-enabling placement (paper: compact socket fill). */
    machine::Machine::EnablePolicy placement =
        machine::Machine::EnablePolicy::Compact;
    /** Work-volume multiplier passed to the DaCapo factory. */
    double workload_scale = 1.0;
    /** Enable the paper's future-work biased (phase-staggered)
     *  scheduling. */
    bool biased_scheduling = false;
    std::uint32_t bias_groups = 4;
    Ticks bias_quantum = 2 * units::MS;

    /**
     * Concurrency governor (mode Off = classic ungoverned runs). Each
     * run gets its own governor instance whose decisions derive from
     * simulation state alone, so governed sweeps remain byte-identical
     * at any jobs setting.
     */
    control::GovernorConfig governor;

    /**
     * Host worker threads for sweeps/replications (0 = one per host
     * core, 1 = sequential). Each sweep point is an independent
     * simulation with its own derived seed and pre-claimed artifact
     * paths, so any jobs value produces byte-identical results —
     * parallelism only changes wall-clock time.
     */
    std::uint32_t jobs = 0;

    /** @name Robustness: fault injection, watchdog, checkpointing */
    /** @{ */
    /**
     * Fault schedule injected into every run (empty = none). The plan
     * executes as ordinary simulation events, so a faulted sweep stays
     * byte-identical at any jobs setting.
     */
    fault::FaultPlan faults;
    /** Arm the sim-time livelock watchdog on every run. */
    bool watchdog = false;
    fault::WatchdogConfig watchdog_config;
    /**
     * Arm the invariant oracle suite (check::OracleSuite) on every run.
     * A violation aborts that run the way a watchdog timeout does: an
     * error artifact plus a failed() marker, with the rest of the
     * sweep completing.
     */
    bool oracles = false;
    /**
     * Completed-run ledger (empty = no checkpointing). With resume,
     * runs recorded complete under the same campaign fingerprint are
     * skipped and returned as RunResult::skipped markers.
     */
    std::string checkpoint_path;
    bool resume = false;
    /**
     * Per-run error-artifact path template for failed (aborted) runs;
     * "{app}"/"{threads}" placeholders as for timelines. Empty
     * disables error artifacts.
     */
    std::string error_path = "jscale-errors/{app}-t{threads}.error.txt";
    /**
     * Sharded campaigns: with shard_count > 1 this process still plans
     * every run (so artifact claiming and de-collision are identical in
     * every worker) but executes only the slice hashing to shard_index;
     * out-of-slice runs return skipped markers. Assignment is
     * position-independent (base/chaos.hh shardOfKey on the checkpoint
     * key), so all workers and the merge step agree on ownership.
     */
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 1;
    /**
     * Shared per-point result cache directory (empty = disabled). Every
     * completed run — deterministic failures included — is persisted as
     * an atomic record; any later process re-running the same campaign
     * salvages cache hits instead of re-simulating, which is both the
     * crash-retry path and the byte-identical merge mechanism.
     */
    std::string run_cache_dir;
    /**
     * Merge mode: a cache miss becomes an honest "missing" failure
     * marker instead of re-executing, so assembling a partial campaign
     * never silently fills gaps with fresh (possibly long) runs.
     */
    bool merge_strict = false;
    /** @} */

    /** @name Open-loop traffic (src/traffic) */
    /** @{ */
    /**
     * Arrival-process spec (traffic::ArrivalSpec grammar, e.g.
     * "poisson:rate=2000:requests=4000"). Non-empty switches every run
     * to the open loop: workers serve a seeded request stream through
     * the traffic engine instead of draining a pre-filled task pool,
     * and RunResult::traffic carries the per-request sojourn /
     * queueing / service tail statistics. Must parse — validate with
     * traffic::ArrivalSpec::parse first (the CLI does).
     */
    std::string arrivals;
    /** @} */

    /** @name Latency attribution (profile::TaskProfiler) */
    /** @{ */
    /**
     * Attach the wait-state attribution profiler to every run, filling
     * RunResult::profile. A pure observer: profiled runs stay
     * byte-identical in primary stats to unprofiled runs.
     */
    bool profile = false;
    /** Slowest-task records kept per run (blame table + timeline). */
    std::uint32_t profile_topk = 5;
    /** @} */

    /** @name Telemetry outputs */
    /** @{ */
    /**
     * Chrome-trace timeline path (empty = no timeline). "{app}" and
     * "{threads}" placeholders are substituted per run; when the same
     * resolved path would be written twice in one campaign (e.g. a
     * sweep), later runs get an automatic "-<app>-t<threads>" suffix.
     */
    std::string timeline_path;
    /** Metric-sampler CSV path; empty derives "<timeline>.metrics.csv". */
    std::string metrics_path;
    /** Metric sampling period (0 = sampling disabled). */
    Ticks metrics_interval = 0;
    /** @} */
};

/** Hook to attach observation tools to the VM before a run starts. */
using VmAttachHook = std::function<void(jvm::JavaVm &)>;

/** Factory producing a fresh ApplicationModel for each run. */
using AppFactory =
    std::function<std::unique_ptr<jvm::ApplicationModel>()>;

/** Drives single runs and thread sweeps per the paper's methodology. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentConfig config = {});

    const ExperimentConfig &config() const { return config_; }

    /**
     * Swap the campaign's arrival spec between runs (the E21 study
     * walks one runner over an offered-load ladder, reusing the heap
     * calibration cache across rungs). Affects future plans only.
     */
    void setArrivals(std::string spec)
    {
        config_.arrivals = std::move(spec);
    }

    /**
     * Minimum heap requirement of @p app_name (smallest heap in which
     * the live data fits the old generation), measured by a calibration
     * run and cached.
     */
    Bytes minHeapRequirement(const std::string &app_name);

    /** Run a DaCapo app with threads == enabled cores (paper setup). */
    jvm::RunResult runApp(const std::string &app_name,
                          std::uint32_t threads,
                          const VmAttachHook &attach = {});

    /** Run a custom application model (heap sized like runApp). */
    jvm::RunResult runCustom(const AppFactory &factory,
                             const std::string &cache_key,
                             std::uint32_t threads,
                             const VmAttachHook &attach = {});

    /**
     * Run @p specs as co-hosted tenants of one simulated machine: one
     * JavaVm per tenant, all contending on one shared scheduler, each
     * fed by its own arrival stream (the config's `arrivals` field is
     * ignored here — every tenant carries its own). Cores enabled =
     * sum of tenant threads, clipped to the machine. Heaps are sized
     * per tenant app exactly like runApp. Returns one result per
     * tenant, in spec order, traffic summaries filled.
     */
    std::vector<jvm::RunResult>
    runTenants(const std::vector<traffic::TenantSpec> &specs);

    /** Sweep an app over thread counts. */
    std::vector<jvm::RunResult>
    sweep(const std::string &app_name,
          const std::vector<std::uint32_t> &threads);

    /** Called before an app's sweep points start executing. */
    using SweepProgress = std::function<void(const std::string &app)>;

    /**
     * Sweep several apps over the same thread counts as one batch, so
     * the whole (app x threads) cross product fans out across host
     * workers instead of one app at a time. Results are keyed by app,
     * in the same order sequential per-app sweeps would produce.
     */
    std::map<std::string, std::vector<jvm::RunResult>>
    sweepApps(const std::vector<std::string> &apps,
              const std::vector<std::uint32_t> &threads,
              const SweepProgress &progress = {});

    /**
     * Run @p replicas independent repetitions (distinct derived seeds)
     * of one configuration, for confidence intervals over the
     * simulator's stochastic components.
     */
    std::vector<jvm::RunResult>
    runReplicated(const std::string &app_name, std::uint32_t threads,
                  std::uint32_t replicas);

    /** The paper's thread/core settings, clipped to this machine. */
    std::vector<std::uint32_t> paperThreadCounts() const;

    /**
     * Campaign-configuration identity string. Keys the checkpoint
     * ledger and is embedded in golden-run files so a verify against a
     * differently configured campaign fails fast instead of diffing
     * unrelated numbers.
     */
    std::string campaignFingerprint() const;

  private:
    /**
     * Everything one run needs, resolved up front on the main thread:
     * the application model, derived seed, heap size and claimed
     * artifact paths. Once planned, executing the run touches no
     * runner state, so plans can execute on any host thread in any
     * order without changing what they compute.
     */
    struct RunPlan
    {
        std::unique_ptr<jvm::ApplicationModel> app;
        std::uint32_t threads = 0;
        Bytes heap_capacity = 0;
        std::uint64_t seed = 0;
        std::string timeline_file; ///< empty = no timeline
        std::string metrics_file;  ///< empty = no metric sampling
        std::string error_file;    ///< empty = no error artifact
        /** Checkpoint-ledger identity of this run. */
        std::string checkpoint_key;
    };

    /** Plan one run: calibrate heap, build the app, claim artifacts. */
    RunPlan planRun(const AppFactory &factory,
                    const std::string &cache_key, std::uint32_t threads);

    /** Execute a planned run; const and safe to call concurrently. */
    jvm::RunResult executePlan(RunPlan &plan,
                               const VmAttachHook &attach) const;

    /**
     * Execute a batch of plans with per-run error isolation: a run
     * that aborts (watchdog, sim-time guard) is written out as an
     * error artifact and returned as a RunResult::failed() marker
     * while the rest of the batch completes. Honors checkpointing and
     * resume when configured.
     */
    std::vector<jvm::RunResult> executePlans(std::vector<RunPlan> plans);

    /** Per-run seed derived from campaign seed, app and thread count. */
    std::uint64_t runSeed(const std::string &app, std::uint32_t threads,
                          bool calibration) const;

    Bytes minHeapFor(const AppFactory &factory,
                     const std::string &cache_key);

    /**
     * Resolve an artifact path template for one run: substitute
     * placeholders and de-collide against paths already claimed in this
     * campaign.
     */
    std::string claimArtifactPath(const std::string &templ,
                                  const std::string &app,
                                  std::uint32_t threads);

    ExperimentConfig config_;
    std::map<std::string, Bytes> min_heap_cache_;
    std::set<std::string> used_artifact_paths_;
};

} // namespace jscale::core

#endif // JSCALE_CORE_EXPERIMENT_HH
