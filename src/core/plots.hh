/**
 * @file
 * Figure emission: writes gnuplot-ready data (.dat) and plot scripts
 * (.gp) for each paper figure, so `gnuplot fig*.gp` regenerates the
 * graphics from any sweep. The build has no plotting dependency — the
 * files are plain text artifacts.
 */

#ifndef JSCALE_CORE_PLOTS_HH
#define JSCALE_CORE_PLOTS_HH

#include <string>
#include <vector>

#include "core/report.hh"

namespace jscale::core {

/**
 * Write Fig. 1a (acquisitions) or Fig. 1b (contentions): one column per
 * app over the thread sweep. @return paths written.
 */
std::vector<std::string>
writeLockFigure(const std::string &dir, const SweepSet &sweeps,
                bool contentions);

/**
 * Write a Fig. 1c/1d-style lifespan CDF figure for one app: one curve
 * per thread count over the paper thresholds.
 */
std::vector<std::string>
writeLifespanFigure(const std::string &dir, const std::string &app,
                    const std::vector<jvm::RunResult> &sweep);

/**
 * Write Fig. 2: stacked mutator/GC time per thread count, one pair of
 * columns per app.
 */
std::vector<std::string>
writeMutatorGcFigure(const std::string &dir, const SweepSet &sweeps);

/**
 * Write the E20 blame figure for one app: stacked wait-bucket shares of
 * aggregate task wall time per thread count, so the dominant-wait flip
 * is visible as the band that grows with the ladder. Only cells whose
 * runs were profiled contribute rows.
 */
std::vector<std::string>
writeBlameFigure(const std::string &dir, const std::string &app,
                 const std::vector<jvm::RunResult> &sweep);

/** Write every paper figure for a full six-app sweep set. */
std::vector<std::string>
writeAllFigures(const std::string &dir, const SweepSet &sweeps);

} // namespace jscale::core

#endif // JSCALE_CORE_PLOTS_HH
