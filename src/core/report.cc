#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "base/output.hh"
#include "core/analyze.hh"
#include "trace/trace.hh"

namespace jscale::core {

namespace {

std::string
threadsLabel(const jvm::RunResult &r)
{
    return std::to_string(r.threads) + "T/" + std::to_string(r.cores) +
           "C";
}

/** Sweep points that actually ran (neither resume-skipped nor failed). */
std::vector<jvm::RunResult>
measuredRuns(const std::vector<jvm::RunResult> &sweep)
{
    std::vector<jvm::RunResult> out;
    for (const auto &r : sweep) {
        if (!r.skipped && !r.failed())
            out.push_back(r);
    }
    return out;
}

} // namespace

void
printScalabilityTable(std::ostream &os, const SweepSet &sweeps)
{
    os << "E1: execution time and speedup vs. threads "
          "(threads == enabled cores, heap = 3x min)\n";
    TextTable t;
    t.header({"app", "threads", "wall", "speedup", "mutator", "gc",
              "gc-share", "class"});
    for (const auto &[app, sweep] : sweeps) {
        jscale_assert(!sweep.empty(), "empty sweep for ", app);
        const auto measured = measuredRuns(sweep);
        const char *cls =
            measured.size() >= 2
                ? (ScalabilityAnalyzer::isScalable(measured)
                       ? "scalable"
                       : "non-scalable")
                : "n/a";
        for (const auto &r : sweep) {
            // Checkpoint-resumed or failed points have no measurements;
            // show their status instead of fabricating numbers.
            if (r.skipped || r.failed()) {
                t.row({app, std::to_string(r.threads), "-", "-", "-",
                       "-", "-", r.skipped ? "skipped" : "failed"});
                continue;
            }
            t.row({app, std::to_string(r.threads),
                   formatTicks(r.wall_time),
                   formatFixed(ScalabilityAnalyzer::speedup(
                                   measured.front(), r),
                               2),
                   formatTicks(r.mutatorTime()), formatTicks(r.gc_time),
                   formatPercent(ScalabilityAnalyzer::gcShare(r)), cls});
        }
    }
    t.print(os);
}

void
writeScalabilityCsv(std::ostream &os, const SweepSet &sweeps)
{
    CsvWriter csv(os);
    csv.row({"app", "threads", "wall_ns", "speedup", "mutator_ns",
             "gc_ns", "gc_share", "scalable"});
    for (const auto &[app, sweep] : sweeps) {
        // Machine-readable output carries measured points only:
        // skipped/failed runs have no numbers downstream tools could use.
        const auto measured = measuredRuns(sweep);
        if (measured.empty())
            continue;
        const bool scalable = measured.size() >= 2 &&
                              ScalabilityAnalyzer::isScalable(measured);
        for (const auto &r : measured) {
            csv.row({app, std::to_string(r.threads),
                     std::to_string(r.wall_time),
                     formatFixed(ScalabilityAnalyzer::speedup(
                                     measured.front(), r),
                                 4),
                     std::to_string(r.mutatorTime()),
                     std::to_string(r.gc_time),
                     formatFixed(ScalabilityAnalyzer::gcShare(r), 4),
                     scalable ? "1" : "0"});
        }
    }
}

void
printWorkloadDistributionTable(std::ostream &os, const SweepSet &sweeps)
{
    os << "E2: workload distribution across threads "
          "(effective workers cover 90% of tasks)\n";
    TextTable t;
    t.header({"app", "threads", "tasks", "eff-workers", "top-share",
              "task-cv"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            t.row({app, std::to_string(r.threads),
                   std::to_string(r.total_tasks),
                   std::to_string(
                       ScalabilityAnalyzer::effectiveWorkers(r)),
                   formatPercent(ScalabilityAnalyzer::topThreadShare(r)),
                   formatFixed(
                       ScalabilityAnalyzer::taskDistributionCv(r), 2)});
        }
    }
    t.print(os);
}

void
writeWorkloadDistributionCsv(std::ostream &os, const SweepSet &sweeps)
{
    CsvWriter csv(os);
    csv.row({"app", "threads", "tasks", "effective_workers", "top_share",
             "task_cv"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            csv.row({app, std::to_string(r.threads),
                     std::to_string(r.total_tasks),
                     std::to_string(
                         ScalabilityAnalyzer::effectiveWorkers(r)),
                     formatFixed(
                         ScalabilityAnalyzer::topThreadShare(r), 4),
                     formatFixed(
                         ScalabilityAnalyzer::taskDistributionCv(r),
                         4)});
        }
    }
}

namespace {

void
printLockSeries(std::ostream &os, const SweepSet &sweeps,
                bool contentions, const char *title)
{
    os << title << '\n';
    TextTable t;
    t.header({"app", "threads", contentions ? "contentions"
                                            : "acquisitions",
              "vs-min-threads"});
    for (const auto &[app, sweep] : sweeps) {
        jscale_assert(!sweep.empty(), "empty sweep for ", app);
        const double base = std::max<double>(
            1.0, static_cast<double>(
                     contentions ? sweep.front().locks.contentions
                                 : sweep.front().locks.acquisitions));
        for (const auto &r : sweep) {
            const std::uint64_t v = contentions ? r.locks.contentions
                                                : r.locks.acquisitions;
            t.row({app, std::to_string(r.threads), std::to_string(v),
                   formatFixed(static_cast<double>(v) / base, 2) + "x"});
        }
    }
    t.print(os);
}

void
writeLockSeriesCsv(std::ostream &os, const SweepSet &sweeps,
                   bool contentions)
{
    CsvWriter csv(os);
    csv.row({"app", "threads",
             contentions ? "contentions" : "acquisitions"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            csv.row({app, std::to_string(r.threads),
                     std::to_string(contentions ? r.locks.contentions
                                                : r.locks.acquisitions)});
        }
    }
}

} // namespace

void
printLockAcquisitionTable(std::ostream &os, const SweepSet &sweeps)
{
    printLockSeries(os, sweeps, false,
                    "E3 (Fig. 1a): lock acquisitions vs. threads");
}

void
writeLockAcquisitionCsv(std::ostream &os, const SweepSet &sweeps)
{
    writeLockSeriesCsv(os, sweeps, false);
}

void
printLockContentionTable(std::ostream &os, const SweepSet &sweeps)
{
    printLockSeries(os, sweeps, true,
                    "E4 (Fig. 1b): lock contention instances vs. threads");
}

void
writeLockContentionCsv(std::ostream &os, const SweepSet &sweeps)
{
    writeLockSeriesCsv(os, sweeps, true);
}

void
printLifespanCdfTable(std::ostream &os, const std::string &app,
                      const std::vector<jvm::RunResult> &sweep)
{
    os << "Object-lifespan CDF for " << app
       << " (fraction of objects with lifespan < threshold; lifespan = "
          "bytes allocated between birth and death)\n";
    TextTable t;
    std::vector<std::string> header = {"lifespan <"};
    for (const auto &r : sweep)
        header.push_back(threadsLabel(r));
    t.header(header);
    for (const auto threshold : trace::paperLifespanThresholds()) {
        std::vector<std::string> row = {formatBytes(threshold)};
        for (const auto &r : sweep) {
            row.push_back(
                formatPercent(r.heap.lifespan.fractionBelow(threshold)));
        }
        t.row(row);
    }
    t.print(os);
}

void
writeLifespanCdfCsv(std::ostream &os, const std::string &app,
                    const std::vector<jvm::RunResult> &sweep)
{
    CsvWriter csv(os);
    csv.row({"app", "threads", "threshold_bytes", "fraction_below"});
    for (const auto &r : sweep) {
        for (const auto threshold : trace::paperLifespanThresholds()) {
            csv.row({app, std::to_string(r.threads),
                     std::to_string(threshold),
                     formatFixed(
                         r.heap.lifespan.fractionBelow(threshold), 4)});
        }
    }
}

void
printMutatorGcTable(std::ostream &os, const SweepSet &sweeps)
{
    os << "E7 (Fig. 2): distribution of mutator and GC times\n";
    TextTable t;
    t.header({"app", "threads", "wall", "mutator", "gc", "gc-share",
              "mutator-speedup", "minor-gcs", "full-gcs"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            t.row({app, std::to_string(r.threads),
                   formatTicks(r.wall_time), formatTicks(r.mutatorTime()),
                   formatTicks(r.gc_time),
                   formatPercent(ScalabilityAnalyzer::gcShare(r)),
                   formatFixed(ScalabilityAnalyzer::mutatorSpeedup(
                                   sweep.front(), r),
                               2),
                   std::to_string(r.gc.minor_count),
                   std::to_string(r.gc.full_count)});
        }
    }
    t.print(os);
}

void
writeMutatorGcCsv(std::ostream &os, const SweepSet &sweeps)
{
    CsvWriter csv(os);
    csv.row({"app", "threads", "wall_ns", "mutator_ns", "gc_ns",
             "gc_share", "minor_gcs", "full_gcs"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            csv.row({app, std::to_string(r.threads),
                     std::to_string(r.wall_time),
                     std::to_string(r.mutatorTime()),
                     std::to_string(r.gc_time),
                     formatFixed(ScalabilityAnalyzer::gcShare(r), 4),
                     std::to_string(r.gc.minor_count),
                     std::to_string(r.gc.full_count)});
        }
    }
}

void
printGcSurvivalTable(std::ostream &os, const SweepSet &sweeps)
{
    os << "E8: GC effectiveness vs. threads (nursery survival drives "
          "copy cost and promotions)\n";
    TextTable t;
    t.header({"app", "threads", "survival", "copied", "promoted",
              "minor-gcs", "full-gcs", "mean-pause", "ttsp"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            t.row({app, std::to_string(r.threads),
                   formatPercent(r.gc.nursery_survival.mean()),
                   formatBytes(r.gc.copied_bytes),
                   formatBytes(r.gc.promoted_bytes),
                   std::to_string(r.gc.minor_count),
                   std::to_string(r.gc.full_count),
                   formatTicks(static_cast<Ticks>(
                       r.gc.minor_pauses.mean())),
                   formatTicks(r.gc.total_ttsp)});
        }
    }
    t.print(os);
    os << "(p50/p99 pauses per app at the largest setting: ";
    bool first = true;
    for (const auto &[app, sweep] : sweeps) {
        const auto &hist = sweep.back().gc.pause_hist;
        if (hist.totalWeight() == 0)
            continue;
        os << (first ? "" : "; ") << app << " "
           << formatTicks(hist.percentile(0.5)) << "/"
           << formatTicks(hist.percentile(0.99));
        first = false;
    }
    os << ")\n";
}

void
writeGcSurvivalCsv(std::ostream &os, const SweepSet &sweeps)
{
    CsvWriter csv(os);
    csv.row({"app", "threads", "survival", "copied_bytes",
             "promoted_bytes", "minor_gcs", "full_gcs", "mean_pause_ns",
             "ttsp_ns"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            csv.row({app, std::to_string(r.threads),
                     formatFixed(r.gc.nursery_survival.mean(), 4),
                     std::to_string(r.gc.copied_bytes),
                     std::to_string(r.gc.promoted_bytes),
                     std::to_string(r.gc.minor_count),
                     std::to_string(r.gc.full_count),
                     formatFixed(r.gc.minor_pauses.mean(), 0),
                     std::to_string(r.gc.total_ttsp)});
        }
    }
}

namespace {

/** Mean per-mutator suspend components of one run. */
struct SuspendMeans
{
    double ready = 0.0;
    double blocked = 0.0;
    double cpu = 0.0;
};

SuspendMeans
suspendMeans(const jvm::RunResult &r)
{
    SuspendMeans m;
    std::size_t n = 0;
    for (const auto &ts : r.thread_summaries) {
        if (ts.kind != os::ThreadKind::Mutator)
            continue;
        m.ready += static_cast<double>(ts.ready_time);
        m.blocked += static_cast<double>(ts.blocked_time);
        m.cpu += static_cast<double>(ts.cpu_time);
        ++n;
    }
    if (n > 0) {
        m.ready /= static_cast<double>(n);
        m.blocked /= static_cast<double>(n);
        m.cpu /= static_cast<double>(n);
    }
    return m;
}

} // namespace

void
printSuspendWaitTable(std::ostream &os, const SweepSet &sweeps)
{
    os << "E14: per-mutator suspend wait vs. threads (the Sec. III-B "
          "interference mechanism)\n";
    TextTable t;
    t.header({"app", "threads", "mean-ready-wait", "mean-lock-block",
              "suspend/cpu", "lifespan<1KiB"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            const SuspendMeans m = suspendMeans(r);
            const double suspend = m.ready + m.blocked;
            t.row({app, std::to_string(r.threads),
                   formatTicks(static_cast<Ticks>(m.ready)),
                   formatTicks(static_cast<Ticks>(m.blocked)),
                   formatFixed(m.cpu > 0 ? suspend / m.cpu : 0.0, 3),
                   formatPercent(
                       r.heap.lifespan.fractionBelow(1024))});
        }
    }
    t.print(os);
}

void
writeSuspendWaitCsv(std::ostream &os, const SweepSet &sweeps)
{
    CsvWriter csv(os);
    csv.row({"app", "threads", "mean_ready_ns", "mean_blocked_ns",
             "suspend_over_cpu", "lifespan_lt_1k"});
    for (const auto &[app, sweep] : sweeps) {
        for (const auto &r : sweep) {
            const SuspendMeans m = suspendMeans(r);
            csv.row({app, std::to_string(r.threads),
                     formatFixed(m.ready, 0), formatFixed(m.blocked, 0),
                     formatFixed(m.cpu > 0 ? (m.ready + m.blocked) / m.cpu
                                           : 0.0,
                                 4),
                     formatFixed(r.heap.lifespan.fractionBelow(1024),
                                 4)});
        }
    }
}

void
printThreadTable(std::ostream &os, const jvm::RunResult &r)
{
    TextTable t;
    t.header({"thread", "kind", "tasks", "cpu", "ready-wait",
              "lock-block", "sleep", "allocs", "alloc-bytes",
              "dispatches"});
    for (const auto &ts : r.thread_summaries) {
        const char *kind = ts.kind == os::ThreadKind::Mutator
                               ? "mutator"
                               : ts.kind == os::ThreadKind::Helper
                                     ? "helper"
                                     : "daemon";
        t.row({ts.name, kind, std::to_string(ts.tasks_completed),
               formatTicks(ts.cpu_time), formatTicks(ts.ready_time),
               formatTicks(ts.blocked_time), formatTicks(ts.sleep_time),
               std::to_string(ts.allocations),
               formatBytes(ts.bytes_allocated),
               std::to_string(ts.dispatches)});
    }
    t.print(os);
}

namespace {

/** Absolute-thread-count speedup points of one sweep. */
std::vector<control::UslPoint>
sweepUslPoints(const std::vector<jvm::RunResult> &sweep)
{
    std::vector<control::UslPoint> pts;
    pts.reserve(sweep.size());
    for (const auto &r : sweep) {
        pts.push_back({static_cast<double>(r.threads),
                       ScalabilityAnalyzer::speedup(sweep.front(), r)});
    }
    return pts;
}

/** Derived per-app row of the USL table. */
struct UslRowData
{
    control::UslFit fit;
    double max_n = 0.0;
    double knee = 0.0; // thread count of the best observed speedup
    double peak = 0.0; // best observed speedup
    std::uint32_t rec = 0;
    std::string cls;
};

UslRowData
uslRowData(const std::vector<control::UslPoint> &pts)
{
    UslRowData d;
    d.fit = control::UslModel::fit(pts);
    for (const auto &p : pts) {
        d.max_n = std::max(d.max_n, p.n);
        if (p.speedup > d.peak) { // strict: earliest point wins ties
            d.peak = p.speedup;
            d.knee = p.n;
        }
    }
    if (!d.fit.valid) {
        d.cls = "unfit";
        return d;
    }
    if (d.fit.n_star <= 0.0 || d.fit.n_star >= d.max_n) {
        // No interior optimum within the measured range: the model says
        // keep adding threads up to what was actually swept.
        d.rec = static_cast<std::uint32_t>(std::lround(d.max_n));
        d.cls = "beyond-sweep";
    } else {
        d.rec = static_cast<std::uint32_t>(
            std::max<long>(1, std::lround(d.fit.n_star)));
        d.cls = "in-sweep";
    }
    return d;
}

std::vector<UslSeries>
sweepUslSeries(const SweepSet &sweeps)
{
    std::vector<UslSeries> series;
    series.reserve(sweeps.size());
    for (const auto &[app, sweep] : sweeps) {
        jscale_assert(!sweep.empty(), "empty sweep for ", app);
        series.push_back({app, sweepUslPoints(sweep)});
    }
    return series;
}

} // namespace

void
printUslSeriesTable(std::ostream &os, const std::vector<UslSeries> &series)
{
    os << "E17: USL fit per app: "
          "S(n) = n / (1 + sigma*(n-1) + kappa*n*(n-1))\n";
    TextTable t;
    t.header({"app", "sigma", "kappa", "n*", "rec-threads", "peak-pred",
              "knee-obs", "peak-obs", "rms", "knee-class"});
    for (const auto &s : series) {
        const UslRowData d = uslRowData(s.points);
        if (!d.fit.valid) {
            t.row({s.app, "-", "-", "-", "-", "-",
                   formatFixed(d.knee, 0), formatFixed(d.peak, 2), "-",
                   d.cls});
            continue;
        }
        t.row({s.app, formatFixed(d.fit.sigma, 4),
               formatFixed(d.fit.kappa, 6),
               d.fit.n_star > 0.0 ? formatFixed(d.fit.n_star, 1) : "-",
               std::to_string(d.rec), formatFixed(d.fit.peak_speedup, 2),
               formatFixed(d.knee, 0), formatFixed(d.peak, 2),
               formatFixed(d.fit.rms_residual, 3), d.cls});
    }
    t.print(os);
}

void
printUslTable(std::ostream &os, const SweepSet &sweeps)
{
    printUslSeriesTable(os, sweepUslSeries(sweeps));
}

void
writeUslCsv(std::ostream &os, const SweepSet &sweeps)
{
    CsvWriter csv(os);
    csv.row({"app", "sigma", "kappa", "n_star", "recommended_threads",
             "predicted_peak", "observed_knee", "observed_peak",
             "rms_residual", "knee_class"});
    for (const auto &s : sweepUslSeries(sweeps)) {
        const UslRowData d = uslRowData(s.points);
        if (!d.fit.valid) {
            csv.row({s.app, "", "", "", "", "", formatFixed(d.knee, 0),
                     formatFixed(d.peak, 4), "", d.cls});
            continue;
        }
        csv.row({s.app, formatFixed(d.fit.sigma, 6),
                 formatFixed(d.fit.kappa, 6),
                 formatFixed(d.fit.n_star, 2), std::to_string(d.rec),
                 formatFixed(d.fit.peak_speedup, 4),
                 formatFixed(d.knee, 0), formatFixed(d.peak, 4),
                 formatFixed(d.fit.rms_residual, 4), d.cls});
    }
}

void
printGovernedComparisonTable(std::ostream &os, const SweepSet &off,
                             const SweepSet &on)
{
    os << "Governed vs. ungoverned wall time "
          "(positive delta = governed faster)\n";
    TextTable t;
    t.header({"app", "threads", "wall-off", "wall-on", "delta", "policy",
              "target", "parks"});
    for (const auto &[app, sweep_on] : on) {
        const auto it = off.find(app);
        if (it == off.end())
            continue;
        for (const auto &r_on : sweep_on) {
            const jvm::RunResult *r_off = nullptr;
            for (const auto &r : it->second) {
                if (r.threads == r_on.threads) {
                    r_off = &r;
                    break;
                }
            }
            if (r_off == nullptr)
                continue;
            const double delta =
                static_cast<double>(r_off->wall_time) /
                    static_cast<double>(r_on.wall_time) -
                1.0;
            t.row({app, std::to_string(r_on.threads),
                   formatTicks(r_off->wall_time),
                   formatTicks(r_on.wall_time), formatPercent(delta),
                   r_on.governor.policy,
                   std::to_string(r_on.governor.final_target),
                   std::to_string(r_on.governor.parks)});
        }
    }
    t.print(os);
}

stats::StatSnapshot
runStatSnapshot(const jvm::RunResult &r)
{
    stats::StatSnapshot s;
    s.add("threads", r.threads);
    s.add("cores", r.cores);
    s.add("heap_capacity", static_cast<double>(r.heap_capacity), "B");
    s.add("wall_time", static_cast<double>(r.wall_time), "ticks");
    s.add("gc_time", static_cast<double>(r.gc_time), "ticks");
    s.add("mutator_time", static_cast<double>(r.mutatorTime()), "ticks");
    s.add("total_tasks", r.total_tasks);
    s.add("sim_events", r.sim_events);

    s.add("gc.minor_count", r.gc.minor_count);
    s.add("gc.full_count", r.gc.full_count);
    s.add("gc.local_count", r.gc.local_count);
    s.add("gc.concurrent_cycles", r.gc.concurrent_cycles);
    s.add("gc.concurrent_failures", r.gc.concurrent_failures);
    s.add("gc.remark_count", r.gc.remark_count);
    s.add("gc.local_pause", static_cast<double>(r.gc.local_pause),
          "ticks");
    s.add("gc.total_pause", static_cast<double>(r.gc.total_pause),
          "ticks");
    s.add("gc.total_ttsp", static_cast<double>(r.gc.total_ttsp), "ticks");
    s.add("gc.copied_bytes", static_cast<double>(r.gc.copied_bytes), "B");
    s.add("gc.promoted_bytes", static_cast<double>(r.gc.promoted_bytes),
          "B");
    s.add("gc.reclaimed_bytes",
          static_cast<double>(r.gc.reclaimed_bytes), "B");
    s.add("gc.young_resizes", r.gc.young_resizes);
    s.addSummary("gc.minor_pause", r.gc.minor_pauses, "ticks");
    s.addSummary("gc.full_pause", r.gc.full_pauses, "ticks");
    s.addSummary("gc.nursery_survival", r.gc.nursery_survival);
    s.add("gc.events", static_cast<double>(r.gc.events.size()));

    s.add("heap.objects_allocated", r.heap.objects_allocated);
    s.add("heap.objects_died", r.heap.objects_died);
    s.add("heap.bytes_allocated",
          static_cast<double>(r.heap.bytes_allocated), "B");
    s.add("heap.bytes_died", static_cast<double>(r.heap.bytes_died), "B");
    s.add("heap.peak_live_bytes",
          static_cast<double>(r.heap.peak_live_bytes), "B");
    s.add("heap.tlab_refills", r.heap.tlab_refills);
    s.add("heap.tlab_waste", static_cast<double>(r.heap.tlab_waste), "B");
    s.add("heap.lifespan_weight",
          static_cast<double>(r.heap.lifespan.totalWeight()));
    s.add("heap.lifespan_p50",
          static_cast<double>(r.heap.lifespan.percentile(0.5)), "B");

    s.add("locks.acquisitions", r.locks.acquisitions);
    s.add("locks.contentions", r.locks.contentions);
    s.add("locks.block_time", static_cast<double>(r.locks.block_time),
          "ticks");
    s.add("locks.monitors", r.locks.monitors);
    s.add("locks.biased", r.locks.biased_acquisitions);
    s.add("locks.thin", r.locks.thin_acquisitions);
    s.add("locks.fat", r.locks.fat_acquisitions);
    s.add("locks.revocations", r.locks.bias_revocations);
    s.add("locks.inflations", r.locks.inflations);
    s.add("locks.waits", r.locks.waits);
    s.add("locks.notifies", r.locks.notifies);
    s.add("locks.handoffs", r.locks.handoffs);
    s.add("locks.barged_grants", r.locks.barged_grants);
    s.add("locks.waiters_passivated", r.locks.waiters_passivated);
    s.add("locks.waiters_reactivated", r.locks.waiters_reactivated);
    s.add("locks.coherence_penalty",
          static_cast<double>(r.locks.coherence_penalty), "ticks");
    s.add("locks.circulation_avg",
          r.locks.handoffs
              ? static_cast<double>(r.locks.circulation_sum) /
                    static_cast<double>(r.locks.handoffs)
              : 0.0);
    s.add("locks.block_p50",
          static_cast<double>(r.locks.block_hist.quantile(0.5)), "ticks");
    s.add("locks.block_p99",
          static_cast<double>(r.locks.block_hist.quantile(0.99)),
          "ticks");

    s.add("sched.dispatches", r.sched.dispatches);
    s.add("sched.context_switches", r.sched.context_switches);
    s.add("sched.migrations", r.sched.migrations);
    s.add("sched.steals", r.sched.steals);
    s.add("sched.preemptions", r.sched.preemptions);
    s.add("sched.admission_parks", r.sched.admission_parks);
    s.add("sched.admission_unparks", r.sched.admission_unparks);
    s.add("sched.busy_ticks", static_cast<double>(r.sched.busy_ticks),
          "ticks");
    s.add("sched.overhead_ticks",
          static_cast<double>(r.sched.overhead_ticks), "ticks");

    s.add("gov.enabled", r.governor.enabled ? 1 : 0);
    s.add("gov.final_target", r.governor.final_target);
    s.add("gov.min_target", r.governor.min_target);
    s.add("gov.max_target", r.governor.max_target);
    s.add("gov.decisions", r.governor.decisions);
    s.add("gov.parks", r.governor.parks);
    s.add("gov.unparks", r.governor.unparks);
    s.add("gov.usl_sigma", r.governor.usl_sigma);
    s.add("gov.usl_kappa", r.governor.usl_kappa);
    s.add("gov.usl_nstar", r.governor.usl_nstar);

    s.add("faults.injections", r.faults.injections);
    s.add("faults.recoveries", r.faults.recoveries);
    s.add("faults.cores_offlined", r.faults.cores_offlined);
    s.add("faults.cores_onlined", r.faults.cores_onlined);
    s.add("faults.slowdowns", r.faults.slowdowns);
    s.add("faults.preempt_bursts", r.faults.preempt_bursts);
    s.add("faults.lock_holders_preempted",
          r.faults.lock_holders_preempted);
    s.add("faults.mutators_killed", r.faults.mutators_killed);
    s.add("faults.mutators_stalled", r.faults.mutators_stalled);
    s.add("faults.heap_spikes", r.faults.heap_spikes);
    s.add("faults.gc_worker_losses", r.faults.gc_worker_losses);
    s.add("faults.tasks_reassigned", r.faults.tasks_reassigned);

    for (std::size_t i = 0; i < r.thread_summaries.size(); ++i) {
        const auto &ts = r.thread_summaries[i];
        const std::string p = "thread." + std::to_string(i) + ".";
        s.add(p + "cpu_time", static_cast<double>(ts.cpu_time), "ticks");
        s.add(p + "ready_time", static_cast<double>(ts.ready_time),
              "ticks");
        s.add(p + "blocked_time", static_cast<double>(ts.blocked_time),
              "ticks");
        s.add(p + "sleep_time", static_cast<double>(ts.sleep_time),
              "ticks");
        s.add(p + "dispatches", ts.dispatches);
        s.add(p + "migrations", ts.migrations);
        s.add(p + "tasks_completed", ts.tasks_completed);
        s.add(p + "allocations", ts.allocations);
        s.add(p + "bytes_allocated",
              static_cast<double>(ts.bytes_allocated), "B");
    }
    return s;
}

namespace {

/** Tail-quantile cells (p50/p90/p99/p999/max) of one histogram. */
std::vector<std::string>
quantileCells(const stats::LatencyHistogram &h)
{
    if (h.count() == 0)
        return {"-", "-", "-", "-", "-"};
    return {formatTicks(h.quantile(0.50)), formatTicks(h.quantile(0.90)),
            formatTicks(h.quantile(0.99)), formatTicks(h.quantile(0.999)),
            formatTicks(h.max())};
}

} // namespace

void
printBlameTable(std::ostream &os, const jvm::RunResult &r)
{
    const jvm::ProfileSummary &p = r.profile;
    os << "wait-state blame: " << r.app_name << " @ " << r.threads
       << " threads / " << r.cores << " cores\n";
    if (!p.enabled) {
        os << "  (profiling disabled; run with --profile)\n";
        return;
    }
    const Ticks total = p.total();
    const double denom = total > 0 ? static_cast<double>(total) : 1.0;
    TextTable t;
    t.header({"bucket", "total", "share", "p50", "p90", "p99", "p999",
              "max"});
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        if (p.bucket_total[i] == 0)
            continue;
        std::vector<std::string> row = {
            jvm::waitBucketName(static_cast<jvm::WaitBucket>(i)),
            formatTicks(p.bucket_total[i]),
            formatPercent(static_cast<double>(p.bucket_total[i]) / denom)};
        for (auto &cell : quantileCells(p.bucket_hist[i]))
            row.push_back(std::move(cell));
        t.row(std::move(row));
    }
    {
        std::vector<std::string> row = {"task wall", formatTicks(total),
                                        formatPercent(total > 0 ? 1.0
                                                                : 0.0)};
        for (auto &cell : quantileCells(p.latency))
            row.push_back(std::move(cell));
        t.row(std::move(row));
    }
    t.print(os);
    os << "  tasks " << p.tasks << " (" << p.tasks_discarded
       << " discarded), dominant wait: "
       << jvm::waitBucketName(p.dominantWait()) << "\n";

    if (!p.slowest.empty()) {
        os << "slowest tasks:\n";
        TextTable st;
        st.header({"task", "thread", "wall", "cpu", "dominant wait",
                   "wait share"});
        for (const jvm::SlowTaskRecord &rec : p.slowest) {
            std::size_t worst = 1;
            for (std::size_t i = 1; i < jvm::kWaitBucketCount; ++i) {
                if (rec.buckets[i] > rec.buckets[worst])
                    worst = i;
            }
            const Ticks wall = rec.wall();
            st.row({std::to_string(rec.task),
                    std::to_string(rec.thread), formatTicks(wall),
                    formatTicks(rec.buckets[0]),
                    jvm::waitBucketName(
                        static_cast<jvm::WaitBucket>(worst)),
                    formatPercent(
                        wall > 0 ? static_cast<double>(wall -
                                                       rec.buckets[0]) /
                                       static_cast<double>(wall)
                                 : 0.0)});
        }
        st.print(os);
    }

    if (!p.lock_waits.empty()) {
        os << "hottest monitors (by task lock-wait):\n";
        TextTable lt;
        lt.header({"monitor", "wait", "blocks"});
        for (const jvm::MonitorWaitTotal &m : p.lock_waits) {
            lt.row({std::to_string(m.monitor), formatTicks(m.wait),
                    std::to_string(m.blocks)});
        }
        lt.print(os);
    }
}

void
writeBlameCsv(std::ostream &os, const jvm::RunResult &r)
{
    const jvm::ProfileSummary &p = r.profile;
    const Ticks total = p.total();
    const double denom = total > 0 ? static_cast<double>(total) : 1.0;
    os << "app,threads,bucket,total_ns,share,tasks,p50_ns,p90_ns,p99_ns,"
          "p999_ns,max_ns\n";
    const auto emit = [&](const char *name, Ticks bucket_total,
                          const stats::LatencyHistogram &h,
                          double share) {
        os << r.app_name << "," << r.threads << "," << name << ","
           << bucket_total << "," << formatFixed(share, 6) << ","
           << h.count() << "," << h.quantile(0.50) << ","
           << h.quantile(0.90) << "," << h.quantile(0.99) << ","
           << h.quantile(0.999) << "," << h.max() << "\n";
    };
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        emit(jvm::waitBucketName(static_cast<jvm::WaitBucket>(i)),
             p.bucket_total[i], p.bucket_hist[i],
             static_cast<double>(p.bucket_total[i]) / denom);
    }
    emit("task-wall", total, p.latency, total > 0 ? 1.0 : 0.0);
}

void
writeProfileHistogramCsv(std::ostream &os, const jvm::RunResult &r)
{
    const jvm::ProfileSummary &p = r.profile;
    os << "app,threads,histogram,bucket_index,lower_edge_ns,count\n";
    const auto emit = [&](const char *name,
                          const stats::LatencyHistogram &h) {
        for (std::size_t i = 0; i < stats::LatencyHistogram::kBuckets;
             ++i) {
            if (h.bucket(i) == 0)
                continue;
            os << r.app_name << "," << r.threads << "," << name << ","
               << i << "," << stats::LatencyHistogram::bucketLowerEdge(i)
               << "," << h.bucket(i) << "\n";
        }
    };
    emit("task-wall", p.latency);
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        emit(jvm::waitBucketName(static_cast<jvm::WaitBucket>(i)),
             p.bucket_hist[i]);
    }
}

void
printTrafficTable(std::ostream &os,
                  const std::vector<jvm::RunResult> &runs)
{
    os << "open-loop traffic: per-request sojourn = queueing + "
          "attributed service\n";
    TextTable t;
    t.header({"app", "tenant", "threads", "arrivals", "shed", "done",
              "maxq", "p50", "p99", "p999", "queue p99", "svc p99"});
    for (const jvm::RunResult &r : runs) {
        if (!r.traffic.enabled)
            continue;
        const jvm::TrafficSummary &s = r.traffic;
        t.row({r.app_name, std::to_string(s.tenant),
               std::to_string(r.threads), std::to_string(s.arrivals),
               std::to_string(s.shed), std::to_string(s.completed),
               std::to_string(s.max_queue_depth),
               formatTicks(s.sojourn.quantile(0.50)),
               formatTicks(s.sojourn.quantile(0.99)),
               formatTicks(s.sojourn.quantile(0.999)),
               formatTicks(s.queueing.quantile(0.99)),
               formatTicks(s.service.quantile(0.99))});
    }
    t.print(os);

    os << "\nservice-time decomposition (share of attributed service)\n";
    TextTable d;
    d.header({"app", "tenant", "arrival spec", "cpu", "runq", "ttsp",
              "gc-stw", "lock", "channel", "governor"});
    const auto share = [](const jvm::TrafficSummary &s,
                          jvm::WaitBucket b) {
        const Ticks total = s.serviceBucketTotal();
        if (total == 0)
            return std::string("-");
        const double v =
            100.0 *
            static_cast<double>(
                s.service_bucket_total[static_cast<std::size_t>(b)]) /
            static_cast<double>(total);
        std::ostringstream str;
        str.setf(std::ios::fixed);
        str.precision(1);
        str << v << "%";
        return str.str();
    };
    for (const jvm::RunResult &r : runs) {
        if (!r.traffic.enabled)
            continue;
        const jvm::TrafficSummary &s = r.traffic;
        d.row({r.app_name, std::to_string(s.tenant), s.arrival_spec,
               share(s, jvm::WaitBucket::Cpu),
               share(s, jvm::WaitBucket::RunQueue),
               share(s, jvm::WaitBucket::Ttsp),
               share(s, jvm::WaitBucket::GcStw),
               share(s, jvm::WaitBucket::Lock),
               share(s, jvm::WaitBucket::Channel),
               share(s, jvm::WaitBucket::Governor)});
    }
    d.print(os);
}

void
writeTrafficCsv(std::ostream &os,
                const std::vector<jvm::RunResult> &runs)
{
    os << "app,tenant,threads,arrival_spec,arrivals,admitted,shed,"
          "dispatched,completed,max_queue_depth,sojourn_p50_ns,"
          "sojourn_p99_ns,sojourn_p999_ns,queueing_p99_ns,"
          "service_p99_ns";
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i) {
        os << ",svc_"
           << jvm::waitBucketName(static_cast<jvm::WaitBucket>(i))
           << "_ns";
    }
    os << "\n";
    for (const jvm::RunResult &r : runs) {
        if (!r.traffic.enabled)
            continue;
        const jvm::TrafficSummary &s = r.traffic;
        os << r.app_name << "," << s.tenant << "," << r.threads << ","
           << s.arrival_spec << "," << s.arrivals << "," << s.admitted
           << "," << s.shed << "," << s.dispatched << "," << s.completed
           << "," << s.max_queue_depth << ","
           << s.sojourn.quantile(0.50) << "," << s.sojourn.quantile(0.99)
           << "," << s.sojourn.quantile(0.999) << ","
           << s.queueing.quantile(0.99) << ","
           << s.service.quantile(0.99);
        for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
            os << "," << s.service_bucket_total[i];
        os << "\n";
    }
}

void
printRunSummary(std::ostream &os, const jvm::RunResult &r)
{
    os << "== " << r.app_name << " @ " << r.threads << " threads / "
       << r.cores << " cores, heap " << formatBytes(r.heap_capacity)
       << " ==\n";
    TextTable t;
    t.header({"metric", "value"});
    t.align(1, TextTable::Align::Right);
    t.row({"wall time", formatTicks(r.wall_time)});
    t.row({"mutator time", formatTicks(r.mutatorTime())});
    t.row({"gc time", formatTicks(r.gc_time)});
    t.row({"gc share", formatPercent(ScalabilityAnalyzer::gcShare(r))});
    t.row({"minor / full GCs", std::to_string(r.gc.minor_count) + " / " +
                                   std::to_string(r.gc.full_count)});
    t.row({"objects allocated", std::to_string(r.heap.objects_allocated)});
    t.row({"bytes allocated", formatBytes(r.heap.bytes_allocated)});
    t.row({"peak live", formatBytes(r.heap.peak_live_bytes)});
    t.row({"nursery survival",
           formatPercent(r.gc.nursery_survival.mean())});
    t.row({"lock acquisitions", std::to_string(r.locks.acquisitions)});
    t.row({"lock contentions", std::to_string(r.locks.contentions)});
    t.row({"tasks completed", std::to_string(r.total_tasks)});
    t.row({"effective workers",
           std::to_string(ScalabilityAnalyzer::effectiveWorkers(r))});
    t.row({"lifespan < 1 KiB",
           formatPercent(r.heap.lifespan.fractionBelow(1024))});
    t.row({"lock block time", formatTicks(r.locks.block_time)});
    t.row({"ttsp total", formatTicks(r.gc.total_ttsp)});
    t.row({"ctx switches", std::to_string(r.sched.context_switches)});
    t.row({"migrations", std::to_string(r.sched.migrations)});
    t.row({"preemptions", std::to_string(r.sched.preemptions)});
    t.row({"sched overhead", formatTicks(r.sched.overhead_ticks)});
    if (r.governor.enabled) {
        t.row({"governor policy", r.governor.policy});
        t.row({"governor target",
               std::to_string(r.governor.final_target) + " (seen " +
                   std::to_string(r.governor.min_target) + "-" +
                   std::to_string(r.governor.max_target) + ")"});
        t.row({"admission parks",
               std::to_string(r.governor.parks) + " / " +
                   std::to_string(r.governor.unparks) + " unparks"});
    }
    if (r.faults.any()) {
        t.row({"fault injections",
               std::to_string(r.faults.injections) + " (" +
                   std::to_string(r.faults.recoveries) + " recovered)"});
        t.row({"cores offlined",
               std::to_string(r.faults.cores_offlined) + " / " +
                   std::to_string(r.faults.cores_onlined) +
                   " re-onlined"});
        t.row({"mutators killed",
               std::to_string(r.faults.mutators_killed) + " (" +
                   std::to_string(r.faults.tasks_reassigned) +
                   " tasks reassigned)"});
        t.row({"mutators stalled",
               std::to_string(r.faults.mutators_stalled)});
        t.row({"lock holders preempted",
               std::to_string(r.faults.lock_holders_preempted)});
        t.row({"heap spikes", std::to_string(r.faults.heap_spikes)});
        t.row({"gc worker losses",
               std::to_string(r.faults.gc_worker_losses)});
    }
    if (r.profile.enabled) {
        t.row({"profiled tasks",
               std::to_string(r.profile.tasks) + " (" +
                   std::to_string(r.profile.tasks_discarded) +
                   " discarded)"});
        t.row({"dominant wait",
               jvm::waitBucketName(r.profile.dominantWait())});
        t.row({"task wall p50 / p99",
               formatTicks(r.profile.latency.quantile(0.5)) + " / " +
                   formatTicks(r.profile.latency.quantile(0.99))});
    }
    for (const auto &err : r.artifact_errors)
        t.row({"artifact error", err});
    t.row({"sim events", std::to_string(r.sim_events)});
    t.print(os);
}

} // namespace jscale::core
