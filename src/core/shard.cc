#include "core/shard.hh"

#include <fstream>
#include <sstream>
#include <utility>

#include "base/atomic_file.hh"
#include "base/chaos.hh"
#include "base/logging.hh"
#include "core/run_record.hh"

namespace jscale::core {

bool
ShardSpec::owns(const std::string &key) const
{
    if (!active())
        return true;
    return shardOfKey(key, count) == index;
}

RunCache::RunCache(std::string dir, std::string fingerprint)
    : dir_(std::move(dir)), fingerprint_(std::move(fingerprint))
{
    jscale_assert(!dir_.empty(), "run cache directory must not be empty");
}

std::string
RunCache::recordFileName(const std::string &key)
{
    // Human-readable prefix (filesystem-safe subset of the key) plus
    // the full key's hash so distinct keys never share a file. The
    // record itself carries the exact key; load() verifies it.
    std::string safe;
    for (const char c : key) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '-' || c == '_';
        safe += keep ? c : '_';
    }
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    std::ostringstream name;
    name << safe << '-' << std::hex << h << ".run";
    return name.str();
}

bool
RunCache::load(const std::string &key, jvm::RunResult &out) const
{
    const std::string path = dir_ + "/" + recordFileName(key);
    std::ifstream in(path);
    if (!in)
        return false;
    std::string err;
    if (!readRunRecord(in, key, fingerprint_, out, err)) {
        warn("ignoring cached record '", path, "': ", err);
        return false;
    }
    return true;
}

void
RunCache::store(const std::string &key, const jvm::RunResult &r) const
{
    const std::string path = dir_ + "/" + recordFileName(key);
    AtomicFileWriter writer(path);
    if (!writer.ok()) {
        warn("cannot open run cache record '", path, "'");
        return;
    }
    writeRunRecord(writer.stream(), key, fingerprint_, r);
    std::string err;
    if (!writer.commit(err)) {
        warn("run cache store failed: ", err);
        return;
    }
    // Chaos self-test: die *after* a committed record, proving a kill
    // at any record boundary leaves a salvageable cache.
    chaosCrashPoint();
}

CampaignPointStats &
campaignPointStats()
{
    static CampaignPointStats stats;
    return stats;
}

void
resetCampaignPointStats()
{
    CampaignPointStats &s = campaignPointStats();
    s.salvaged = 0;
    s.executed = 0;
    s.failed = 0;
    s.missing = 0;
    s.skipped = 0;
}

} // namespace jscale::core
