/**
 * @file
 * ScalabilityAnalyzer: derives the paper's classifications and derived
 * metrics from raw RunResults — speedups, scalable/non-scalable
 * labeling, effective worker counts (workload distribution), and
 * lifespan CDF summaries.
 */

#ifndef JSCALE_CORE_ANALYZE_HH
#define JSCALE_CORE_ANALYZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "control/usl.hh"
#include "jvm/runtime/vm.hh"

namespace jscale::core {

/** Analysis helpers over RunResults. */
class ScalabilityAnalyzer
{
  public:
    /** Speedup of @p r relative to @p base (wall-clock). */
    static double speedup(const jvm::RunResult &base,
                          const jvm::RunResult &r);

    /** Mutator-only speedup (GC time excluded), per Fig. 2's argument. */
    static double mutatorSpeedup(const jvm::RunResult &base,
                                 const jvm::RunResult &r);

    /**
     * The paper's classification: an application is scalable when its
     * execution time keeps dropping as threads and cores are added.
     * Operationally: speedup at the largest setting >= @p threshold AND
     * the largest setting is (within 5%) the fastest point of the sweep
     * (no rebound past an earlier optimum).
     * @p sweep must be ordered by ascending thread count.
     */
    static bool isScalable(const std::vector<jvm::RunResult> &sweep,
                           double threshold = 3.0);

    /**
     * Smallest number of threads accounting for @p coverage of all
     * completed tasks (workload-distribution metric; jython reports 3-4
     * regardless of the requested thread count).
     */
    static std::uint32_t effectiveWorkers(const jvm::RunResult &r,
                                          double coverage = 0.90);

    /** Largest single-thread share of completed tasks. */
    static double topThreadShare(const jvm::RunResult &r);

    /**
     * Coefficient of variation of per-thread task counts over mutator
     * threads (0 = perfectly uniform distribution).
     */
    static double taskDistributionCv(const jvm::RunResult &r);

    /** GC share of wall time. */
    static double gcShare(const jvm::RunResult &r);

    /**
     * Fit the Universal Scalability Law to a sweep's wall-clock
     * speedups (relative to the sweep's first, lowest-thread point).
     * @p sweep must be ordered by ascending thread count.
     */
    static control::UslFit
    uslFit(const std::vector<jvm::RunResult> &sweep);

    /**
     * The observed knee: the thread count of the sweep's highest
     * speedup point (earliest on ties). For a sweep still rising at its
     * largest setting this is that largest thread count — the knee is
     * then *at or beyond* the measured range, which is how the USL
     * table should read it.
     */
    static std::uint32_t
    observedKnee(const std::vector<jvm::RunResult> &sweep);

    /** Fraction of objects with lifespan below @p threshold bytes. */
    static double lifespanFractionBelow(const jvm::RunResult &r,
                                        Bytes threshold);

    /** Mean and 95% confidence half-width of a metric over replicas. */
    struct Confidence
    {
        double mean = 0.0;
        double stddev = 0.0;
        double ci95 = 0.0;
        std::size_t n = 0;
    };

    /** Confidence summary of @p samples (normal approximation). */
    static Confidence confidence(const std::vector<double> &samples);

    /** Confidence over wall times of replicated runs. */
    static Confidence
    wallTimeConfidence(const std::vector<jvm::RunResult> &replicas);
};

} // namespace jscale::core

#endif // JSCALE_CORE_ANALYZE_HH
