/**
 * @file
 * Multi-process shard supervisor: crash isolation, watchdog, retry.
 *
 * The campaign driver forks one worker per shard (re-exec of this
 * binary with `shard --index i --of N ...`), monitors each against a
 * wall-clock deadline — complementing the in-process, sim-time
 * RunWatchdog, which cannot fire once a worker is wedged or dead — and
 * classifies every exit:
 *
 *  - exit 0                      → success
 *  - any other normal exit       → Deterministic: the simulation is
 *    deterministic, so the same inputs fail the same way; retrying
 *    burns the budget for nothing. Not retried.
 *  - killed by a signal          → Transient: crash, OOM kill, chaos
 *    SIGKILL. Retried with exponential backoff.
 *  - wall-clock deadline blown   → Timeout: SIGKILLed, then retried.
 *
 * Because workers persist every finished point durably before dying,
 * a retry only re-runs the remainder of the slice; the rest is
 * salvaged from the result cache. When the retry budget runs out the
 * supervisor degrades to a partial campaign — reported honestly, never
 * silently.
 */

#ifndef JSCALE_CORE_SUPERVISOR_HH
#define JSCALE_CORE_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace jscale::core {

/** Why a worker attempt did not succeed. */
enum class FailureClass : std::uint8_t {
    None,          ///< exited 0
    Deterministic, ///< normal nonzero exit; retry would repeat it
    Transient,     ///< killed by a signal; worth retrying
    Timeout,       ///< blew the wall-clock deadline; killed and retried
};

const char *failureClassName(FailureClass c);

/**
 * Classify a reaped worker. @p timed_out marks workers the supervisor
 * killed itself after the deadline (they also read as signaled).
 */
FailureClass classifyWorkerExit(bool exited, int exit_code, bool signaled,
                                bool timed_out);

/** Retry delay: base << (retry - 1), capped at 30s. retry is 1-based. */
std::uint64_t backoffDelayMs(std::uint64_t base_ms, unsigned retry);

/** One launch of one shard worker, as observed by the supervisor. */
struct WorkerAttempt
{
    unsigned attempt = 0; ///< 1-based
    FailureClass failure = FailureClass::None;
    int exit_code = 0;  ///< valid when the worker exited normally
    int term_signal = 0; ///< valid when the worker was signaled
    std::string log_path;
};

/** Final state of one shard after all attempts. */
struct WorkerOutcome
{
    std::uint32_t shard = 0;
    std::vector<WorkerAttempt> attempts;
    bool succeeded = false;

    const WorkerAttempt *last() const
    {
        return attempts.empty() ? nullptr : &attempts.back();
    }
};

struct SupervisorConfig
{
    unsigned retries = 2;          ///< extra attempts after the first
    std::uint64_t backoff_ms = 250; ///< base of the exponential backoff
    std::uint64_t timeout_s = 0;   ///< wall-clock per attempt; 0 = none
    std::string log_dir;           ///< per-attempt worker logs
    /// Chaos: SIGKILL shard @c chaos_victim after this many durable
    /// record commits (first attempt only). 0 disables.
    std::uint64_t chaos_kill_after = 0;
    std::uint32_t chaos_victim = 0;
};

struct SupervisorReport
{
    std::vector<WorkerOutcome> workers;

    bool allSucceeded() const;
    unsigned totalAttempts() const;
    void print(std::ostream &os) const;
};

/** Builds the argv for one shard worker attempt. */
using ArgvBuilder =
    std::function<std::vector<std::string>(std::uint32_t shard)>;

/**
 * Run @p shard_count workers to completion under the retry policy.
 * Workers run concurrently; retries are scheduled after their backoff
 * delay without blocking other workers. Narration goes to @p log.
 */
SupervisorReport superviseWorkers(std::uint32_t shard_count,
                                  const SupervisorConfig &cfg,
                                  const ArgvBuilder &argv_for,
                                  std::ostream &log);

} // namespace jscale::core

#endif // JSCALE_CORE_SUPERVISOR_HH
