/**
 * @file
 * RunResult codec: the exact, text-based serialization behind the shard
 * result cache.
 *
 * A "jscale-run v1" record captures every field of a RunResult that any
 * renderer or stat snapshot reads — counters, Welford summaries (their
 * internal recurrence state included), log and HDR histograms, thread
 * rows, profile and traffic sections — so a run restored from a record
 * renders byte-identically to the in-memory original. Doubles are
 * written as C hexfloats (%a) for lossless round-trips; strings are
 * backslash-escaped one-liners.
 *
 * Records are keyed by the run's checkpoint key and bound to the
 * campaign fingerprint: a reader rejects records from a differently
 * configured campaign instead of silently mixing incompatible results.
 */

#ifndef JSCALE_CORE_RUN_RECORD_HH
#define JSCALE_CORE_RUN_RECORD_HH

#include <iosfwd>
#include <string>

#include "jvm/runtime/vm.hh"

namespace jscale::core {

/** Serialize @p r as a complete "jscale-run v1" record. */
void writeRunRecord(std::ostream &os, const std::string &key,
                    const std::string &fingerprint,
                    const jvm::RunResult &r);

/**
 * Parse one record. Fails (returning false with @p err) on a missing
 * or wrong version header, a key or fingerprint mismatch, a malformed
 * field, or a record missing its "end" trailer (torn write). @p out is
 * only valid when true is returned.
 */
bool readRunRecord(std::istream &is, const std::string &expect_key,
                   const std::string &expect_fingerprint,
                   jvm::RunResult &out, std::string &err);

} // namespace jscale::core

#endif // JSCALE_CORE_RUN_RECORD_HH
