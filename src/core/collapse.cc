#include "core/collapse.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "base/output.hh"

namespace jscale::core {

namespace {

/** Insert "-<tag>" before the extension of an artifact path. */
std::string
tagPath(const std::string &path, const std::string &tag)
{
    if (path.empty())
        return path;
    const auto dot = path.find_last_of('.');
    const auto slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "-" + tag;
    return path.substr(0, dot) + "-" + tag + path.substr(dot);
}

/** Tasks per second of simulated time (0 for failed/empty runs). */
double
throughput(const jvm::RunResult &r)
{
    if (r.wall_time == 0)
        return 0.0;
    return static_cast<double>(r.total_tasks) /
           (static_cast<double>(r.wall_time) /
            static_cast<double>(units::SEC));
}

/** Average distinct-recent-owner count per contended handoff. */
double
circulation(const jvm::RunResult &r)
{
    if (r.locks.handoffs == 0)
        return 0.0;
    return static_cast<double>(r.locks.circulation_sum) /
           static_cast<double>(r.locks.handoffs);
}

std::string
armName(const CollapseArm &arm)
{
    std::string name = jvm::lockPolicyName(arm.policy);
    if (arm.governed)
        name += "+gov";
    return name;
}

std::string
pointStatus(const jvm::RunResult &r)
{
    if (r.failed())
        return "failed";
    if (r.skipped)
        return "skipped";
    return "ok";
}

} // namespace

CollapseStudy
runCollapseStudy(const CollapseConfig &config)
{
    CollapseStudy study;
    study.threads = config.threads;
    if (study.threads.empty()) {
        ExperimentRunner ladder(config.base);
        study.threads = ladder.paperThreadCounts();
    }

    // A costless handoff cannot collapse; zero-cost base configs get
    // the study's coherence cost model.
    jvm::LockPolicyConfig locks = config.base.vm.locks;
    if (locks.handoff_base == 0 && locks.coherence_cost == 0) {
        locks.handoff_base = 250;
        locks.coherence_cost = 500;
    }

    // Calibrate the heap once; every arm then runs with the same fixed
    // capacity, so policy is the only thing that varies between arms.
    Bytes heap = config.base.heap_override;
    if (heap == 0) {
        ExperimentRunner calib(config.base);
        heap = static_cast<Bytes>(
            config.base.heap_factor *
            static_cast<double>(calib.minHeapRequirement(config.app)));
    }

    for (const jvm::LockPolicy policy : config.policies) {
        for (const bool governed :
             config.governed_arms
                 ? std::vector<bool>{false, true}
                 : std::vector<bool>{false}) {
            CollapseArm arm;
            arm.policy = policy;
            arm.governed = governed;

            ExperimentConfig run_cfg = config.base;
            run_cfg.heap_override = heap;
            run_cfg.vm.locks = locks;
            run_cfg.vm.locks.policy = policy;
            if (governed)
                run_cfg.governor.mode = control::GovernorMode::HillClimb;

            // Tag per-arm artifacts so the arms never collide.
            const std::string tag = armName(arm);
            run_cfg.timeline_path = tagPath(run_cfg.timeline_path, tag);
            run_cfg.metrics_path = tagPath(run_cfg.metrics_path, tag);
            run_cfg.error_path = tagPath(run_cfg.error_path, tag);
            run_cfg.checkpoint_path =
                tagPath(run_cfg.checkpoint_path, tag);

            ExperimentRunner runner(std::move(run_cfg));
            // sweep() routes through the isolated batch executor: an
            // aborted point becomes an error artifact + failed()
            // marker and the study continues.
            arm.runs = runner.sweep(config.app, study.threads);

            std::size_t ok = 0;
            for (const jvm::RunResult &r : arm.runs)
                ok += r.failed() ? 0 : 1;
            inform("collapse: arm ", tag, " done (", ok, "/",
                   arm.runs.size(), " points ok)");
            study.arms.push_back(std::move(arm));
        }
    }
    return study;
}

CollapseSummary
summarizeCollapseArm(const CollapseStudy &study, const CollapseArm &arm)
{
    CollapseSummary s;
    for (std::size_t i = 0; i < arm.runs.size(); ++i) {
        const jvm::RunResult &r = arm.runs[i];
        if (r.failed())
            continue;
        const double tput = throughput(r);
        if (tput > s.peak_throughput) {
            s.peak_throughput = tput;
            s.peak_threads = study.threads[i];
        }
        s.max_threads_throughput = tput; // last non-failed point
    }
    if (s.peak_throughput > 0.0)
        s.retention = s.max_threads_throughput / s.peak_throughput;
    return s;
}

void
printCollapseTable(std::ostream &os, const CollapseStudy &study)
{
    os << "E19 — scalability collapse by admission policy "
          "(throughput in ops/s of simulated time)\n";
    TextTable t;
    t.header({"policy", "threads", "status", "wall", "tput", "circ",
              "barged", "passiv", "react", "penalty", "blk-p99",
              "target"});
    for (const CollapseArm &arm : study.arms) {
        for (std::size_t i = 0; i < arm.runs.size(); ++i) {
            const jvm::RunResult &r = arm.runs[i];
            const std::string target =
                r.governor.enabled
                    ? std::to_string(r.governor.final_target)
                    : "-";
            if (r.failed()) {
                t.row({armName(arm), std::to_string(study.threads[i]),
                       "failed", "-", "-", "-", "-", "-", "-", "-", "-",
                       target});
                continue;
            }
            t.row({armName(arm), std::to_string(study.threads[i]),
                   pointStatus(r), formatTicks(r.wall_time),
                   formatFixed(throughput(r), 1),
                   formatFixed(circulation(r), 2),
                   std::to_string(r.locks.barged_grants),
                   std::to_string(r.locks.waiters_passivated),
                   std::to_string(r.locks.waiters_reactivated),
                   formatTicks(r.locks.coherence_penalty),
                   formatTicks(r.locks.block_hist.quantile(0.99)),
                   target});
        }
    }
    t.print(os);

    os << "\narm summaries (retention = throughput at max threads / "
          "peak):\n";
    TextTable s;
    s.header({"policy", "peak-tput", "peak-T", "maxT-tput", "retention"});
    for (const CollapseArm &arm : study.arms) {
        const CollapseSummary sum = summarizeCollapseArm(study, arm);
        s.row({armName(arm), formatFixed(sum.peak_throughput, 1),
               std::to_string(sum.peak_threads),
               formatFixed(sum.max_threads_throughput, 1),
               formatPercent(sum.retention)});
    }
    s.print(os);
    for (const CollapseArm &arm : study.arms) {
        for (std::size_t i = 0; i < arm.runs.size(); ++i) {
            if (arm.runs[i].failed())
                os << "failed: " << armName(arm) << " t"
                   << study.threads[i] << ": " << arm.runs[i].run_error
                   << "\n";
        }
    }
}

void
writeCollapseCsv(std::ostream &os, const CollapseStudy &study)
{
    os << "policy,governed,threads,status,wall_ticks,throughput,"
          "handoffs,barged_grants,waiters_passivated,"
          "waiters_reactivated,circulation_avg,coherence_penalty_ticks,"
          "block_p50_ticks,block_p99_ticks,gov_target\n";
    for (const CollapseArm &arm : study.arms) {
        for (std::size_t i = 0; i < arm.runs.size(); ++i) {
            const jvm::RunResult &r = arm.runs[i];
            os << jvm::lockPolicyName(arm.policy) << ','
               << (arm.governed ? 1 : 0) << ',' << study.threads[i]
               << ',' << pointStatus(r) << ',' << r.wall_time << ','
               << formatFixed(throughput(r), 3) << ','
               << r.locks.handoffs << ',' << r.locks.barged_grants
               << ',' << r.locks.waiters_passivated << ','
               << r.locks.waiters_reactivated << ','
               << formatFixed(circulation(r), 3) << ','
               << r.locks.coherence_penalty << ','
               << r.locks.block_hist.quantile(0.50) << ','
               << r.locks.block_hist.quantile(0.99) << ','
               << (r.governor.enabled
                       ? std::to_string(r.governor.final_target)
                       : std::string("-"))
               << '\n';
        }
    }
}

} // namespace jscale::core
