/**
 * @file
 * Report writers: render the paper's tables and figures from RunResults,
 * as aligned text (console) and CSV (machine-readable). One function per
 * experiment artifact; the bench binaries are thin wrappers around
 * these.
 */

#ifndef JSCALE_CORE_REPORT_HH
#define JSCALE_CORE_REPORT_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "control/usl.hh"
#include "jvm/runtime/vm.hh"
#include "stats/stats.hh"

namespace jscale::core {

/** A sweep per app: app name -> results ordered by ascending threads. */
using SweepSet = std::map<std::string, std::vector<jvm::RunResult>>;

/**
 * E1 — execution time, speedup and classification per app and thread
 * count (the Sec. II-C scalable/non-scalable characterization).
 */
void printScalabilityTable(std::ostream &os, const SweepSet &sweeps);
void writeScalabilityCsv(std::ostream &os, const SweepSet &sweeps);

/**
 * E2 — workload distribution: effective worker count, top-thread share
 * and task-count CV per app at selected thread counts.
 */
void printWorkloadDistributionTable(std::ostream &os,
                                    const SweepSet &sweeps);
void writeWorkloadDistributionCsv(std::ostream &os, const SweepSet &sweeps);

/** E3 — Fig. 1a: lock acquisitions vs. threads per app. */
void printLockAcquisitionTable(std::ostream &os, const SweepSet &sweeps);
void writeLockAcquisitionCsv(std::ostream &os, const SweepSet &sweeps);

/** E4 — Fig. 1b: lock contention instances vs. threads per app. */
void printLockContentionTable(std::ostream &os, const SweepSet &sweeps);
void writeLockContentionCsv(std::ostream &os, const SweepSet &sweeps);

/**
 * E5/E6 — Fig. 1c/1d: object-lifespan CDF of one app across thread
 * counts: rows are lifespan thresholds, columns thread counts.
 */
void printLifespanCdfTable(std::ostream &os, const std::string &app,
                           const std::vector<jvm::RunResult> &sweep);
void writeLifespanCdfCsv(std::ostream &os, const std::string &app,
                         const std::vector<jvm::RunResult> &sweep);

/**
 * E7 — Fig. 2: mutator time vs. GC time per app and thread count (the
 * stacked distribution of the paper).
 */
void printMutatorGcTable(std::ostream &os, const SweepSet &sweeps);
void writeMutatorGcCsv(std::ostream &os, const SweepSet &sweeps);

/**
 * E8 — GC effectiveness detail: nursery survival rate, promoted bytes,
 * minor/full GC counts and mean pauses vs. threads.
 */
void printGcSurvivalTable(std::ostream &os, const SweepSet &sweeps);
void writeGcSurvivalCsv(std::ostream &os, const SweepSet &sweeps);

/**
 * E14 — the Sec. III-B mechanism: per-mutator suspend wait (time
 * runnable-but-not-running plus time blocked on locks) vs. thread
 * count, next to the lifespan CDF it inflates.
 */
void printSuspendWaitTable(std::ostream &os, const SweepSet &sweeps);
void writeSuspendWaitCsv(std::ostream &os, const SweepSet &sweeps);

/** One app's speedup curve as raw points (e.g. re-read from a CSV). */
struct UslSeries
{
    std::string app;
    std::vector<control::UslPoint> points;
};

/**
 * E17 — USL model fit per app: the contention (sigma) and coherency
 * (kappa) coefficients, the fitted optimum n*, the concrete thread
 * recommendation (n* clamped to the sweep range), the predicted peak
 * speedup, and the observed knee of the sweep for comparison. A fitted
 * n* beyond the sweep's largest thread count means the knee was not
 * reached within the measured range — the scalable classification in
 * model form.
 */
void printUslTable(std::ostream &os, const SweepSet &sweeps);
void writeUslCsv(std::ostream &os, const SweepSet &sweeps);

/** Same table over raw speedup series (the `jscale usl` CSV path). */
void printUslSeriesTable(std::ostream &os,
                         const std::vector<UslSeries> &series);

/**
 * Governed-vs-ungoverned comparison: wall time and throughput delta per
 * (app, threads) pair present in both sets, with the governor's final
 * admission target. @p off must be ungoverned, @p on governed runs of
 * the same configurations.
 */
void printGovernedComparisonTable(std::ostream &os, const SweepSet &off,
                                  const SweepSet &on);

/**
 * Per-run wait-state blame (requires a profiled run, see
 * ExperimentConfig::profile): one row per attribution bucket with its
 * total time, share of aggregate task wall time and tail quantiles of
 * the per-task distribution, plus the slowest-task and hottest-monitor
 * breakdowns. The CSV emits every bucket (zero rows included) so the
 * column/row set is configuration-independent.
 */
void printBlameTable(std::ostream &os, const jvm::RunResult &r);
void writeBlameCsv(std::ostream &os, const jvm::RunResult &r);

/**
 * Raw log-bucketed histogram dump of a profiled run: one row per
 * non-empty histogram bucket, for the end-to-end task latency
 * distribution and each wait bucket's per-task distribution.
 */
void writeProfileHistogramCsv(std::ostream &os, const jvm::RunResult &r);

/**
 * Flatten every deterministic counter of one run into a named stat
 * snapshot (timing, GC, heap, locks, scheduler and per-thread rows).
 * Two runs of the same configuration must produce identical snapshots
 * regardless of --jobs; the equivalence tests compare these dumps.
 */
stats::StatSnapshot runStatSnapshot(const jvm::RunResult &r);

/**
 * Open-loop traffic summary of one or more runs (tenants of one host,
 * or rungs of a ladder): arrival accounting, sojourn / queueing /
 * service tails, and the exact wait-state decomposition of service
 * time. Rows without traffic data (closed-loop runs) are skipped.
 */
void printTrafficTable(std::ostream &os,
                       const std::vector<jvm::RunResult> &runs);
void writeTrafficCsv(std::ostream &os,
                     const std::vector<jvm::RunResult> &runs);

/** Free-form one-run summary (quickstart/example output). */
void printRunSummary(std::ostream &os, const jvm::RunResult &r);

/** Per-thread breakdown of one run (tasks, CPU, waits, allocation). */
void printThreadTable(std::ostream &os, const jvm::RunResult &r);

} // namespace jscale::core

#endif // JSCALE_CORE_REPORT_HH
