/**
 * @file
 * ConcurrencyGovernor: online thread-throttling (concurrency
 * restriction) for a running VM.
 *
 * The paper shows every application has a scalability knee: past it,
 * added threads only grow GC time and lock contention. Dice & Kogan
 * ("Avoiding Scalability Collapse by Restricting Concurrency") recover
 * the lost throughput by limiting how many threads are *admitted* to
 * the workload at a time. This governor implements that loop inside the
 * simulation: a periodic decision event samples signals the runtime
 * already exposes (tasks retired per interval, lock block-time share,
 * GC-time share), maintains an admission target, and parks surplus
 * mutators at task-fetch boundaries via the jvm::TaskAdmission hook —
 * waking them through the scheduler when the target rises or a peer
 * finishes.
 *
 * Two policies:
 *  - HillClimb: move the target up or down each interval, reversing
 *    (and halving the step) when measured throughput regresses —
 *    Dice & Kogan-style gradient-free search.
 *  - UslGuided: spend a calibration prefix stepping through a ladder of
 *    concurrency levels, fit the Universal Scalability Law to the
 *    measured throughputs, then clamp the target to the fitted n*.
 *
 * Every decision derives from simulation state alone, so governed runs
 * stay byte-identical across --jobs settings.
 */

#ifndef JSCALE_CONTROL_GOVERNOR_HH
#define JSCALE_CONTROL_GOVERNOR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "control/usl.hh"
#include "jvm/runtime/admission.hh"
#include "sim/event.hh"

namespace jscale::sim {
class Simulation;
} // namespace jscale::sim

namespace jscale::jvm {
class JavaVm;
} // namespace jscale::jvm

namespace jscale::control {

/** Admission policies. */
enum class GovernorMode : std::uint8_t
{
    Off,       ///< admit everything (no governor activity)
    HillClimb, ///< throughput hill climbing
    UslGuided, ///< calibration prefix + USL-fitted clamp
};

/** Short policy name ("off", "hill", "usl"). */
const char *governorModeName(GovernorMode mode);

/** Parse a policy name; returns false on an unknown name. */
bool parseGovernorMode(const std::string &name, GovernorMode &out);

/** Tunables of the governor. */
struct GovernorConfig
{
    GovernorMode mode = GovernorMode::Off;
    /** Decision (sampling) interval. */
    Ticks interval = 5 * units::MS;
    /** Never admit fewer mutators than this. */
    std::uint32_t min_active = 1;
    /** HillClimb: relative throughput deadband before reversing. */
    double tolerance = 0.05;
    /** HillClimb: combined GC + lock block share of an interval above
     *  which the governor forces the target downward. */
    double pressure_limit = 0.5;
    /** UslGuided: decision intervals per calibration level (the first
     *  settles the level, the last one measures). */
    std::uint32_t calib_ticks_per_level = 2;
};

/**
 * The governor. Construct after the VM, then install with
 * vm.setTaskAdmission(&gov) before run(); the VM drives the rest
 * through the TaskAdmission interface.
 */
class ConcurrencyGovernor : public jvm::TaskAdmission
{
  public:
    ConcurrencyGovernor(sim::Simulation &sim, jvm::JavaVm &vm,
                        const GovernorConfig &config);
    ~ConcurrencyGovernor() override;

    ConcurrencyGovernor(const ConcurrencyGovernor &) = delete;
    ConcurrencyGovernor &operator=(const ConcurrencyGovernor &) = delete;

    /** @name jvm::TaskAdmission */
    /** @{ */
    void onRunStart(std::uint32_t n_threads, Ticks now) override;
    bool admitTask(jvm::MutatorThread &t, Ticks now) override;
    void onMutatorFinished(jvm::MutatorThread &t, Ticks now) override;
    bool cancelPark(jvm::MutatorThread &t, Ticks now) override;
    void onRunEnd(Ticks now) override;
    void summarize(jvm::GovernorSummary &out) const override;
    std::uint32_t admissionTarget() const override { return target_; }
    std::uint32_t parkedNow() const override { return parkedCount(); }
    /** @} */

    /** Current admission target. */
    std::uint32_t target() const { return target_; }

    /** Mutators currently held at task-fetch boundaries. */
    std::uint32_t parkedCount() const
    {
        return static_cast<std::uint32_t>(parked_.size());
    }

    /** Unfinished mutators not currently parked. */
    std::uint32_t admitted() const
    {
        return live_ - parkedCount();
    }

    std::uint64_t decisions() const { return decisions_; }
    std::uint64_t parks() const { return parks_; }
    std::uint64_t unparks() const { return unparks_; }

    /** The calibration fit (UslGuided; valid once calibration ended). */
    const UslFit &calibrationFit() const { return fit_; }

    const GovernorConfig &config() const { return config_; }

  private:
    /** Periodic decision: sample, update the target, publish. */
    void decide();

    /** Policy updates given this interval's task throughput. */
    void decideHillClimb(std::uint64_t tput, double pressure);
    void decideUslGuided(std::uint64_t tput);

    /** Wake parked threads (FIFO) until admitted() reaches target_. */
    void unparkToTarget();

    /** Clamp and record a new target. */
    void setTarget(std::uint32_t t);

    sim::Simulation &sim_;
    jvm::JavaVm &vm_;
    GovernorConfig config_;

    std::unique_ptr<sim::RecurringEvent> tick_event_;

    std::uint32_t n_threads_ = 0;
    /** Online cores when the run started (capacity-loss detection). */
    std::uint32_t start_online_ = 0;
    /** Unfinished mutators (parked or admitted). */
    std::uint32_t live_ = 0;
    std::uint32_t target_ = 0;
    std::uint32_t min_target_seen_ = 0;
    std::uint32_t max_target_seen_ = 0;
    /** Admission-parked mutators in park order (FIFO wake). */
    std::deque<jvm::MutatorThread *> parked_;

    /** @name Interval sampling state */
    /** @{ */
    std::uint64_t last_tasks_ = 0;
    Ticks last_gc_pause_ = 0;
    Ticks last_lock_block_ = 0;
    bool have_baseline_ = false;
    std::uint64_t prev_tput_ = 0;
    /** @} */

    /** @name HillClimb state */
    /** @{ */
    int direction_ = -1; ///< first probe moves down (collapse recovery)
    std::uint32_t step_ = 1;
    /** @} */

    /** @name UslGuided state */
    /** @{ */
    std::vector<std::uint32_t> calib_levels_;
    std::vector<std::uint64_t> calib_tput_;
    std::size_t calib_level_idx_ = 0;
    std::uint32_t calib_ticks_at_level_ = 0;
    bool calibrated_ = false;
    UslFit fit_;
    /** @} */

    std::uint64_t decisions_ = 0;
    std::uint64_t parks_ = 0;
    std::uint64_t unparks_ = 0;
};

} // namespace jscale::control

#endif // JSCALE_CONTROL_GOVERNOR_HH
