#include "control/governor.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "jvm/runtime/vm.hh"
#include "jvm/threads/mutator.hh"
#include "os/scheduler.hh"
#include "sim/simulation.hh"

namespace jscale::control {

const char *
governorModeName(GovernorMode mode)
{
    switch (mode) {
      case GovernorMode::Off:
        return "off";
      case GovernorMode::HillClimb:
        return "hill";
      case GovernorMode::UslGuided:
        return "usl";
    }
    return "off";
}

bool
parseGovernorMode(const std::string &name, GovernorMode &out)
{
    if (name == "off") {
        out = GovernorMode::Off;
    } else if (name == "hill") {
        out = GovernorMode::HillClimb;
    } else if (name == "usl") {
        out = GovernorMode::UslGuided;
    } else {
        return false;
    }
    return true;
}

ConcurrencyGovernor::ConcurrencyGovernor(sim::Simulation &sim,
                                         jvm::JavaVm &vm,
                                         const GovernorConfig &config)
    : sim_(sim), vm_(vm), config_(config)
{
    jscale_assert(config_.interval > 0,
                  "governor interval must be positive");
    jscale_assert(config_.calib_ticks_per_level >= 1,
                  "calibration needs at least one tick per level");
    tick_event_ = std::make_unique<sim::RecurringEvent>(
        sim_.queue(), static_cast<TickDelta>(config_.interval),
        [this] { decide(); }, "governor-decide");
}

ConcurrencyGovernor::~ConcurrencyGovernor() = default;

void
ConcurrencyGovernor::setTarget(std::uint32_t t)
{
    const std::uint32_t floor =
        std::max<std::uint32_t>(config_.min_active, 1);
    target_ = std::clamp(t, floor, n_threads_);
    min_target_seen_ = std::min(min_target_seen_, target_);
    max_target_seen_ = std::max(max_target_seen_, target_);
}

void
ConcurrencyGovernor::onRunStart(std::uint32_t n_threads, Ticks now)
{
    n_threads_ = n_threads;
    live_ = n_threads;
    start_online_ = vm_.scheduler().onlineCores();

    std::uint32_t initial = n_threads;
    switch (config_.mode) {
      case GovernorMode::Off:
        break;
      case GovernorMode::HillClimb:
        // First probe moves downward with a coarse step: restriction is
        // the direction that pays off on collapsing workloads, and a
        // too-low probe is corrected within two intervals.
        direction_ = -1;
        step_ = std::max<std::uint32_t>(1, n_threads / 4);
        break;
      case GovernorMode::UslGuided:
        // Calibration ladder: powers of two up to the full complement.
        calib_levels_.clear();
        for (std::uint32_t l = 1; l < n_threads; l *= 2)
            calib_levels_.push_back(l);
        calib_levels_.push_back(n_threads);
        calib_tput_.assign(calib_levels_.size(), 0);
        calib_level_idx_ = 0;
        calib_ticks_at_level_ = 0;
        initial = calib_levels_.front();
        break;
    }
    min_target_seen_ = max_target_seen_ =
        std::clamp(initial, std::max<std::uint32_t>(config_.min_active, 1),
                   n_threads_);
    setTarget(initial);

    last_tasks_ = vm_.tasksCompleted();
    last_gc_pause_ = vm_.gcPauseSoFar();
    last_lock_block_ = vm_.monitors().totalBlockTime();
    if (config_.mode != GovernorMode::Off)
        tick_event_->start(now + config_.interval);
}

bool
ConcurrencyGovernor::admitTask(jvm::MutatorThread &t, Ticks now)
{
    (void)now;
    if (config_.mode == GovernorMode::Off)
        return true;
    const std::uint32_t floor =
        std::max<std::uint32_t>(config_.min_active, 1);
    // Park only while doing so leaves at least max(target, floor)
    // admitted mutators — the floor guarantees the last runnable
    // mutator is never parked.
    if (admitted() <= std::max(target_, floor))
        return true;
    parked_.push_back(&t);
    ++parks_;
    vm_.scheduler().noteAdmissionPark(t.osThread());
    return false;
}

void
ConcurrencyGovernor::onMutatorFinished(jvm::MutatorThread &t, Ticks now)
{
    (void)now;
    jscale_assert(std::find(parked_.begin(), parked_.end(), &t) ==
                      parked_.end(),
                  "a parked mutator cannot finish");
    jscale_assert(live_ > 0, "mutator finish underflow");
    --live_;
    // Backfill the freed slot immediately so the admitted population
    // never idles below target while work remains.
    unparkToTarget();
}

bool
ConcurrencyGovernor::cancelPark(jvm::MutatorThread &t, Ticks now)
{
    (void)now;
    const auto it = std::find(parked_.begin(), parked_.end(), &t);
    if (it == parked_.end())
        return false;
    parked_.erase(it);
    ++unparks_;
    // Wake through the admission API so the scheduler's park/unpark
    // counters stay balanced; the caller kills the thread at its next
    // burst.
    vm_.scheduler().unparkAdmitted(t.osThread());
    return true;
}

void
ConcurrencyGovernor::unparkToTarget()
{
    while (!parked_.empty() && admitted() < target_) {
        jvm::MutatorThread *t = parked_.front();
        parked_.pop_front();
        ++unparks_;
        vm_.scheduler().unparkAdmitted(t->osThread());
    }
}

void
ConcurrencyGovernor::decide()
{
    const Ticks now = sim_.now();

    // Interval deltas of the three sampled signals.
    const std::uint64_t tasks = vm_.tasksCompleted();
    const std::uint64_t tput = tasks - last_tasks_;
    last_tasks_ = tasks;
    const Ticks gc_pause = vm_.gcPauseSoFar();
    const Ticks gc_delta = gc_pause - last_gc_pause_;
    last_gc_pause_ = gc_pause;
    const Ticks lock_block = vm_.monitors().totalBlockTime();
    const Ticks lock_delta = lock_block - last_lock_block_;
    last_lock_block_ = lock_block;

    // GC share of the interval's wall time plus lock-block share of the
    // admitted threads' aggregate CPU capacity — the paper's two loss
    // channels, folded into one overload signal.
    const double wall = static_cast<double>(config_.interval);
    const double gc_share =
        std::min(1.0, static_cast<double>(gc_delta) / wall);
    const double capacity =
        wall * static_cast<double>(std::max<std::uint32_t>(admitted(), 1));
    const double lock_share =
        std::min(1.0, static_cast<double>(lock_delta) / capacity);
    const double pressure = gc_share + lock_share;

    ++decisions_;
    switch (config_.mode) {
      case GovernorMode::Off:
        break;
      case GovernorMode::HillClimb:
        decideHillClimb(tput, pressure);
        break;
      case GovernorMode::UslGuided:
        decideUslGuided(tput);
        break;
    }
    // Capacity-aware re-targeting: when cores were lost at runtime
    // (fault injection) there is no point admitting more mutators than
    // online cores — drop the target with the capacity. Only engages
    // after an actual loss so unfaulted runs are untouched.
    const std::uint32_t online = vm_.scheduler().onlineCores();
    if (config_.mode != GovernorMode::Off && online < start_online_ &&
        target_ > online) {
        setTarget(online);
    }
    unparkToTarget();
    prev_tput_ = tput;

    vm_.listeners().dispatch([&](jvm::RuntimeListener &l) {
        l.onGovernorDecision(target_, admitted(), parkedCount(), tput,
                             now);
    });
}

void
ConcurrencyGovernor::decideHillClimb(std::uint64_t tput, double pressure)
{
    if (!have_baseline_) {
        // The first interval only establishes the throughput baseline.
        have_baseline_ = true;
        return;
    }
    if (tput == 0) {
        // Starved: every admitted thread is stuck (e.g. behind a parked
        // pipeline stage or a long collection). Widening is the only
        // move that can restore progress — and it must not be blocked
        // by the pressure heuristic below.
        direction_ = +1;
        step_ = std::max<std::uint32_t>(step_, 1);
    } else if (pressure > config_.pressure_limit) {
        // Losses dominate the interval: restrict regardless of the
        // local throughput gradient.
        direction_ = -1;
    } else if (static_cast<double>(tput) <
               static_cast<double>(prev_tput_) *
                   (1.0 - config_.tolerance)) {
        // The last move regressed throughput: reverse and refine.
        direction_ = -direction_;
        step_ = std::max<std::uint32_t>(1, step_ / 2);
    }
    // Within the deadband (or improving): keep moving the same way.
    std::int64_t moved = static_cast<std::int64_t>(target_) +
                         static_cast<std::int64_t>(direction_) *
                             static_cast<std::int64_t>(step_);
    moved = std::max<std::int64_t>(moved, 1);
    setTarget(static_cast<std::uint32_t>(moved));
}

void
ConcurrencyGovernor::decideUslGuided(std::uint64_t tput)
{
    if (calibrated_)
        return; // the fitted clamp holds for the rest of the run
    ++calib_ticks_at_level_;
    if (calib_ticks_at_level_ < config_.calib_ticks_per_level)
        return; // settling interval at this level
    calib_tput_[calib_level_idx_] = tput;
    ++calib_level_idx_;
    calib_ticks_at_level_ = 0;
    if (calib_level_idx_ < calib_levels_.size()) {
        setTarget(calib_levels_[calib_level_idx_]);
        return;
    }

    // Ladder complete: normalize to the single-thread level and fit.
    calibrated_ = true;
    if (calib_tput_.front() == 0) {
        // No usable baseline (the run barely started); fail open.
        setTarget(n_threads_);
        return;
    }
    std::vector<UslPoint> pts;
    pts.reserve(calib_levels_.size());
    const double base = static_cast<double>(calib_tput_.front());
    for (std::size_t i = 0; i < calib_levels_.size(); ++i) {
        pts.push_back({static_cast<double>(calib_levels_[i]),
                       static_cast<double>(calib_tput_[i]) / base});
    }
    fit_ = UslModel::fit(pts);
    if (!fit_.valid || fit_.n_star <= 0.0) {
        // Unfittable or no interior peak within any finite n: run wide.
        setTarget(n_threads_);
        return;
    }
    setTarget(static_cast<std::uint32_t>(
        std::lround(std::max(fit_.n_star, 1.0))));
}

void
ConcurrencyGovernor::onRunEnd(Ticks now)
{
    (void)now;
    tick_event_->stop();
    jscale_assert(parked_.empty(),
                  "run ended with admission-parked mutators");
    jscale_assert(unparks_ == parks_,
                  "park/unpark bookkeeping out of balance at run end");
}

void
ConcurrencyGovernor::summarize(jvm::GovernorSummary &out) const
{
    out.enabled = config_.mode != GovernorMode::Off;
    out.policy = governorModeName(config_.mode);
    out.final_target = target_;
    out.min_target = min_target_seen_;
    out.max_target = max_target_seen_;
    out.decisions = decisions_;
    out.parks = parks_;
    out.unparks = unparks_;
    if (fit_.valid) {
        out.usl_sigma = fit_.sigma;
        out.usl_kappa = fit_.kappa;
        out.usl_nstar = fit_.n_star;
    }
}

} // namespace jscale::control
