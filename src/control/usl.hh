/**
 * @file
 * UslModel: least-squares fitting of the Universal Scalability Law.
 *
 * Gunther's USL describes a speedup curve with two loss coefficients:
 *
 *   S(n) = n / (1 + sigma*(n - 1) + kappa*n*(n - 1))
 *
 * sigma is the contention (serialization) share and kappa the coherency
 * (crosstalk) share. Unlike Amdahl's law the kappa term makes the curve
 * *retrograde* past the optimum n* = sqrt((1 - sigma)/kappa) — exactly
 * the knee-then-collapse shape the paper measures on the non-scalable
 * DaCapo applications. Fitting the law to a sweep turns the observed
 * knee into an analytical prediction the concurrency governor can act
 * on.
 *
 * The fit linearizes the law: y = n/S - 1 = sigma*(n-1) + kappa*n*(n-1)
 * is linear in (sigma, kappa), so ordinary least squares over the
 * transformed points reduces to a closed-form 2x2 normal-equation
 * solve. Coefficients are clamped to their physical range (>= 0, with
 * single-parameter refits when a clamp binds).
 */

#ifndef JSCALE_CONTROL_USL_HH
#define JSCALE_CONTROL_USL_HH

#include <cstddef>
#include <vector>

namespace jscale::control {

/** One measured sweep point: speedup at a thread count. */
struct UslPoint
{
    double n = 1.0;       ///< thread count
    double speedup = 1.0; ///< S(n) relative to n = 1
};

/** Result of fitting the USL to a sweep. */
struct UslFit
{
    /** False when the sweep has too few usable points to solve. */
    bool valid = false;
    /** Contention (serialization) coefficient, clamped to [0, inf). */
    double sigma = 0.0;
    /** Coherency (crosstalk) coefficient, clamped to [0, inf). */
    double kappa = 0.0;
    /**
     * Predicted optimal concurrency sqrt((1 - sigma)/kappa). Zero when
     * kappa ~ 0 (no interior peak: the fitted curve rises, ever more
     * slowly, at every finite n); 1 when sigma >= 1 (retrograde from
     * the first added thread).
     */
    double n_star = 0.0;
    /** Predicted S(n*) (or S at the largest fitted n when no peak). */
    double peak_speedup = 0.0;
    /** RMS of (predicted - observed) speedup over the fitted points. */
    double rms_residual = 0.0;
    /** Number of points the fit used. */
    std::size_t points = 0;

    /** Evaluate the fitted curve at @p n threads. */
    double predict(double n) const;
};

/** Stateless fitting interface. */
class UslModel
{
  public:
    /** The law itself: S(n) for given coefficients. */
    static double speedupAt(double n, double sigma, double kappa);

    /**
     * Least-squares fit over @p pts. Points with n < 1 or speedup <= 0
     * are ignored; at least two distinct points with n > 1 are required
     * (the n = 1 anchor carries no information in the linearized form).
     */
    static UslFit fit(const std::vector<UslPoint> &pts);
};

} // namespace jscale::control

#endif // JSCALE_CONTROL_USL_HH
