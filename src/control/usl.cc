#include "control/usl.hh"

#include <cmath>

namespace jscale::control {

namespace {

/** Coefficients this small are numerically indistinguishable from a
 *  loss-free (Amdahl/linear) curve over any realistic thread count. */
constexpr double kEps = 1e-12;

} // namespace

double
UslModel::speedupAt(double n, double sigma, double kappa)
{
    const double denom = 1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0);
    return denom > kEps ? n / denom : 0.0;
}

double
UslFit::predict(double n) const
{
    return UslModel::speedupAt(n, sigma, kappa);
}

UslFit
UslModel::fit(const std::vector<UslPoint> &pts)
{
    UslFit out;

    // Linearized regressors: y = n/S - 1 against a = (n-1) and
    // b = n*(n-1). The n = 1 point maps to a = b = y = 0 and cannot
    // constrain the solve.
    double saa = 0, sab = 0, sbb = 0, say = 0, sby = 0;
    std::size_t informative = 0;
    std::vector<UslPoint> used;
    for (const UslPoint &p : pts) {
        if (p.n < 1.0 || p.speedup <= 0.0)
            continue;
        used.push_back(p);
        if (p.n <= 1.0)
            continue;
        const double a = p.n - 1.0;
        const double b = p.n * (p.n - 1.0);
        const double y = p.n / p.speedup - 1.0;
        saa += a * a;
        sab += a * b;
        sbb += b * b;
        say += a * y;
        sby += b * y;
        ++informative;
    }
    out.points = used.size();
    if (informative < 2)
        return out;

    const double det = saa * sbb - sab * sab;
    double sigma, kappa;
    if (std::abs(det) > kEps * saa * sbb) {
        sigma = (say * sbb - sby * sab) / det;
        kappa = (saa * sby - sab * say) / det;
    } else {
        // Collinear regressors (e.g. only two distinct n): attribute
        // everything to contention.
        sigma = saa > kEps ? say / saa : 0.0;
        kappa = 0.0;
    }

    // Clamp to the physical domain; when a clamp binds, refit the other
    // coefficient alone so the constrained solution is still optimal.
    if (kappa < 0.0) {
        kappa = 0.0;
        sigma = saa > kEps ? say / saa : 0.0;
    } else if (sigma < 0.0) {
        sigma = 0.0;
        kappa = sbb > kEps ? sby / sbb : 0.0;
    }
    sigma = std::max(sigma, 0.0);
    kappa = std::max(kappa, 0.0);

    out.valid = true;
    out.sigma = sigma;
    out.kappa = kappa;

    double max_n = 1.0;
    for (const UslPoint &p : used)
        max_n = std::max(max_n, p.n);
    if (kappa > kEps) {
        out.n_star =
            sigma < 1.0 ? std::sqrt((1.0 - sigma) / kappa) : 1.0;
        out.peak_speedup = out.predict(out.n_star);
    } else {
        out.n_star = 0.0; // no interior peak
        out.peak_speedup = out.predict(max_n);
    }

    double sq = 0.0;
    for (const UslPoint &p : used) {
        const double d = out.predict(p.n) - p.speedup;
        sq += d * d;
    }
    out.rms_residual =
        std::sqrt(sq / static_cast<double>(used.size()));
    return out;
}

} // namespace jscale::control
