/**
 * @file
 * Java-style monitors and semaphore channels.
 *
 * A Monitor has an uncontended fast path (acquire when free) and a
 * contended slow path: the acquiring thread blocks in a wait queue and
 * ownership is handed off directly at release time, with the *choice*
 * of next owner delegated to a pluggable AdmissionPolicy (strict FIFO
 * by default; see locks/policy.hh). Acquisitions and contention
 * instances are counted exactly as the paper's DTrace probes counted
 * them (Fig. 1a / Fig. 1b), and every transition is published to the
 * RuntimeListener chain for the lock profiler.
 *
 * Contended handoffs optionally charge the grantee a deterministic
 * coherence-footprint penalty that grows with the number of distinct
 * recent lock holders — the cache-line bouncing that makes wide
 * circulation collapse on manycores.
 *
 * A WaitChannel is a counting semaphore used by workload models for
 * producer/consumer stage coupling (bounded pipelines, work handoff).
 */

#ifndef JSCALE_JVM_LOCKS_MONITOR_HH
#define JSCALE_JVM_LOCKS_MONITOR_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "jvm/locks/policy.hh"
#include "jvm/runtime/listener.hh"
#include "stats/stats.hh"

namespace jscale::os {
class Scheduler;
class OsThread;
} // namespace jscale::os

namespace jscale::jvm {

/**
 * Interface implemented by threads that can block on monitors and
 * channels (MutatorThread). Grant callbacks fire while the thread is
 * still parked, immediately before the scheduler wake.
 */
class MonitorWaiter
{
  public:
    virtual ~MonitorWaiter() = default;

    /** Monitor ownership was handed to this thread. */
    virtual void monitorGranted(MonitorId monitor) = 0;

    /** A channel permit was granted to this thread. */
    virtual void channelGranted(ChannelId channel) = 0;

    /** The OS thread to wake. */
    virtual os::OsThread *osThread() const = 0;

    /** Application-level thread index (for stats/listeners). */
    virtual MutatorIndex mutatorIndex() const = 0;

    /**
     * A contended handoff charged this thread @p penalty ticks of
     * coherence-footprint cost; the thread pays it as extra CPU time
     * inside the new hold window. Default ignores it (test doubles).
     */
    virtual void chargeHandoffPenalty(Ticks penalty) { (void)penalty; }
};

/**
 * HotSpot-style lock states. A fresh monitor is bias-able; the first
 * owner biases it; an acquisition by a different thread revokes the
 * bias (thin locking); actual contention inflates the lock to a fat
 * monitor with a wait queue, where it stays.
 */
enum class LockState : std::uint8_t { Neutral, Biased, Thin, Fat };

/** Render a LockState name. */
const char *lockStateName(LockState s);

/** Per-monitor counters matching the paper's lock-usage metrics. */
struct MonitorStats
{
    std::uint64_t acquisitions = 0;
    std::uint64_t contentions = 0;
    Ticks total_hold_time = 0;
    Ticks total_block_time = 0;
    std::uint32_t max_queue_depth = 0;
    /** @name HotSpot lock-state breakdown */
    /** @{ */
    std::uint64_t biased_acquisitions = 0;
    std::uint64_t thin_acquisitions = 0;
    std::uint64_t fat_acquisitions = 0;
    std::uint64_t bias_revocations = 0;
    std::uint64_t inflations = 0;
    /** @} */
    /** Object.wait() calls. */
    std::uint64_t waits = 0;
    /** Object.notify()/notifyAll() calls. */
    std::uint64_t notifies = 0;
    /** @name Admission-policy behaviour */
    /** @{ */
    /** Contended handoffs (direct grants at release). */
    std::uint64_t handoffs = 0;
    /** Handoffs that bypassed an older queued waiter (unfair grants). */
    std::uint64_t barged_grants = 0;
    /** Waiters moved to the cold passive list (culling policies). */
    std::uint64_t waiters_passivated = 0;
    /** Waiters rotated back from the passive list. */
    std::uint64_t waiters_reactivated = 0;
    /** Total coherence-footprint penalty charged at handoffs. */
    Ticks coherence_penalty = 0;
    /** Sum over handoffs of the distinct recent-owner count — divide
     *  by handoffs for the average circulation width. */
    std::uint64_t circulation_sum = 0;
    /** @} */
    /** Per-grant block times (contended waits), for p99 tails. */
    stats::LatencyHistogram block_hist;
};

class MonitorTable;

/** A single monitor. Created through the MonitorTable. */
class Monitor : private AdmissionPolicy::Events
{
  public:
    Monitor(MonitorId id, std::string name, os::Scheduler &sched,
            const ListenerChain *listeners, MonitorTable *table,
            const LockPolicyConfig &policy_cfg);

    MonitorId id() const { return id_; }
    const std::string &name() const { return name_; }

    /**
     * Try to acquire for @p waiter at @p now.
     * @return true on immediate (uncontended or free) acquisition; false
     * when the waiter was queued — the caller must block, and
     * monitorGranted() + a scheduler wake will arrive at handoff.
     */
    bool acquire(MonitorWaiter *waiter, Ticks now);

    /**
     * Release by the current owner; hands off to the queue head if any
     * (counting a contended acquisition for it) and wakes it.
     */
    void release(MonitorWaiter *waiter, Ticks now);

    /**
     * Java Object.wait(): the owner atomically releases the monitor
     * (handing off to the queue head, if any) and parks in the waitset
     * until a notify moves it back to the acquire queue. The caller must
     * block; monitorGranted() arrives after re-acquisition.
     */
    void waitOn(MonitorWaiter *waiter, Ticks now);

    /**
     * Java Object.notify()/notifyAll(): move up to @p count waitset
     * members (FIFO) to the acquire queue. Must be called by the owner.
     */
    void notify(MonitorWaiter *waiter, std::uint32_t count, Ticks now);

    /**
     * Remove @p waiter from the acquire queue and/or waitset without
     * granting (thread kill). Returns true if the waiter was parked
     * here. Ownership is unaffected — a killed owner must release().
     * Acquire-queue removals fire onMonitorWaiterCancelled so FIFO
     * observers drop the queue entry.
     */
    bool cancelWaiter(MonitorWaiter *waiter, Ticks now);

    /** Current owner (nullptr when free). */
    MonitorWaiter *owner() const { return owner_; }

    /** Current HotSpot-style lock state. */
    LockState state() const { return state_; }

    /** Queued waiters (active + passive lists together). */
    std::size_t queueDepth() const { return policy_->depth(); }

    /** Waiters on the cold passive list (culling policies only). */
    std::size_t passiveDepth() const { return policy_->passiveDepth(); }

    /** Number of threads parked in the waitset. */
    std::size_t waitsetDepth() const { return waitset_.size(); }

    /** The admission policy steering contended handoffs. */
    LockPolicy policy() const { return policy_->kind(); }

    const MonitorStats &monStats() const { return stats_; }

  private:
    void grant(MonitorWaiter *waiter, Ticks now, bool contended);

    /** Release protocol shared by release() and waitOn(). */
    void releaseInternal(MonitorWaiter *waiter, Ticks now);

    /** Queue @p waiter on the contended slow path (acquire/notify). */
    void enqueueContended(MonitorWaiter *waiter, Ticks now);

    /**
     * Coherence-footprint cost of handing the lock to @p waiter:
     * handoff_base + coherence_cost * distinct *other* threads among
     * the last circulation_window contended grantees. Also records the
     * grantee into the circulation window and accumulates the
     * circulation stats.
     */
    Ticks handoffPenalty(const MonitorWaiter *waiter);

    /** @name AdmissionPolicy::Events */
    /** @{ */
    void waiterPassivated(MonitorWaiter *w, Ticks now) override;
    void waiterReactivated(MonitorWaiter *w, Ticks now) override;
    /** @} */

    MonitorId id_;
    std::string name_;
    os::Scheduler &sched_;
    const ListenerChain *listeners_;
    MonitorTable *table_;
    const LockPolicyConfig cfg_;

    MonitorWaiter *owner_ = nullptr;
    Ticks acquired_at_ = 0;
    LockState state_ = LockState::Neutral;
    /** Thread the lock is biased toward (Biased state only). */
    const MonitorWaiter *bias_holder_ = nullptr;
    /** Contended-waiter queue discipline (owns the waiting set). */
    std::unique_ptr<AdmissionPolicy> policy_;
    /** Threads parked by waitOn(), FIFO. */
    std::deque<MonitorWaiter *> waitset_;
    /** @name Circulation window (ring of recent contended grantees) */
    /** @{ */
    std::deque<MutatorIndex> recent_owners_;
    std::map<MutatorIndex, std::uint32_t> owner_counts_;
    /** @} */
    MonitorStats stats_;
};

/**
 * Counting semaphore for producer/consumer coupling. acquire() consumes
 * a permit or blocks FIFO; post() adds permits, waking blocked waiters
 * first.
 */
class WaitChannel
{
  public:
    WaitChannel(ChannelId id, std::string name, std::uint64_t permits,
                os::Scheduler &sched, const ListenerChain *listeners);

    ChannelId id() const { return id_; }
    const std::string &name() const { return name_; }

    /** @return true if a permit was consumed; false if queued/blocked. */
    bool acquire(MonitorWaiter *waiter, Ticks now);

    /** Add @p n permits; wakes up to @p n blocked waiters. */
    void post(std::uint64_t n, Ticks now);

    /** Remove @p waiter from the queue without granting (thread kill). */
    bool cancelWaiter(MonitorWaiter *waiter);

    /** Permits currently available. */
    std::uint64_t permits() const { return permits_; }

    /** Number of blocked waiters. */
    std::size_t queueDepth() const { return queue_.size(); }

  private:
    ChannelId id_;
    std::string name_;
    os::Scheduler &sched_;
    const ListenerChain *listeners_;
    std::uint64_t permits_;
    std::deque<MonitorWaiter *> queue_;
};

/**
 * Registry of all monitors and channels in a VM, plus aggregate counts
 * used by the study's Fig. 1a/1b series.
 */
class MonitorTable
{
  public:
    MonitorTable(os::Scheduler &sched, const ListenerChain *listeners,
                 const LockPolicyConfig &policy_cfg = {})
        : sched_(sched), listeners_(listeners), policy_cfg_(policy_cfg)
    {}

    /** Create a monitor; ids are dense and start at 0. */
    MonitorId createMonitor(const std::string &name);

    /** Create a channel with @p permits initial permits. */
    ChannelId createChannel(const std::string &name, std::uint64_t permits);

    Monitor &monitor(MonitorId id);
    const Monitor &monitor(MonitorId id) const;
    WaitChannel &channel(ChannelId id);

    std::size_t monitorCount() const { return monitors_.size(); }
    std::size_t channelCount() const { return channels_.size(); }

    /** Sum of acquisitions over all monitors. */
    std::uint64_t totalAcquisitions() const;

    /** Sum of contention instances over all monitors. */
    std::uint64_t totalContentions() const;

    /** Sum of block time over all monitors. */
    Ticks totalBlockTime() const;

    /**
     * Threads blocked on monitor acquire queues right now (the live
     * "blocked_now" gauge sampled by the telemetry layer; waitset
     * parkers are excluded — they are waiting, not contending).
     */
    std::size_t totalQueuedWaiters() const;

    /** Aggregate HotSpot lock-state counters over all monitors. */
    MonitorStats aggregateStats() const;

    /** @name Deadlock detection (wait-for graph maintenance) */
    /** @{ */
    /**
     * Record that @p waiter blocks on @p monitor and walk the wait-for
     * graph (blocked thread -> monitor -> owner -> ...); panics with the
     * cycle description if @p waiter closes a cycle.
     */
    void onBlocked(MonitorWaiter *waiter, MonitorId monitor);

    /** @p waiter was granted the monitor it blocked on. */
    void onGranted(MonitorWaiter *waiter);

    /** Monitor a thread currently blocks on, if any. */
    const Monitor *blockedOn(const MonitorWaiter *waiter) const;
    /** @} */

    /**
     * Remove @p waiter from every monitor queue/waitset and channel
     * queue and drop its wait-for edge (thread kill). Returns true if
     * the waiter was parked anywhere.
     */
    bool cancelWaiter(MonitorWaiter *waiter, Ticks now);

  private:
    os::Scheduler &sched_;
    const ListenerChain *listeners_;
    /** Admission policy applied to every monitor created here. */
    const LockPolicyConfig policy_cfg_;
    std::vector<std::unique_ptr<Monitor>> monitors_;
    std::vector<std::unique_ptr<WaitChannel>> channels_;
    /** Wait-for edges: blocked thread -> monitor id. */
    std::map<const MonitorWaiter *, MonitorId> blocked_on_;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_LOCKS_MONITOR_HH
