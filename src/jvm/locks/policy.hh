/**
 * @file
 * Pluggable monitor admission policies for the contended slow path.
 *
 * A Monitor delegates *who gets the lock next* to an AdmissionPolicy.
 * Strict FIFO is the HotSpot-faithful baseline; the alternatives model
 * the designs from the scalability-collapse literature:
 *
 *  - Barging: an unfair lock with a bounded barging window at release.
 *    The grant rotates over the first W queue positions, so the head
 *    can be bypassed but never starves more than W-1 consecutive
 *    handoffs. Circulation stays as wide as FIFO's — barging trades
 *    fairness for nothing here, which is exactly the collapse result.
 *  - Malthusian (Dice): excess waiters are passivated onto a cold
 *    passive list and only a small active set circulates over the
 *    lock; periodic rotation moves the oldest passive waiter back in
 *    front for long-term fairness.
 *  - LCR (Dice & Kogan, "Avoiding Scalability Collapse by Restricting
 *    Concurrency"): like Malthusian, but the active-set bound tracks
 *    the measured service capacity 1 + think/hold instead of a fixed
 *    target.
 *
 * Policies are pure deterministic functions of the event sequence —
 * no clocks, no randomness — so runs stay byte-identical at any
 * `--jobs` and an external oracle can mirror every decision from the
 * listener event stream alone.
 */

#ifndef JSCALE_JVM_LOCKS_POLICY_HH
#define JSCALE_JVM_LOCKS_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/units.hh"

namespace jscale::jvm {

class MonitorWaiter;

/** Admission policy selector for every monitor in a VM. */
enum class LockPolicy : std::uint8_t { Fifo, Barging, Malthusian, Lcr };

/** Render a LockPolicy name ("fifo", "barging", ...). */
const char *lockPolicyName(LockPolicy p);

/** Parse a policy name; returns false on an unknown name. */
bool parseLockPolicy(const std::string &name, LockPolicy &out);

/** All policy names, for CLI help and fuzz-case generation. */
inline constexpr LockPolicy kAllLockPolicies[] = {
    LockPolicy::Fifo,
    LockPolicy::Barging,
    LockPolicy::Malthusian,
    LockPolicy::Lcr,
};

/**
 * Admission-policy configuration, shared by every monitor of a VM.
 * The defaults (FIFO, zero handoff costs) reproduce the pre-policy
 * monitor byte for byte.
 */
struct LockPolicyConfig
{
    LockPolicy policy = LockPolicy::Fifo;

    /** Barging: grant window at the queue head (>= 1). */
    std::uint32_t barge_window = 4;

    /** Malthusian: fixed active-set bound (>= 1). */
    std::uint32_t active_target = 2;

    /**
     * Malthusian/LCR: every rotation_period-th contended handoff
     * reactivates the oldest passive waiter (0 = never rotate). Bounds
     * passive starvation: the waiter at passive position p is granted
     * within (p+1) * rotation_period further contended handoffs.
     */
    std::uint32_t rotation_period = 32;

    /** LCR: clamp bounds of the measured active-set cap. */
    std::uint32_t lcr_min_active = 1;
    std::uint32_t lcr_max_active = 8;

    /** @name Coherence-footprint handoff cost model
     * A contended handoff charges the grantee
     *   handoff_base + coherence_cost * distinct_other_owners
     * where distinct_other_owners counts the distinct *other* threads
     * among the last circulation_window contended grantees of this
     * monitor — the lock-protected data a wide circulation keeps
     * bouncing between caches. Zero (the default) charges nothing, so
     * policy-free runs are unchanged. */
    /** @{ */
    Ticks handoff_base = 0;
    Ticks coherence_cost = 0;
    std::uint32_t circulation_window = 32;
    /** @} */
};

/** One-line "k=v k=v" rendering for fingerprints and reports. */
std::string describeLockPolicyConfig(const LockPolicyConfig &cfg);

/**
 * Queue discipline of one monitor's contended acquire path. The
 * Monitor owns one instance per monitor and routes every slow-path
 * transition through it; the policy owns the waiting set (active and,
 * for culling policies, passive lists).
 */
class AdmissionPolicy
{
  public:
    /** Callbacks into the owning Monitor for waiter state changes that
     *  must reach the listener chain (the oracle mirrors them). */
    class Events
    {
      public:
        virtual ~Events() = default;
        /** @p w moved from the active set to the cold passive list. */
        virtual void waiterPassivated(MonitorWaiter *w, Ticks now) = 0;
        /** @p w moved from the passive list back to the active set. */
        virtual void waiterReactivated(MonitorWaiter *w, Ticks now) = 0;
    };

    /** Result of selecting the next lock holder. */
    struct Grant
    {
        MonitorWaiter *waiter = nullptr;
        /** When the waiter first queued (block-time accounting). */
        Ticks since = 0;
        /** The grant bypassed an older queued waiter (unfair grant). */
        bool bypassed_head = false;
    };

    virtual ~AdmissionPolicy() = default;

    virtual LockPolicy kind() const = 0;

    /** A contended acquirer joins the waiting set. */
    virtual void enqueue(MonitorWaiter *w, Ticks now) = 0;

    /**
     * Choose the next owner at release time and remove it from the
     * waiting set. Precondition: !empty(). May fire passivation /
     * reactivation events before returning the grant.
     */
    virtual Grant selectNext(Ticks now) = 0;

    /** Remove @p w without granting (thread kill). True if present. */
    virtual bool cancel(MonitorWaiter *w) = 0;

    virtual bool empty() const = 0;

    /** Waiters held, active and passive together. */
    virtual std::size_t depth() const = 0;

    /** Waiters on the cold passive list (0 for non-culling policies). */
    virtual std::size_t passiveDepth() const { return 0; }

    /** The owner released after holding for @p hold (LCR capacity
     *  measurement; default ignores it). */
    virtual void noteRelease(MonitorWaiter *w, Ticks now, Ticks hold)
    {
        (void)w; (void)now; (void)hold;
    }
};

/** Build the policy selected by @p cfg for one monitor. */
std::unique_ptr<AdmissionPolicy>
makeAdmissionPolicy(const LockPolicyConfig &cfg,
                    AdmissionPolicy::Events *events);

} // namespace jscale::jvm

#endif // JSCALE_JVM_LOCKS_POLICY_HH
