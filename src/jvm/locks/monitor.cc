#include "jvm/locks/monitor.hh"

#include <algorithm>

#include "base/logging.hh"
#include "os/scheduler.hh"

namespace jscale::jvm {

const char *
lockStateName(LockState s)
{
    switch (s) {
      case LockState::Neutral: return "neutral";
      case LockState::Biased: return "biased";
      case LockState::Thin: return "thin";
      case LockState::Fat: return "fat";
    }
    return "?";
}

Monitor::Monitor(MonitorId id, std::string name, os::Scheduler &sched,
                 const ListenerChain *listeners, MonitorTable *table)
    : id_(id), name_(std::move(name)), sched_(sched),
      listeners_(listeners), table_(table)
{
}

void
Monitor::grant(MonitorWaiter *waiter, Ticks now, bool contended)
{
    owner_ = waiter;
    acquired_at_ = now;
    ++stats_.acquisitions;
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorAcquire(waiter->mutatorIndex(), id_, contended, now);
        });
    }
}

bool
Monitor::acquire(MonitorWaiter *waiter, Ticks now)
{
    jscale_assert(waiter != nullptr, "null waiter");
    jscale_assert(owner_ != waiter,
                  "recursive acquire of monitor '", name_, "'");
    if (owner_ == nullptr) {
        // Uncontended path: advance the HotSpot lock-state machine.
        switch (state_) {
          case LockState::Neutral:
            state_ = LockState::Biased;
            bias_holder_ = waiter;
            ++stats_.biased_acquisitions;
            break;
          case LockState::Biased:
            if (bias_holder_ == waiter) {
                ++stats_.biased_acquisitions;
            } else {
                // A second thread revokes the bias; thin from now on.
                ++stats_.bias_revocations;
                state_ = LockState::Thin;
                bias_holder_ = nullptr;
                ++stats_.thin_acquisitions;
            }
            break;
          case LockState::Thin:
            ++stats_.thin_acquisitions;
            break;
          case LockState::Fat:
            ++stats_.fat_acquisitions;
            break;
        }
        grant(waiter, now, false);
        return true;
    }
    // Contended slow path: the lock inflates to a fat monitor (where it
    // stays), then the waiter queues FIFO.
    if (state_ != LockState::Fat) {
        state_ = LockState::Fat;
        bias_holder_ = nullptr;
        ++stats_.inflations;
    }
    ++stats_.contentions;
    queue_.push_back(Waiting{waiter, now});
    stats_.max_queue_depth = std::max(
        stats_.max_queue_depth, static_cast<std::uint32_t>(queue_.size()));
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorContended(waiter->mutatorIndex(), id_, now);
        });
    }
    if (table_)
        table_->onBlocked(waiter, id_);
    return false;
}

void
Monitor::releaseInternal(MonitorWaiter *waiter, Ticks now)
{
    stats_.total_hold_time += now - acquired_at_;
    owner_ = nullptr;
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorRelease(waiter->mutatorIndex(), id_, now);
        });
    }
    if (queue_.empty())
        return;
    // Direct handoff to the queue head.
    const Waiting next = queue_.front();
    queue_.pop_front();
    stats_.total_block_time += now - next.since;
    ++stats_.fat_acquisitions; // handoff happens on the inflated path
    if (table_)
        table_->onGranted(next.waiter);
    grant(next.waiter, now, true);
    next.waiter->monitorGranted(id_);
    sched_.wake(next.waiter->osThread());
}

void
Monitor::release(MonitorWaiter *waiter, Ticks now)
{
    jscale_assert(owner_ == waiter, "release of monitor '", name_,
                  "' by non-owner");
    releaseInternal(waiter, now);
}

void
Monitor::waitOn(MonitorWaiter *waiter, Ticks now)
{
    jscale_assert(owner_ == waiter, "wait() on monitor '", name_,
                  "' by non-owner (IllegalMonitorState)");
    ++stats_.waits;
    // Waiting on a monitor requires the inflated form, as in HotSpot.
    if (state_ != LockState::Fat) {
        state_ = LockState::Fat;
        bias_holder_ = nullptr;
        ++stats_.inflations;
    }
    waitset_.push_back(waiter);
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorWaitParked(waiter->mutatorIndex(), id_, now);
        });
    }
    releaseInternal(waiter, now);
}

void
Monitor::notify(MonitorWaiter *waiter, std::uint32_t count, Ticks now)
{
    jscale_assert(owner_ == waiter, "notify() on monitor '", name_,
                  "' by non-owner (IllegalMonitorState)");
    ++stats_.notifies;
    while (count > 0 && !waitset_.empty()) {
        MonitorWaiter *w = waitset_.front();
        waitset_.pop_front();
        --count;
        // The notified thread re-contends for the monitor: it joins the
        // acquire queue and is granted at a future release.
        ++stats_.contentions;
        queue_.push_back(Waiting{w, now});
        stats_.max_queue_depth =
            std::max(stats_.max_queue_depth,
                     static_cast<std::uint32_t>(queue_.size()));
        if (listeners_) {
            listeners_->dispatch([&](RuntimeListener &l) {
                l.onMonitorContended(w->mutatorIndex(), id_, now);
            });
        }
        if (table_)
            table_->onBlocked(w, id_);
    }
}

bool
Monitor::cancelWaiter(MonitorWaiter *waiter, Ticks now)
{
    bool removed = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->waiter == waiter) {
            it = queue_.erase(it);
            removed = true;
            if (listeners_) {
                listeners_->dispatch([&](RuntimeListener &l) {
                    l.onMonitorWaiterCancelled(waiter->mutatorIndex(),
                                               id_, now);
                });
            }
        } else {
            ++it;
        }
    }
    for (auto it = waitset_.begin(); it != waitset_.end();) {
        if (*it == waiter) {
            it = waitset_.erase(it);
            removed = true;
        } else {
            ++it;
        }
    }
    return removed;
}

WaitChannel::WaitChannel(ChannelId id, std::string name,
                         std::uint64_t permits, os::Scheduler &sched,
                         const ListenerChain *listeners)
    : id_(id), name_(std::move(name)), sched_(sched),
      listeners_(listeners), permits_(permits)
{
}

bool
WaitChannel::acquire(MonitorWaiter *waiter, Ticks now)
{
    if (permits_ > 0) {
        --permits_;
        return true;
    }
    queue_.push_back(waiter);
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onChannelBlocked(waiter->mutatorIndex(), id_, now);
        });
    }
    return false;
}

void
WaitChannel::post(std::uint64_t n, Ticks now)
{
    (void)now;
    while (n > 0 && !queue_.empty()) {
        MonitorWaiter *w = queue_.front();
        queue_.pop_front();
        --n;
        w->channelGranted(id_);
        sched_.wake(w->osThread());
    }
    permits_ += n;
}

bool
WaitChannel::cancelWaiter(MonitorWaiter *waiter)
{
    bool removed = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (*it == waiter) {
            it = queue_.erase(it);
            removed = true;
        } else {
            ++it;
        }
    }
    return removed;
}

bool
MonitorTable::cancelWaiter(MonitorWaiter *waiter, Ticks now)
{
    bool removed = false;
    for (const auto &m : monitors_)
        removed = m->cancelWaiter(waiter, now) || removed;
    for (const auto &ch : channels_)
        removed = ch->cancelWaiter(waiter) || removed;
    blocked_on_.erase(waiter);
    return removed;
}

MonitorId
MonitorTable::createMonitor(const std::string &name)
{
    const auto id = static_cast<MonitorId>(monitors_.size());
    monitors_.push_back(
        std::make_unique<Monitor>(id, name, sched_, listeners_, this));
    return id;
}

void
MonitorTable::onBlocked(MonitorWaiter *waiter, MonitorId monitor)
{
    blocked_on_[waiter] = monitor;
    // Walk the wait-for graph: waiter -> monitor -> owner -> (monitor
    // that owner blocks on) -> ... A return to the starting thread is a
    // deadlock; report the whole cycle.
    std::string chain = "thread " + std::to_string(waiter->mutatorIndex());
    const MonitorWaiter *cur = waiter;
    for (std::size_t depth = 0; depth <= monitors_.size(); ++depth) {
        const auto it = blocked_on_.find(cur);
        if (it == blocked_on_.end())
            return; // cur is runnable: no cycle through here
        const Monitor &m = *monitors_[it->second];
        const MonitorWaiter *owner = m.owner();
        if (owner == nullptr)
            return; // lock in handoff; will drain
        chain += " -> [" + m.name() + "] -> thread " +
                 std::to_string(owner->mutatorIndex());
        if (owner == waiter) {
            jscale_panic("monitor deadlock detected: ", chain);
        }
        cur = owner;
    }
}

void
MonitorTable::onGranted(MonitorWaiter *waiter)
{
    blocked_on_.erase(waiter);
}

const Monitor *
MonitorTable::blockedOn(const MonitorWaiter *waiter) const
{
    const auto it = blocked_on_.find(waiter);
    return it == blocked_on_.end() ? nullptr
                                   : monitors_[it->second].get();
}

ChannelId
MonitorTable::createChannel(const std::string &name, std::uint64_t permits)
{
    const auto id = static_cast<ChannelId>(channels_.size());
    channels_.push_back(std::make_unique<WaitChannel>(
        id, name, permits, sched_, listeners_));
    return id;
}

Monitor &
MonitorTable::monitor(MonitorId id)
{
    jscale_assert(id < monitors_.size(), "monitor id out of range");
    return *monitors_[id];
}

const Monitor &
MonitorTable::monitor(MonitorId id) const
{
    jscale_assert(id < monitors_.size(), "monitor id out of range");
    return *monitors_[id];
}

WaitChannel &
MonitorTable::channel(ChannelId id)
{
    jscale_assert(id < channels_.size(), "channel id out of range");
    return *channels_[id];
}

std::uint64_t
MonitorTable::totalAcquisitions() const
{
    std::uint64_t total = 0;
    for (const auto &m : monitors_)
        total += m->monStats().acquisitions;
    return total;
}

std::uint64_t
MonitorTable::totalContentions() const
{
    std::uint64_t total = 0;
    for (const auto &m : monitors_)
        total += m->monStats().contentions;
    return total;
}

Ticks
MonitorTable::totalBlockTime() const
{
    Ticks total = 0;
    for (const auto &m : monitors_)
        total += m->monStats().total_block_time;
    return total;
}

std::size_t
MonitorTable::totalQueuedWaiters() const
{
    std::size_t total = 0;
    for (const auto &m : monitors_)
        total += m->queueDepth();
    return total;
}

MonitorStats
MonitorTable::aggregateStats() const
{
    MonitorStats agg;
    for (const auto &m : monitors_) {
        const MonitorStats &s = m->monStats();
        agg.acquisitions += s.acquisitions;
        agg.contentions += s.contentions;
        agg.total_hold_time += s.total_hold_time;
        agg.total_block_time += s.total_block_time;
        agg.max_queue_depth =
            std::max(agg.max_queue_depth, s.max_queue_depth);
        agg.biased_acquisitions += s.biased_acquisitions;
        agg.thin_acquisitions += s.thin_acquisitions;
        agg.fat_acquisitions += s.fat_acquisitions;
        agg.bias_revocations += s.bias_revocations;
        agg.inflations += s.inflations;
        agg.waits += s.waits;
        agg.notifies += s.notifies;
    }
    return agg;
}

} // namespace jscale::jvm
