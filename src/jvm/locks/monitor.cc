#include "jvm/locks/monitor.hh"

#include <algorithm>

#include "base/logging.hh"
#include "os/scheduler.hh"

namespace jscale::jvm {

const char *
lockStateName(LockState s)
{
    switch (s) {
      case LockState::Neutral: return "neutral";
      case LockState::Biased: return "biased";
      case LockState::Thin: return "thin";
      case LockState::Fat: return "fat";
    }
    return "?";
}

Monitor::Monitor(MonitorId id, std::string name, os::Scheduler &sched,
                 const ListenerChain *listeners, MonitorTable *table,
                 const LockPolicyConfig &policy_cfg)
    : id_(id), name_(std::move(name)), sched_(sched),
      listeners_(listeners), table_(table), cfg_(policy_cfg),
      policy_(makeAdmissionPolicy(cfg_, this))
{
}

void
Monitor::waiterPassivated(MonitorWaiter *w, Ticks now)
{
    ++stats_.waiters_passivated;
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorWaiterPassivated(w->mutatorIndex(), id_, now);
        });
    }
}

void
Monitor::waiterReactivated(MonitorWaiter *w, Ticks now)
{
    ++stats_.waiters_reactivated;
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorWaiterReactivated(w->mutatorIndex(), id_, now);
        });
    }
}

Ticks
Monitor::handoffPenalty(const MonitorWaiter *waiter)
{
    const MutatorIndex grantee = waiter->mutatorIndex();
    // Distinct *other* recent owners before this grant joins the window.
    const std::size_t distinct_others =
        owner_counts_.size() - owner_counts_.count(grantee);
    const Ticks penalty =
        cfg_.handoff_base +
        cfg_.coherence_cost * static_cast<Ticks>(distinct_others);
    // Slide the circulation window forward over this grant.
    if (cfg_.circulation_window > 0) {
        recent_owners_.push_back(grantee);
        ++owner_counts_[grantee];
        if (recent_owners_.size() > cfg_.circulation_window) {
            const MutatorIndex old = recent_owners_.front();
            recent_owners_.pop_front();
            const auto it = owner_counts_.find(old);
            if (--it->second == 0)
                owner_counts_.erase(it);
        }
    }
    stats_.circulation_sum += owner_counts_.size();
    stats_.coherence_penalty += penalty;
    return penalty;
}

void
Monitor::grant(MonitorWaiter *waiter, Ticks now, bool contended)
{
    owner_ = waiter;
    acquired_at_ = now;
    ++stats_.acquisitions;
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorAcquire(waiter->mutatorIndex(), id_, contended, now);
        });
    }
}

void
Monitor::enqueueContended(MonitorWaiter *waiter, Ticks now)
{
    ++stats_.contentions;
    policy_->enqueue(waiter, now);
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth,
                 static_cast<std::uint32_t>(policy_->depth()));
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorContended(waiter->mutatorIndex(), id_, now);
        });
    }
    if (table_)
        table_->onBlocked(waiter, id_);
}

bool
Monitor::acquire(MonitorWaiter *waiter, Ticks now)
{
    jscale_assert(waiter != nullptr, "null waiter");
    jscale_assert(owner_ != waiter,
                  "recursive acquire of monitor '", name_, "'");
    if (owner_ == nullptr) {
        // Uncontended path: advance the HotSpot lock-state machine.
        switch (state_) {
          case LockState::Neutral:
            state_ = LockState::Biased;
            bias_holder_ = waiter;
            ++stats_.biased_acquisitions;
            break;
          case LockState::Biased:
            if (bias_holder_ == waiter) {
                ++stats_.biased_acquisitions;
            } else {
                // A second thread revokes the bias; thin from now on.
                ++stats_.bias_revocations;
                state_ = LockState::Thin;
                bias_holder_ = nullptr;
                ++stats_.thin_acquisitions;
            }
            break;
          case LockState::Thin:
            ++stats_.thin_acquisitions;
            break;
          case LockState::Fat:
            ++stats_.fat_acquisitions;
            break;
        }
        grant(waiter, now, false);
        return true;
    }
    // Contended slow path: the lock inflates to a fat monitor (where it
    // stays), then the waiter queues with the admission policy.
    if (state_ != LockState::Fat) {
        state_ = LockState::Fat;
        bias_holder_ = nullptr;
        ++stats_.inflations;
    }
    enqueueContended(waiter, now);
    return false;
}

void
Monitor::releaseInternal(MonitorWaiter *waiter, Ticks now)
{
    const Ticks hold = now - acquired_at_;
    stats_.total_hold_time += hold;
    owner_ = nullptr;
    policy_->noteRelease(waiter, now, hold);
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorRelease(waiter->mutatorIndex(), id_, now);
        });
    }
    if (policy_->empty())
        return;
    // Direct handoff to the policy's chosen waiter. Any passivation /
    // reactivation the policy performs fires through the Events
    // adapter (and the listener chain) before the grant itself.
    const AdmissionPolicy::Grant next = policy_->selectNext(now);
    stats_.total_block_time += now - next.since;
    stats_.block_hist.add(now - next.since);
    ++stats_.fat_acquisitions; // handoff happens on the inflated path
    ++stats_.handoffs;
    if (next.bypassed_head)
        ++stats_.barged_grants;
    const Ticks penalty = handoffPenalty(next.waiter);
    if (table_)
        table_->onGranted(next.waiter);
    grant(next.waiter, now, true);
    if (penalty > 0)
        next.waiter->chargeHandoffPenalty(penalty);
    next.waiter->monitorGranted(id_);
    sched_.wake(next.waiter->osThread());
}

void
Monitor::release(MonitorWaiter *waiter, Ticks now)
{
    jscale_assert(owner_ == waiter, "release of monitor '", name_,
                  "' by non-owner");
    releaseInternal(waiter, now);
}

void
Monitor::waitOn(MonitorWaiter *waiter, Ticks now)
{
    jscale_assert(owner_ == waiter, "wait() on monitor '", name_,
                  "' by non-owner (IllegalMonitorState)");
    ++stats_.waits;
    // Waiting on a monitor requires the inflated form, as in HotSpot.
    if (state_ != LockState::Fat) {
        state_ = LockState::Fat;
        bias_holder_ = nullptr;
        ++stats_.inflations;
    }
    waitset_.push_back(waiter);
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onMonitorWaitParked(waiter->mutatorIndex(), id_, now);
        });
    }
    releaseInternal(waiter, now);
}

void
Monitor::notify(MonitorWaiter *waiter, std::uint32_t count, Ticks now)
{
    jscale_assert(owner_ == waiter, "notify() on monitor '", name_,
                  "' by non-owner (IllegalMonitorState)");
    ++stats_.notifies;
    while (count > 0 && !waitset_.empty()) {
        MonitorWaiter *w = waitset_.front();
        waitset_.pop_front();
        --count;
        // The notified thread re-contends for the monitor: it joins the
        // acquire queue and is granted at a future release.
        enqueueContended(w, now);
    }
}

bool
Monitor::cancelWaiter(MonitorWaiter *waiter, Ticks now)
{
    bool removed = false;
    if (policy_->cancel(waiter)) {
        removed = true;
        if (listeners_) {
            listeners_->dispatch([&](RuntimeListener &l) {
                l.onMonitorWaiterCancelled(waiter->mutatorIndex(),
                                           id_, now);
            });
        }
    }
    for (auto it = waitset_.begin(); it != waitset_.end();) {
        if (*it == waiter) {
            it = waitset_.erase(it);
            removed = true;
        } else {
            ++it;
        }
    }
    return removed;
}

WaitChannel::WaitChannel(ChannelId id, std::string name,
                         std::uint64_t permits, os::Scheduler &sched,
                         const ListenerChain *listeners)
    : id_(id), name_(std::move(name)), sched_(sched),
      listeners_(listeners), permits_(permits)
{
}

bool
WaitChannel::acquire(MonitorWaiter *waiter, Ticks now)
{
    if (permits_ > 0) {
        --permits_;
        return true;
    }
    queue_.push_back(waiter);
    if (listeners_) {
        listeners_->dispatch([&](RuntimeListener &l) {
            l.onChannelBlocked(waiter->mutatorIndex(), id_, now);
        });
    }
    return false;
}

void
WaitChannel::post(std::uint64_t n, Ticks now)
{
    (void)now;
    while (n > 0 && !queue_.empty()) {
        MonitorWaiter *w = queue_.front();
        queue_.pop_front();
        --n;
        w->channelGranted(id_);
        sched_.wake(w->osThread());
    }
    permits_ += n;
}

bool
WaitChannel::cancelWaiter(MonitorWaiter *waiter)
{
    bool removed = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (*it == waiter) {
            it = queue_.erase(it);
            removed = true;
        } else {
            ++it;
        }
    }
    return removed;
}

bool
MonitorTable::cancelWaiter(MonitorWaiter *waiter, Ticks now)
{
    bool removed = false;
    for (const auto &m : monitors_)
        removed = m->cancelWaiter(waiter, now) || removed;
    for (const auto &ch : channels_)
        removed = ch->cancelWaiter(waiter) || removed;
    blocked_on_.erase(waiter);
    return removed;
}

MonitorId
MonitorTable::createMonitor(const std::string &name)
{
    const auto id = static_cast<MonitorId>(monitors_.size());
    monitors_.push_back(std::make_unique<Monitor>(
        id, name, sched_, listeners_, this, policy_cfg_));
    return id;
}

void
MonitorTable::onBlocked(MonitorWaiter *waiter, MonitorId monitor)
{
    blocked_on_[waiter] = monitor;
    // Walk the wait-for graph: waiter -> monitor -> owner -> (monitor
    // that owner blocks on) -> ... A return to the starting thread is a
    // deadlock; report the whole cycle.
    std::string chain = "thread " + std::to_string(waiter->mutatorIndex());
    const MonitorWaiter *cur = waiter;
    for (std::size_t depth = 0; depth <= monitors_.size(); ++depth) {
        const auto it = blocked_on_.find(cur);
        if (it == blocked_on_.end())
            return; // cur is runnable: no cycle through here
        const Monitor &m = *monitors_[it->second];
        const MonitorWaiter *owner = m.owner();
        if (owner == nullptr)
            return; // lock in handoff; will drain
        chain += " -> [" + m.name() + "] -> thread " +
                 std::to_string(owner->mutatorIndex());
        if (owner == waiter) {
            jscale_panic("monitor deadlock detected: ", chain);
        }
        cur = owner;
    }
}

void
MonitorTable::onGranted(MonitorWaiter *waiter)
{
    blocked_on_.erase(waiter);
}

const Monitor *
MonitorTable::blockedOn(const MonitorWaiter *waiter) const
{
    const auto it = blocked_on_.find(waiter);
    return it == blocked_on_.end() ? nullptr
                                   : monitors_[it->second].get();
}

ChannelId
MonitorTable::createChannel(const std::string &name, std::uint64_t permits)
{
    const auto id = static_cast<ChannelId>(channels_.size());
    channels_.push_back(std::make_unique<WaitChannel>(
        id, name, permits, sched_, listeners_));
    return id;
}

Monitor &
MonitorTable::monitor(MonitorId id)
{
    jscale_assert(id < monitors_.size(), "monitor id out of range");
    return *monitors_[id];
}

const Monitor &
MonitorTable::monitor(MonitorId id) const
{
    jscale_assert(id < monitors_.size(), "monitor id out of range");
    return *monitors_[id];
}

WaitChannel &
MonitorTable::channel(ChannelId id)
{
    jscale_assert(id < channels_.size(), "channel id out of range");
    return *channels_[id];
}

std::uint64_t
MonitorTable::totalAcquisitions() const
{
    std::uint64_t total = 0;
    for (const auto &m : monitors_)
        total += m->monStats().acquisitions;
    return total;
}

std::uint64_t
MonitorTable::totalContentions() const
{
    std::uint64_t total = 0;
    for (const auto &m : monitors_)
        total += m->monStats().contentions;
    return total;
}

Ticks
MonitorTable::totalBlockTime() const
{
    Ticks total = 0;
    for (const auto &m : monitors_)
        total += m->monStats().total_block_time;
    return total;
}

std::size_t
MonitorTable::totalQueuedWaiters() const
{
    std::size_t total = 0;
    for (const auto &m : monitors_)
        total += m->queueDepth();
    return total;
}

MonitorStats
MonitorTable::aggregateStats() const
{
    MonitorStats agg;
    for (const auto &m : monitors_) {
        const MonitorStats &s = m->monStats();
        agg.acquisitions += s.acquisitions;
        agg.contentions += s.contentions;
        agg.total_hold_time += s.total_hold_time;
        agg.total_block_time += s.total_block_time;
        agg.max_queue_depth =
            std::max(agg.max_queue_depth, s.max_queue_depth);
        agg.biased_acquisitions += s.biased_acquisitions;
        agg.thin_acquisitions += s.thin_acquisitions;
        agg.fat_acquisitions += s.fat_acquisitions;
        agg.bias_revocations += s.bias_revocations;
        agg.inflations += s.inflations;
        agg.waits += s.waits;
        agg.notifies += s.notifies;
        agg.handoffs += s.handoffs;
        agg.barged_grants += s.barged_grants;
        agg.waiters_passivated += s.waiters_passivated;
        agg.waiters_reactivated += s.waiters_reactivated;
        agg.coherence_penalty += s.coherence_penalty;
        agg.circulation_sum += s.circulation_sum;
        agg.block_hist.merge(s.block_hist);
    }
    return agg;
}

} // namespace jscale::jvm
