#include "jvm/locks/policy.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "base/logging.hh"

namespace jscale::jvm {

const char *
lockPolicyName(LockPolicy p)
{
    switch (p) {
      case LockPolicy::Fifo: return "fifo";
      case LockPolicy::Barging: return "barging";
      case LockPolicy::Malthusian: return "malthusian";
      case LockPolicy::Lcr: return "lcr";
    }
    return "?";
}

bool
parseLockPolicy(const std::string &name, LockPolicy &out)
{
    for (const LockPolicy p : kAllLockPolicies) {
        if (name == lockPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

std::string
describeLockPolicyConfig(const LockPolicyConfig &cfg)
{
    std::ostringstream os;
    os << "policy=" << lockPolicyName(cfg.policy);
    switch (cfg.policy) {
      case LockPolicy::Fifo:
        break;
      case LockPolicy::Barging:
        os << " window=" << cfg.barge_window;
        break;
      case LockPolicy::Malthusian:
        os << " target=" << cfg.active_target
           << " rotation=" << cfg.rotation_period;
        break;
      case LockPolicy::Lcr:
        os << " min=" << cfg.lcr_min_active
           << " max=" << cfg.lcr_max_active
           << " rotation=" << cfg.rotation_period;
        break;
    }
    os << " base=" << cfg.handoff_base
       << " coherence=" << cfg.coherence_cost
       << " circulation=" << cfg.circulation_window;
    return os.str();
}

namespace {

/** One queued waiter. @p seq orders arrivals across the whole policy
 *  (active + passive) so bypassed_head is exact under culling. */
struct Entry
{
    MonitorWaiter *waiter;
    Ticks since;
    std::uint64_t seq;
};

bool
eraseEntry(std::deque<Entry> &q, const MonitorWaiter *w)
{
    for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->waiter == w) {
            q.erase(it);
            return true;
        }
    }
    return false;
}

/** Strict FIFO: the queue head is always next. */
class FifoPolicy : public AdmissionPolicy
{
  public:
    LockPolicy kind() const override { return LockPolicy::Fifo; }

    void enqueue(MonitorWaiter *w, Ticks now) override
    {
        queue_.push_back(Entry{w, now, next_seq_++});
    }

    Grant selectNext(Ticks now) override
    {
        (void)now;
        jscale_assert(!queue_.empty(), "selectNext on empty queue");
        const Entry e = queue_.front();
        queue_.pop_front();
        return Grant{e.waiter, e.since, false};
    }

    bool cancel(MonitorWaiter *w) override
    {
        return eraseEntry(queue_, w);
    }

    bool empty() const override { return queue_.empty(); }
    std::size_t depth() const override { return queue_.size(); }

  private:
    std::deque<Entry> queue_;
    std::uint64_t next_seq_ = 0;
};

/**
 * Bounded barging: a cyclic cursor walks the first barge_window queue
 * positions, one step per handoff, clipped to the live depth. The
 * cursor passes position 0 every barge_window-th handoff, so the head
 * is bypassed at most barge_window-1 consecutive times (the bound the
 * handoff oracle enforces) — but the circulating set stays as wide as
 * FIFO's. This is the unfair lock that *still* collapses.
 */
class BargingPolicy : public AdmissionPolicy
{
  public:
    explicit BargingPolicy(std::uint32_t window)
        : window_(std::max<std::uint32_t>(window, 1))
    {}

    LockPolicy kind() const override { return LockPolicy::Barging; }

    void enqueue(MonitorWaiter *w, Ticks now) override
    {
        queue_.push_back(Entry{w, now, next_seq_++});
    }

    Grant selectNext(Ticks now) override
    {
        (void)now;
        jscale_assert(!queue_.empty(), "selectNext on empty queue");
        const std::size_t pos =
            std::min<std::size_t>(cursor_, queue_.size() - 1);
        cursor_ = (cursor_ + 1) % window_;
        const Entry e = queue_[pos];
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(pos));
        return Grant{e.waiter, e.since, pos != 0};
    }

    bool cancel(MonitorWaiter *w) override
    {
        return eraseEntry(queue_, w);
    }

    bool empty() const override { return queue_.empty(); }
    std::size_t depth() const override { return queue_.size(); }

  private:
    const std::uint32_t window_;
    std::deque<Entry> queue_;
    std::uint64_t next_seq_ = 0;
    std::uint32_t cursor_ = 0;
};

/**
 * Shared machinery of the culling policies (Malthusian, LCR): an
 * active circulation list bounded by cap() whose overflow is
 * passivated to a cold list, with periodic rotation for long-term
 * fairness. Grants always come from the active front; the cull never
 * removes the front, so a reactivated waiter is granted immediately.
 */
class CullingPolicy : public AdmissionPolicy
{
  public:
    CullingPolicy(std::uint32_t rotation_period, Events *events)
        : rotation_period_(rotation_period), events_(events)
    {}

    void enqueue(MonitorWaiter *w, Ticks now) override
    {
        active_.push_back(Entry{w, now, next_seq_++});
    }

    Grant selectNext(Ticks now) override
    {
        jscale_assert(!active_.empty() || !passive_.empty(),
                      "selectNext on empty queue");
        ++handoffs_;
        // Long-term fairness: periodically (and whenever the active
        // set drains) the oldest passive waiter rejoins at the active
        // *front*, so it is granted now instead of being re-culled.
        const bool rotate = rotation_period_ > 0 &&
                            handoffs_ % rotation_period_ == 0;
        if (!passive_.empty() && (rotate || active_.empty())) {
            Entry e = passive_.front();
            passive_.pop_front();
            active_.push_front(e);
            if (events_)
                events_->waiterReactivated(e.waiter, now);
        }
        // Cull the excess from the active tail onto the cold list.
        const std::size_t bound = std::max<std::size_t>(cap(), 1);
        while (active_.size() > bound) {
            Entry e = active_.back();
            active_.pop_back();
            passive_.push_back(e);
            if (events_)
                events_->waiterPassivated(e.waiter, now);
        }
        const Entry e = active_.front();
        active_.pop_front();
        return Grant{e.waiter, e.since, e.seq != oldestSeq(e.seq)};
    }

    bool cancel(MonitorWaiter *w) override
    {
        return eraseEntry(active_, w) || eraseEntry(passive_, w);
    }

    bool empty() const override
    {
        return active_.empty() && passive_.empty();
    }

    std::size_t depth() const override
    {
        return active_.size() + passive_.size();
    }

    std::size_t passiveDepth() const override { return passive_.size(); }

  protected:
    /** Active-set bound (>= 1) re-evaluated at every handoff. */
    virtual std::size_t cap() const = 0;

  private:
    /** Oldest arrival seq still waiting, seeded with the grantee's. */
    std::uint64_t oldestSeq(std::uint64_t granted) const
    {
        std::uint64_t oldest = granted;
        for (const Entry &e : active_)
            oldest = std::min(oldest, e.seq);
        for (const Entry &e : passive_)
            oldest = std::min(oldest, e.seq);
        return oldest;
    }

    const std::uint32_t rotation_period_;
    Events *events_;
    std::deque<Entry> active_;
    std::deque<Entry> passive_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t handoffs_ = 0;
};

/** Malthusian: fixed active-set target. */
class MalthusianPolicy : public CullingPolicy
{
  public:
    MalthusianPolicy(const LockPolicyConfig &cfg, Events *events)
        : CullingPolicy(cfg.rotation_period, events),
          target_(std::max<std::uint32_t>(cfg.active_target, 1))
    {}

    LockPolicy kind() const override { return LockPolicy::Malthusian; }

  protected:
    std::size_t cap() const override { return target_; }

  private:
    const std::uint32_t target_;
};

/**
 * LCR: the active-set bound tracks the measured service capacity
 * 1 + think/hold (how many threads the critical section can keep
 * busy), clamped to [min, max]. All integer arithmetic — the cap is a
 * deterministic function of the observed tick sums.
 */
class LcrPolicy : public CullingPolicy
{
  public:
    LcrPolicy(const LockPolicyConfig &cfg, Events *events)
        : CullingPolicy(cfg.rotation_period, events),
          min_(std::max<std::uint32_t>(cfg.lcr_min_active, 1)),
          max_(std::max(cfg.lcr_max_active, min_))
    {}

    LockPolicy kind() const override { return LockPolicy::Lcr; }

    void enqueue(MonitorWaiter *w, Ticks now) override
    {
        // Think time: how long the thread ran outside the lock since
        // its last release of this monitor.
        const auto it = last_release_.find(w);
        if (it != last_release_.end()) {
            think_sum_ += now - it->second;
            ++think_n_;
        }
        CullingPolicy::enqueue(w, now);
    }

    void noteRelease(MonitorWaiter *w, Ticks now, Ticks hold) override
    {
        hold_sum_ += hold;
        ++hold_n_;
        last_release_[w] = now;
    }

  protected:
    std::size_t cap() const override
    {
        if (hold_n_ == 0 || think_n_ == 0)
            return max_; // no measurement yet: admit freely
        const Ticks avg_hold = std::max<Ticks>(hold_sum_ / hold_n_, 1);
        const Ticks avg_think = think_sum_ / think_n_;
        const std::uint64_t capacity = 1 + avg_think / avg_hold;
        return static_cast<std::size_t>(
            std::clamp<std::uint64_t>(capacity, min_, max_));
    }

  private:
    const std::uint32_t min_;
    const std::uint32_t max_;
    /** Keyed by waiter identity; lookups only, never iterated, so the
     *  pointer key cannot leak host-address order into results. */
    std::map<const MonitorWaiter *, Ticks> last_release_;
    Ticks think_sum_ = 0;
    std::uint64_t think_n_ = 0;
    Ticks hold_sum_ = 0;
    std::uint64_t hold_n_ = 0;
};

} // namespace

std::unique_ptr<AdmissionPolicy>
makeAdmissionPolicy(const LockPolicyConfig &cfg,
                    AdmissionPolicy::Events *events)
{
    switch (cfg.policy) {
      case LockPolicy::Fifo:
        return std::make_unique<FifoPolicy>();
      case LockPolicy::Barging:
        return std::make_unique<BargingPolicy>(cfg.barge_window);
      case LockPolicy::Malthusian:
        return std::make_unique<MalthusianPolicy>(cfg, events);
      case LockPolicy::Lcr:
        return std::make_unique<LcrPolicy>(cfg, events);
    }
    jscale_panic("unknown lock policy");
}

} // namespace jscale::jvm
