/**
 * @file
 * The mutator action vocabulary.
 *
 * A mutator thread's behaviour is a stream of actions produced on demand
 * by an ActionSource (implemented by workload models). Each action
 * carries a CPU cost; its *effect* (allocation, lock transition, channel
 * operation) executes when the cost has been fully paid, which is what
 * lets the scheduler preempt threads mid-action without corrupting
 * runtime state.
 */

#ifndef JSCALE_JVM_THREADS_ACTION_HH
#define JSCALE_JVM_THREADS_ACTION_HH

#include <cstdint>

#include "base/units.hh"
#include "jvm/object/object.hh"
#include "jvm/runtime/listener.hh"

namespace jscale::jvm {

/** One step of mutator behaviour. Build via the factory functions. */
struct Action
{
    enum class Kind : std::uint8_t
    {
        /** Pure computation for `ticks` of CPU time. */
        Compute,
        /** Allocate `bytes` with owner-local TTL `ttl` at site `site`. */
        Allocate,
        /** Acquire monitor `id` (may block). */
        MonitorEnter,
        /** Release monitor `id`. */
        MonitorExit,
        /** Object.wait() on held monitor `id` (releases + blocks). */
        MonitorWait,
        /** Object.notify() (`count`=1) / notifyAll() (`count`=0) on
         *  held monitor `id`. */
        MonitorNotify,
        /** Consume one permit of channel `id` (may block). */
        ChannelAcquire,
        /** Add `count` permits to channel `id`. */
        ChannelPost,
        /**
         * About to fetch work from a shared pool. The VM's admission
         * controller (concurrency governor) may park the thread here;
         * without one this is a one-tick no-op.
         */
        TaskFetch,
        /** Mark one application task as completed (bookkeeping). */
        TaskDone,
        /** Thread is finished; no further actions will be requested. */
        End,
    };

    Kind kind = Kind::End;
    /** Compute duration. */
    Ticks ticks = 0;
    /** Allocation size. */
    Bytes bytes = 0;
    /** Owner-local TTL in bytes (kImmortalTtl = pinned). */
    Bytes ttl = 0;
    /** Monitor/channel id. */
    std::uint32_t id = 0;
    /** Allocation site. */
    AllocSiteId site = 0;
    /** Channel post count. */
    std::uint32_t count = 0;

    static Action
    compute(Ticks ticks)
    {
        Action a;
        a.kind = Kind::Compute;
        a.ticks = ticks;
        return a;
    }

    static Action
    allocate(Bytes bytes, Bytes ttl, AllocSiteId site = 0)
    {
        Action a;
        a.kind = Kind::Allocate;
        a.bytes = bytes;
        a.ttl = ttl;
        a.site = site;
        return a;
    }

    /** Allocate an object that stays live for the whole run. */
    static Action
    allocatePinned(Bytes bytes, AllocSiteId site = 0)
    {
        return allocate(bytes, kImmortalTtl, site);
    }

    static Action
    monitorEnter(MonitorId id)
    {
        Action a;
        a.kind = Kind::MonitorEnter;
        a.id = id;
        return a;
    }

    static Action
    monitorExit(MonitorId id)
    {
        Action a;
        a.kind = Kind::MonitorExit;
        a.id = id;
        return a;
    }

    static Action
    monitorWait(MonitorId id)
    {
        Action a;
        a.kind = Kind::MonitorWait;
        a.id = id;
        return a;
    }

    /** @p count 0 notifies all waiters. */
    static Action
    monitorNotify(MonitorId id, std::uint32_t count = 1)
    {
        Action a;
        a.kind = Kind::MonitorNotify;
        a.id = id;
        a.count = count;
        return a;
    }

    static Action
    channelAcquire(ChannelId id)
    {
        Action a;
        a.kind = Kind::ChannelAcquire;
        a.id = id;
        return a;
    }

    static Action
    channelPost(ChannelId id, std::uint32_t count = 1)
    {
        Action a;
        a.kind = Kind::ChannelPost;
        a.id = id;
        a.count = count;
        return a;
    }

    static Action
    taskFetch()
    {
        Action a;
        a.kind = Kind::TaskFetch;
        return a;
    }

    static Action
    taskDone()
    {
        Action a;
        a.kind = Kind::TaskDone;
        return a;
    }

    static Action
    end()
    {
        Action a;
        a.kind = Kind::End;
        return a;
    }
};

/**
 * Per-thread behaviour generator, implemented by workload models.
 * next() is called exactly once per consumed action and must eventually
 * return Action::end().
 */
class ActionSource
{
  public:
    virtual ~ActionSource() = default;

    /** Produce the thread's next action. */
    virtual Action next() = 0;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_THREADS_ACTION_HH
