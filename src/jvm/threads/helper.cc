#include "jvm/threads/helper.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jscale::jvm {

HelperThread::HelperThread(os::Scheduler &sched, HelperKind kind,
                           Ticks burst_mean, Ticks sleep_mean,
                           double backoff, Rng rng, std::string name)
    : sched_(sched), kind_(kind), burst_mean_(burst_mean),
      sleep_mean_(static_cast<double>(sleep_mean)), backoff_(backoff),
      rng_(rng), name_(std::move(name))
{
    jscale_assert(burst_mean_ > 0 && sleep_mean_ > 0.0,
                  "helper thread timing must be positive");
    jscale_assert(backoff_ >= 1.0, "helper back-off must be >= 1");
}

Ticks
HelperThread::planBurst(Ticks now, Ticks limit)
{
    (void)now;
    if (remaining_ == 0) {
        const double drawn =
            rng_.exponential(static_cast<double>(burst_mean_));
        remaining_ = std::max<Ticks>(
            1 * units::US, static_cast<Ticks>(drawn));
    }
    return std::min(remaining_, limit);
}

os::BurstOutcome
HelperThread::finishBurst(Ticks now, Ticks elapsed)
{
    jscale_assert(elapsed <= remaining_, "helper burst over-ran");
    remaining_ -= elapsed;
    if (remaining_ > 0)
        return os::BurstOutcome::Ready;

    // Burst complete; sleep until the next one.
    Ticks sleep;
    if (kind_ == HelperKind::PeriodicDaemon) {
        sleep = static_cast<Ticks>(sleep_mean_);
    } else {
        sleep = std::max<Ticks>(
            100 * units::US,
            static_cast<Ticks>(rng_.exponential(sleep_mean_)));
        sleep_mean_ *= backoff_;
    }
    sched_.wakeAt(os_thread_, now + sleep);
    return os::BurstOutcome::Blocked;
}

} // namespace jscale::jvm
