/**
 * @file
 * HelperThread: VM service threads that compete with mutators for cores.
 *
 * The paper notes that "many helper threads also run concurrently with
 * the application threads ... most helper threads are short lived". Two
 * flavours are modeled: JIT-compiler-like threads that burn bursty CPU
 * early in the run and back off as compilation work dries up, and a
 * periodic maintenance daemon. Their preemption of mutators contributes
 * to the suspend-wait that inflates object lifespans.
 */

#ifndef JSCALE_JVM_THREADS_HELPER_HH
#define JSCALE_JVM_THREADS_HELPER_HH

#include <cstdint>
#include <string>

#include "base/random.hh"
#include "base/units.hh"
#include "os/scheduler.hh"
#include "os/thread.hh"

namespace jscale::jvm {

/** Behaviour flavours for helper threads. */
enum class HelperKind
{
    /** Bursty early activity with multiplicative back-off (JIT-like). */
    JitCompiler,
    /** Fixed-period small bursts (VM periodic task thread). */
    PeriodicDaemon,
};

/** A VM service thread; runs forever (the simulation stops around it). */
class HelperThread : public os::SchedClient
{
  public:
    /**
     * @param sched owning scheduler
     * @param kind behaviour flavour
     * @param burst_mean mean CPU burst length
     * @param sleep_mean initial mean sleep between bursts
     * @param backoff multiplicative sleep growth (JIT back-off; use 1.0
     *        for fixed-period daemons)
     * @param rng private random stream
     * @param name diagnostic name
     */
    HelperThread(os::Scheduler &sched, HelperKind kind, Ticks burst_mean,
                 Ticks sleep_mean, double backoff, Rng rng,
                 std::string name);

    Ticks planBurst(Ticks now, Ticks limit) override;
    os::BurstOutcome finishBurst(Ticks now, Ticks elapsed) override;
    std::string clientName() const override { return name_; }

    /** Bind the scheduler-side record (done once by the VM). */
    void bindOsThread(os::OsThread *t) { os_thread_ = t; }

    os::OsThread *osThread() const { return os_thread_; }

  private:
    os::Scheduler &sched_;
    HelperKind kind_;
    Ticks burst_mean_;
    double sleep_mean_;
    double backoff_;
    Rng rng_;
    std::string name_;
    os::OsThread *os_thread_ = nullptr;

    /** Unpaid remainder of the current burst. */
    Ticks remaining_ = 0;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_THREADS_HELPER_HH
