#include "jvm/threads/mutator.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"
#include "jvm/runtime/vm.hh"

namespace jscale::jvm {

MutatorThread::MutatorThread(JavaVm &vm, MutatorIndex index,
                             std::unique_ptr<ActionSource> source,
                             std::string name)
    : vm_(vm), index_(index), source_(std::move(source)),
      name_(std::move(name))
{
    jscale_assert(source_ != nullptr, "mutator requires an action source");
}

MutatorThread::~MutatorThread() = default;

void
MutatorThread::bindOsThread(os::OsThread *t)
{
    jscale_assert(os_thread_ == nullptr, "OS thread already bound");
    os_thread_ = t;
}

Ticks
MutatorThread::actionCost(const Action &a) const
{
    const VmCosts &c = vm_.costs();
    Ticks cost = 1;
    switch (a.kind) {
      case Action::Kind::Compute:
        cost = a.ticks;
        break;
      case Action::Kind::Allocate:
        cost = c.alloc_base +
               static_cast<Ticks>(c.alloc_per_byte *
                                  static_cast<double>(a.bytes));
        break;
      case Action::Kind::MonitorEnter:
        cost = c.monitor_enter;
        break;
      case Action::Kind::MonitorExit:
        cost = c.monitor_exit;
        break;
      case Action::Kind::MonitorWait:
      case Action::Kind::MonitorNotify:
        cost = c.channel_op;
        break;
      case Action::Kind::ChannelAcquire:
      case Action::Kind::ChannelPost:
        cost = c.channel_op;
        break;
      case Action::Kind::TaskFetch:
        cost = 1;
        break;
      case Action::Kind::TaskDone:
        cost = c.task_done;
        break;
      case Action::Kind::End:
        cost = c.thread_end;
        break;
    }
    return std::max<Ticks>(cost, 1);
}

void
MutatorThread::fetchAction()
{
    jscale_assert(!have_action_, "fetch over unconsumed action");
    jscale_assert(!finished_, "fetch after End");
    current_ = source_->next();
    have_action_ = true;
    remaining_cost_ = actionCost(current_);
    // A contended handoff's coherence penalty lands on the first
    // action executed as the new owner — inside the hold window, where
    // the cache-miss cost belongs.
    remaining_cost_ += pending_penalty_;
    pending_penalty_ = 0;
}

void
MutatorThread::consumeAction()
{
    jscale_assert(have_action_, "consume without action");
    have_action_ = false;
    remaining_cost_ = 0;
    ++stats_.actions_executed;
}

Ticks
MutatorThread::planBurst(Ticks now, Ticks limit)
{
    (void)now;
    (void)limit;
    if (kill_pending_)
        return 1; // minimal burst; finishBurst performs the kill
    if (!have_action_)
        fetchAction();
    if (remaining_cost_ == 0) {
        // Resuming a paid-for action whose effect is pending retry
        // (allocation after GC): charge the slow-path re-entry.
        remaining_cost_ = std::max<Ticks>(vm_.costs().gc_retry, 1);
    }
    return std::min(remaining_cost_, limit);
}

os::BurstOutcome
MutatorThread::executeKill(Ticks now)
{
    jscale_assert(kill_pending_ && !finished_, "stray kill");
    // Release held monitors in reverse acquisition order so queued
    // waiters are handed off instead of wedging behind a dead owner.
    for (auto it = held_ids_.rbegin(); it != held_ids_.rend(); ++it)
        vm_.monitors().monitor(*it).release(this, now);
    held_ids_.clear();
    held_monitors_ = 0;
    // An in-flight (non-End) action is an abandoned task: report it so
    // the run accounts for the re-enqueue.
    if (have_action_ && current_.kind != Action::Kind::End)
        vm_.onTaskAbandoned(index_);
    have_action_ = false;
    remaining_cost_ = 0;
    kill_pending_ = false;
    killed_ = true;
    finished_ = true;
    vm_.onMutatorFinished(this, now);
    return os::BurstOutcome::Finished;
}

os::BurstOutcome
MutatorThread::finishBurst(Ticks now, Ticks elapsed)
{
    if (kill_pending_)
        return executeKill(now);
    jscale_assert(have_action_, "burst finished without an action");
    jscale_assert(elapsed <= remaining_cost_, "burst over-ran action cost");
    remaining_cost_ -= elapsed;
    if (remaining_cost_ > 0)
        return os::BurstOutcome::Ready; // preempted mid-action

    // Cost fully paid: apply the action's effect.
    switch (current_.kind) {
      case Action::Kind::Compute:
        consumeAction();
        return os::BurstOutcome::Ready;

      case Action::Kind::Allocate: {
        const AllocStatus status = vm_.heap().allocate(
            index_, current_.bytes, current_.ttl, current_.site, now);
        if (status == AllocStatus::NeedsGc) {
            awaiting_gc_ = true;
            ++stats_.gc_waits;
            vm_.requestGc(this, now);
            return os::BurstOutcome::Blocked; // action retried after GC
        }
        ++stats_.allocations;
        stats_.bytes_allocated += current_.bytes;
        consumeAction();
        return os::BurstOutcome::Ready;
      }

      case Action::Kind::MonitorEnter: {
        Monitor &m = vm_.monitors().monitor(current_.id);
        if (m.acquire(this, now)) {
            ++held_monitors_;
            held_ids_.push_back(current_.id);
            consumeAction();
            return os::BurstOutcome::Ready;
        }
        awaiting_grant_ = true;
        return os::BurstOutcome::Blocked; // consumed at handoff
      }

      case Action::Kind::MonitorExit:
        jscale_assert(held_monitors_ > 0, "exit without held monitor");
        vm_.monitors().monitor(current_.id).release(this, now);
        --held_monitors_;
        std::erase(held_ids_, current_.id);
        consumeAction();
        return os::BurstOutcome::Ready;

      case Action::Kind::MonitorWait: {
        Monitor &m = vm_.monitors().monitor(current_.id);
        jscale_assert(held_monitors_ > 0, "wait without held monitor");
        --held_monitors_;
        std::erase(held_ids_, current_.id);
        awaiting_grant_ = true;
        m.waitOn(this, now); // releases; re-grant consumes the action
        return os::BurstOutcome::Blocked;
      }

      case Action::Kind::MonitorNotify: {
        Monitor &m = vm_.monitors().monitor(current_.id);
        m.notify(this, current_.count == 0
                           ? std::numeric_limits<std::uint32_t>::max()
                           : current_.count,
                 now);
        consumeAction();
        return os::BurstOutcome::Ready;
      }

      case Action::Kind::ChannelAcquire: {
        WaitChannel &ch = vm_.monitors().channel(current_.id);
        if (ch.acquire(this, now)) {
            consumeAction();
            return os::BurstOutcome::Ready;
        }
        awaiting_grant_ = true;
        return os::BurstOutcome::Blocked; // consumed at grant
      }

      case Action::Kind::ChannelPost:
        vm_.monitors().channel(current_.id).post(current_.count, now);
        consumeAction();
        return os::BurstOutcome::Ready;

      case Action::Kind::TaskFetch:
        consumeAction();
        if (held_monitors_ == 0 && !vm_.admitTask(this, now))
            return os::BurstOutcome::Blocked; // admission-parked
        return os::BurstOutcome::Ready;

      case Action::Kind::TaskDone:
        ++stats_.tasks_completed;
        vm_.onTaskCompleted(index_, now);
        consumeAction();
        if (held_monitors_ == 0 && !vm_.admitTask(this, now))
            return os::BurstOutcome::Blocked; // admission-parked
        return os::BurstOutcome::Ready;

      case Action::Kind::End:
        consumeAction();
        finished_ = true;
        vm_.onMutatorFinished(this, now);
        return os::BurstOutcome::Finished;
    }
    jscale_panic("unreachable action kind");
}

void
MutatorThread::monitorGranted(MonitorId monitor)
{
    jscale_assert(awaiting_grant_ &&
                      (current_.kind == Action::Kind::MonitorEnter ||
                       current_.kind == Action::Kind::MonitorWait) &&
                      current_.id == monitor,
                  "unexpected monitor grant");
    awaiting_grant_ = false;
    ++held_monitors_;
    held_ids_.push_back(monitor);
    consumeAction();
}

void
MutatorThread::channelGranted(ChannelId channel)
{
    jscale_assert(awaiting_grant_ &&
                      current_.kind == Action::Kind::ChannelAcquire &&
                      current_.id == channel,
                  "unexpected channel grant");
    awaiting_grant_ = false;
    consumeAction();
}

void
MutatorThread::gcWaitOver()
{
    jscale_assert(awaiting_gc_, "gcWaitOver without a pending GC wait");
    awaiting_gc_ = false;
    // The pending Allocate action is retried on the next burst;
    // planBurst re-arms the slow-path cost because remaining_cost_ == 0.
}

void
MutatorThread::cancelGcWait()
{
    jscale_assert(awaiting_gc_, "cancelGcWait without a pending GC wait");
    awaiting_gc_ = false;
}

void
MutatorThread::cancelGrantWait()
{
    jscale_assert(awaiting_grant_, "cancelGrantWait without a grant wait");
    awaiting_grant_ = false;
}

} // namespace jscale::jvm
