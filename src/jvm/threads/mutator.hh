/**
 * @file
 * MutatorThread: an application thread executing an action stream.
 *
 * Implements the scheduler's burst protocol (plan CPU time, then commit
 * effects when the time has been paid) and the blocking protocols of
 * monitors, channels and GC waits. The thread itself is a pure
 * interpreter; all application behaviour lives in its ActionSource.
 */

#ifndef JSCALE_JVM_THREADS_MUTATOR_HH
#define JSCALE_JVM_THREADS_MUTATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "jvm/locks/monitor.hh"
#include "jvm/threads/action.hh"
#include "os/thread.hh"

namespace jscale::jvm {

class JavaVm;

/** Per-thread execution statistics. */
struct MutatorStats
{
    std::uint64_t actions_executed = 0;
    std::uint64_t tasks_completed = 0;
    std::uint64_t allocations = 0;
    Bytes bytes_allocated = 0;
    std::uint64_t gc_waits = 0;
};

/**
 * One application thread. Owned by the JavaVm; scheduled by the OS
 * scheduler through the SchedClient interface.
 */
class MutatorThread : public os::SchedClient, public MonitorWaiter
{
  public:
    MutatorThread(JavaVm &vm, MutatorIndex index,
                  std::unique_ptr<ActionSource> source, std::string name);
    ~MutatorThread() override;

    /** @name SchedClient */
    /** @{ */
    Ticks planBurst(Ticks now, Ticks limit) override;
    os::BurstOutcome finishBurst(Ticks now, Ticks elapsed) override;
    std::string clientName() const override { return name_; }

    /** A mutator holding monitors must stay schedulable under gating
     *  policies, or lock handoff chains would convoy across phases. */
    bool urgent() const override { return held_monitors_ > 0; }
    /** @} */

    /** @name MonitorWaiter */
    /** @{ */
    void monitorGranted(MonitorId monitor) override;
    void channelGranted(ChannelId channel) override;
    os::OsThread *osThread() const override { return os_thread_; }
    MutatorIndex mutatorIndex() const override { return index_; }
    void chargeHandoffPenalty(Ticks penalty) override
    {
        pending_penalty_ += penalty;
    }
    /** @} */

    /** Bind the scheduler-side thread record (done once by the VM). */
    void bindOsThread(os::OsThread *t);

    /** Called by the VM when the GC this thread waited for completed. */
    void gcWaitOver();

    MutatorIndex index() const { return index_; }

    /** Size of the allocation this thread is blocked on (GC wait). */
    Bytes pendingAllocBytes() const { return current_.bytes; }

    bool finished() const { return finished_; }
    const MutatorStats &mutStats() const { return stats_; }

    /** @name Fault injection (mutator kill) */
    /** @{ */
    /**
     * Mark the thread for termination at its next burst: held monitors
     * are released in reverse acquisition order, the in-flight action is
     * abandoned (counted as a reassigned task when one was live), and
     * the thread finishes — its heap objects die through the normal
     * thread-exit lifespan machinery. The VM is responsible for waking a
     * blocked thread so the kill executes.
     */
    void requestKill() { kill_pending_ = true; }

    bool killPending() const { return kill_pending_; }
    bool killed() const { return killed_; }

    /** Blocked waiting for a GC (used by the VM's kill path). */
    bool awaitingGc() const { return awaiting_gc_; }

    /** Blocked in a monitor/channel queue (kill path). */
    bool awaitingGrant() const { return awaiting_grant_; }

    /** Clear a cancelled GC wait (the VM removed us from the waiters). */
    void cancelGcWait();

    /** Clear a cancelled monitor/channel wait (queue entry removed). */
    void cancelGrantWait();
    /** @} */

  private:
    /** Fetch the next action and price it. */
    void fetchAction();

    /** Consume the current action after its effect was applied. */
    void consumeAction();

    /** Price an action's CPU cost (always >= 1 tick). */
    Ticks actionCost(const Action &a) const;

    /** Perform a pending kill at a burst boundary. */
    os::BurstOutcome executeKill(Ticks now);

    JavaVm &vm_;
    MutatorIndex index_;
    std::unique_ptr<ActionSource> source_;
    std::string name_;
    os::OsThread *os_thread_ = nullptr;

    Action current_{};
    bool have_action_ = false;
    /** Unpaid CPU cost of the current action. */
    Ticks remaining_cost_ = 0;
    /** Coherence penalty from a contended handoff, paid as extra CPU
     *  time on the next fetched action (inside the hold window). */
    Ticks pending_penalty_ = 0;
    /** Blocked waiting for a monitor/channel grant. */
    bool awaiting_grant_ = false;
    /** Blocked waiting for a GC to complete (allocation retry). */
    bool awaiting_gc_ = false;
    bool finished_ = false;
    /** Monitors currently owned by this thread. */
    std::uint32_t held_monitors_ = 0;
    /** Ids of held monitors in acquisition order (kill release path). */
    std::vector<MonitorId> held_ids_;
    /** Fault injection: terminate at the next burst boundary. */
    bool kill_pending_ = false;
    bool killed_ = false;

    MutatorStats stats_;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_THREADS_MUTATOR_HH
