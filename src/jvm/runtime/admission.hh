/**
 * @file
 * TaskAdmission: the VM-side hook for concurrency restriction.
 *
 * A governor (control::ConcurrencyGovernor) implements this interface
 * and registers itself on the JavaVm before run(). Mutator threads
 * consult it at task-fetch boundaries — the only points where a thread
 * holds no monitors and owns no half-executed task — and a refusal
 * parks the thread (BurstOutcome::Blocked) until the governor wakes it
 * through the scheduler's admission API. The interface lives in jvm so
 * the runtime stays ignorant of any particular control policy.
 */

#ifndef JSCALE_JVM_RUNTIME_ADMISSION_HH
#define JSCALE_JVM_RUNTIME_ADMISSION_HH

#include <cstdint>
#include <string>

#include "base/units.hh"

namespace jscale::jvm {

class MutatorThread;

/** What the governor did during one run (part of RunResult). */
struct GovernorSummary
{
    bool enabled = false;
    /** Policy name ("off", "hill", "usl"). */
    std::string policy = "off";
    /** Admission target when the run ended. */
    std::uint32_t final_target = 0;
    /** Extremes the target reached across the run. */
    std::uint32_t min_target = 0;
    std::uint32_t max_target = 0;
    /** Periodic decision evaluations. */
    std::uint64_t decisions = 0;
    /** Threads parked at task-fetch boundaries / woken back up. */
    std::uint64_t parks = 0;
    std::uint64_t unparks = 0;
    /** USL coefficients from the calibration prefix (usl policy). */
    double usl_sigma = 0.0;
    double usl_kappa = 0.0;
    double usl_nstar = 0.0;
};

/**
 * Admission-control callbacks, invoked synchronously from the
 * simulation. Implementations must be deterministic functions of
 * simulation state and seeded streams.
 */
class TaskAdmission
{
  public:
    virtual ~TaskAdmission() = default;

    /** The run is about to start @p n_threads mutators. */
    virtual void onRunStart(std::uint32_t n_threads, Ticks now) = 0;

    /**
     * @p t is at a task-fetch boundary (holds no monitors). Return true
     * to admit; false parks the thread until the governor unparks it.
     */
    virtual bool admitTask(MutatorThread &t, Ticks now) = 0;

    /** @p t ran its End action and will never fetch again. */
    virtual void onMutatorFinished(MutatorThread &t, Ticks now) = 0;

    /**
     * @p t is being killed (fault injection) while possibly parked. An
     * implementation that holds @p t parked must remove it and wake it
     * (keeping its park/unpark books balanced) and return true; the
     * default reports "not parked here".
     */
    virtual bool
    cancelPark(MutatorThread &t, Ticks now)
    {
        (void)t;
        (void)now;
        return false;
    }

    /** The run is over; stop periodic activity. */
    virtual void onRunEnd(Ticks now) = 0;

    /** Fill the run's governor summary. */
    virtual void summarize(GovernorSummary &out) const = 0;

    /** @name Gauges (read-only; polled by telemetry samplers) */
    /** @{ */
    /** Current admission target. */
    virtual std::uint32_t admissionTarget() const = 0;
    /** Mutators currently parked at task-fetch boundaries. */
    virtual std::uint32_t parkedNow() const = 0;
    /** @} */
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_RUNTIME_ADMISSION_HH
