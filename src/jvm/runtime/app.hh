/**
 * @file
 * ApplicationModel: the contract between the runtime and workload models.
 *
 * A model describes one application (one of the six DaCapo-like apps, or
 * a user-defined workload): it sets up shared state (monitors, channels)
 * and supplies a per-thread ActionSource. The VM owns everything else.
 */

#ifndef JSCALE_JVM_RUNTIME_APP_HH
#define JSCALE_JVM_RUNTIME_APP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/random.hh"
#include "jvm/locks/monitor.hh"
#include "jvm/threads/action.hh"

namespace jscale::jvm {

class JavaVm;

/**
 * Setup and per-thread context handed to application models. Valid for
 * the duration of one JavaVm::run().
 */
class AppContext
{
  public:
    AppContext(JavaVm &vm, std::uint32_t n_threads, Rng rng)
        : vm_(vm), n_threads_(n_threads), rng_(rng)
    {}

    /** The owning VM (heap/monitor access for advanced models). */
    JavaVm &vm() { return vm_; }

    /** Number of application threads in this run. */
    std::uint32_t threadCount() const { return n_threads_; }

    /** Create a named monitor. */
    MonitorId createMonitor(const std::string &name);

    /** Create a named channel (counting semaphore). */
    ChannelId createChannel(const std::string &name, std::uint64_t permits);

    /** App-level random stream (setup decisions). */
    Rng &rng() { return rng_; }

    /** Deterministic per-thread random stream. */
    Rng forkThreadRng(std::uint32_t thread_idx) const
    {
        return rng_.fork(0x7468'0000ULL + thread_idx);
    }

  private:
    JavaVm &vm_;
    std::uint32_t n_threads_;
    Rng rng_;
};

/**
 * One application. Implementations must be reusable across runs: all
 * per-run state belongs in the ActionSources and the AppContext.
 */
class ApplicationModel
{
  public:
    virtual ~ApplicationModel() = default;

    /** Stable identifier, e.g. "xalan". */
    virtual std::string appName() const = 0;

    /** Create shared state (monitors/channels) for a run. */
    virtual void setup(AppContext &ctx) = 0;

    /** Produce the behaviour stream of thread @p thread_idx. */
    virtual std::unique_ptr<ActionSource>
    threadSource(std::uint32_t thread_idx, AppContext &ctx) = 0;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_RUNTIME_APP_HH
