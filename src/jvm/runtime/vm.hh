/**
 * @file
 * JavaVm: the managed-runtime facade.
 *
 * Wires the simulated machine, OS scheduler, generational heap, monitor
 * table and thread models into one runnable VM, mirroring the
 * OpenJDK 1.7 / HotSpot configuration of the paper (stop-the-world
 * throughput-oriented parallel collector, GC workers = enabled cores).
 * One JavaVm executes exactly one application run and reports a
 * RunResult splitting wall time into mutator and GC components — the
 * paper's two top-level performance factors.
 */

#ifndef JSCALE_JVM_RUNTIME_VM_HH
#define JSCALE_JVM_RUNTIME_VM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "jvm/gc/adaptive.hh"
#include "jvm/gc/concurrent.hh"
#include "jvm/gc/cost_model.hh"
#include "jvm/gc/gc_types.hh"
#include "jvm/heap/heap.hh"
#include "jvm/locks/monitor.hh"
#include "jvm/runtime/admission.hh"
#include "jvm/runtime/app.hh"
#include "jvm/runtime/listener.hh"
#include "jvm/runtime/vm_config.hh"
#include "jvm/threads/helper.hh"
#include "jvm/threads/mutator.hh"
#include "machine/machine.hh"
#include "os/scheduler.hh"
#include "sim/simulation.hh"
#include "stats/stats.hh"

namespace jscale::jvm {

/** Aggregate GC statistics for one run. */
struct GcRunStats
{
    std::uint64_t minor_count = 0;
    std::uint64_t full_count = 0;
    /** Thread-local compartment collections (compartmentalized mode). */
    std::uint64_t local_count = 0;
    /** Concurrent old-gen marking cycles started / failed / remarked. */
    std::uint64_t concurrent_cycles = 0;
    std::uint64_t concurrent_failures = 0;
    std::uint64_t remark_count = 0;
    /** Total single-thread pause of local collections (not STW). */
    Ticks local_pause = 0;
    /** Total stop-the-world time (the paper's "GC time"). */
    Ticks total_pause = 0;
    /** Total time-to-safepoint component. */
    Ticks total_ttsp = 0;
    Bytes copied_bytes = 0;
    Bytes promoted_bytes = 0;
    Bytes reclaimed_bytes = 0;
    /** Per-pause distributions. */
    stats::SampleStats minor_pauses;
    stats::SampleStats full_pauses;
    /** Log-bucket histogram of all STW pauses (for percentiles). */
    stats::LogHistogram pause_hist;
    /** Fraction of scanned nursery bytes that survived, per minor GC. */
    stats::SampleStats nursery_survival;
    /** Adaptive-sizing decisions (when enabled). */
    AdaptiveSizeStats adaptive;
    /** Successful young-generation resizes. */
    std::uint64_t young_resizes = 0;
    /** Every completed collection, in order. */
    std::vector<GcEvent> events;
};

/** Per-thread summary row for workload-distribution analyses. */
struct ThreadSummary
{
    std::string name;
    os::ThreadKind kind = os::ThreadKind::Mutator;
    Ticks cpu_time = 0;
    Ticks ready_time = 0;
    Ticks blocked_time = 0;
    Ticks sleep_time = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t migrations = 0;
    std::uint64_t tasks_completed = 0;
    std::uint64_t allocations = 0;
    Bytes bytes_allocated = 0;
};

/** Aggregate lock counters (Fig. 1a / 1b series). */
struct LockTotals
{
    std::uint64_t acquisitions = 0;
    std::uint64_t contentions = 0;
    Ticks block_time = 0;
    std::uint64_t monitors = 0;
    /** HotSpot lock-state breakdown (biased/thin/fat + transitions). */
    std::uint64_t biased_acquisitions = 0;
    std::uint64_t thin_acquisitions = 0;
    std::uint64_t fat_acquisitions = 0;
    std::uint64_t bias_revocations = 0;
    std::uint64_t inflations = 0;
    std::uint64_t waits = 0;
    std::uint64_t notifies = 0;
    /** @name Admission-policy behaviour (locks/policy.hh) */
    /** @{ */
    /** Contended handoffs (direct grants at release). */
    std::uint64_t handoffs = 0;
    /** Handoffs that bypassed an older queued waiter. */
    std::uint64_t barged_grants = 0;
    /** Waiters culled to the cold passive list (Malthusian/LCR). */
    std::uint64_t waiters_passivated = 0;
    /** Waiters rotated back from the passive list. */
    std::uint64_t waiters_reactivated = 0;
    /** Total coherence-footprint penalty charged at handoffs. */
    Ticks coherence_penalty = 0;
    /** Sum of distinct-recent-owner counts over handoffs (divide by
     *  handoffs for the average circulation width). */
    std::uint64_t circulation_sum = 0;
    /** @} */
    /** Per-grant contended block times (p99 handoff tails). */
    stats::LatencyHistogram block_hist;
};

/**
 * Counts of injected faults and their recoveries in one run (filled by
 * fault::FaultInjector; all zero when no FaultPlan was active).
 */
struct FaultSummary
{
    /** Total injection events fired. */
    std::uint64_t injections = 0;
    /** Total recovery events fired (online, speed restore, ...). */
    std::uint64_t recoveries = 0;
    std::uint64_t cores_offlined = 0;
    std::uint64_t cores_onlined = 0;
    /** Transient core-slowdown injections. */
    std::uint64_t slowdowns = 0;
    /** Lock-holder preemption bursts (and victims across them). */
    std::uint64_t preempt_bursts = 0;
    std::uint64_t lock_holders_preempted = 0;
    std::uint64_t mutators_killed = 0;
    std::uint64_t mutators_stalled = 0;
    std::uint64_t heap_spikes = 0;
    std::uint64_t gc_worker_losses = 0;
    /** In-flight tasks abandoned by killed mutators. */
    std::uint64_t tasks_reassigned = 0;

    bool
    any() const
    {
        return injections > 0;
    }
};

/**
 * Wait-state attribution buckets: every tick of a task's wall time is
 * assigned to exactly one bucket, so per-task bucket sums reconcile to
 * task wall time integer-exactly (the latency-conservation invariant).
 */
enum class WaitBucket : std::uint8_t
{
    /** On-CPU execution (includes dispatch/preemption overhead). */
    Cpu = 0,
    /** Runnable but waiting in a core's run queue. */
    RunQueue,
    /** Runnable while a safepoint is being brought to stop. */
    Ttsp,
    /** Parked across a stop-the-world GC pause. */
    GcStw,
    /** Blocked on a monitor's acquire queue (lock contention). */
    Lock,
    /** Parked in a monitor's wait set (Object.wait). */
    Waitset,
    /** Blocked on an empty channel (semaphore). */
    Channel,
    /** Parked waiting for a collection it requested (alloc stall). */
    AllocStall,
    /** Parked by the admission governor at a task-fetch boundary. */
    Governor,
    /** Slept or stalled for other reasons (fault stalls, timed waits). */
    Stall,
    /** Blocked for a cause no probe announced. */
    Other,
};

constexpr std::size_t kWaitBucketCount =
    static_cast<std::size_t>(WaitBucket::Other) + 1;

/** Short stable name of @p b ("cpu", "runq", "ttsp", ...). */
const char *waitBucketName(WaitBucket b);

/** Lock wait attributed to one monitor across all profiled tasks. */
struct MonitorWaitTotal
{
    MonitorId monitor = 0;
    /** Total acquire-queue block time charged to this monitor. */
    Ticks wait = 0;
    /** Closed blocking episodes behind the total. */
    std::uint64_t blocks = 0;
};

/** One of the top-K slowest tasks, with its full blame breakdown. */
struct SlowTaskRecord
{
    /** Global completion sequence number (1-based). */
    std::uint64_t task = 0;
    MutatorIndex thread = 0;
    Ticks start = 0;
    Ticks end = 0;
    Ticks buckets[kWaitBucketCount] = {};

    Ticks wall() const { return end - start; }
};

/**
 * Per-run latency attribution (filled by profile::TaskProfiler when
 * profiling is enabled; otherwise enabled == false and all zero).
 * Deliberately not part of the primary stat snapshot: profiled runs
 * stay byte-identical to unprofiled runs in primary stats.
 */
struct ProfileSummary
{
    bool enabled = false;
    /** Tasks attributed (completed inside a profiled window). */
    std::uint64_t tasks = 0;
    /** In-flight windows discarded (killed mutators, run epilogue). */
    std::uint64_t tasks_discarded = 0;
    /** Total ticks per bucket across all attributed tasks. */
    Ticks bucket_total[kWaitBucketCount] = {};
    /** End-to-end task latency distribution. */
    stats::LatencyHistogram latency;
    /** Per-bucket time distributions (one histogram per wait state). */
    stats::LatencyHistogram bucket_hist[kWaitBucketCount];
    /** The K slowest tasks, slowest first (K = profile_topk). */
    std::vector<SlowTaskRecord> slowest;
    /** Per-monitor lock wait, largest first. */
    std::vector<MonitorWaitTotal> lock_waits;

    /** Sum of all bucket totals == sum of attributed task wall time. */
    Ticks
    total() const
    {
        Ticks t = 0;
        for (std::size_t i = 0; i < kWaitBucketCount; ++i)
            t += bucket_total[i];
        return t;
    }

    /** The non-Cpu bucket with the largest total (blame verdict). */
    WaitBucket
    dominantWait() const
    {
        std::size_t best = static_cast<std::size_t>(WaitBucket::RunQueue);
        for (std::size_t i = 1; i < kWaitBucketCount; ++i) {
            if (bucket_total[i] > bucket_total[best])
                best = i;
        }
        return static_cast<WaitBucket>(best);
    }
};

/**
 * Per-request tail-latency summary of one open-loop (traffic) run,
 * filled by traffic::TrafficEngine; enabled == false for the ordinary
 * closed-loop workloads. All times are integer Ticks and conservation
 * holds exactly: sojourn == queueing + service per request, and the
 * service buckets sum to total service time.
 */
struct TrafficSummary
{
    bool enabled = false;
    /** Scheduling group this stream belongs to. */
    std::uint32_t tenant = 0;
    /** The arrival spec that generated the stream (report context). */
    std::string arrival_spec;

    /** Requests offered by the arrival process. */
    std::uint64_t arrivals = 0;
    /** Requests admitted to the bounded queue. */
    std::uint64_t admitted = 0;
    /** Requests shed by the bounded-queue policy. */
    std::uint64_t shed = 0;
    /** Requests picked up by a serving mutator. */
    std::uint64_t dispatched = 0;
    /** Requests that finished service. */
    std::uint64_t completed = 0;
    /** High-water mark of the admission queue. */
    std::uint64_t max_queue_depth = 0;

    /** End-to-end sojourn time (arrival -> completion). */
    stats::LatencyHistogram sojourn;
    /** Queueing delay (arrival -> dispatch). */
    stats::LatencyHistogram queueing;
    /** Service time (dispatch -> completion). */
    stats::LatencyHistogram service;
    /**
     * Service time decomposed into the profiler's wait-state buckets
     * (cpu, runq, ttsp, gc-stw, lock, ...); sums to service exactly.
     */
    Ticks service_bucket_total[kWaitBucketCount] = {};

    /** Total attributed service ticks across the buckets. */
    Ticks
    serviceBucketTotal() const
    {
        Ticks t = 0;
        for (std::size_t i = 0; i < kWaitBucketCount; ++i)
            t += service_bucket_total[i];
        return t;
    }
};

/** Everything measured in one application run. */
struct RunResult
{
    std::string app_name;
    std::uint32_t threads = 0;
    std::uint32_t cores = 0;
    Bytes heap_capacity = 0;

    /** End-to-end execution time (start to last mutator exit). */
    Ticks wall_time = 0;
    /** Total stop-the-world GC time within the run. */
    Ticks gc_time = 0;

    /** Application (non-GC) time, the paper's "mutator time". */
    Ticks
    mutatorTime() const
    {
        return wall_time > gc_time ? wall_time - gc_time : 0;
    }

    GcRunStats gc;
    HeapStats heap;
    LockTotals locks;
    std::vector<ThreadSummary> thread_summaries;
    os::SchedulerStats sched;
    GovernorSummary governor;
    FaultSummary faults;
    ProfileSummary profile;
    TrafficSummary traffic;
    std::uint64_t total_tasks = 0;
    std::uint64_t sim_events = 0;

    /** @name Telemetry artifacts (filled by the experiment runner) */
    /** @{ */
    /** Chrome-trace timeline written for this run (empty = disabled). */
    std::string timeline_file;
    /** Metric-sampler CSV written for this run (empty = disabled). */
    std::string metrics_file;
    std::uint64_t timeline_events = 0;
    std::uint64_t metric_rows = 0;
    /**
     * Artifacts that failed to write (one message per failure). The run
     * itself is still valid; the report surfaces these per-artifact.
     */
    std::vector<std::string> artifact_errors;
    /** @} */

    /** @name Run-isolation status (filled by the experiment harness) */
    /** @{ */
    /**
     * Non-empty = the run aborted (watchdog, sim-time guard); only
     * app_name/threads are meaningful then.
     */
    std::string run_error;
    /** The run was skipped because a checkpoint marked it complete. */
    bool skipped = false;

    bool failed() const { return !run_error.empty(); }
    /** @} */
};

/**
 * The managed runtime. Construct, optionally subscribe listeners, then
 * call run() exactly once.
 */
class JavaVm
{
  public:
    JavaVm(sim::Simulation &sim, machine::Machine &mach,
           os::Scheduler &sched, const VmConfig &config);
    ~JavaVm();

    JavaVm(const JavaVm &) = delete;
    JavaVm &operator=(const JavaVm &) = delete;

    /** Probe chain; subscribe tools before run(). */
    ListenerChain &listeners() { return listeners_; }

    /** Install an admission controller (not owned); before run(). */
    void setTaskAdmission(TaskAdmission *a) { admission_ = a; }

    /** The installed admission controller, or nullptr. */
    TaskAdmission *taskAdmission() const { return admission_; }

    /**
     * Execute @p app with @p n_threads application threads on the
     * machine's enabled cores. Runs the simulation to completion.
     */
    RunResult run(ApplicationModel &app, std::uint32_t n_threads);

    /** @name Hosted (multi-tenant) execution
     * A host running several VMs on one simulation prepares each VM
     * (threads registered and started, nothing simulated yet), drives
     * one shared sim.run(), then collects each VM's RunResult. A
     * prepared VM does not stop the simulation when its mutators
     * finish; it reports through the completion callback instead. */
    /** @{ */
    /** Called (with the finish time) when the last mutator finishes. */
    void setRunCompletedCallback(std::function<void(Ticks)> cb)
    {
        run_completed_cb_ = std::move(cb);
    }

    /** Build the runtime and start @p app's threads; no simulation. */
    void prepare(ApplicationModel &app, std::uint32_t n_threads);

    /** All mutators finished (valid once prepared). */
    bool runFinished() const { return mutators_finished_ == n_threads_; }

    /** Assemble the RunResult after the shared simulation completed. */
    RunResult collectResult();
    /** @} */

    /** @name Component access (valid during and after run) */
    /** @{ */
    Heap &heap();
    MonitorTable &monitors();
    const VmConfig &config() const { return config_; }
    const VmCosts &costs() const { return config_.costs; }
    sim::Simulation &sim() { return sim_; }
    os::Scheduler &scheduler() { return sched_; }
    /** @} */

    /** @name Runtime-internal callbacks (used by MutatorThread) */
    /** @{ */
    /** Allocation failed; park @p t until the next GC completes. */
    void requestGc(MutatorThread *t, Ticks now);

    /** A mutator ran its End action. */
    void onMutatorFinished(MutatorThread *t, Ticks now);

    /** A mutator completed one application task. */
    void onTaskCompleted(MutatorIndex idx, Ticks now);

    /**
     * Admission check at a task-fetch boundary. True admits; false
     * means the governor parked @p t (the caller returns Blocked).
     */
    bool
    admitTask(MutatorThread *t, Ticks now)
    {
        if (admission_ == nullptr) [[likely]]
            return true;
        if (admission_->admitTask(*t, now))
            return true;
        // Announce the cause before the caller's Blocked transition so
        // wait-state observers can attribute the park to the governor.
        listeners_.dispatch([&](RuntimeListener &l) {
            l.onAdmissionParked(t->index(), now);
        });
        return false;
    }
    /** @} */

    /** @name Live gauges the governor samples each interval */
    /** @{ */
    /** Tasks retired so far across all mutators. */
    std::uint64_t tasksCompleted() const { return total_tasks_; }

    /** Total stop-the-world pause accumulated so far. */
    Ticks gcPauseSoFar() const { return gc_stats_.total_pause; }
    /** @} */

    /** Number of GC worker threads used by the cost model. */
    std::uint32_t gcThreads() const;

    /** @name Fault injection (driven by fault::FaultInjector) */
    /** @{ */
    /** Registered mutators (valid once run() started). */
    std::uint32_t
    mutatorCount() const
    {
        return static_cast<std::uint32_t>(mutators_.size());
    }

    /** Unfinished mutators. */
    std::uint32_t
    aliveMutators() const
    {
        return n_threads_ - mutators_finished_;
    }

    /** Mutator @p idx exists, has not finished and is not kill-pending. */
    bool mutatorAlive(std::uint32_t idx) const;

    /**
     * Kill mutator @p idx: it releases its monitors, abandons any
     * in-flight task (counted in tasksReassigned()), its heap objects
     * die through the normal thread-exit path, and it is removed from
     * whatever wait structure held it (GC waiters, monitor queues,
     * admission park list). Refuses — returning false — when the
     * thread is already finished or kill-pending, or when it is the
     * last alive mutator (the run must still be able to complete).
     */
    bool killMutator(std::uint32_t idx, Ticks now);

    /**
     * Hold mutator @p idx off-CPU until @p until (kill/stall fault).
     * No-op (returning false) for finished mutators.
     */
    bool stallMutator(std::uint32_t idx, Ticks until);

    /**
     * Degrade (or restore) the GC worker count used to price future
     * collections — GC-worker loss: the collector gets slower instead
     * of wedging. Clamped to at least one worker.
     */
    void setGcWorkers(std::uint32_t n);

    /** Current GC worker count (reflects setGcWorkers). */
    std::uint32_t activeGcWorkers() const;

    /** A killed mutator abandoned an in-flight task. */
    void onTaskAbandoned(MutatorIndex idx);

    std::uint64_t tasksReassigned() const { return tasks_reassigned_; }
    /** @} */

    /** @name Progress gauges (sampled by the run watchdog) */
    /** @{ */
    /** Actions executed so far across all mutators. */
    std::uint64_t mutatorActionsExecuted() const;

    std::uint32_t mutatorsFinished() const { return mutators_finished_; }

    /** Completed stop-the-world collections so far. */
    std::uint64_t
    gcEventsCompleted() const
    {
        return gc_stats_.events.size();
    }
    /** @} */

  private:
    void performGcAtSafepoint();
    void finishGc(GcKind kind, const MinorWork &minor,
                  const FullWork &full, bool ran_full, Ticks safepoint_at,
                  const std::vector<GcPhaseCost> &phases);

    /** Apply adaptive sizing after a stop-the-world collection. */
    void maybeResizeYoung(const GcEvent &ev);

    /** @name Concurrent old-generation collector */
    /** @{ */
    /** Kick off a marking cycle if occupancy warrants one. */
    void maybeStartConcurrentCycle();

    /** Marking finished (called from the marker thread's context). */
    void onConcurrentCycleDone();

    /** Schedule the stop-the-world remark (deferred if a GC runs). */
    void requestRemark();
    void performRemarkAtSafepoint();
    void finishRemark(const FullWork &sweep, Ticks safepoint_at);
    /** @} */

    sim::Simulation &sim_;
    machine::Machine &mach_;
    os::Scheduler &sched_;
    VmConfig config_;
    ListenerChain listeners_;
    TaskAdmission *admission_ = nullptr;

    std::unique_ptr<Heap> heap_;
    std::unique_ptr<GcCostModel> cost_model_;
    std::unique_ptr<AdaptiveSizePolicy> adaptive_;
    std::unique_ptr<ConcurrentMarker> marker_;
    bool cycle_active_ = false;
    bool remark_pending_ = false;
    /** Old-gen occupancy right after the last sweep (cycle throttle). */
    Bytes post_sweep_old_used_ = 0;
    std::unique_ptr<MonitorTable> monitors_;
    std::vector<std::unique_ptr<MutatorThread>> mutators_;
    std::vector<std::unique_ptr<HelperThread>> helpers_;

    bool ran_ = false;
    std::uint32_t n_threads_ = 0;
    std::uint32_t mutators_finished_ = 0;
    Ticks run_start_time_ = 0;
    Ticks run_end_time_ = 0;
    std::string app_name_;
    /** Hosted mode: notified instead of stopping the simulation. */
    std::function<void(Ticks)> run_completed_cb_;

    bool gc_in_progress_ = false;
    Ticks gc_requested_at_ = 0;
    /** End time of the previous STW collection (adaptive intervals). */
    Ticks last_gc_end_ = 0;
    std::uint64_t gc_seq_ = 0;
    std::vector<MutatorThread *> gc_waiters_;

    GcRunStats gc_stats_;
    std::uint64_t total_tasks_ = 0;
    /** In-flight tasks abandoned by killed mutators. */
    std::uint64_t tasks_reassigned_ = 0;

    /** Guard against runaway/deadlocked workloads (VmConfig). */
    Ticks max_run_time_ = 0;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_RUNTIME_VM_HH
