/**
 * @file
 * RuntimeListener: a JVMTI-like probe interface.
 *
 * Observation tools (the Elephant-Tracks-style tracer, the DTrace-style
 * lock profiler, test instrumentation) subscribe to runtime events
 * without the runtime knowing anything about them — mirroring how the
 * paper attached Elephant Tracks and DTrace to an unmodified JVM.
 */

#ifndef JSCALE_JVM_RUNTIME_LISTENER_HH
#define JSCALE_JVM_RUNTIME_LISTENER_HH

#include <cstdint>
#include <vector>

#include "base/units.hh"
#include "jvm/gc/gc_types.hh"
#include "jvm/object/object.hh"

namespace jscale::jvm {

/** Monitor (lock) identifier. */
using MonitorId = std::uint32_t;

/** Channel (semaphore) identifier. */
using ChannelId = std::uint32_t;

/**
 * Event callbacks delivered synchronously, in simulation order. All
 * default to no-ops so tools override only what they observe.
 */
class RuntimeListener
{
  public:
    virtual ~RuntimeListener() = default;

    /** An object was allocated. */
    virtual void
    onObjectAlloc(const ObjectRecord &obj, Ticks now)
    {
        (void)obj; (void)now;
    }

    /**
     * An object died. @p lifespan is the paper's metric: bytes allocated
     * globally (by any thread) between the object's birth and death.
     */
    virtual void
    onObjectDeath(const ObjectRecord &obj, Bytes lifespan, Ticks now)
    {
        (void)obj; (void)lifespan; (void)now;
    }

    /** A monitor was acquired. @p contended is true when the acquiring
     *  thread had to block first. */
    virtual void
    onMonitorAcquire(MutatorIndex thread, MonitorId monitor, bool contended,
                     Ticks now)
    {
        (void)thread; (void)monitor; (void)contended; (void)now;
    }

    /** A thread found the monitor held and blocked (one contention
     *  instance, in the paper's Fig. 1b sense). */
    virtual void
    onMonitorContended(MutatorIndex thread, MonitorId monitor, Ticks now)
    {
        (void)thread; (void)monitor; (void)now;
    }

    /** A monitor was released. */
    virtual void
    onMonitorRelease(MutatorIndex thread, MonitorId monitor, Ticks now)
    {
        (void)thread; (void)monitor; (void)now;
    }

    /** A stop-the-world collection is starting (safepoint reached). */
    virtual void
    onGcStart(GcKind kind, std::uint64_t sequence, Ticks now)
    {
        (void)kind; (void)sequence; (void)now;
    }

    /** A collection finished; the world is about to resume. */
    virtual void
    onGcEnd(const GcEvent &event, Ticks now)
    {
        (void)event; (void)now;
    }

    /** A mutator thread started. */
    virtual void
    onThreadStart(MutatorIndex thread, Ticks now)
    {
        (void)thread; (void)now;
    }

    /** A mutator thread finished its work. */
    virtual void
    onThreadFinish(MutatorIndex thread, Ticks now)
    {
        (void)thread; (void)now;
    }
};

/** Fan-out helper: a registration list shared by all runtime components. */
class ListenerChain
{
  public:
    /** Subscribe a listener (not owned). */
    void add(RuntimeListener *l) { listeners_.push_back(l); }

    /** Remove a previously subscribed listener. */
    void remove(RuntimeListener *l);

    /** All current subscribers. */
    const std::vector<RuntimeListener *> &all() const { return listeners_; }

    /** Invoke @p fn on every subscriber, in subscription order. */
    template <typename Fn>
    void
    dispatch(Fn &&fn) const
    {
        for (RuntimeListener *l : listeners_)
            fn(*l);
    }

  private:
    std::vector<RuntimeListener *> listeners_;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_RUNTIME_LISTENER_HH
