/**
 * @file
 * RuntimeListener: a JVMTI-like probe interface.
 *
 * Observation tools (the Elephant-Tracks-style tracer, the DTrace-style
 * lock profiler, test instrumentation) subscribe to runtime events
 * without the runtime knowing anything about them — mirroring how the
 * paper attached Elephant Tracks and DTrace to an unmodified JVM.
 */

#ifndef JSCALE_JVM_RUNTIME_LISTENER_HH
#define JSCALE_JVM_RUNTIME_LISTENER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/units.hh"
#include "jvm/gc/gc_types.hh"
#include "jvm/object/object.hh"

namespace jscale::jvm {

/** Monitor (lock) identifier. */
using MonitorId = std::uint32_t;

/** Channel (semaphore) identifier. */
using ChannelId = std::uint32_t;

/**
 * Event callbacks delivered synchronously, in simulation order. All
 * default to no-ops so tools override only what they observe.
 */
class RuntimeListener
{
  public:
    virtual ~RuntimeListener() = default;

    /** An object was allocated. */
    virtual void
    onObjectAlloc(const ObjectRecord &obj, Ticks now)
    {
        (void)obj; (void)now;
    }

    /**
     * An object died. @p lifespan is the paper's metric: bytes allocated
     * globally (by any thread) between the object's birth and death.
     */
    virtual void
    onObjectDeath(const ObjectRecord &obj, Bytes lifespan, Ticks now)
    {
        (void)obj; (void)lifespan; (void)now;
    }

    /** A monitor was acquired. @p contended is true when the acquiring
     *  thread had to block first. */
    virtual void
    onMonitorAcquire(MutatorIndex thread, MonitorId monitor, bool contended,
                     Ticks now)
    {
        (void)thread; (void)monitor; (void)contended; (void)now;
    }

    /** A thread found the monitor held and blocked (one contention
     *  instance, in the paper's Fig. 1b sense). */
    virtual void
    onMonitorContended(MutatorIndex thread, MonitorId monitor, Ticks now)
    {
        (void)thread; (void)monitor; (void)now;
    }

    /** A monitor was released. */
    virtual void
    onMonitorRelease(MutatorIndex thread, MonitorId monitor, Ticks now)
    {
        (void)thread; (void)monitor; (void)now;
    }

    /**
     * A queued (contended) waiter was removed from a monitor's acquire
     * queue without ever being granted — the thread-kill path extracts
     * blocked threads from whatever structure holds them. Without this
     * event an observer modeling the FIFO handoff order (one
     * onMonitorContended per queue entry, granted in order) would
     * wrongly expect the cancelled thread to be granted next.
     */
    virtual void
    onMonitorWaiterCancelled(MutatorIndex thread, MonitorId monitor,
                             Ticks now)
    {
        (void)thread; (void)monitor; (void)now;
    }

    /**
     * The admission policy moved a queued (contended) waiter from the
     * active circulation set to the cold passive list (Malthusian/LCR
     * culling). The waiter stays blocked; it re-enters circulation at
     * a future rotation. Handoff oracles track the active/passive
     * split from these events alone.
     */
    virtual void
    onMonitorWaiterPassivated(MutatorIndex thread, MonitorId monitor,
                              Ticks now)
    {
        (void)thread; (void)monitor; (void)now;
    }

    /**
     * A passivated waiter was rotated back to the front of the active
     * set (it is granted by the handoff that triggered the rotation).
     */
    virtual void
    onMonitorWaiterReactivated(MutatorIndex thread, MonitorId monitor,
                               Ticks now)
    {
        (void)thread; (void)monitor; (void)now;
    }

    /**
     * The VM requested a global safepoint (stop-the-world); the
     * scheduler starts truncating running threads at their polls.
     */
    virtual void
    onSafepointBegin(std::uint64_t sequence, Ticks now)
    {
        (void)sequence; (void)now;
    }

    /**
     * Every thread is parked; the stop-the-world operation can run.
     * @p ttsp is the bring-to-stop latency (now - request time).
     */
    virtual void
    onSafepointReached(std::uint64_t sequence, Ticks ttsp, Ticks now)
    {
        (void)sequence; (void)ttsp; (void)now;
    }

    /** A stop-the-world collection is starting (safepoint reached). */
    virtual void
    onGcStart(GcKind kind, std::uint64_t sequence, Ticks now)
    {
        (void)kind; (void)sequence; (void)now;
    }

    /**
     * One component phase of a stop-the-world pause (root-scan, scan,
     * copy, mark, compact, remark), as priced by the GcCostModel.
     * Delivered between onGcStart and onGcEnd; the phases of one
     * collection partition [safepoint, finish] without overlap.
     */
    virtual void
    onGcPhase(std::uint64_t sequence, GcKind kind, const char *phase,
              Ticks begin, Ticks end)
    {
        (void)sequence; (void)kind; (void)phase; (void)begin; (void)end;
    }

    /** A collection finished; the world is about to resume. */
    virtual void
    onGcEnd(const GcEvent &event, Ticks now)
    {
        (void)event; (void)now;
    }

    /** A concurrent old-generation marking cycle started. */
    virtual void
    onConcurrentMarkBegin(std::uint64_t cycle, Ticks now)
    {
        (void)cycle; (void)now;
    }

    /** A marking cycle completed (or was aborted by a mode failure). */
    virtual void
    onConcurrentMarkEnd(std::uint64_t cycle, bool aborted, Ticks now)
    {
        (void)cycle; (void)aborted; (void)now;
    }

    /** A mutator thread started. */
    virtual void
    onThreadStart(MutatorIndex thread, Ticks now)
    {
        (void)thread; (void)now;
    }

    /** A mutator thread finished its work. */
    virtual void
    onThreadFinish(MutatorIndex thread, Ticks now)
    {
        (void)thread; (void)now;
    }

    /**
     * A task retired at a mutator's TaskDone boundary. @p task is the
     * global completion sequence number (1-based, simulation order);
     * per-mutator windows between consecutive onTaskEnd events are the
     * unit of latency attribution.
     */
    virtual void
    onTaskEnd(MutatorIndex thread, std::uint64_t task, Ticks now)
    {
        (void)thread; (void)task; (void)now;
    }

    /**
     * A mutator is about to park waiting for a collection it requested:
     * globally (blocked until the stop-the-world cycle completes) or on
     * a compartment-local pause (@p local). Fires before the thread's
     * Blocked/Sleeping transition, so wait-state observers can classify
     * the upcoming block as an allocation stall.
     */
    virtual void
    onGcWaitBegin(MutatorIndex thread, bool local, Ticks now)
    {
        (void)thread; (void)local; (void)now;
    }

    /**
     * A thread entered a monitor's wait set (Object.wait): it is about
     * to block until notified. Distinct from onMonitorContended, which
     * marks blocking on the acquire queue.
     */
    virtual void
    onMonitorWaitParked(MutatorIndex thread, MonitorId monitor, Ticks now)
    {
        (void)thread; (void)monitor; (void)now;
    }

    /** A thread found a channel (semaphore) empty and is about to
     *  block on it. */
    virtual void
    onChannelBlocked(MutatorIndex thread, ChannelId channel, Ticks now)
    {
        (void)thread; (void)channel; (void)now;
    }

    /**
     * The admission governor denied a task boundary: the thread is
     * about to park at its task-fetch point until re-admitted.
     */
    virtual void
    onAdmissionParked(MutatorIndex thread, Ticks now)
    {
        (void)thread; (void)now;
    }

    /**
     * The concurrency governor re-evaluated its admission target.
     * @p target admitted-thread goal, @p active currently admitted
     * mutators, @p parked mutators held at task-fetch boundaries,
     * @p tasks_delta tasks retired since the previous decision.
     */
    virtual void
    onGovernorDecision(std::uint32_t target, std::uint32_t active,
                       std::uint32_t parked, std::uint64_t tasks_delta,
                       Ticks now)
    {
        (void)target; (void)active; (void)parked; (void)tasks_delta;
        (void)now;
    }

    /** @name Open-loop request boundaries (traffic::TrafficEngine)
     * Requests are externally injected units of work with an arrival
     * time independent of the system's state (open system). The engine
     * fires these around the admission queue and the serving mutators;
     * sojourn decomposes exactly as
     * (dispatch - arrival) + (completion - dispatch). */
    /** @{ */
    /** Request @p request of tenant @p tenant arrived and was admitted
     *  to the bounded queue. */
    virtual void
    onRequestArrival(std::uint32_t tenant, std::uint64_t request, Ticks now)
    {
        (void)tenant; (void)request; (void)now;
    }

    /** An arriving or queued request was shed by the bounded-queue
     *  policy; it will never be dispatched. */
    virtual void
    onRequestShed(std::uint32_t tenant, std::uint64_t request, Ticks now)
    {
        (void)tenant; (void)request; (void)now;
    }

    /** Mutator @p thread picked request @p request up from the queue
     *  and starts serving it (queueing delay ends). */
    virtual void
    onRequestDispatched(std::uint32_t tenant, std::uint64_t request,
                        MutatorIndex thread, Ticks now)
    {
        (void)tenant; (void)request; (void)thread; (void)now;
    }

    /** Request @p request finished service on @p thread. */
    virtual void
    onRequestCompleted(std::uint32_t tenant, std::uint64_t request,
                       MutatorIndex thread, Ticks now)
    {
        (void)tenant; (void)request; (void)thread; (void)now;
    }
    /** @} */
};

/** Fan-out helper: a registration list shared by all runtime components. */
class ListenerChain
{
  public:
    /** Subscribe a listener (not owned). */
    void add(RuntimeListener *l) { listeners_.push_back(l); }

    /** Remove a previously subscribed listener (no-op if absent). */
    void
    remove(RuntimeListener *l)
    {
        listeners_.erase(
            std::remove(listeners_.begin(), listeners_.end(), l),
            listeners_.end());
    }

    /** All current subscribers. */
    const std::vector<RuntimeListener *> &all() const { return listeners_; }

    /** True when nobody is subscribed (the overwhelmingly common case
     *  on hot paths — bare experiment runs attach no tools). */
    bool empty() const { return listeners_.empty(); }

    /**
     * Invoke @p fn on every subscriber, in subscription order. Checks
     * empty() first so unobserved hot paths pay one branch; callers on
     * per-allocation paths should additionally guard with empty() to
     * skip building the closure arguments at all.
     */
    template <typename Fn>
    void
    dispatch(Fn &&fn) const
    {
        if (listeners_.empty()) [[likely]]
            return;
        for (RuntimeListener *l : listeners_)
            fn(*l);
    }

  private:
    std::vector<RuntimeListener *> listeners_;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_RUNTIME_LISTENER_HH
