#include "jvm/runtime/vm.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "base/error.hh"
#include "base/logging.hh"

namespace jscale::jvm {

const char *
waitBucketName(WaitBucket b)
{
    switch (b) {
      case WaitBucket::Cpu: return "cpu";
      case WaitBucket::RunQueue: return "runq";
      case WaitBucket::Ttsp: return "ttsp";
      case WaitBucket::GcStw: return "gc-stw";
      case WaitBucket::Lock: return "lock";
      case WaitBucket::Waitset: return "waitset";
      case WaitBucket::Channel: return "channel";
      case WaitBucket::AllocStall: return "alloc-stall";
      case WaitBucket::Governor: return "governor";
      case WaitBucket::Stall: return "stall";
      case WaitBucket::Other: return "other";
    }
    return "?";
}

MonitorId
AppContext::createMonitor(const std::string &name)
{
    return vm_.monitors().createMonitor(name);
}

ChannelId
AppContext::createChannel(const std::string &name, std::uint64_t permits)
{
    return vm_.monitors().createChannel(name, permits);
}

JavaVm::JavaVm(sim::Simulation &sim, machine::Machine &mach,
               os::Scheduler &sched, const VmConfig &config)
    : sim_(sim), mach_(mach), sched_(sched), config_(config)
{
    jscale_assert(mach_.enabledCores() > 0,
                  "enable cores before constructing the VM");
    jscale_assert(config_.max_run_time > 0,
                  "max_run_time must be positive");
    max_run_time_ = config_.max_run_time;
    monitors_ = std::make_unique<MonitorTable>(sched_, &listeners_,
                                               config_.locks);
}

JavaVm::~JavaVm() = default;

Heap &
JavaVm::heap()
{
    jscale_assert(heap_ != nullptr, "heap only exists once run() started");
    return *heap_;
}

MonitorTable &
JavaVm::monitors()
{
    return *monitors_;
}

std::uint32_t
JavaVm::gcThreads() const
{
    return config_.gc_threads != 0 ? config_.gc_threads
                                   : mach_.enabledCores();
}

void
JavaVm::requestGc(MutatorThread *t, Ticks now)
{
    // No collection can satisfy an allocation larger than the eden
    // (compartment) itself.
    if (heap_->impossibleAllocation(t->pendingAllocBytes())) {
        jscale_fatal("OutOfMemoryError: allocation of ",
                     formatBytes(t->pendingAllocBytes()),
                     " can never fit the nursery (",
                     formatBytes(heap_->compartmentCapacity()),
                     "); heap ", formatBytes(config_.heap.capacity));
    }

    if (config_.heap.compartmentalized && !heap_->oldGenPressure()) {
        // Thread-local collection: no global safepoint — only the
        // requesting thread pauses while it scavenges its compartment.
        const MinorWork w = heap_->collectCompartment(t->index(), now);
        const Bytes pending = t->pendingAllocBytes();
        if (heap_->compartmentUsed(t->index()) + pending <=
            heap_->effectiveCompartmentCapacity()) {
            const Ticks pause = cost_model_->localPause(w);
            ++gc_stats_.local_count;
            gc_stats_.local_pause += pause;
            listeners_.dispatch([&](RuntimeListener &l) {
                l.onGcWaitBegin(t->index(), /*local=*/true, now);
            });
            t->gcWaitOver();
            sched_.wakeAt(t->osThread(), now + pause);
            return;
        }
        // The compartment is dominated by live data; escalate to a
        // global full collection.
    }

    gc_waiters_.push_back(t);
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onGcWaitBegin(t->index(), /*local=*/false, now);
    });
    if (gc_in_progress_)
        return; // the in-flight collection will serve this thread too
    gc_in_progress_ = true;
    gc_requested_at_ = now;
    listeners_.dispatch(
        [&](RuntimeListener &l) { l.onSafepointBegin(gc_seq_, now); });
    sched_.stopTheWorld(config_.tenant, [this] { performGcAtSafepoint(); });
}

void
JavaVm::performGcAtSafepoint()
{
    const Ticks safepoint_at = sim_.now();
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onSafepointReached(gc_seq_, safepoint_at - gc_requested_at_,
                             safepoint_at);
    });

    // In compartmentalized mode a stop-the-world collection only happens
    // under old-generation pressure (or an overfull compartment), and it
    // is a full collection; the routine nursery work is handled by
    // thread-local compartment scavenges without a safepoint.
    MinorWork minor;
    FullWork full;
    bool ran_full = false;
    Ticks duration = 0;
    std::vector<GcPhaseCost> phases;
    if (config_.heap.compartmentalized) {
        full = heap_->collectFull(safepoint_at);
        ran_full = true;
        duration = cost_model_->fullPause(full);
        phases = cost_model_->fullPhases(full);
    } else {
        minor = heap_->collectMinor(safepoint_at);
        duration = cost_model_->minorPause(minor);
        phases = cost_model_->minorPhases(minor);
        if (minor.needs_full) {
            if (cycle_active_) {
                // Concurrent mode failure: the old generation filled
                // before marking finished; abort and fall back to a
                // stop-the-world full collection.
                ++gc_stats_.concurrent_failures;
                marker_->abortCycle();
                cycle_active_ = false;
                listeners_.dispatch([&](RuntimeListener &l) {
                    l.onConcurrentMarkEnd(gc_stats_.concurrent_cycles,
                                          /*aborted=*/true, safepoint_at);
                });
            }
            ran_full = true;
            full = heap_->collectFull(safepoint_at);
            duration += cost_model_->fullPause(full);
            const auto full_phases = cost_model_->fullPhases(full);
            phases.insert(phases.end(), full_phases.begin(),
                          full_phases.end());
        }
    }

    const GcKind kind = ran_full ? GcKind::Full : GcKind::Minor;
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onGcStart(kind, gc_seq_, safepoint_at);
    });

    sim_.scheduleAfter(static_cast<TickDelta>(duration),
                       [this, kind, minor, full, ran_full, safepoint_at,
                        phases = std::move(phases)] {
                           finishGc(kind, minor, full, ran_full,
                                    safepoint_at, phases);
                       },
                       "gc-finish");
}

void
JavaVm::finishGc(GcKind kind, const MinorWork &minor, const FullWork &full,
                 bool ran_full, Ticks safepoint_at,
                 const std::vector<GcPhaseCost> &phases)
{
    const Ticks now = sim_.now();

    GcEvent ev;
    ev.kind = kind;
    ev.sequence = gc_seq_++;
    ev.requested_at = gc_requested_at_;
    ev.safepoint_at = safepoint_at;
    ev.finished_at = now;
    ev.moved_bytes = minor.copied_bytes + minor.promoted_bytes +
                     (ran_full ? full.live_bytes : 0);
    ev.promoted_bytes = minor.promoted_bytes;
    ev.reclaimed_bytes = minor.reclaimed_bytes +
                         (ran_full ? full.reclaimed_bytes : 0);

    if (kind == GcKind::Minor || !config_.heap.compartmentalized) {
        ++gc_stats_.minor_count;
        gc_stats_.minor_pauses.add(static_cast<double>(ev.pause()));
    }
    if (ran_full) {
        ++gc_stats_.full_count;
        gc_stats_.full_pauses.add(static_cast<double>(ev.pause()));
    }
    gc_stats_.total_pause += ev.pause();
    gc_stats_.pause_hist.add(ev.pause());
    gc_stats_.total_ttsp += ev.timeToSafepoint();
    gc_stats_.copied_bytes += minor.copied_bytes;
    gc_stats_.promoted_bytes += minor.promoted_bytes;
    gc_stats_.reclaimed_bytes += ev.reclaimed_bytes;
    if (minor.scanned_bytes > 0) {
        gc_stats_.nursery_survival.add(
            static_cast<double>(minor.copied_bytes +
                                minor.promoted_bytes) /
            static_cast<double>(minor.scanned_bytes));
    }
    gc_stats_.events.push_back(ev);

    Ticks phase_at = safepoint_at;
    for (const GcPhaseCost &p : phases) {
        const Ticks phase_end = phase_at + p.duration;
        listeners_.dispatch([&](RuntimeListener &l) {
            l.onGcPhase(ev.sequence, kind, p.name, phase_at, phase_end);
        });
        phase_at = phase_end;
    }
    listeners_.dispatch([&](RuntimeListener &l) { l.onGcEnd(ev, now); });

    // An old generation that a full collection could not bring under
    // capacity means the workload does not fit this heap — unless the
    // ergonomics can return young-generation space to the old
    // generation (HotSpot grows the old gen the same way).
    if (heap_->oldUsed() > heap_->oldCapacity() && adaptive_) {
        const double needed_young =
            1.0 - 1.1 * static_cast<double>(heap_->oldUsed()) /
                      static_cast<double>(config_.heap.capacity);
        if (needed_young > 0.02 && heap_->resizeYoung(needed_young))
            ++gc_stats_.young_resizes;
    }
    if (heap_->oldUsed() > heap_->oldCapacity()) {
        jscale_fatal("OutOfMemoryError: live data ",
                     formatBytes(heap_->oldUsed()),
                     " exceeds old generation ",
                     formatBytes(heap_->oldCapacity()),
                     " (heap ", formatBytes(config_.heap.capacity), ")");
    }

    maybeResizeYoung(ev);
    last_gc_end_ = now;

    gc_in_progress_ = false;
    std::vector<MutatorThread *> waiters;
    waiters.swap(gc_waiters_);
    sched_.resumeWorld(config_.tenant);
    for (MutatorThread *t : waiters) {
        t->gcWaitOver();
        sched_.wake(t->osThread());
    }
    if (remark_pending_) {
        remark_pending_ = false;
        requestRemark();
    } else {
        maybeStartConcurrentCycle();
    }
}

void
JavaVm::maybeStartConcurrentCycle()
{
    if (config_.collector != CollectorKind::ConcurrentOld ||
        cycle_active_ || gc_in_progress_ || !marker_) {
        return;
    }
    if (static_cast<double>(heap_->oldUsed()) <=
        config_.concurrent.initiating_occupancy *
            static_cast<double>(heap_->oldCapacity())) {
        return;
    }
    // Throttle: if the previous sweep barely reclaimed anything (the
    // occupancy is live data, not garbage), wait until real garbage
    // accumulates before burning another cycle.
    if (heap_->oldUsed() <
        post_sweep_old_used_ + heap_->oldCapacity() / 20) {
        return;
    }
    cycle_active_ = true;
    ++gc_stats_.concurrent_cycles;
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onConcurrentMarkBegin(gc_stats_.concurrent_cycles, sim_.now());
    });
    const Ticks budget = static_cast<Ticks>(
        static_cast<double>(heap_->oldUsed()) /
        config_.concurrent.mark_bw);
    marker_->beginCycle(budget);
}

void
JavaVm::onConcurrentCycleDone()
{
    if (!cycle_active_)
        return; // aborted cycle raced with completion
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onConcurrentMarkEnd(gc_stats_.concurrent_cycles,
                              /*aborted=*/false, sim_.now());
    });
    requestRemark();
}

void
JavaVm::requestRemark()
{
    if (gc_in_progress_) {
        remark_pending_ = true;
        return;
    }
    gc_in_progress_ = true;
    gc_requested_at_ = sim_.now();
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onSafepointBegin(gc_seq_, gc_requested_at_);
    });
    sched_.stopTheWorld(config_.tenant,
                        [this] { performRemarkAtSafepoint(); });
}

void
JavaVm::performRemarkAtSafepoint()
{
    const Ticks safepoint_at = sim_.now();
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onSafepointReached(gc_seq_, safepoint_at - gc_requested_at_,
                             safepoint_at);
    });
    const FullWork sweep = heap_->sweepOld(safepoint_at);
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onGcStart(GcKind::Remark, gc_seq_, safepoint_at);
    });
    const GcCostParams &p = config_.gc_costs;
    const Ticks pause = static_cast<Ticks>(
        static_cast<double>(config_.concurrent.remark_base) +
        static_cast<double>(p.root_scan_per_thread) *
            static_cast<double>(n_threads_) +
        p.scan_cost_per_object *
            static_cast<double>(sweep.scanned_objects));
    sim_.scheduleAfter(static_cast<TickDelta>(pause),
                       [this, sweep, safepoint_at] {
                           finishRemark(sweep, safepoint_at);
                       },
                       "remark-finish");
}

void
JavaVm::finishRemark(const FullWork &sweep, Ticks safepoint_at)
{
    const Ticks now = sim_.now();
    GcEvent ev;
    ev.kind = GcKind::Remark;
    ev.sequence = gc_seq_++;
    ev.requested_at = gc_requested_at_;
    ev.safepoint_at = safepoint_at;
    ev.finished_at = now;
    ev.reclaimed_bytes = sweep.reclaimed_bytes;

    ++gc_stats_.remark_count;
    gc_stats_.total_pause += ev.pause();
    gc_stats_.pause_hist.add(ev.pause());
    gc_stats_.total_ttsp += ev.timeToSafepoint();
    gc_stats_.reclaimed_bytes += ev.reclaimed_bytes;
    gc_stats_.events.push_back(ev);
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onGcPhase(ev.sequence, GcKind::Remark, "remark+sweep",
                    safepoint_at, now);
    });
    listeners_.dispatch([&](RuntimeListener &l) { l.onGcEnd(ev, now); });

    cycle_active_ = false;
    post_sweep_old_used_ = heap_->oldUsed();

    // Live data the sweep could not reclaim must still fit.
    if (heap_->oldUsed() > heap_->oldCapacity()) {
        jscale_fatal("OutOfMemoryError: live data ",
                     formatBytes(heap_->oldUsed()),
                     " exceeds old generation ",
                     formatBytes(heap_->oldCapacity()),
                     " (heap ", formatBytes(config_.heap.capacity), ")");
    }

    // Allocation failures that queued during the remark pause are
    // served by a nursery collection within the same safepoint.
    if (!gc_waiters_.empty()) {
        performGcAtSafepoint();
        return;
    }
    gc_in_progress_ = false;
    sched_.resumeWorld(config_.tenant);
    maybeStartConcurrentCycle();
}

void
JavaVm::maybeResizeYoung(const GcEvent &ev)
{
    if (!adaptive_)
        return;
    const Ticks interval = ev.requested_at > last_gc_end_
                               ? ev.requested_at - last_gc_end_
                               : 0;
    const double fraction = adaptive_->decide(
        interval, ev.pause(), heap_->liveBytes(), config_.heap.capacity);
    if (fraction != heap_->config().young_fraction) {
        if (heap_->resizeYoung(fraction))
            ++gc_stats_.young_resizes;
    }
    gc_stats_.adaptive = adaptive_->adaptiveStats();
}

void
JavaVm::onMutatorFinished(MutatorThread *t, Ticks now)
{
    heap_->killThreadObjects(t->index(), now);
    listeners_.dispatch(
        [&](RuntimeListener &l) { l.onThreadFinish(t->index(), now); });
    ++mutators_finished_;
    // A departing mutator frees an admission slot; let the governor
    // backfill it immediately rather than at its next decision tick.
    if (admission_ != nullptr)
        admission_->onMutatorFinished(*t, now);
    if (mutators_finished_ == n_threads_) {
        run_end_time_ = now;
        // Finalize the heap while the simulation still stands at the
        // run's end time: remaining (pinned) data dies at VM shutdown,
        // and in hosted mode a neighbour tenant's clock must not have
        // advanced past this tenant's finish when the deaths deliver.
        heap_->killAllRemaining(now);
        if (admission_ != nullptr)
            admission_->onRunEnd(now);
        // A hosted VM reports completion to its host (which stops the
        // shared simulation once every tenant is done); a standalone VM
        // stops its own simulation.
        if (run_completed_cb_)
            run_completed_cb_(now);
        else
            sim_.requestStop();
    }
}

void
JavaVm::onTaskCompleted(MutatorIndex idx, Ticks now)
{
    ++total_tasks_;
    listeners_.dispatch([&](RuntimeListener &l) {
        l.onTaskEnd(idx, total_tasks_, now);
    });
}

void
JavaVm::onTaskAbandoned(MutatorIndex idx)
{
    (void)idx;
    ++tasks_reassigned_;
}

bool
JavaVm::mutatorAlive(std::uint32_t idx) const
{
    if (idx >= mutators_.size())
        return false;
    const MutatorThread *t = mutators_[idx].get();
    return !t->finished() && !t->killPending();
}

bool
JavaVm::killMutator(std::uint32_t idx, Ticks now)
{
    if (!mutatorAlive(idx))
        return false;
    // Count kill-pending threads as already dead: aliveMutators() only
    // tracks finished threads, so a burst of same-tick kills would
    // otherwise take every mutator. The run must still be able to
    // complete, so at least one survivor is always left.
    std::uint32_t survivors = 0;
    for (std::uint32_t i = 0; i < mutators_.size(); ++i) {
        if (mutatorAlive(i))
            ++survivors;
    }
    if (survivors <= 1)
        return false;
    MutatorThread *t = mutators_[idx].get();
    t->requestKill();
    os::OsThread *os = t->osThread();
    switch (os->state()) {
      case os::ThreadState::Running:
      case os::ThreadState::Ready:
        // The kill executes at the thread's next burst boundary.
        break;
      case os::ThreadState::Sleeping:
        sched_.wake(os);
        break;
      case os::ThreadState::Blocked:
        // Extract the thread from whatever structure holds it, then
        // wake it so the kill executes promptly.
        if (t->awaitingGc()) {
            std::erase(gc_waiters_, t);
            t->cancelGcWait();
            sched_.wake(os);
        } else if (t->awaitingGrant()) {
            monitors_->cancelWaiter(t, now);
            t->cancelGrantWait();
            sched_.wake(os);
        } else if (admission_ != nullptr &&
                   admission_->cancelPark(*t, now)) {
            // Woken through the admission API so the scheduler's
            // park/unpark counters stay balanced.
        } else {
            sched_.wake(os);
        }
        break;
      default:
        return false;
    }
    return true;
}

bool
JavaVm::stallMutator(std::uint32_t idx, Ticks until)
{
    if (idx >= mutators_.size())
        return false;
    MutatorThread *t = mutators_[idx].get();
    if (t->finished() || t->killPending())
        return false;
    // Parked/waiting threads are already off-CPU; stalling them again
    // would race their wake protocols. Stall only schedulable states.
    const os::ThreadState s = t->osThread()->state();
    if (s != os::ThreadState::Running && s != os::ThreadState::Ready)
        return false;
    sched_.stallThread(t->osThread(), until);
    return true;
}

void
JavaVm::setGcWorkers(std::uint32_t n)
{
    jscale_assert(cost_model_ != nullptr,
                  "setGcWorkers only valid during run()");
    cost_model_->setGcThreads(n);
}

std::uint32_t
JavaVm::activeGcWorkers() const
{
    return cost_model_ ? cost_model_->gcThreads() : gcThreads();
}

std::uint64_t
JavaVm::mutatorActionsExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &mt : mutators_)
        total += mt->mutStats().actions_executed;
    return total;
}

RunResult
JavaVm::run(ApplicationModel &app, std::uint32_t n_threads)
{
    prepare(app, n_threads);
    sim_.run(run_start_time_ + max_run_time_);
    return collectResult();
}

void
JavaVm::prepare(ApplicationModel &app, std::uint32_t n_threads)
{
    jscale_assert(!ran_, "a JavaVm instance runs exactly once");
    jscale_assert(n_threads >= 1, "run requires at least one thread");
    ran_ = true;
    n_threads_ = n_threads;
    app_name_ = app.appName();

    heap_ = std::make_unique<Heap>(config_.heap, n_threads, &listeners_);
    cost_model_ = std::make_unique<GcCostModel>(
        config_.gc_costs, mach_, gcThreads(), n_threads);
    if (config_.collector == CollectorKind::ConcurrentOld) {
        jscale_assert(!config_.heap.compartmentalized,
                      "concurrent-old collector and compartmentalized "
                      "heap are mutually exclusive");
        marker_ = std::make_unique<ConcurrentMarker>(
            sched_, config_.concurrent.mark_chunk,
            [this] { onConcurrentCycleDone(); });
    }
    if (config_.adaptive.enabled && !config_.heap.compartmentalized) {
        adaptive_ = std::make_unique<AdaptiveSizePolicy>(
            config_.adaptive, config_.heap.young_fraction);
    }

    AppContext ctx(*this, n_threads, sim_.forkRng(0xa99'0001ULL));
    app.setup(ctx);

    // Application threads.
    for (std::uint32_t i = 0; i < n_threads; ++i) {
        auto src = app.threadSource(i, ctx);
        jscale_assert(src != nullptr, "null thread source");
        auto mt = std::make_unique<MutatorThread>(
            *this, i, std::move(src),
            app.appName() + "-worker-" + std::to_string(i));
        mt->bindOsThread(sched_.registerThread(
            mt.get(), os::ThreadKind::Mutator, {}, config_.tenant));
        mutators_.push_back(std::move(mt));
    }

    // VM helper threads, spread across the enabled cores (and thus
    // sockets) so their interference is not concentrated.
    if (config_.enable_helpers) {
        const HelperConfig &h = config_.helpers;
        const auto enabled = mach_.enabledCoreIds();
        const std::uint32_t n_helpers =
            h.jit_threads + (h.periodic_daemon ? 1 : 0);
        auto helper_home = [&](std::uint32_t i) {
            const std::size_t stride = std::max<std::size_t>(
                1, enabled.size() / std::max<std::uint32_t>(n_helpers, 1));
            return enabled[(i * stride) % enabled.size()];
        };
        std::uint32_t next_helper = 0;
        for (std::uint32_t i = 0; i < h.jit_threads; ++i) {
            auto ht = std::make_unique<HelperThread>(
                sched_, HelperKind::JitCompiler, h.jit_burst_mean,
                h.jit_sleep_mean_initial, h.jit_backoff,
                sim_.forkRng(0x4a17'0000ULL + i),
                "jit-compiler-" + std::to_string(i));
            ht->bindOsThread(sched_.registerThread(
                ht.get(), os::ThreadKind::Helper,
                helper_home(next_helper++), config_.tenant));
            helpers_.push_back(std::move(ht));
        }
        if (h.periodic_daemon) {
            auto ht = std::make_unique<HelperThread>(
                sched_, HelperKind::PeriodicDaemon, h.periodic_burst,
                h.periodic_interval, 1.0, sim_.forkRng(0xda3a'0001ULL),
                "vm-periodic");
            ht->bindOsThread(sched_.registerThread(
                ht.get(), os::ThreadKind::Daemon,
                helper_home(next_helper++), config_.tenant));
            helpers_.push_back(std::move(ht));
        }
    }

    if (marker_) {
        marker_->bindOsThread(sched_.registerThread(
            marker_.get(), os::ThreadKind::Helper, {}, config_.tenant));
    }

    const Ticks start = sim_.now();
    if (admission_ != nullptr)
        admission_->onRunStart(n_threads, start);
    for (std::uint32_t i = 0; i < n_threads; ++i) {
        listeners_.dispatch(
            [&](RuntimeListener &l) { l.onThreadStart(i, start); });
    }
    for (auto &mt : mutators_)
        sched_.start(mt->osThread());
    for (auto &ht : helpers_)
        sched_.start(ht->osThread());
    if (marker_)
        sched_.start(marker_->osThread());
    run_start_time_ = start;
}

RunResult
JavaVm::collectResult()
{
    jscale_assert(ran_, "collectResult before prepare/run");
    if (mutators_finished_ != n_threads_) {
        // Abort this run only: a sweep harness catches AbortError at
        // the run boundary and isolates it as a per-run error artifact.
        throw AbortError(
            "application '" + app_name_ + "' did not finish within " +
            formatTicks(max_run_time_) +
            " of simulated time (deadlock or undersized heap?): " +
            std::to_string(mutators_finished_) + "/" +
            std::to_string(n_threads_) + " threads finished");
    }

    // Heap finalization (the end-of-run object deaths) happened at the
    // run's end inside onMutatorFinished, so collecting emits no
    // listener events at all — hosted tenants are collected after the
    // shared simulation has moved past their individual finish times.
    RunResult r;
    r.app_name = app_name_;
    r.threads = n_threads_;
    r.cores = mach_.enabledCores();
    r.heap_capacity = config_.heap.capacity;
    r.wall_time = run_end_time_ - run_start_time_;
    r.gc_time = gc_stats_.total_pause;
    r.gc = gc_stats_;
    r.heap = heap_->heapStats();
    r.locks.acquisitions = monitors_->totalAcquisitions();
    r.locks.contentions = monitors_->totalContentions();
    r.locks.block_time = monitors_->totalBlockTime();
    r.locks.monitors = monitors_->monitorCount();
    const MonitorStats agg = monitors_->aggregateStats();
    r.locks.biased_acquisitions = agg.biased_acquisitions;
    r.locks.thin_acquisitions = agg.thin_acquisitions;
    r.locks.fat_acquisitions = agg.fat_acquisitions;
    r.locks.bias_revocations = agg.bias_revocations;
    r.locks.inflations = agg.inflations;
    r.locks.waits = agg.waits;
    r.locks.notifies = agg.notifies;
    r.locks.handoffs = agg.handoffs;
    r.locks.barged_grants = agg.barged_grants;
    r.locks.waiters_passivated = agg.waiters_passivated;
    r.locks.waiters_reactivated = agg.waiters_reactivated;
    r.locks.coherence_penalty = agg.coherence_penalty;
    r.locks.circulation_sum = agg.circulation_sum;
    r.locks.block_hist = agg.block_hist;
    r.total_tasks = total_tasks_;
    if (admission_ != nullptr)
        admission_->summarize(r.governor);
    r.sched = sched_.schedStats();
    r.sim_events = sim_.eventsProcessed();

    for (const auto &ot : sched_.threads()) {
        // In hosted (multi-tenant) mode the scheduler carries several
        // VMs' threads; each VM summarizes only its own group.
        if (ot->group() != config_.tenant)
            continue;
        ThreadSummary ts;
        ts.name = ot->name();
        ts.kind = ot->kind();
        ts.cpu_time = ot->cpuTime();
        ts.ready_time = ot->readyTime();
        ts.blocked_time = ot->blockedTime();
        ts.sleep_time = ot->sleepTime();
        ts.dispatches = ot->dispatches();
        ts.migrations = ot->migrations();
        if (ot->kind() == os::ThreadKind::Mutator) {
            // Mutators are the group's first registrations, so the
            // group-local id is the mutator index.
            const auto idx = static_cast<std::size_t>(ot->localId());
            if (idx < mutators_.size()) {
                const MutatorStats &ms = mutators_[idx]->mutStats();
                ts.tasks_completed = ms.tasks_completed;
                ts.allocations = ms.allocations;
                ts.bytes_allocated = ms.bytes_allocated;
            }
        }
        r.thread_summaries.push_back(std::move(ts));
    }
    return r;
}

} // namespace jscale::jvm
