/**
 * @file
 * JVM configuration: heap geometry, GC cost-model parameters, fixed
 * operation costs and helper-thread settings.
 *
 * Cost constants are calibrated to OpenJDK-1.7-era magnitudes on
 * 2010-class hardware (the paper's AMD 6168 testbed): sub-microsecond
 * allocation/lock fast paths, millisecond-scale collections, tens of
 * microseconds of per-thread safepoint/root work.
 */

#ifndef JSCALE_JVM_RUNTIME_VM_CONFIG_HH
#define JSCALE_JVM_RUNTIME_VM_CONFIG_HH

#include <cstdint>

#include "base/units.hh"
#include "jvm/gc/adaptive.hh"
#include "jvm/heap/heap.hh"
#include "jvm/locks/policy.hh"

namespace jscale::jvm {

/** Parameters of the stop-the-world parallel collector's cost model. */
struct GcCostParams
{
    /** Fixed serial part of every minor collection. */
    Ticks minor_base = 150 * units::US;
    /** Root-scanning / TLAB-retirement work per registered mutator. */
    Ticks root_scan_per_thread = 12 * units::US;
    /** Scavenge copy bandwidth per GC worker thread (bytes per ns). */
    double copy_bw_per_thread = 1.2;
    /** Synchronization penalty between GC workers (Amdahl-style). */
    double parallel_alpha = 0.07;
    /** Fixed serial part of every full collection. */
    Ticks full_base = 1 * units::MS;
    /** Mark bandwidth per GC worker (bytes per ns). */
    double mark_bw_per_thread = 2.5;
    /** Compaction bandwidth per GC worker (bytes per ns). */
    double compact_bw_per_thread = 1.5;
    /** Per-object-record scan overhead (ns). */
    double scan_cost_per_object = 12.0;
    /** Fixed cost of a thread-local compartment collection. */
    Ticks local_base = 40 * units::US;
};

/** Fixed CPU costs of mutator operations. */
struct VmCosts
{
    /** Allocation fast path (TLAB bump). */
    Ticks alloc_base = 60;
    /** Additional allocation cost per byte (zeroing). */
    double alloc_per_byte = 0.02;
    /** Uncontended monitor enter. */
    Ticks monitor_enter = 25;
    /** Monitor exit. */
    Ticks monitor_exit = 20;
    /** Channel acquire/post. */
    Ticks channel_op = 30;
    /** Task completion bookkeeping. */
    Ticks task_done = 40;
    /** Allocation retry after a GC (slow path re-entry). */
    Ticks gc_retry = 300;
    /** Thread exit. */
    Ticks thread_end = 100;
};

/** Helper (VM service) thread configuration. */
struct HelperConfig
{
    /** Number of JIT-compiler-like helper threads. */
    std::uint32_t jit_threads = 2;
    /** One periodic VM maintenance daemon. */
    bool periodic_daemon = true;
    /** Mean length of a JIT compile burst. */
    Ticks jit_burst_mean = 300 * units::US;
    /** Initial mean sleep between JIT bursts (backs off over time). */
    Ticks jit_sleep_mean_initial = 2 * units::MS;
    /** Multiplicative sleep back-off per burst (JIT work dries up). */
    double jit_backoff = 1.15;
    /** Period of the maintenance daemon. */
    Ticks periodic_interval = 50 * units::MS;
    /** CPU burst of the maintenance daemon per period. */
    Ticks periodic_burst = 50 * units::US;
};

/** Which collector manages the old generation. */
enum class CollectorKind : std::uint8_t
{
    /** The paper's stop-the-world throughput (ParallelScavenge) GC. */
    Throughput,
    /** CMS-style: concurrent old-gen marking + short STW remark/sweep. */
    ConcurrentOld,
};

/** Parameters of the concurrent old-generation collector. */
struct ConcurrentGcParams
{
    /** Old-gen occupancy fraction that initiates a marking cycle. */
    double initiating_occupancy = 0.60;
    /** Single-thread concurrent marking bandwidth (bytes per ns). */
    double mark_bw = 2.0;
    /** CPU burst granularity of the marking thread. */
    Ticks mark_chunk = 300 * units::US;
    /** Fixed part of the stop-the-world remark pause. */
    Ticks remark_base = 120 * units::US;
};

/** Complete VM configuration for one run. */
struct VmConfig
{
    HeapConfig heap;
    GcCostParams gc_costs;
    /** Old-generation collector choice. */
    CollectorKind collector = CollectorKind::Throughput;
    ConcurrentGcParams concurrent;
    /** HotSpot-style ergonomic young-generation resizing. */
    AdaptiveSizeConfig adaptive;
    VmCosts costs;
    /**
     * Monitor admission policy and contended-handoff cost model,
     * applied to every monitor of this VM. Defaults (strict FIFO, zero
     * handoff costs) reproduce the classic monitor byte for byte.
     */
    LockPolicyConfig locks;
    /** GC worker threads; 0 means one per enabled core (HotSpot-style). */
    std::uint32_t gc_threads = 0;
    HelperConfig helpers;
    /** Spawn helper threads (disable for microbenchmark purity). */
    bool enable_helpers = true;
    /**
     * Scheduling group (tenant id) for every thread this VM registers.
     * A VM's safepoints stop only its own group, so several VMs can
     * share one scheduler and contend for cores without sharing pauses.
     * Single-VM runs keep the default group 0.
     */
    std::uint32_t tenant = 0;
    /**
     * Simulated-time guard: a run not finished within this budget
     * throws AbortError (runaway/deadlocked workload). The experiment
     * harness isolates the abort as a per-run failure.
     */
    Ticks max_run_time = 600 * units::SEC;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_RUNTIME_VM_CONFIG_HH
