#include "jvm/gc/gclog.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

#include "jvm/heap/heap.hh"
#include "jvm/runtime/vm.hh"

namespace jscale::jvm {

namespace {

/** Heap occupancy = everything currently residing in the regions. */
Bytes
occupancy(const Heap &heap)
{
    return heap.edenUsed() + heap.survivorUsed() + heap.oldUsed();
}

} // namespace

GcLogWriter::GcLogWriter(std::ostream &os, const Heap &heap)
    : os_(os), heap_(&heap)
{
}

GcLogWriter::GcLogWriter(std::ostream &os, JavaVm &vm)
    : os_(os), vm_(&vm)
{
}

const Heap &
GcLogWriter::theHeap()
{
    if (!heap_)
        heap_ = &vm_->heap();
    return *heap_;
}

void
GcLogWriter::onGcStart(GcKind kind, std::uint64_t seq, Ticks now)
{
    (void)kind;
    (void)seq;
    (void)now;
    // Note: collections mutate the heap at the safepoint, before this
    // callback can observe it, so "before" is reconstructed at the end
    // event from reclaimed bytes; here we only mark the start.
    occupancy_before_ = occupancy(theHeap());
}

void
GcLogWriter::onGcEnd(const GcEvent &event, Ticks now)
{
    (void)now;
    const Bytes after = occupancy(theHeap());
    const Bytes before = after + event.reclaimed_bytes;
    const double secs = static_cast<double>(event.pause()) /
                        static_cast<double>(units::SEC);
    char buf[160];
    const char *cause = event.kind == GcKind::Remark
                            ? "Remark"
                            : "Allocation Failure";
    std::snprintf(buf, sizeof(buf),
                  "[%s (%s)  %lluK->%lluK(%lluK), %.7f secs]",
                  event.kind == GcKind::Full ? "Full GC" : "GC", cause,
                  static_cast<unsigned long long>(before / units::KiB),
                  static_cast<unsigned long long>(after / units::KiB),
                  static_cast<unsigned long long>(
                      theHeap().config().capacity / units::KiB),
                  secs);
    os_ << buf << '\n';
    ++lines_;
}

bool
parseGcLogLine(const std::string &line, GcLogRecord &out)
{
    unsigned long long before_k = 0;
    unsigned long long after_k = 0;
    unsigned long long cap_k = 0;
    double secs = 0.0;
    GcLogRecord rec;
    if (std::sscanf(line.c_str(),
                    "[Full GC (%*[^)])  %lluK->%lluK(%lluK), %lf secs]",
                    &before_k, &after_k, &cap_k, &secs) == 4) {
        rec.full = true;
    } else if (std::sscanf(line.c_str(),
                           "[GC (%*[^)])  %lluK->%lluK(%lluK), %lf secs]",
                           &before_k, &after_k, &cap_k, &secs) == 4) {
        rec.full = false;
    } else {
        return false;
    }
    rec.before = before_k * units::KiB;
    rec.after = after_k * units::KiB;
    rec.capacity = cap_k * units::KiB;
    rec.pause = static_cast<Ticks>(
        std::llround(secs * static_cast<double>(units::SEC)));
    out = rec;
    return true;
}

std::vector<GcLogRecord>
parseGcLog(std::istream &is)
{
    std::vector<GcLogRecord> records;
    std::string line;
    while (std::getline(is, line)) {
        GcLogRecord rec;
        if (parseGcLogLine(line, rec))
            records.push_back(rec);
    }
    return records;
}

GcLogSummary
summarizeGcLog(const std::vector<GcLogRecord> &records)
{
    GcLogSummary s;
    for (const auto &r : records) {
        if (r.full)
            ++s.full_count;
        else
            ++s.minor_count;
        s.total_pause += r.pause;
        s.max_pause = std::max(s.max_pause, r.pause);
        if (r.before > r.after)
            s.total_reclaimed += r.before - r.after;
    }
    return s;
}

} // namespace jscale::jvm
