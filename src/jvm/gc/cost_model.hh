/**
 * @file
 * GcCostModel: converts the object/byte work of a collection into a
 * simulated pause duration.
 *
 * The model follows the structure of HotSpot's throughput collector:
 * a serial setup part, per-mutator root-scanning/TLAB-retirement work,
 * per-record scanning, and copy/mark/compact phases whose bandwidth
 * scales with the GC worker count through an Amdahl-style parallel
 * efficiency curve. Copy traffic additionally pays the machine's NUMA
 * factor in proportion to the fraction of remote-socket traffic.
 */

#ifndef JSCALE_JVM_GC_COST_MODEL_HH
#define JSCALE_JVM_GC_COST_MODEL_HH

#include <cstdint>
#include <vector>

#include "base/units.hh"
#include "jvm/gc/gc_types.hh"
#include "jvm/runtime/vm_config.hh"
#include "machine/machine.hh"

namespace jscale::jvm {

/** One named, priced component of a stop-the-world pause. */
struct GcPhaseCost
{
    /** Static phase name ("root-scan", "copy", ...). */
    const char *name;
    Ticks duration;
};

/** Pause-duration model of the stop-the-world parallel collector. */
class GcCostModel
{
  public:
    /**
     * @param params cost constants
     * @param mach machine (NUMA factor, enabled sockets)
     * @param gc_threads number of GC worker threads
     * @param mutator_threads registered mutators (root-scan work)
     */
    GcCostModel(const GcCostParams &params, const machine::Machine &mach,
                std::uint32_t gc_threads, std::uint32_t mutator_threads);

    /** Pause of a minor (scavenge) collection doing @p work. */
    Ticks minorPause(const MinorWork &work) const;

    /** Pause of a full (mark-compact) collection doing @p work. */
    Ticks fullPause(const FullWork &work) const;

    /**
     * Component breakdown (root-scan / scan / copy) of a minor pause.
     * Durations partition the pause: they sum exactly to minorPause().
     */
    std::vector<GcPhaseCost> minorPhases(const MinorWork &work) const;

    /**
     * Component breakdown (root-scan / mark / compact) of a full pause;
     * durations sum exactly to fullPause().
     */
    std::vector<GcPhaseCost> fullPhases(const FullWork &work) const;

    /**
     * Single-thread pause of a thread-local compartment collection
     * (no safepoint, no parallel workers, node-local traffic).
     */
    Ticks localPause(const MinorWork &work) const;

    /** Effective parallel bandwidth for @p per_thread bytes/ns/worker. */
    double bandwidth(double per_thread) const;

    /** NUMA multiplier applied to cross-socket copy traffic. */
    double numaFactor() const;

    std::uint32_t gcThreads() const { return gc_threads_; }

    /**
     * Degrade (or restore) the parallel worker count at runtime (fault
     * injection: GC-worker loss). Clamped to at least one worker so the
     * collector always makes progress.
     */
    void setGcThreads(std::uint32_t n)
    {
        gc_threads_ = n < 1 ? 1 : n;
    }

  private:
    GcCostParams params_;
    const machine::Machine &mach_;
    std::uint32_t gc_threads_;
    std::uint32_t mutator_threads_;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_GC_COST_MODEL_HH
