#include "jvm/gc/adaptive.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jscale::jvm {

AdaptiveSizePolicy::AdaptiveSizePolicy(const AdaptiveSizeConfig &config,
                                       double initial_young_fraction)
    : config_(config), young_fraction_(initial_young_fraction)
{
    jscale_assert(config.min_young_fraction > 0.0 &&
                      config.max_young_fraction < 1.0 &&
                      config.min_young_fraction <=
                          config.max_young_fraction,
                  "bad young-fraction bounds");
    jscale_assert(config.step > 1.0, "resize step must exceed 1");
    stats_.final_young_fraction = young_fraction_;
}

double
AdaptiveSizePolicy::decide(Ticks mutator_interval, Ticks pause,
                           Bytes old_live, Bytes heap_capacity)
{
    const double total =
        static_cast<double>(mutator_interval) + static_cast<double>(pause);
    if (total <= 0.0)
        return young_fraction_;
    const double share = static_cast<double>(pause) / total;

    double proposed = young_fraction_;
    if (share > config_.gc_time_ratio_target) {
        proposed = std::min(young_fraction_ * config_.step,
                            config_.max_young_fraction);
    } else if (share < 0.5 * config_.gc_time_ratio_target) {
        proposed = std::max(young_fraction_ / config_.step,
                            config_.min_young_fraction);
    }

    // The old generation must keep headroom over its live data.
    const double max_young_for_old =
        1.0 - config_.old_headroom * static_cast<double>(old_live) /
                  static_cast<double>(heap_capacity);
    proposed = std::min(proposed, max_young_for_old);
    proposed = std::clamp(proposed, config_.min_young_fraction,
                          config_.max_young_fraction);

    if (proposed > young_fraction_)
        ++stats_.grows;
    else if (proposed < young_fraction_)
        ++stats_.shrinks;
    young_fraction_ = proposed;
    stats_.final_young_fraction = proposed;
    return proposed;
}

} // namespace jscale::jvm
