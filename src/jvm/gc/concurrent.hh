/**
 * @file
 * ConcurrentMarker: the marking thread of the concurrent old-generation
 * collector (CMS-style alternative to the paper's throughput collector).
 *
 * When the VM starts a cycle, the marker burns CPU proportional to the
 * live old-generation data — competing with mutators for cores exactly
 * like the paper's helper threads — and reports completion, after which
 * the VM runs a short stop-the-world remark+sweep. If the old
 * generation fills before the cycle finishes, the VM falls back to a
 * stop-the-world full collection (concurrent mode failure).
 */

#ifndef JSCALE_JVM_GC_CONCURRENT_HH
#define JSCALE_JVM_GC_CONCURRENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/units.hh"
#include "os/scheduler.hh"
#include "os/thread.hh"

namespace jscale::jvm {

/** The background marking thread. One per VM in concurrent mode. */
class ConcurrentMarker : public os::SchedClient
{
  public:
    /**
     * @param sched owning scheduler
     * @param chunk CPU burst granularity while marking
     * @param on_cycle_done invoked (from the marker's burst context)
     *        when the current cycle's budget is exhausted
     */
    ConcurrentMarker(os::Scheduler &sched, Ticks chunk,
                     std::function<void()> on_cycle_done)
        : sched_(sched), chunk_(chunk),
          on_cycle_done_(std::move(on_cycle_done))
    {}

    /** @name SchedClient */
    /** @{ */
    Ticks
    planBurst(Ticks, Ticks limit) override
    {
        if (remaining_ == 0)
            return std::min<Ticks>(1 * units::US, limit); // idle tick
        return std::min({remaining_, chunk_, limit});
    }

    os::BurstOutcome
    finishBurst(Ticks, Ticks elapsed) override
    {
        if (remaining_ == 0)
            return os::BurstOutcome::Blocked; // parked until a cycle
        remaining_ = elapsed >= remaining_ ? 0 : remaining_ - elapsed;
        if (remaining_ > 0)
            return os::BurstOutcome::Ready;
        // Cycle finished — unless it was aborted meanwhile.
        const std::uint64_t done_cycle = cycle_id_;
        if (!aborted_ && on_cycle_done_)
            on_cycle_done_();
        (void)done_cycle;
        return os::BurstOutcome::Blocked;
    }

    std::string clientName() const override { return "concurrent-mark"; }
    /** @} */

    /** Bind the scheduler-side record (done once by the VM). */
    void bindOsThread(os::OsThread *t) { os_thread_ = t; }

    os::OsThread *osThread() const { return os_thread_; }

    /** Begin a marking cycle of @p budget CPU ticks; wakes the thread. */
    void
    beginCycle(Ticks budget)
    {
        remaining_ = std::max<Ticks>(budget, 1);
        aborted_ = false;
        ++cycle_id_;
        if (os_thread_->state() == os::ThreadState::Blocked)
            sched_.wake(os_thread_);
    }

    /** Abort the in-flight cycle (concurrent mode failure). */
    void
    abortCycle()
    {
        aborted_ = true;
        remaining_ = 0;
    }

    /** Whether a cycle is currently marking. */
    bool marking() const { return remaining_ > 0 && !aborted_; }

  private:
    os::Scheduler &sched_;
    Ticks chunk_;
    std::function<void()> on_cycle_done_;
    os::OsThread *os_thread_ = nullptr;
    Ticks remaining_ = 0;
    bool aborted_ = false;
    std::uint64_t cycle_id_ = 0;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_GC_CONCURRENT_HH
