#include "jvm/gc/cost_model.hh"

#include <cmath>

#include "base/logging.hh"

namespace jscale::jvm {

GcCostModel::GcCostModel(const GcCostParams &params,
                         const machine::Machine &mach,
                         std::uint32_t gc_threads,
                         std::uint32_t mutator_threads)
    : params_(params), mach_(mach), gc_threads_(gc_threads),
      mutator_threads_(mutator_threads)
{
    jscale_assert(gc_threads_ >= 1, "need at least one GC worker");
}

double
GcCostModel::bandwidth(double per_thread) const
{
    const double n = static_cast<double>(gc_threads_);
    return per_thread * n / (1.0 + params_.parallel_alpha * (n - 1.0));
}

double
GcCostModel::numaFactor() const
{
    const double sockets = static_cast<double>(mach_.enabledSockets());
    if (sockets <= 1.0)
        return 1.0;
    const double remote_fraction = 1.0 - 1.0 / sockets;
    return 1.0 +
           remote_fraction * (mach_.config().numa_remote_factor - 1.0);
}

Ticks
GcCostModel::minorPause(const MinorWork &w) const
{
    double cost = static_cast<double>(params_.minor_base);
    cost += static_cast<double>(params_.root_scan_per_thread) *
            static_cast<double>(mutator_threads_);
    cost += params_.scan_cost_per_object *
            static_cast<double>(w.scanned_objects);
    const double moved = static_cast<double>(w.copied_bytes) +
                         static_cast<double>(w.promoted_bytes);
    cost += moved * numaFactor() / bandwidth(params_.copy_bw_per_thread);
    return static_cast<Ticks>(std::llround(cost));
}

Ticks
GcCostModel::fullPause(const FullWork &w) const
{
    double cost = static_cast<double>(params_.full_base);
    cost += static_cast<double>(params_.root_scan_per_thread) *
            static_cast<double>(mutator_threads_);
    cost += params_.scan_cost_per_object *
            static_cast<double>(w.scanned_objects);
    const double live = static_cast<double>(w.live_bytes);
    cost += live / bandwidth(params_.mark_bw_per_thread);
    cost += live * numaFactor() / bandwidth(params_.compact_bw_per_thread);
    return static_cast<Ticks>(std::llround(cost));
}

Ticks
GcCostModel::localPause(const MinorWork &w) const
{
    double cost = static_cast<double>(params_.local_base);
    cost += params_.scan_cost_per_object *
            static_cast<double>(w.scanned_objects);
    cost += (static_cast<double>(w.copied_bytes) +
             static_cast<double>(w.promoted_bytes)) /
            params_.copy_bw_per_thread;
    return static_cast<Ticks>(std::llround(cost));
}

} // namespace jscale::jvm
