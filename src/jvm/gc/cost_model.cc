#include "jvm/gc/cost_model.hh"

#include <cmath>

#include "base/logging.hh"

namespace jscale::jvm {

GcCostModel::GcCostModel(const GcCostParams &params,
                         const machine::Machine &mach,
                         std::uint32_t gc_threads,
                         std::uint32_t mutator_threads)
    : params_(params), mach_(mach), gc_threads_(gc_threads),
      mutator_threads_(mutator_threads)
{
    jscale_assert(gc_threads_ >= 1, "need at least one GC worker");
}

double
GcCostModel::bandwidth(double per_thread) const
{
    const double n = static_cast<double>(gc_threads_);
    return per_thread * n / (1.0 + params_.parallel_alpha * (n - 1.0));
}

double
GcCostModel::numaFactor() const
{
    const double sockets = static_cast<double>(mach_.enabledSockets());
    if (sockets <= 1.0)
        return 1.0;
    const double remote_fraction = 1.0 - 1.0 / sockets;
    return 1.0 +
           remote_fraction * (mach_.config().numa_remote_factor - 1.0);
}

namespace {

/**
 * Turn cumulative phase costs (doubles, in accumulation order) into
 * integer durations by rounding the cumulative boundaries, so the phase
 * durations always sum exactly to the rounded total pause.
 */
std::vector<GcPhaseCost>
phasesFromCumulative(const char *const names[],
                     const double cumulative[], std::size_t n)
{
    std::vector<GcPhaseCost> phases;
    phases.reserve(n);
    Ticks prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Ticks edge = static_cast<Ticks>(std::llround(cumulative[i]));
        phases.push_back({names[i], edge - prev});
        prev = edge;
    }
    return phases;
}

} // namespace

Ticks
GcCostModel::minorPause(const MinorWork &w) const
{
    double cost = static_cast<double>(params_.minor_base);
    cost += static_cast<double>(params_.root_scan_per_thread) *
            static_cast<double>(mutator_threads_);
    cost += params_.scan_cost_per_object *
            static_cast<double>(w.scanned_objects);
    const double moved = static_cast<double>(w.copied_bytes) +
                         static_cast<double>(w.promoted_bytes);
    cost += moved * numaFactor() / bandwidth(params_.copy_bw_per_thread);
    return static_cast<Ticks>(std::llround(cost));
}

std::vector<GcPhaseCost>
GcCostModel::minorPhases(const MinorWork &w) const
{
    // Accumulation order mirrors minorPause so the last cumulative value
    // rounds to the identical total.
    double cost = static_cast<double>(params_.minor_base);
    cost += static_cast<double>(params_.root_scan_per_thread) *
            static_cast<double>(mutator_threads_);
    const double after_roots = cost;
    cost += params_.scan_cost_per_object *
            static_cast<double>(w.scanned_objects);
    const double after_scan = cost;
    const double moved = static_cast<double>(w.copied_bytes) +
                         static_cast<double>(w.promoted_bytes);
    cost += moved * numaFactor() / bandwidth(params_.copy_bw_per_thread);

    static const char *const names[] = {"root-scan", "scan", "copy"};
    const double cumulative[] = {after_roots, after_scan, cost};
    return phasesFromCumulative(names, cumulative, 3);
}

Ticks
GcCostModel::fullPause(const FullWork &w) const
{
    double cost = static_cast<double>(params_.full_base);
    cost += static_cast<double>(params_.root_scan_per_thread) *
            static_cast<double>(mutator_threads_);
    cost += params_.scan_cost_per_object *
            static_cast<double>(w.scanned_objects);
    const double live = static_cast<double>(w.live_bytes);
    cost += live / bandwidth(params_.mark_bw_per_thread);
    cost += live * numaFactor() / bandwidth(params_.compact_bw_per_thread);
    return static_cast<Ticks>(std::llround(cost));
}

std::vector<GcPhaseCost>
GcCostModel::fullPhases(const FullWork &w) const
{
    double cost = static_cast<double>(params_.full_base);
    cost += static_cast<double>(params_.root_scan_per_thread) *
            static_cast<double>(mutator_threads_);
    const double after_roots = cost;
    cost += params_.scan_cost_per_object *
            static_cast<double>(w.scanned_objects);
    const double live = static_cast<double>(w.live_bytes);
    cost += live / bandwidth(params_.mark_bw_per_thread);
    const double after_mark = cost;
    cost += live * numaFactor() / bandwidth(params_.compact_bw_per_thread);

    // The per-object scan work of a full collection is part of marking.
    static const char *const names[] = {"root-scan", "mark", "compact"};
    const double cumulative[] = {after_roots, after_mark, cost};
    return phasesFromCumulative(names, cumulative, 3);
}

Ticks
GcCostModel::localPause(const MinorWork &w) const
{
    double cost = static_cast<double>(params_.local_base);
    cost += params_.scan_cost_per_object *
            static_cast<double>(w.scanned_objects);
    cost += (static_cast<double>(w.copied_bytes) +
             static_cast<double>(w.promoted_bytes)) /
            params_.copy_bw_per_thread;
    return static_cast<Ticks>(std::llround(cost));
}

} // namespace jscale::jvm
