/**
 * @file
 * Shared GC type definitions: collection kinds and per-collection work
 * summaries, used by the heap (which does the object bookkeeping), the
 * GC coordinator (which turns work into simulated pause time) and the
 * runtime listener interface.
 */

#ifndef JSCALE_JVM_GC_GC_TYPES_HH
#define JSCALE_JVM_GC_GC_TYPES_HH

#include <cstdint>

#include "base/units.hh"

namespace jscale::jvm {

/** Collection kinds (throughput collector + concurrent-old remark). */
enum class GcKind : std::uint8_t { Minor, Full, Remark };

/** Render a GcKind name. */
const char *gcKindName(GcKind k);

/** Object/byte work performed by one minor (nursery) collection. */
struct MinorWork
{
    std::uint64_t scanned_objects = 0;
    Bytes scanned_bytes = 0;
    /** Bytes of dead nursery objects reclaimed for free. */
    Bytes reclaimed_bytes = 0;
    /** Live bytes copied into the survivor space. */
    Bytes copied_bytes = 0;
    /** Live bytes promoted into the old generation. */
    Bytes promoted_bytes = 0;
    /** Survivor space overflowed (forced promotion happened). */
    bool survivor_overflow = false;
    /** Old-gen pressure demands a full collection right after. */
    bool needs_full = false;
};

/** Object/byte work performed by one full (whole-heap) collection. */
struct FullWork
{
    std::uint64_t scanned_objects = 0;
    Bytes reclaimed_bytes = 0;
    /** Live bytes marked and compacted. */
    Bytes live_bytes = 0;
};

/** Completed-collection summary delivered to listeners and stats. */
struct GcEvent
{
    GcKind kind = GcKind::Minor;
    std::uint64_t sequence = 0;
    /** Time the triggering allocation failed (request time). */
    Ticks requested_at = 0;
    /** Time all threads were parked (safepoint reached). */
    Ticks safepoint_at = 0;
    /** Time the collection finished and the world resumed. */
    Ticks finished_at = 0;
    /** Bytes copied or compacted. */
    Bytes moved_bytes = 0;
    /** Bytes promoted (minor only). */
    Bytes promoted_bytes = 0;
    /** Bytes reclaimed. */
    Bytes reclaimed_bytes = 0;

    /** Total stop-the-world pause including time-to-safepoint. */
    Ticks pause() const { return finished_at - requested_at; }

    /** Time-to-safepoint component of the pause. */
    Ticks timeToSafepoint() const { return safepoint_at - requested_at; }
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_GC_GC_TYPES_HH
