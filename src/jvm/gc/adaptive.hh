/**
 * @file
 * AdaptiveSizePolicy: HotSpot-style ergonomic resizing of the young
 * generation for the throughput collector (-XX:+UseAdaptiveSizePolicy).
 *
 * After each stop-the-world minor collection the policy compares the
 * observed GC overhead (pause time relative to the preceding mutator
 * interval) against a target ratio: when GC overhead is too high it
 * grows the young generation (fewer, larger collections), and when
 * overhead is comfortably low it shrinks the young generation to return
 * headroom to the old generation — bounded so the old generation always
 * keeps room for the live data.
 */

#ifndef JSCALE_JVM_GC_ADAPTIVE_HH
#define JSCALE_JVM_GC_ADAPTIVE_HH

#include <cstdint>

#include "base/units.hh"

namespace jscale::jvm {

/** Tunables for adaptive young-generation sizing. */
struct AdaptiveSizeConfig
{
    bool enabled = false;
    /** Target GC share of execution time (HotSpot GCTimeRatio-like). */
    double gc_time_ratio_target = 0.05;
    /** Bounds on the young generation's share of the heap. */
    double min_young_fraction = 0.15;
    double max_young_fraction = 0.60;
    /** Multiplicative resize step per decision. */
    double step = 1.15;
    /** Old gen must retain this headroom factor over live data. */
    double old_headroom = 1.5;
};

/** Statistics of adaptive-sizing decisions over one run. */
struct AdaptiveSizeStats
{
    std::uint64_t grows = 0;
    std::uint64_t shrinks = 0;
    double final_young_fraction = 0.0;
};

/** The decision engine; the VM applies its output to the heap. */
class AdaptiveSizePolicy
{
  public:
    AdaptiveSizePolicy(const AdaptiveSizeConfig &config,
                       double initial_young_fraction);

    /**
     * Decide a new young fraction after a minor collection.
     *
     * @param mutator_interval mutator time since the previous collection
     * @param pause this collection's pause
     * @param old_live live bytes in the old generation
     * @param heap_capacity total heap size
     * @return the (possibly unchanged) young fraction to apply
     */
    double decide(Ticks mutator_interval, Ticks pause, Bytes old_live,
                  Bytes heap_capacity);

    double youngFraction() const { return young_fraction_; }
    const AdaptiveSizeStats &adaptiveStats() const { return stats_; }

  private:
    AdaptiveSizeConfig config_;
    double young_fraction_;
    AdaptiveSizeStats stats_;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_GC_ADAPTIVE_HH
