/**
 * @file
 * GcLogWriter: HotSpot-style GC logging (-verbose:gc / -XX:+PrintGC).
 *
 * Subscribes to the runtime probe chain and writes one log line per
 * collection in the classic format operators know how to read:
 *
 *   [GC (Allocation Failure)  412K->67K(1024K), 0.0003120 secs]
 *   [Full GC (Ergonomics)  897K->411K(1024K), 0.0041230 secs]
 *
 * A companion parser turns a log back into structured records, so logs
 * written by the simulator round-trip (tested) and external HotSpot-ish
 * logs can be summarized with the same tooling.
 */

#ifndef JSCALE_JVM_GC_GCLOG_HH
#define JSCALE_JVM_GC_GCLOG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/units.hh"
#include "jvm/runtime/listener.hh"

namespace jscale::jvm {

class Heap;
class JavaVm;

/** One parsed GC log record. */
struct GcLogRecord
{
    bool full = false;
    /** Heap occupancy before/after, and capacity, in bytes. */
    Bytes before = 0;
    Bytes after = 0;
    Bytes capacity = 0;
    /** Pause in ticks (ns). */
    Ticks pause = 0;

    bool operator==(const GcLogRecord &) const = default;
};

/**
 * The logging agent. Needs the heap to report occupancy; subscribe via
 * JavaVm::listeners() before run().
 */
class GcLogWriter : public RuntimeListener
{
  public:
    /** @param os destination stream; @param heap occupancy source. */
    GcLogWriter(std::ostream &os, const Heap &heap);

    /**
     * Deferred-binding variant: the heap is resolved from @p vm at the
     * first GC event, so the writer can be subscribed before run()
     * creates the heap.
     */
    GcLogWriter(std::ostream &os, JavaVm &vm);

    void onGcStart(GcKind kind, std::uint64_t seq, Ticks now) override;
    void onGcEnd(const GcEvent &event, Ticks now) override;

    /** Number of lines written. */
    std::uint64_t lines() const { return lines_; }

  private:
    const Heap &theHeap();

    std::ostream &os_;
    const Heap *heap_ = nullptr;
    JavaVm *vm_ = nullptr;
    Bytes occupancy_before_ = 0;
    std::uint64_t lines_ = 0;
};

/**
 * Parse one GC log line. @return true and fill @p out on success;
 * false for non-GC lines.
 */
bool parseGcLogLine(const std::string &line, GcLogRecord &out);

/** Parse a whole log stream, skipping non-GC lines. */
std::vector<GcLogRecord> parseGcLog(std::istream &is);

/** Summary statistics over parsed records. */
struct GcLogSummary
{
    std::uint64_t minor_count = 0;
    std::uint64_t full_count = 0;
    Ticks total_pause = 0;
    Ticks max_pause = 0;
    Bytes total_reclaimed = 0;
};

/** Compute the summary of a parsed log. */
GcLogSummary summarizeGcLog(const std::vector<GcLogRecord> &records);

} // namespace jscale::jvm

#endif // JSCALE_JVM_GC_GCLOG_HH
