/**
 * @file
 * Heap object model.
 *
 * Objects are lightweight records tracked by the heap: identity, owner
 * thread, size, generation-region residence, GC age, and the two
 * quantities the paper's lifespan metric needs — the global
 * allocated-bytes counter at birth, and the owner-local allocated-bytes
 * threshold at which the object dies. Lifespan at death is
 * (global allocated bytes now) - (global allocated bytes at birth),
 * exactly the Elephant-Tracks metric used in the paper.
 */

#ifndef JSCALE_JVM_OBJECT_OBJECT_HH
#define JSCALE_JVM_OBJECT_OBJECT_HH

#include <cstdint>
#include <limits>

#include "base/units.hh"

namespace jscale::jvm {

/** Unique object identity (never reused within a run). */
using ObjectId = std::uint64_t;

/** Allocation-site identifier, assigned by workload models. */
using AllocSiteId = std::uint32_t;

/** Index of the owning mutator thread within the application. */
using MutatorIndex = std::uint32_t;

/** Owner-local TTL marking an object immortal for the whole run. */
constexpr Bytes kImmortalTtl = std::numeric_limits<Bytes>::max();

/** Generation region an object currently resides in. */
enum class Region : std::uint8_t { Eden, Survivor, Old };

/** Render a region name. */
const char *regionName(Region r);

/** Heap-internal handle to an object record (index into the pool). */
using ObjectHandle = std::uint32_t;

/** Sentinel for "no object". */
constexpr ObjectHandle kNullHandle =
    std::numeric_limits<ObjectHandle>::max();

/**
 * Record-shaped snapshot of one object's bookkeeping. The heap stores
 * object state in the columnar ObjectLedger (see jvm/heap/ledger.hh);
 * this AoS form is materialized on demand for listener probes, which
 * want one coherent record per alloc/death notification.
 */
struct ObjectRecord
{
    ObjectId id = 0;
    MutatorIndex owner = 0;
    AllocSiteId site = 0;
    Bytes size = 0;
    /** Global allocated-bytes counter at birth. */
    Bytes birth_global_bytes = 0;
    /** Simulated time of birth. */
    Ticks birth_time = 0;
    /**
     * Owner-local allocated-bytes threshold at which the object dies;
     * kImmortalTtl-marked objects die only at VM shutdown.
     */
    Bytes death_owner_bytes = 0;
    /** Number of minor collections survived. */
    std::uint8_t age = 0;
    Region region = Region::Eden;
    bool dead = false;
    /** True for immortal (application-lifetime) data. */
    bool pinned = false;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_OBJECT_OBJECT_HH
