/**
 * @file
 * Columnar object ledger: struct-of-arrays bookkeeping for heap objects.
 *
 * Per-object state lives in parallel columns (identity, owner, size,
 * birth clocks, death threshold, age, and a packed region/dead/pinned
 * meta byte) indexed by ObjectHandle, so the hot sweeps — thread-exit
 * reaping, minor-collection scans, full-GC compaction — each touch only
 * the few narrow columns they need instead of pulling a 64-byte record
 * per object through the cache.
 *
 * Membership replaces the old intrusive per-owner linked lists with
 * per-owner *rosters*: append-only vectors of (handle, id) pairs in
 * allocation order. Death no longer performs list surgery (three random
 * pointer writes per kill); it just sets the dead bit. Rosters tolerate
 * stale entries — an (handle, id) pair whose slot died or was reused no
 * longer matches the ids column and is skipped — and are compacted
 * lazily once stale entries dominate, so batched kills degrade into one
 * linear sweep over densely packed pairs.
 *
 * The AoS ObjectRecord survives as a *materialized view* (view()) built
 * only when listener probes need a record-shaped snapshot.
 */

#ifndef JSCALE_JVM_HEAP_LEDGER_HH
#define JSCALE_JVM_HEAP_LEDGER_HH

#include <cstdint>
#include <vector>

#include "base/units.hh"
#include "jvm/object/object.hh"

namespace jscale::jvm {

/** Struct-of-arrays store for all per-object heap bookkeeping. */
class ObjectLedger
{
  public:
    /** One per-owner roster membership: handle plus the id that guards
     *  against slot reuse (the pair is stale once they disagree). */
    struct RosterEntry
    {
        ObjectHandle handle;
        ObjectId id;
    };

    explicit ObjectLedger(std::uint32_t n_owners);

    /**
     * Create an object, reusing a free slot when available, and append
     * it to its owner's roster. Returns its handle.
     */
    ObjectHandle alloc(ObjectId id, MutatorIndex owner, AllocSiteId site,
                       Bytes size, Bytes birth_global, Ticks birth_time,
                       Bytes death_owner, bool pinned);

    /** Reclaim a slot (GC swept the dead object); id 0 marks it free. */
    void free(ObjectHandle h);

    /** @name Column accessors */
    /** @{ */
    ObjectId id(ObjectHandle h) const { return ids_[h]; }
    MutatorIndex owner(ObjectHandle h) const { return owners_[h]; }
    AllocSiteId site(ObjectHandle h) const { return sites_[h]; }
    Bytes size(ObjectHandle h) const { return sizes_[h]; }
    Bytes birthGlobal(ObjectHandle h) const { return birth_global_[h]; }
    Ticks birthTime(ObjectHandle h) const { return birth_time_[h]; }
    Bytes deathOwner(ObjectHandle h) const { return death_owner_[h]; }
    std::uint8_t age(ObjectHandle h) const { return age_[h]; }
    void bumpAge(ObjectHandle h) { ++age_[h]; }
    Region region(ObjectHandle h) const
    {
        return static_cast<Region>(meta_[h] & kRegionMask);
    }
    void
    setRegion(ObjectHandle h, Region r)
    {
        meta_[h] = static_cast<std::uint8_t>(
            (meta_[h] & ~kRegionMask) | static_cast<std::uint8_t>(r));
    }
    bool dead(ObjectHandle h) const { return meta_[h] & kDeadBit; }
    bool pinned(ObjectHandle h) const { return meta_[h] & kPinnedBit; }
    /** @} */

    /** Set the dead bit and retire the object from its owner's live
     *  census (the roster entry itself goes stale, no surgery). */
    void
    markDead(ObjectHandle h)
    {
        meta_[h] |= kDeadBit;
        --roster_live_[owners_[h]];
    }

    /** Materialize a record-shaped snapshot for listener probes. */
    ObjectRecord view(ObjectHandle h) const;

    /** @name Rosters */
    /** @{ */
    const std::vector<RosterEntry> &
    roster(MutatorIndex owner) const
    {
        return rosters_[owner];
    }

    /** Live objects currently credited to @p owner. */
    std::uint64_t
    rosterLive(MutatorIndex owner) const
    {
        return roster_live_[owner];
    }

    /** True when the entry still names a live object (not stale). */
    bool
    rosterMatches(const RosterEntry &e) const
    {
        return ids_[e.handle] == e.id && !dead(e.handle);
    }

    /**
     * Replace @p owner's roster wholesale (thread-exit sweeps rebuild
     * the roster from its pinned survivors). Does not touch the live
     * census — the caller already retired the dead via markDead().
     */
    void
    replaceRoster(MutatorIndex owner, std::vector<RosterEntry> entries)
    {
        rosters_[owner] = std::move(entries);
    }

    /** Drop stale roster entries once they dominate the live ones. */
    void maybeCompactRoster(MutatorIndex owner);
    /** @} */

    /** Total slots ever created (free-listed ones included). */
    std::size_t slots() const { return ids_.size(); }

  private:
    static constexpr std::uint8_t kRegionMask = 0x03;
    static constexpr std::uint8_t kDeadBit = 0x04;
    static constexpr std::uint8_t kPinnedBit = 0x08;

    std::vector<ObjectId> ids_;
    std::vector<MutatorIndex> owners_;
    std::vector<AllocSiteId> sites_;
    std::vector<Bytes> sizes_;
    std::vector<Bytes> birth_global_;
    std::vector<Ticks> birth_time_;
    std::vector<Bytes> death_owner_;
    std::vector<std::uint8_t> age_;
    /** Packed region (2 bits) | dead | pinned. */
    std::vector<std::uint8_t> meta_;
    std::vector<ObjectHandle> free_list_;

    std::vector<std::vector<RosterEntry>> rosters_;
    std::vector<std::uint64_t> roster_live_;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_HEAP_LEDGER_HH
