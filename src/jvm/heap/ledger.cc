#include "jvm/heap/ledger.hh"

namespace jscale::jvm {

ObjectLedger::ObjectLedger(std::uint32_t n_owners)
    : rosters_(n_owners), roster_live_(n_owners, 0)
{}

ObjectHandle
ObjectLedger::alloc(ObjectId id, MutatorIndex owner, AllocSiteId site,
                    Bytes size, Bytes birth_global, Ticks birth_time,
                    Bytes death_owner, bool pinned)
{
    ObjectHandle h;
    if (!free_list_.empty()) {
        h = free_list_.back();
        free_list_.pop_back();
    } else {
        h = static_cast<ObjectHandle>(ids_.size());
        ids_.emplace_back();
        owners_.emplace_back();
        sites_.emplace_back();
        sizes_.emplace_back();
        birth_global_.emplace_back();
        birth_time_.emplace_back();
        death_owner_.emplace_back();
        age_.emplace_back();
        meta_.emplace_back();
    }
    ids_[h] = id;
    owners_[h] = owner;
    sites_[h] = site;
    sizes_[h] = size;
    birth_global_[h] = birth_global;
    birth_time_[h] = birth_time;
    death_owner_[h] = death_owner;
    age_[h] = 0;
    meta_[h] = static_cast<std::uint8_t>(Region::Eden) |
               (pinned ? kPinnedBit : std::uint8_t{0});
    rosters_[owner].push_back(RosterEntry{h, id});
    ++roster_live_[owner];
    return h;
}

void
ObjectLedger::free(ObjectHandle h)
{
    ids_[h] = 0; // invalidates any roster or death-queue reference
    free_list_.push_back(h);
}

ObjectRecord
ObjectLedger::view(ObjectHandle h) const
{
    ObjectRecord r;
    r.id = ids_[h];
    r.owner = owners_[h];
    r.site = sites_[h];
    r.size = sizes_[h];
    r.birth_global_bytes = birth_global_[h];
    r.birth_time = birth_time_[h];
    r.death_owner_bytes = death_owner_[h];
    r.age = age_[h];
    r.region = region(h);
    r.dead = dead(h);
    r.pinned = pinned(h);
    return r;
}

void
ObjectLedger::maybeCompactRoster(MutatorIndex owner)
{
    std::vector<RosterEntry> &roster = rosters_[owner];
    // Compact only once stale pairs outnumber live ones and the roster
    // is big enough for the rewrite to matter — keeps the amortized
    // cost of compaction O(1) per death.
    if (roster.size() <= 64 || roster.size() <= 2 * roster_live_[owner])
        return;
    std::size_t out = 0;
    for (const RosterEntry &e : roster) {
        if (rosterMatches(e))
            roster[out++] = e;
    }
    roster.resize(out);
}

} // namespace jscale::jvm
