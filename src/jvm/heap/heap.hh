/**
 * @file
 * Generational heap model.
 *
 * Layout follows the HotSpot throughput collector the paper configured:
 * a young generation (eden + two survivor semi-spaces) and an old
 * generation. Allocation bump-allocates into eden; minor collections scan
 * the nursery, reclaim dead objects, copy live ones into the survivor
 * space and promote by age or on survivor overflow; full collections
 * mark-compact the whole heap.
 *
 * The heap also owns the lifespan bookkeeping central to the paper:
 * object deaths are driven by owner-local allocation progress, while
 * lifespans are recorded in *global* allocated bytes — so a suspended
 * owner's objects accumulate lifespan while other threads allocate,
 * reproducing the interference mechanism of Sec. III-B.
 *
 * The optional compartmentalized mode implements the paper's future-work
 * proposal (Sec. IV): eden is split into per-thread compartments that are
 * collected independently, isolating objects from cross-thread lifetime
 * interference at collection time.
 */

#ifndef JSCALE_JVM_HEAP_HEAP_HH
#define JSCALE_JVM_HEAP_HEAP_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "base/units.hh"
#include "jvm/gc/gc_types.hh"
#include "jvm/heap/ledger.hh"
#include "jvm/object/object.hh"
#include "jvm/runtime/listener.hh"
#include "stats/stats.hh"

namespace jscale::jvm {

/** Heap geometry and policy knobs. */
struct HeapConfig
{
    /** Total heap capacity (young + old). */
    Bytes capacity = 64 * units::MiB;
    /** Fraction of the heap given to the young generation. */
    double young_fraction = 1.0 / 3.0;
    /** Fraction of the young generation given to each survivor space. */
    double survivor_fraction = 0.08;
    /** Minor-GC survival count after which an object is promoted. */
    std::uint8_t tenure_threshold = 3;
    /** Old-gen occupancy fraction that demands a full collection. */
    double full_gc_trigger = 0.95;
    /** Split eden into independently collected per-thread compartments. */
    bool compartmentalized = false;
    /**
     * Thread-local allocation buffer size (0 disables TLABs). With
     * TLABs, threads reserve eden space in tlab_size chunks and bump
     * within them; the unused remainder is wasted at refill time, as in
     * HotSpot.
     */
    Bytes tlab_size = 0;
};

/** Outcome of an allocation attempt. */
enum class AllocStatus
{
    Ok,
    /** Eden (or the owner's compartment) is exhausted; run a GC. */
    NeedsGc,
};

/** Aggregate heap statistics for one run. */
struct HeapStats
{
    std::uint64_t objects_allocated = 0;
    std::uint64_t objects_died = 0;
    Bytes bytes_allocated = 0;
    Bytes bytes_died = 0;
    Bytes peak_live_bytes = 0;
    /** TLAB refills performed (TLAB mode only). */
    std::uint64_t tlab_refills = 0;
    /** Eden bytes discarded as TLAB remainder waste. */
    Bytes tlab_waste = 0;
    /** Lifespans (global allocated bytes between birth and death). */
    stats::LogHistogram lifespan;
};

/**
 * The generational heap. All mutation happens from the simulation thread;
 * collections are invoked by the GC coordinator while the world is
 * stopped.
 */
class Heap
{
  public:
    /**
     * @param config geometry/policy
     * @param n_mutators number of application threads (owners)
     * @param listeners probe chain for alloc/death events (may be null)
     */
    Heap(const HeapConfig &config, std::uint32_t n_mutators,
         const ListenerChain *listeners);

    const HeapConfig &config() const { return config_; }

    /**
     * Attempt to allocate @p size bytes for @p owner with owner-local
     * TTL @p ttl_owner_bytes (kImmortalTtl pins the object for the run).
     * On success the object is created, death processing for the owner
     * runs, and listeners fire. On NeedsGc no state changes.
     */
    AllocStatus allocate(MutatorIndex owner, Bytes size,
                         Bytes ttl_owner_bytes, AllocSiteId site, Ticks now);

    /**
     * Kill all remaining non-pinned objects owned by @p owner (thread
     * exit: its task-scoped data becomes unreachable).
     */
    void killThreadObjects(MutatorIndex owner, Ticks now);

    /** Kill everything that is still alive (VM shutdown). */
    void killAllRemaining(Ticks now);

    /**
     * Minor collection over the nursery. @p compartment restricts the
     * eden scan to one compartment (compartmentalized mode only; -1 scans
     * all of eden). Survivor space is always scanned.
     */
    MinorWork collectMinor(Ticks now, std::int32_t compartment = -1);

    /** Full mark-compact collection over the whole heap. */
    FullWork collectFull(Ticks now);

    /**
     * Sweep only the old generation (the reclamation step of the
     * concurrent collector's remark pause): dead old objects are freed,
     * live ones stay in place; the nursery is untouched.
     */
    FullWork sweepOld(Ticks now);

    /**
     * Thread-local collection of @p owner's eden compartment
     * (compartmentalized mode only): dead objects are reclaimed, live
     * objects are compacted in place (aging there) and promoted to the
     * old generation once tenured. Does not touch other compartments or
     * the survivor space, so it needs no global safepoint.
     */
    MinorWork collectCompartment(MutatorIndex owner, Ticks now);

    /** @name Geometry and occupancy */
    /** @{ */
    Bytes edenCapacity() const { return eden_capacity_; }
    Bytes survivorCapacity() const { return survivor_capacity_; }
    Bytes oldCapacity() const { return old_capacity_; }
    Bytes edenUsed() const { return eden_used_total_; }
    Bytes survivorUsed() const { return survivor_used_; }
    Bytes oldUsed() const { return old_used_; }
    /** Capacity of one compartment (compartmentalized mode). */
    Bytes compartmentCapacity() const;
    /** Eden bytes used by @p owner's compartment. */
    Bytes compartmentUsed(MutatorIndex owner) const;
    /**
     * Compartment capacity minus the external-pressure reservation —
     * what allocation checks actually test against.
     */
    Bytes effectiveCompartmentCapacity() const;
    /** @} */

    /** @name Fault injection: external heap pressure */
    /** @{ */
    /**
     * Reserve @p bytes of eden capacity as if another tenant were using
     * them (heap-pressure spike): allocations hit the GC trigger
     * earlier, but the reservation is clamped to 3/4 of eden so the run
     * degrades instead of livelocking, and OutOfMemory checks ignore it
     * (a transient spike must never be fatal). Pass 0 to recover.
     */
    void setExternalPressure(Bytes bytes) { external_pressure_ = bytes; }
    Bytes externalPressure() const { return external_pressure_; }
    /** @} */

    /**
     * Resize the generations to a new young fraction (adaptive sizing;
     * shared-eden mode only). Applied right after a collection when the
     * nursery is empty. Skipped (returning false) if current occupancy
     * does not fit the proposed geometry.
     */
    bool resizeYoung(double young_fraction);

    /** Number of successful resizeYoung calls. */
    std::uint64_t resizeCount() const { return resize_count_; }

    /** Old-gen occupancy exceeds the full-GC trigger. */
    bool oldGenPressure() const;

    /** An allocation of @p size can never succeed even after full GC. */
    bool impossibleAllocation(Bytes size) const;

    /** Global allocated-bytes counter (the lifespan clock). */
    Bytes globalAllocatedBytes() const { return global_alloc_bytes_; }

    /** Bytes allocated so far by @p owner. */
    Bytes ownerAllocatedBytes(MutatorIndex owner) const;

    /** Currently live (allocated and not yet dead) bytes. */
    Bytes liveBytes() const { return live_bytes_; }

    /** Number of live objects. */
    std::uint64_t liveObjects() const;

    /** Run statistics, including the lifespan histogram. */
    const HeapStats &heapStats() const { return stats_; }

    /** Number of mutator owners the heap was built for. */
    std::uint32_t mutatorCount() const { return n_mutators_; }

    /**
     * Verify internal invariants (region lists vs. byte counters, live
     * accounting, death-queue consistency); panics on violation. Used
     * by property tests; O(objects).
     */
    void checkInvariants() const;

  private:
    struct DeathEntry
    {
        Bytes threshold;
        ObjectHandle handle;
        /** Object id guarding against stale entries after slot reuse. */
        ObjectId id;

        bool
        operator>(const DeathEntry &o) const
        {
            if (threshold != o.threshold)
                return threshold > o.threshold;
            return id > o.id;
        }
    };

    using DeathQueue =
        std::priority_queue<DeathEntry, std::vector<DeathEntry>,
                            std::greater<>>;

    /**
     * Mark an object dead, record its lifespan, notify listeners.
     * @p global_at_death is the (possibly interpolated) global
     * allocated-bytes clock at the death point.
     */
    void killObject(ObjectHandle h, Bytes global_at_death, Ticks now);

    /** Process all due deaths for @p owner. */
    void processDeaths(MutatorIndex owner, Ticks now);

    /** Eden compartment index for an owner. */
    std::size_t compartmentOf(MutatorIndex owner) const;

    HeapConfig config_;
    std::uint32_t n_mutators_;
    const ListenerChain *listeners_;

    Bytes eden_capacity_ = 0;
    Bytes survivor_capacity_ = 0;
    Bytes old_capacity_ = 0;

    /** Bump-pointer usage; per compartment in compartmentalized mode
     *  (single entry otherwise). */
    std::vector<Bytes> eden_used_;
    Bytes eden_used_total_ = 0;
    /** Fault-injected eden reservation (heap-pressure spike). */
    Bytes external_pressure_ = 0;
    Bytes survivor_used_ = 0;
    /** Old usage includes dead-but-uncompacted bytes until a full GC. */
    Bytes old_used_ = 0;

    /** Columnar per-object bookkeeping + per-owner rosters. */
    ObjectLedger ledger_;
    /** Eden object lists, one per compartment. */
    std::vector<std::vector<ObjectHandle>> eden_objects_;
    std::vector<ObjectHandle> survivor_objects_;
    std::vector<ObjectHandle> old_objects_;

    /** Remaining TLAB space per owner (TLAB mode only). */
    std::vector<Bytes> tlab_remaining_;
    std::vector<Bytes> owner_alloc_bytes_;
    /** Owner clock at the previous death-processing pass (for global-
     *  clock interpolation of death points). */
    std::vector<Bytes> owner_prev_clock_;
    /** Global clock at the previous death-processing pass per owner. */
    std::vector<Bytes> owner_prev_global_;
    std::vector<DeathQueue> death_queues_;

    Bytes global_alloc_bytes_ = 0;
    Bytes live_bytes_ = 0;
    std::uint64_t resize_count_ = 0;
    std::uint64_t live_objects_ = 0;
    ObjectId next_object_id_ = 1;

    HeapStats stats_;
};

} // namespace jscale::jvm

#endif // JSCALE_JVM_HEAP_HEAP_HH
