#include "jvm/heap/heap.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jscale::jvm {

const char *
regionName(Region r)
{
    switch (r) {
      case Region::Eden: return "eden";
      case Region::Survivor: return "survivor";
      case Region::Old: return "old";
    }
    return "?";
}

const char *
gcKindName(GcKind k)
{
    switch (k) {
      case GcKind::Minor: return "minor";
      case GcKind::Full: return "full";
      case GcKind::Remark: return "remark";
    }
    return "?";
}

Heap::Heap(const HeapConfig &config, std::uint32_t n_mutators,
           const ListenerChain *listeners)
    : config_(config), n_mutators_(n_mutators), listeners_(listeners),
      ledger_(n_mutators)
{
    jscale_assert(n_mutators >= 1, "heap requires at least one mutator");
    jscale_assert(config.capacity >= 1 * units::MiB,
                  "heap capacity unreasonably small");
    jscale_assert(config.young_fraction > 0.0 &&
                      config.young_fraction < 1.0,
                  "young_fraction must be in (0,1)");
    jscale_assert(config.survivor_fraction > 0.0 &&
                      config.survivor_fraction < 0.5,
                  "survivor_fraction must be in (0,0.5)");

    const Bytes young = static_cast<Bytes>(
        static_cast<double>(config.capacity) * config.young_fraction);
    survivor_capacity_ = static_cast<Bytes>(
        static_cast<double>(young) * config.survivor_fraction);
    eden_capacity_ = young - 2 * survivor_capacity_;
    old_capacity_ = config.capacity - young;

    const std::size_t compartments =
        config.compartmentalized ? n_mutators : 1;
    eden_used_.assign(compartments, 0);
    eden_objects_.resize(compartments);

    tlab_remaining_.assign(n_mutators, 0);
    owner_alloc_bytes_.assign(n_mutators, 0);
    owner_prev_clock_.assign(n_mutators, 0);
    owner_prev_global_.assign(n_mutators, 0);
    death_queues_.resize(n_mutators);
}

std::size_t
Heap::compartmentOf(MutatorIndex owner) const
{
    return config_.compartmentalized ? owner : 0;
}

Bytes
Heap::compartmentCapacity() const
{
    return eden_capacity_ / eden_used_.size();
}

Bytes
Heap::compartmentUsed(MutatorIndex owner) const
{
    return eden_used_[compartmentOf(owner)];
}

Bytes
Heap::effectiveCompartmentCapacity() const
{
    const Bytes cap = compartmentCapacity();
    const Bytes per_comp =
        external_pressure_ / static_cast<Bytes>(eden_used_.size());
    // Never squeeze a compartment below a quarter of its capacity: the
    // spike degrades throughput (more frequent GCs), it must not starve
    // allocation entirely.
    return cap - std::min(per_comp, cap - cap / 4);
}

Bytes
Heap::ownerAllocatedBytes(MutatorIndex owner) const
{
    jscale_assert(owner < n_mutators_, "owner index out of range");
    return owner_alloc_bytes_[owner];
}

std::uint64_t
Heap::liveObjects() const
{
    return live_objects_;
}

AllocStatus
Heap::allocate(MutatorIndex owner, Bytes size, Bytes ttl_owner_bytes,
               AllocSiteId site, Ticks now)
{
    jscale_assert(owner < n_mutators_, "owner index out of range");
    jscale_assert(size > 0, "zero-sized allocation");

    const std::size_t comp = compartmentOf(owner);
    if (config_.tlab_size > 0 && !config_.compartmentalized) {
        // TLAB fast path: bump inside the thread's buffer; refill from
        // eden when exhausted, wasting the remainder (HotSpot retires
        // the old TLAB).
        if (size > tlab_remaining_[owner]) {
            const Bytes reserve = std::max(config_.tlab_size, size);
            if (eden_used_[comp] + reserve >
                effectiveCompartmentCapacity())
                return AllocStatus::NeedsGc;
            stats_.tlab_waste += tlab_remaining_[owner];
            ++stats_.tlab_refills;
            eden_used_[comp] += reserve;
            eden_used_total_ += reserve;
            tlab_remaining_[owner] = reserve;
        }
        tlab_remaining_[owner] -= size;
    } else {
        if (eden_used_[comp] + size > effectiveCompartmentCapacity())
            return AllocStatus::NeedsGc;
        eden_used_[comp] += size;
        eden_used_total_ += size;
    }

    // Commit the allocation.
    owner_alloc_bytes_[owner] += size;
    global_alloc_bytes_ += size;
    live_bytes_ += size;
    ++live_objects_;
    stats_.peak_live_bytes = std::max(stats_.peak_live_bytes, live_bytes_);
    ++stats_.objects_allocated;
    stats_.bytes_allocated += size;

    const ObjectId id = next_object_id_++;
    const bool pinned = ttl_owner_bytes == kImmortalTtl;
    const Bytes death_owner =
        pinned ? kImmortalTtl : owner_alloc_bytes_[owner] + ttl_owner_bytes;
    const ObjectHandle h =
        ledger_.alloc(id, owner, site, size, global_alloc_bytes_, now,
                      death_owner, pinned);

    eden_objects_[comp].push_back(h);
    if (!pinned)
        death_queues_[owner].push(DeathEntry{death_owner, h, id});

    if (listeners_ && !listeners_->empty()) {
        const ObjectRecord r = ledger_.view(h);
        listeners_->dispatch(
            [&](RuntimeListener &l) { l.onObjectAlloc(r, now); });
    }

    // The new allocation advances the owner's clock; settle any deaths
    // it triggers (including TTL-0 temporaries dying immediately).
    processDeaths(owner, now);
    return AllocStatus::Ok;
}

void
Heap::killObject(ObjectHandle h, Bytes global_at_death, Ticks now)
{
    jscale_assert(!ledger_.dead(h), "double death of object ",
                  ledger_.id(h));
    ledger_.markDead(h);
    const Bytes birth = ledger_.birthGlobal(h);
    const Bytes lifespan =
        global_at_death > birth ? global_at_death - birth : 0;
    const Bytes size = ledger_.size(h);
    live_bytes_ -= size;
    --live_objects_;
    ++stats_.objects_died;
    stats_.bytes_died += size;
    stats_.lifespan.add(lifespan);
    if (listeners_ && !listeners_->empty()) {
        const ObjectRecord r = ledger_.view(h);
        listeners_->dispatch(
            [&](RuntimeListener &l) { l.onObjectDeath(r, lifespan, now); });
    }
}

void
Heap::processDeaths(MutatorIndex owner, Ticks now)
{
    DeathQueue &q = death_queues_[owner];
    const Bytes clock = owner_alloc_bytes_[owner];
    // The owner's clock advanced from owner_prev_clock_ to clock since
    // the last pass, while the global clock advanced from
    // owner_prev_global_ to the current value. A death threshold crossed
    // somewhere inside that window is assigned a linearly interpolated
    // global clock, so lifespans are not quantized to the owner's
    // inter-allocation granularity (which would put a T-dependent floor
    // under every lifespan).
    const Bytes prev_clock = owner_prev_clock_[owner];
    const Bytes prev_global = owner_prev_global_[owner];
    const Bytes owner_span = clock - prev_clock;
    const Bytes global_span = global_alloc_bytes_ - prev_global;
    while (!q.empty() && q.top().threshold <= clock) {
        const DeathEntry e = q.top();
        q.pop();
        // Stale entries: the object was already killed out-of-band
        // (thread exit) and possibly reclaimed/reused; the id check
        // rejects both cases.
        if (ledger_.id(e.handle) != e.id || ledger_.dead(e.handle))
            continue;
        Bytes global_at_death = global_alloc_bytes_;
        if (owner_span > 0 && e.threshold >= prev_clock) {
            const double f =
                static_cast<double>(e.threshold - prev_clock) /
                static_cast<double>(owner_span);
            global_at_death =
                prev_global + static_cast<Bytes>(
                                  f * static_cast<double>(global_span));
        }
        killObject(e.handle, global_at_death, now);
    }
    owner_prev_clock_[owner] = clock;
    owner_prev_global_[owner] = global_alloc_bytes_;
    // TTL deaths leave stale pairs on the owner's roster; compact once
    // they dominate so thread-exit sweeps stay linear in live objects.
    ledger_.maybeCompactRoster(owner);
}

void
Heap::killThreadObjects(MutatorIndex owner, Ticks now)
{
    jscale_assert(owner < n_mutators_, "owner index out of range");
    // One linear sweep over the owner's roster, in allocation order
    // (matching the old intrusive-list walk): stale pairs are skipped,
    // live objects are killed in place, and the roster is rebuilt with
    // just the pinned survivors (they die at VM shutdown via
    // killAllRemaining).
    std::vector<ObjectLedger::RosterEntry> survivors;
    for (const ObjectLedger::RosterEntry &e : ledger_.roster(owner)) {
        if (!ledger_.rosterMatches(e))
            continue;
        if (ledger_.pinned(e.handle)) {
            survivors.push_back(e);
            continue;
        }
        killObject(e.handle, global_alloc_bytes_, now);
    }
    ledger_.replaceRoster(owner, std::move(survivors));
}

void
Heap::killAllRemaining(Ticks now)
{
    auto kill_all = [&](std::vector<ObjectHandle> &list) {
        for (const ObjectHandle h : list) {
            if (ledger_.id(h) != 0 && !ledger_.dead(h))
                killObject(h, global_alloc_bytes_, now);
        }
    };
    for (auto &list : eden_objects_)
        kill_all(list);
    kill_all(survivor_objects_);
    kill_all(old_objects_);
}

MinorWork
Heap::collectMinor(Ticks now, std::int32_t compartment)
{
    (void)now;
    MinorWork w;
    std::vector<ObjectHandle> new_survivor;
    Bytes new_survivor_bytes = 0;

    auto scan = [&](std::vector<ObjectHandle> &list) {
        for (const ObjectHandle h : list) {
            const Bytes size = ledger_.size(h);
            ++w.scanned_objects;
            w.scanned_bytes += size;
            if (ledger_.dead(h)) {
                w.reclaimed_bytes += size;
                ledger_.free(h);
                continue;
            }
            ledger_.bumpAge(h);
            const std::uint8_t age = ledger_.age(h);
            const bool pinned = ledger_.pinned(h);
            const bool overflow =
                new_survivor_bytes + size > survivor_capacity_;
            const bool promote =
                pinned || age >= config_.tenure_threshold || overflow;
            if (promote) {
                if (overflow && !pinned &&
                    age < config_.tenure_threshold) {
                    w.survivor_overflow = true;
                }
                ledger_.setRegion(h, Region::Old);
                old_objects_.push_back(h);
                old_used_ += size;
                w.promoted_bytes += size;
            } else {
                ledger_.setRegion(h, Region::Survivor);
                new_survivor.push_back(h);
                new_survivor_bytes += size;
                w.copied_bytes += size;
            }
        }
        list.clear();
    };

    scan(survivor_objects_);
    if (compartment >= 0) {
        jscale_assert(config_.compartmentalized,
                      "compartment GC on a non-compartmentalized heap");
        jscale_assert(static_cast<std::size_t>(compartment) <
                          eden_objects_.size(),
                      "compartment index out of range");
        scan(eden_objects_[compartment]);
        eden_used_total_ -= eden_used_[compartment];
        eden_used_[compartment] = 0;
    } else {
        for (std::size_t c = 0; c < eden_objects_.size(); ++c) {
            scan(eden_objects_[c]);
            eden_used_[c] = 0;
        }
        eden_used_total_ = 0;
    }

    survivor_objects_ = std::move(new_survivor);
    survivor_used_ = new_survivor_bytes;
    // Minor collections retire all outstanding TLABs.
    if (compartment < 0) {
        for (auto &t : tlab_remaining_)
            t = 0;
    }
    w.needs_full = oldGenPressure();
    return w;
}

FullWork
Heap::collectFull(Ticks now)
{
    (void)now;
    FullWork w;

    // Sweep and compact the old generation.
    std::vector<ObjectHandle> new_old;
    new_old.reserve(old_objects_.size());
    Bytes live = 0;
    for (const ObjectHandle h : old_objects_) {
        ++w.scanned_objects;
        const Bytes size = ledger_.size(h);
        if (ledger_.dead(h)) {
            w.reclaimed_bytes += size;
            ledger_.free(h);
            continue;
        }
        new_old.push_back(h);
        live += size;
    }

    // Evacuate the entire nursery into the old generation.
    auto evacuate = [&](std::vector<ObjectHandle> &list) {
        for (const ObjectHandle h : list) {
            ++w.scanned_objects;
            const Bytes size = ledger_.size(h);
            if (ledger_.dead(h)) {
                w.reclaimed_bytes += size;
                ledger_.free(h);
                continue;
            }
            ledger_.setRegion(h, Region::Old);
            new_old.push_back(h);
            live += size;
        }
        list.clear();
    };
    evacuate(survivor_objects_);
    for (std::size_t c = 0; c < eden_objects_.size(); ++c) {
        evacuate(eden_objects_[c]);
        eden_used_[c] = 0;
    }
    eden_used_total_ = 0;
    survivor_used_ = 0;

    old_objects_ = std::move(new_old);
    old_used_ = live;
    for (auto &t : tlab_remaining_)
        t = 0;
    w.live_bytes = live;
    return w;
}

MinorWork
Heap::collectCompartment(MutatorIndex owner, Ticks now)
{
    (void)now;
    jscale_assert(config_.compartmentalized,
                  "collectCompartment on a shared heap");
    MinorWork w;
    const std::size_t comp = compartmentOf(owner);
    std::vector<ObjectHandle> retained;
    Bytes retained_bytes = 0;
    for (const ObjectHandle h : eden_objects_[comp]) {
        const Bytes size = ledger_.size(h);
        ++w.scanned_objects;
        w.scanned_bytes += size;
        if (ledger_.dead(h)) {
            w.reclaimed_bytes += size;
            ledger_.free(h);
            continue;
        }
        ledger_.bumpAge(h);
        if (ledger_.pinned(h) ||
            ledger_.age(h) >= config_.tenure_threshold) {
            ledger_.setRegion(h, Region::Old);
            old_objects_.push_back(h);
            old_used_ += size;
            w.promoted_bytes += size;
        } else {
            // In-place compaction: the object stays in its compartment.
            retained.push_back(h);
            retained_bytes += size;
            w.copied_bytes += size;
        }
    }
    eden_objects_[comp] = std::move(retained);
    eden_used_total_ -= eden_used_[comp] - retained_bytes;
    eden_used_[comp] = retained_bytes;
    w.needs_full = oldGenPressure();
    return w;
}

FullWork
Heap::sweepOld(Ticks now)
{
    (void)now;
    FullWork w;
    std::vector<ObjectHandle> new_old;
    new_old.reserve(old_objects_.size());
    Bytes live = 0;
    for (const ObjectHandle h : old_objects_) {
        ++w.scanned_objects;
        const Bytes size = ledger_.size(h);
        if (ledger_.dead(h)) {
            w.reclaimed_bytes += size;
            ledger_.free(h);
            continue;
        }
        new_old.push_back(h);
        live += size;
    }
    old_objects_ = std::move(new_old);
    old_used_ = live;
    w.live_bytes = live;
    return w;
}

void
Heap::checkInvariants() const
{
    // Region lists' live/dead membership must agree with the counters.
    // Note the semantics: live_bytes_ counts only live objects, while
    // region usage (survivor_used_, old_used_, eden_used_) counts dead
    // bytes too until a collection reclaims them.
    Bytes live = 0;
    std::uint64_t live_count = 0;
    Bytes survivor_resident = 0;
    Bytes old_resident = 0;
    Bytes eden_resident = 0;
    auto walk = [&](const std::vector<ObjectHandle> &list, Region region) {
        for (const ObjectHandle h : list) {
            if (ledger_.id(h) == 0)
                continue; // freed slot awaiting removal by GC
            const Bytes size = ledger_.size(h);
            jscale_assert(ledger_.region(h) == region, "object ",
                          ledger_.id(h), " in wrong region list");
            if (!ledger_.dead(h)) {
                live += size;
                ++live_count;
            }
            switch (region) {
              case Region::Eden:
                eden_resident += size;
                break;
              case Region::Survivor:
                survivor_resident += size;
                break;
              case Region::Old:
                old_resident += size;
                break;
            }
        }
    };
    for (const auto &list : eden_objects_)
        walk(list, Region::Eden);
    walk(survivor_objects_, Region::Survivor);
    walk(old_objects_, Region::Old);
    jscale_assert(live == live_bytes_, "live bytes mismatch: lists ",
                  live, " vs counter ", live_bytes_);
    jscale_assert(live_count == live_objects_,
                  "live object count mismatch");
    jscale_assert(survivor_resident == survivor_used_,
                  "survivor bytes mismatch");
    jscale_assert(old_resident == old_used_, "old-gen bytes mismatch");
    jscale_assert(stats_.objects_allocated ==
                      stats_.objects_died + live_objects_,
                  "allocation/death conservation violated");
    Bytes eden_total = 0;
    for (const auto used : eden_used_)
        eden_total += used;
    jscale_assert(eden_total == eden_used_total_,
                  "eden usage mismatch");
    // Every live object must appear exactly once (by matching id) on
    // its owner's roster, and the roster live census must agree.
    std::uint64_t owner_listed = 0;
    for (MutatorIndex owner = 0; owner < n_mutators_; ++owner) {
        std::uint64_t matched = 0;
        for (const ObjectLedger::RosterEntry &e : ledger_.roster(owner)) {
            if (!ledger_.rosterMatches(e))
                continue; // stale pair: slot died or was reused
            jscale_assert(ledger_.owner(e.handle) == owner, "object ",
                          e.id, " on wrong owner roster");
            ++matched;
        }
        jscale_assert(matched == ledger_.rosterLive(owner),
                      "roster live census mismatch for owner ", owner,
                      ": ", matched, " matched vs ",
                      ledger_.rosterLive(owner), " counted");
        owner_listed += matched;
    }
    jscale_assert(owner_listed == live_objects_,
                  "owner rosters disagree with live object count: ",
                  owner_listed, " listed vs ", live_objects_);

    // With TLABs, eden usage includes reserved-but-unfilled buffer
    // space, so residency is a lower bound; otherwise it is exact.
    if (config_.tlab_size > 0) {
        jscale_assert(eden_resident <= eden_used_total_,
                      "eden residency exceeds usage");
    } else {
        jscale_assert(eden_resident == eden_used_total_,
                      "eden residency mismatch");
    }
    jscale_assert(eden_used_total_ <= eden_capacity_, "eden overfull");
}

bool
Heap::resizeYoung(double young_fraction)
{
    jscale_assert(!config_.compartmentalized,
                  "adaptive sizing applies to the shared-eden mode");
    jscale_assert(young_fraction > 0.0 && young_fraction < 1.0,
                  "young fraction out of range");
    const Bytes young = static_cast<Bytes>(
        static_cast<double>(config_.capacity) * young_fraction);
    const Bytes new_survivor = static_cast<Bytes>(
        static_cast<double>(young) * config_.survivor_fraction);
    const Bytes new_eden = young - 2 * new_survivor;
    const Bytes new_old = config_.capacity - young;
    if (new_eden < eden_used_total_ || new_survivor < survivor_used_ ||
        new_old < old_used_) {
        return false; // occupancy does not fit the proposed geometry
    }
    config_.young_fraction = young_fraction;
    eden_capacity_ = new_eden;
    survivor_capacity_ = new_survivor;
    old_capacity_ = new_old;
    ++resize_count_;
    return true;
}

bool
Heap::oldGenPressure() const
{
    return static_cast<double>(old_used_) >
           config_.full_gc_trigger * static_cast<double>(old_capacity_);
}

bool
Heap::impossibleAllocation(Bytes size) const
{
    return size > compartmentCapacity();
}

} // namespace jscale::jvm
