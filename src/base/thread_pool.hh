/**
 * @file
 * A small fixed-size worker pool for fanning independent host-side jobs
 * (experiment runs) across cores.
 *
 * Deliberately work-stealing-free: tasks are pulled from one shared FIFO
 * under a mutex, which is ample for the coarse-grained jobs this project
 * schedules (whole simulation runs, seconds each) and keeps the
 * completion semantics easy to reason about. Determinism of results is
 * the caller's job — workers only decide *when* a task runs, never what
 * it computes or where its output lands.
 */

#ifndef JSCALE_BASE_THREAD_POOL_HH
#define JSCALE_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jscale {

/**
 * Fixed-size pool of host worker threads. Construct with a worker
 * count, submit() closures, wait() for the backlog to drain. The
 * destructor waits for all submitted tasks before joining.
 */
class ThreadPool
{
  public:
    /** @param workers worker count (0 is clamped to 1). */
    explicit ThreadPool(std::size_t workers);

    /** Drains outstanding tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** Enqueue a task; runs on some worker in FIFO dispatch order. */
    void submit(std::function<void()> task);

    /** Block until every task submitted so far has completed. */
    void wait();

    /**
     * Host parallelism available for experiment fan-out; always >= 1
     * even when the runtime cannot determine the core count.
     */
    static std::size_t hardwareConcurrency();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> tasks_;
    std::size_t in_flight_ = 0;
    bool shutdown_ = false;
    std::vector<std::thread> workers_;
};

} // namespace jscale

#endif // JSCALE_BASE_THREAD_POOL_HH
