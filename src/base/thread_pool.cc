#include "base/thread_pool.hh"

namespace jscale {

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    task_ready_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t
ThreadPool::hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(
                lock, [this] { return shutdown_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // shutdown with an empty backlog
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                all_done_.notify_all();
        }
    }
}

} // namespace jscale
