/**
 * @file
 * Simulation units and formatting helpers.
 *
 * The simulated clock counts Ticks; one tick is one nanosecond. Memory
 * quantities are plain byte counts. Formatting helpers render both in
 * human-friendly units for reports.
 */

#ifndef JSCALE_BASE_UNITS_HH
#define JSCALE_BASE_UNITS_HH

#include <cstdint>
#include <string>

namespace jscale {

/** Simulated time, in nanoseconds. */
using Ticks = std::uint64_t;

/** Signed tick delta. */
using TickDelta = std::int64_t;

/** Simulated memory quantity, in bytes. */
using Bytes = std::uint64_t;

/** CPU cycle count (converted to Ticks through a core's frequency). */
using Cycles = std::uint64_t;

namespace units {

constexpr Ticks NS = 1;
constexpr Ticks US = 1000 * NS;
constexpr Ticks MS = 1000 * US;
constexpr Ticks SEC = 1000 * MS;

constexpr Bytes KiB = 1024;
constexpr Bytes MiB = 1024 * KiB;
constexpr Bytes GiB = 1024 * MiB;

} // namespace units

/** Render a tick count as a scaled time string, e.g. "12.40 ms". */
std::string formatTicks(Ticks t);

/** Render a byte count as a scaled size string, e.g. "3.00 MiB". */
std::string formatBytes(Bytes b);

/** Render a ratio as a percentage string with one decimal, e.g. "42.3%". */
std::string formatPercent(double fraction);

/** Render a double with the given number of decimals. */
std::string formatFixed(double value, int decimals = 2);

} // namespace jscale

#endif // JSCALE_BASE_UNITS_HH
