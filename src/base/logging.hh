/**
 * @file
 * Status and error reporting helpers, modeled on the gem5 logging
 * conventions: panic() for internal invariant violations, fatal() for
 * user/configuration errors, warn()/inform() for status messages.
 */

#ifndef JSCALE_BASE_LOGGING_HH
#define JSCALE_BASE_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

namespace jscale {

/** Verbosity levels for runtime status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

namespace detail {

/** Process-wide log verbosity; default shows warnings only. */
LogLevel &logLevel();

/** Stream used for status messages (replaceable for tests). */
std::ostream *&logStream();

/** Concatenate a pack of arguments into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void logImpl(LogLevel level, const char *tag, const std::string &msg);

} // namespace detail

/** Set process-wide verbosity for warn()/inform()/debugLog(). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** Redirect status messages (returns the previous stream). */
std::ostream *setLogStream(std::ostream *os);

/**
 * Report an internal invariant violation and abort. Use for conditions
 * that indicate a bug in the simulator itself, never for user error.
 */
#define jscale_panic(...) \
    ::jscale::detail::panicImpl(__FILE__, __LINE__, \
                                ::jscale::detail::concat(__VA_ARGS__))

/**
 * Report an unrecoverable user/configuration error and exit(1). Use when
 * the simulation cannot continue due to bad input, not a simulator bug.
 */
#define jscale_fatal(...) \
    ::jscale::detail::fatalImpl(__FILE__, __LINE__, \
                                ::jscale::detail::concat(__VA_ARGS__))

/** Assert a simulator invariant; panics with the condition text on failure. */
#define jscale_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::jscale::detail::panicImpl(                                    \
                __FILE__, __LINE__,                                         \
                ::jscale::detail::concat("assertion '", #cond, "' failed ", \
                                         ##__VA_ARGS__));                   \
        }                                                                   \
    } while (0)

/** Emit a warning about questionable but non-fatal conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logImpl(LogLevel::Warn, "warn",
                    detail::concat(std::forward<Args>(args)...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logImpl(LogLevel::Inform, "info",
                    detail::concat(std::forward<Args>(args)...));
}

/** Emit a high-verbosity debugging message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::logImpl(LogLevel::Debug, "debug",
                    detail::concat(std::forward<Args>(args)...));
}

} // namespace jscale

#endif // JSCALE_BASE_LOGGING_HH
