#include "base/output.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace jscale {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
    aligns_.assign(header_.size(), Align::Right);
    if (!aligns_.empty())
        aligns_[0] = Align::Left;
}

void
TextTable::row(std::vector<std::string> cells)
{
    if (!header_.empty()) {
        jscale_assert(cells.size() == header_.size(),
                      "row width ", cells.size(), " != header width ",
                      header_.size());
    }
    rows_.push_back(std::move(cells));
}

void
TextTable::align(std::size_t col, Align a)
{
    if (aligns_.size() <= col)
        aligns_.resize(col + 1, Align::Right);
    aligns_[col] = a;
}

void
TextTable::print(std::ostream &os) const
{
    std::size_t n_cols = header_.size();
    for (const auto &r : rows_)
        n_cols = std::max(n_cols, r.size());
    if (n_cols == 0)
        return;

    std::vector<std::size_t> widths(n_cols, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            widths[c] = std::max(widths[c], cells[c].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < n_cols; ++c) {
            const std::string &cell = c < cells.size() ? cells[c]
                                                       : std::string();
            const Align a = c < aligns_.size() ? aligns_[c] : Align::Right;
            const std::size_t pad = widths[c] - cell.size();
            if (a == Align::Right)
                os << std::string(pad, ' ') << cell;
            else
                os << cell << std::string(pad, ' ');
            os << (c + 1 < n_cols ? "  " : "");
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t c = 0; c < n_cols; ++c)
            total += widths[c] + (c + 1 < n_cols ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

std::string
TextTable::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << quote(cells[i]);
    }
    os_ << '\n';
}

std::string
CsvWriter::quote(const std::string &cell)
{
    const bool needs = cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace jscale
