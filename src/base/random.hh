/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in jscale flows through Rng streams derived
 * from a single experiment seed, so a simulation is exactly repeatable
 * across runs and platforms. The generator is xoshiro256** seeded via
 * SplitMix64, both public-domain algorithms with well-studied statistical
 * quality and trivial, portable implementations.
 */

#ifndef JSCALE_BASE_RANDOM_HH
#define JSCALE_BASE_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/logging.hh"

namespace jscale {

/** SplitMix64 step; used for seeding and cheap hashing of stream ids. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Deterministic random stream (xoshiro256**).
 *
 * Distinct subsystems should each own an Rng forked from the experiment
 * master seed with a distinct stream id, so adding draws in one subsystem
 * never perturbs another (the gem5 "random streams" discipline).
 */
class Rng
{
  public:
    /** Construct from a seed; identical seeds yield identical streams. */
    explicit Rng(std::uint64_t seed = 0x6a736361'6c652121ULL) { reseed(seed); }

    /** Re-initialize the stream from @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Derive an independent stream for subsystem @p stream_id. */
    Rng
    fork(std::uint64_t stream_id) const
    {
        std::uint64_t mix = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL);
        mix = mix ^ (state_[2] + 0xda942042e4dd58b5ULL * (stream_id + 1));
        return Rng(mix);
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be positive. */
    std::uint64_t
    below(std::uint64_t n)
    {
        jscale_assert(n > 0, "below() requires positive bound");
        // Lemire's nearly-divisionless bounded draw (biased < 2^-64).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        jscale_assert(lo <= hi, "range(lo, hi) requires lo <= hi");
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponential draw with mean @p mean (> 0). */
    double
    exponential(double mean)
    {
        jscale_assert(mean > 0.0, "exponential() requires positive mean");
        double u = uniform();
        if (u >= 1.0)
            u = std::nextafter(1.0, 0.0);
        return -mean * std::log1p(-u);
    }

    /** Standard normal draw (Box-Muller, one value per call). */
    double
    normal()
    {
        double u1 = uniform();
        if (u1 <= 0.0)
            u1 = std::numeric_limits<double>::min();
        const double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Log-normal draw parameterized by the mean/sigma of log-space. */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(normal(mu, sigma));
    }

    /**
     * Bounded Pareto draw on [lo, hi] with shape @p alpha. Heavy-tailed
     * sizes and lifetimes in workload models come from this family.
     */
    double
    paretoBounded(double alpha, double lo, double hi)
    {
        jscale_assert(alpha > 0.0 && lo > 0.0 && hi > lo,
                      "paretoBounded() parameter check");
        const double la = std::pow(lo, alpha);
        const double ha = std::pow(hi, alpha);
        const double u = uniform();
        return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

/**
 * Zipf(s) sampler over ranks [0, n) using precomputed inverse-CDF
 * tables; models skewed popularity (e.g. hot locks, hot documents).
 */
class ZipfDistribution
{
  public:
    /**
     * @param n number of ranks (> 0)
     * @param s skew exponent (s = 0 is uniform; larger is more skewed)
     */
    ZipfDistribution(std::size_t n, double s);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::size_t sample(Rng &rng) const;

    /** Number of ranks. */
    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/**
 * Empirical discrete distribution over arbitrary weights. Used to model
 * measured histograms (e.g. object size-class frequencies).
 */
class DiscreteDistribution
{
  public:
    /** Build from non-negative weights; at least one must be positive. */
    explicit DiscreteDistribution(const std::vector<double> &weights);

    /** Draw an index in [0, weights.size()). */
    std::size_t sample(Rng &rng) const;

    /** Number of outcomes. */
    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace jscale

#endif // JSCALE_BASE_RANDOM_HH
