#include "base/chaos.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace jscale {

std::uint64_t
chaosKillAfter()
{
    const char *v = std::getenv(kChaosKillEnv);
    if (v == nullptr || *v == '\0')
        return 0;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0')
        return 0;
    return static_cast<std::uint64_t>(n);
}

void
chaosCrashPoint()
{
    static std::atomic<std::int64_t> countdown{
        static_cast<std::int64_t>(chaosKillAfter())};
    if (countdown.load(std::memory_order_relaxed) <= 0)
        return;
    if (countdown.fetch_sub(1, std::memory_order_relaxed) == 1)
        std::raise(SIGKILL);
}

std::uint32_t
shardOfKey(std::string_view key, std::uint32_t of)
{
    if (of <= 1)
        return 0;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    // splitmix64 finalizer for avalanche: the FNV state alone keys
    // nearby strings ("...|t1" vs "...|t2") to adjacent residues.
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<std::uint32_t>(h % of);
}

} // namespace jscale
