#include "base/units.hh"

#include <array>
#include <cstdio>

namespace jscale {

namespace {

std::string
scaled(double value, const char *const *suffixes, std::size_t n_suffixes,
       double base)
{
    std::size_t idx = 0;
    while (value >= base && idx + 1 < n_suffixes) {
        value /= base;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
    return buf;
}

} // namespace

std::string
formatTicks(Ticks t)
{
    static const char *suffixes[] = {"ns", "us", "ms", "s"};
    return scaled(static_cast<double>(t), suffixes, 4, 1000.0);
}

std::string
formatBytes(Bytes b)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    return scaled(static_cast<double>(b), suffixes, 5, 1024.0);
}

std::string
formatPercent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace jscale
