#include "base/logging.hh"

#include <cstdlib>
#include <mutex>

namespace jscale {
namespace detail {

LogLevel &
logLevel()
{
    static LogLevel level = LogLevel::Warn;
    return level;
}

std::ostream *&
logStream()
{
    static std::ostream *os = &std::cerr;
    return os;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
logImpl(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(logLevel()))
        return;
    // Parallel experiment runs may log concurrently; serialize so lines
    // never interleave mid-message.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    (*logStream()) << tag << ": " << msg << std::endl;
}

} // namespace detail

void
setLogLevel(LogLevel level)
{
    detail::logLevel() = level;
}

LogLevel
logLevel()
{
    return detail::logLevel();
}

std::ostream *
setLogStream(std::ostream *os)
{
    std::ostream *prev = detail::logStream();
    detail::logStream() = os;
    return prev;
}

} // namespace jscale
