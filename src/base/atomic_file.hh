/**
 * @file
 * Crash-consistent file output: write-temp-then-atomic-rename.
 *
 * An AtomicFileWriter streams into "<path>.tmp.<pid>" and publishes the
 * finished file with fsync + rename(2) on commit(). A process killed at
 * any point therefore leaves either the previous file, no file, or a
 * stray temp — never a torn artifact under the final name that a resume
 * or merge step would trust. Destruction without commit() removes the
 * temp (best effort), so error paths clean up after themselves.
 */

#ifndef JSCALE_BASE_ATOMIC_FILE_HH
#define JSCALE_BASE_ATOMIC_FILE_HH

#include <fstream>
#include <string>

namespace jscale {

/** Durable single-file writer. Construct, stream, then commit(). */
class AtomicFileWriter
{
  public:
    /** Opens the temp file (parent directories created as needed). */
    explicit AtomicFileWriter(std::string path);

    /** Removes the temp file when commit() was never reached. */
    ~AtomicFileWriter();

    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** False when the temp file could not be opened. */
    bool ok() const { return static_cast<bool>(out_); }

    /** The stream to write through (valid while ok()). */
    std::ofstream &stream() { return out_; }

    /** Final path this writer publishes to. */
    const std::string &path() const { return path_; }

    /**
     * Flush, fsync and rename the temp over the final path. Returns
     * false (with @p err describing the step that failed) on any
     * stream, fsync or rename failure; the temp is removed either way.
     */
    bool commit(std::string &err);

  private:
    std::string path_;
    std::string tmp_path_;
    std::ofstream out_;
    bool committed_ = false;
};

/**
 * fsync an already-closed file by path. Returns false on open/fsync
 * failure. Used after std::ofstream writes that must be durable.
 */
bool fsyncPath(const std::string &path);

/** fsync the parent directory of @p path so a rename itself is durable. */
bool fsyncParentDir(const std::string &path);

} // namespace jscale

#endif // JSCALE_BASE_ATOMIC_FILE_HH
