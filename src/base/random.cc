#include "base/random.hh"

#include <algorithm>
#include <cmath>

namespace jscale {

ZipfDistribution::ZipfDistribution(std::size_t n, double s)
{
    jscale_assert(n > 0, "ZipfDistribution requires n > 0");
    jscale_assert(s >= 0.0, "ZipfDistribution requires s >= 0");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
        cdf_[rank] = total;
    }
    for (auto &c : cdf_)
        c /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfDistribution::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double> &weights)
{
    jscale_assert(!weights.empty(), "DiscreteDistribution requires weights");
    cdf_.resize(weights.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        jscale_assert(weights[i] >= 0.0, "weights must be non-negative");
        total += weights[i];
        cdf_[i] = total;
    }
    jscale_assert(total > 0.0, "at least one weight must be positive");
    for (auto &c : cdf_)
        c /= total;
    cdf_.back() = 1.0;
}

std::size_t
DiscreteDistribution::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace jscale
