#include "base/atomic_file.hh"

#include <cstdio>
#include <filesystem>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace jscale {

namespace {

/** Open @p path read-only and fsync it; false on failure. */
bool
fsyncFd(const std::string &path, int flags)
{
    const int fd = ::open(path.c_str(), flags);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

} // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(::getpid()))
{
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    out_.open(tmp_path_, std::ios::out | std::ios::trunc);
}

AtomicFileWriter::~AtomicFileWriter()
{
    if (committed_)
        return;
    out_.close();
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
}

bool
AtomicFileWriter::commit(std::string &err)
{
    out_.flush();
    if (!out_) {
        err = "write failure on '" + tmp_path_ + "'";
        return false;
    }
    out_.close();
    if (!fsyncFd(tmp_path_, O_RDONLY)) {
        err = "fsync failure on '" + tmp_path_ + "'";
        return false;
    }
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
        err = "cannot rename '" + tmp_path_ + "' to '" + path_ + "'";
        return false;
    }
    committed_ = true;
    // Make the rename itself durable; non-fatal if the directory
    // cannot be opened (e.g. unusual permissions).
    fsyncParentDir(path_);
    return true;
}

bool
fsyncPath(const std::string &path)
{
    return fsyncFd(path, O_RDONLY);
}

bool
fsyncParentDir(const std::string &path)
{
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        parent = ".";
#ifdef O_DIRECTORY
    return fsyncFd(parent.string(), O_RDONLY | O_DIRECTORY);
#else
    return fsyncFd(parent.string(), O_RDONLY);
#endif
}

} // namespace jscale
