/**
 * @file
 * Tabular output helpers: an aligned plain-text table renderer for
 * console reports and an RFC-4180-style CSV writer for machine-readable
 * experiment output. Every bench emits both forms.
 */

#ifndef JSCALE_BASE_OUTPUT_HH
#define JSCALE_BASE_OUTPUT_HH

#include <ostream>
#include <string>
#include <vector>

namespace jscale {

/**
 * Aligned text table. Columns are sized to their widest cell; the first
 * row added is rendered as a header with an underline.
 */
class TextTable
{
  public:
    /** Column alignment. */
    enum class Align { Left, Right };

    /** Create a table with one alignment entry per column (default right,
     *  first column left). */
    TextTable() = default;

    /** Set the header row; resets alignment defaults. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width if one was set. */
    void row(std::vector<std::string> cells);

    /** Override the alignment of column @p col. */
    void align(std::size_t col, Align a);

    /** Render to a stream with two-space column separation. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<Align> aligns_;
};

/**
 * Minimal CSV writer. Quotes cells containing separators/quotes/newlines
 * and doubles embedded quotes, per RFC 4180.
 */
class CsvWriter
{
  public:
    /** Write rows to @p os. */
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Write one row. */
    void row(const std::vector<std::string> &cells);

    /** Convenience: write a row of stringified values. */
    template <typename... Args>
    void
    rowOf(Args &&...args)
    {
        row({toCell(std::forward<Args>(args))...});
    }

  private:
    static std::string quote(const std::string &cell);

    template <typename T>
    static std::string
    toCell(T &&v)
    {
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(std::forward<T>(v));
        } else {
            return std::to_string(v);
        }
    }

    std::ostream &os_;
};

} // namespace jscale

#endif // JSCALE_BASE_OUTPUT_HH
