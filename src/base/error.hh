/**
 * @file
 * Recoverable run-level errors.
 *
 * jscale_panic/jscale_fatal terminate the process and are reserved for
 * internal bugs and unusable user configuration. Conditions that abort
 * ONE simulated run but must not take the whole sweep down (watchdog
 * no-progress timeouts, runs exceeding the simulated-time guard) throw
 * AbortError instead; the experiment harness catches it at the run
 * boundary and turns it into a per-run error artifact.
 */

#ifndef JSCALE_BASE_ERROR_HH
#define JSCALE_BASE_ERROR_HH

#include <stdexcept>
#include <string>

namespace jscale {

/** A single run failed; the rest of the study can continue. */
class AbortError : public std::runtime_error
{
  public:
    explicit AbortError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** The watchdog detected no forward progress (livelock/deadlock). */
class WatchdogError : public AbortError
{
  public:
    explicit WatchdogError(const std::string &what) : AbortError(what) {}
};

} // namespace jscale

#endif // JSCALE_BASE_ERROR_HH
