/**
 * @file
 * Chaos self-test crash points.
 *
 * The shard supervisor proves its kill-anywhere guarantee by SIGKILLing
 * a worker after a chosen number of durable record writes. Workers call
 * chaosCrashPoint() right after each committed record; when the
 * JSCALE_CHAOS_KILL_AFTER environment variable holds a positive integer
 * k, the k-th call raises SIGKILL — an un-catchable death in the middle
 * of the campaign, exactly like a machine reboot. Unset (production)
 * the call is a cheap no-op after the first check.
 *
 * Also sharding's slice assignment lives here: a stable
 * position-independent hash so any process — shard worker, merge step,
 * fuzz driver — agrees on which shard owns a point, without a
 * dependency on the core experiment layer.
 */

#ifndef JSCALE_BASE_CHAOS_HH
#define JSCALE_BASE_CHAOS_HH

#include <cstdint>
#include <string_view>

namespace jscale {

/** Environment variable holding the crash countdown. */
inline constexpr const char *kChaosKillEnv = "JSCALE_CHAOS_KILL_AFTER";

/**
 * Count one durable record write; raises SIGKILL on the configured
 * call. Thread-safe (records may commit from pool workers).
 */
void chaosCrashPoint();

/** The countdown read from the environment (0 = chaos disabled). */
std::uint64_t chaosKillAfter();

/**
 * Stable shard assignment of @p key among @p of shards: FNV-1a with a
 * splitmix finalizer, mod of. Position-independent — adding or removing
 * other points never moves a key to a different shard — which is what
 * makes per-shard checkpoint ledgers and result caches reusable across
 * retries with changed campaigns. @p of == 0 is treated as 1.
 */
std::uint32_t shardOfKey(std::string_view key, std::uint32_t of);

} // namespace jscale

#endif // JSCALE_BASE_CHAOS_HH
