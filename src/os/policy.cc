#include "os/policy.hh"

#include "base/logging.hh"

namespace jscale::os {

BiasedPolicy::BiasedPolicy(std::uint32_t groups, Ticks phase_quantum)
    : groups_(groups), phase_quantum_(phase_quantum)
{
    jscale_assert(groups >= 1, "BiasedPolicy requires at least one group");
    jscale_assert(phase_quantum > 0, "phase quantum must be positive");
}

void
BiasedPolicy::onRegister(const OsThread &thread)
{
    if (thread.kind() != ThreadKind::Mutator)
        return;
    group_of_[thread.id()] = next_group_;
    next_group_ = (next_group_ + 1) % groups_;
}

std::uint32_t
BiasedPolicy::activeGroup(Ticks now) const
{
    return static_cast<std::uint32_t>((now / phase_quantum_) % groups_);
}

std::uint32_t
BiasedPolicy::groupOf(ThreadId id) const
{
    auto it = group_of_.find(id);
    jscale_assert(it != group_of_.end(), "thread ", id,
                  " has no bias group");
    return it->second;
}

bool
BiasedPolicy::eligible(const OsThread &thread, Ticks now) const
{
    if (thread.kind() != ThreadKind::Mutator)
        return true;
    auto it = group_of_.find(thread.id());
    if (it == group_of_.end())
        return true;
    return it->second == activeGroup(now);
}

} // namespace jscale::os
