/**
 * @file
 * SchedulerListener: a probe interface for the OS scheduler, mirroring
 * jvm::RuntimeListener.
 *
 * Observation tools (the telemetry timeline recorder, test
 * instrumentation) subscribe to scheduling events — dispatch, burst end,
 * migration, thread-state transitions — without the scheduler knowing
 * anything about them, the same way the paper attached DTrace scheduler
 * probes to an unmodified kernel.
 */

#ifndef JSCALE_OS_SCHED_LISTENER_HH
#define JSCALE_OS_SCHED_LISTENER_HH

#include <algorithm>
#include <vector>

#include "base/units.hh"
#include "machine/machine.hh"
#include "os/thread.hh"

namespace jscale::os {

/**
 * Event callbacks delivered synchronously, in simulation order. All
 * default to no-ops so tools override only what they observe.
 */
class SchedulerListener
{
  public:
    virtual ~SchedulerListener() = default;

    /** A thread was placed on a core and starts a burst.
     *  @p overhead is the context-switch/migration cost paid first;
     *  @p stolen marks a work-stealing dispatch. */
    virtual void
    onDispatch(const OsThread &t, machine::CoreId core, Ticks overhead,
               bool stolen, Ticks now)
    {
        (void)t; (void)core; (void)overhead; (void)stolen; (void)now;
    }

    /**
     * A dispatched burst ended. @p started is the dispatch time;
     * @p preempted is true when the burst was truncated before its
     * planned length (time-slice preemption or a safepoint poll).
     */
    virtual void
    onBurstEnd(const OsThread &t, machine::CoreId core, Ticks started,
               bool preempted, Ticks now)
    {
        (void)t; (void)core; (void)started; (void)preempted; (void)now;
    }

    /** A dispatch moved the thread across sockets. */
    virtual void
    onMigrate(const OsThread &t, machine::CoreId from, machine::CoreId to,
              Ticks now)
    {
        (void)t; (void)from; (void)to; (void)now;
    }

    /** A thread changed observable state (@p prev -> current state). */
    virtual void
    onThreadState(const OsThread &t, ThreadState prev, Ticks now)
    {
        (void)t; (void)prev; (void)now;
    }

    /** A stop-the-world request started parking threads. */
    virtual void
    onWorldStopRequested(Ticks now)
    {
        (void)now;
    }

    /** Dispatching resumed after a stop-the-world. */
    virtual void
    onWorldResumed(Ticks now)
    {
        (void)now;
    }

    /**
     * Group-aware stop-the-world probes (multi-tenant hosting): group
     * @p group's safepoint started parking that group's threads. The
     * defaults forward to the legacy single-world probes, so observers
     * written for one VM per scheduler keep working unchanged; tenancy-
     * aware observers override these and filter on @p group.
     */
    virtual void
    onWorldStopRequested(std::uint32_t group, Ticks now)
    {
        (void)group;
        onWorldStopRequested(now);
    }

    /** Dispatching resumed for group @p group after its stop-the-world. */
    virtual void
    onWorldResumed(std::uint32_t group, Ticks now)
    {
        (void)group;
        onWorldResumed(now);
    }
};

/** Fan-out helper mirroring jvm::ListenerChain. */
class SchedListenerChain
{
  public:
    /** Subscribe a listener (not owned). */
    void add(SchedulerListener *l) { listeners_.push_back(l); }

    /** Remove a previously subscribed listener. */
    void
    remove(SchedulerListener *l)
    {
        listeners_.erase(
            std::remove(listeners_.begin(), listeners_.end(), l),
            listeners_.end());
    }

    /** All current subscribers. */
    const std::vector<SchedulerListener *> &all() const
    {
        return listeners_;
    }

    /** True when nothing is subscribed (hot-path early-out). */
    bool empty() const { return listeners_.empty(); }

    /** Invoke @p fn on every subscriber, in subscription order. */
    template <typename Fn>
    void
    dispatch(Fn &&fn) const
    {
        for (SchedulerListener *l : listeners_)
            fn(*l);
    }

  private:
    std::vector<SchedulerListener *> listeners_;
};

} // namespace jscale::os

#endif // JSCALE_OS_SCHED_LISTENER_HH
