/**
 * @file
 * Kernel-level thread abstraction for the simulated OS scheduler.
 *
 * A thread is driven through a two-phase protocol: the scheduler asks the
 * client to *plan* a CPU burst (planBurst), runs the core for up to that
 * long, then tells the client how much time actually elapsed
 * (finishBurst) — which may be less than planned when the burst was
 * truncated by preemption or a stop-the-world request. The client commits
 * logical progress only in finishBurst, so truncation is always safe.
 */

#ifndef JSCALE_OS_THREAD_HH
#define JSCALE_OS_THREAD_HH

#include <cstdint>
#include <string>

#include "base/units.hh"
#include "machine/machine.hh"

namespace jscale::os {

/** OS-level thread id. */
using ThreadId = std::uint32_t;

/** What a thread does after completing (or being truncated in) a burst. */
enum class BurstOutcome
{
    /** Still has runnable work; wants the CPU again. */
    Ready,
    /** Parked on a synchronization object; will be woken explicitly. */
    Blocked,
    /** No more work, ever. */
    Finished,
};

/** Scheduling classes; stop-the-world parks mutators and helpers alike. */
enum class ThreadKind { Mutator, Helper, Daemon };

/** Observable thread states. */
enum class ThreadState
{
    New,
    Ready,
    Running,
    Blocked,
    Sleeping,
    Finished,
};

/** Render a ThreadState for diagnostics. */
const char *threadStateName(ThreadState s);

/**
 * Client interface implemented by anything the scheduler can run
 * (JVM mutator threads, VM helper threads, ...).
 */
class SchedClient
{
  public:
    virtual ~SchedClient() = default;

    /**
     * Plan the next CPU burst starting at @p now. Must return a value in
     * (0, limit]. Called only when the thread is about to run.
     */
    virtual Ticks planBurst(Ticks now, Ticks limit) = 0;

    /**
     * Commit @p elapsed ticks of progress (0 <= elapsed <= planned) and
     * report what the thread does next. @p elapsed < planned means the
     * burst was truncated; the client must resume the same logical step
     * on its next burst.
     */
    virtual BurstOutcome finishBurst(Ticks now, Ticks elapsed) = 0;

    /** Diagnostic name. */
    virtual std::string clientName() const { return "client"; }

    /**
     * Whether the thread must run regardless of policy gating (e.g. it
     * holds a monitor others may be queued on). Consulted by the
     * scheduler as an eligibility override so priority-gating policies
     * cannot convoy lock chains.
     */
    virtual bool urgent() const { return false; }
};

/**
 * Scheduler-owned per-thread record: identity, state and time accounting.
 * The accounting feeds the paper's workload-distribution and
 * suspend-wait analyses.
 */
class OsThread
{
  public:
    OsThread(ThreadId id, SchedClient *client, ThreadKind kind,
             machine::CoreId home_core)
        : id_(id), client_(client), kind_(kind), home_core_(home_core)
    {}

    ThreadId id() const { return id_; }
    SchedClient *client() const { return client_; }
    ThreadKind kind() const { return kind_; }
    ThreadState state() const { return state_; }
    machine::CoreId homeCore() const { return home_core_; }
    machine::CoreId lastCore() const { return last_core_; }
    std::string name() const { return client_->clientName(); }

    /** Scheduling group (tenant). Stop-the-world is per-group: group g's
     *  safepoint parks only group g's threads. Default group is 0. */
    std::uint32_t group() const { return group_; }

    /** Index of this thread within its group, in registration order.
     *  Lets per-VM observers map an OsThread back to their own
     *  mutator/helper tables when several VMs share one scheduler. */
    std::uint32_t localId() const { return local_id_; }

    /** Total time actually executing on a core. */
    Ticks cpuTime() const { return cpu_time_; }

    /** Total time runnable but waiting for a core ("suspend wait"). */
    Ticks readyTime() const { return ready_time_; }

    /** Total time parked on synchronization objects. */
    Ticks blockedTime() const { return blocked_time_; }

    /** Total time in timed sleeps. */
    Ticks sleepTime() const { return sleep_time_; }

    /** Number of times this thread was dispatched onto a core. */
    std::uint64_t dispatches() const { return dispatches_; }

    /** Number of cross-socket migrations. */
    std::uint64_t migrations() const { return migrations_; }

  private:
    friend class Scheduler;

    ThreadId id_;
    SchedClient *client_;
    ThreadKind kind_;
    std::uint32_t group_ = 0;
    std::uint32_t local_id_ = 0;
    machine::CoreId home_core_;
    machine::CoreId last_core_ = 0;
    bool ever_ran_ = false;
    /** Set by Scheduler::wakeAt; turns the next Blocked outcome into a
     *  timed sleep for accounting purposes. */
    bool pending_sleep_ = false;
    /** Fault injection: when > 0 the thread is held off-core until this
     *  time the next time a burst of its ends Ready (forced stall /
     *  lock-holder preemption). Consumed by the scheduler. */
    Ticks forced_sleep_until_ = 0;
    ThreadState state_ = ThreadState::New;

    /** Timestamp of the last state-entry, for accounting. */
    Ticks state_since_ = 0;

    Ticks cpu_time_ = 0;
    Ticks ready_time_ = 0;
    Ticks blocked_time_ = 0;
    Ticks sleep_time_ = 0;
    std::uint64_t dispatches_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace jscale::os

#endif // JSCALE_OS_THREAD_HH
