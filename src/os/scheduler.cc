#include "os/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace jscale::os {

const char *
threadStateName(ThreadState s)
{
    switch (s) {
      case ThreadState::New: return "new";
      case ThreadState::Ready: return "ready";
      case ThreadState::Running: return "running";
      case ThreadState::Blocked: return "blocked";
      case ThreadState::Sleeping: return "sleeping";
      case ThreadState::Finished: return "finished";
    }
    return "?";
}

/** Per-core event firing at the end of a dispatched burst. */
class Scheduler::SliceEndEvent : public sim::Event
{
  public:
    SliceEndEvent(Scheduler &sched, machine::CoreId core)
        : sched_(sched), core_(core)
    {}

    void process() override { sched_.sliceEnd(core_); }

    std::string
    name() const override
    {
        return "slice-end(core " + std::to_string(core_) + ")";
    }

  private:
    Scheduler &sched_;
    machine::CoreId core_;
};

/** Pooled one-shot event waking a sleeping thread at a set time. */
class Scheduler::TimedWakeEvent : public sim::Event
{
  public:
    explicit TimedWakeEvent(Scheduler &sched) : sched_(sched) {}

    void arm(OsThread *thread) { thread_ = thread; }
    OsThread *thread() const { return thread_; }

    void process() override { sched_.timedWakeFired(this); }
    std::string name() const override { return "timed-wake"; }

  private:
    Scheduler &sched_;
    OsThread *thread_ = nullptr;
};

Scheduler::Scheduler(sim::Simulation &sim, machine::Machine &mach,
                     const SchedulerConfig &config)
    : sim_(sim), mach_(mach), config_(config),
      policy_(std::make_unique<DefaultPolicy>()),
      rng_(sim.forkRng(0x05ced'0001ULL))
{
    jscale_assert(config_.quantum > 0, "quantum must be positive");
    jscale_assert(config_.min_poll_latency >= 1 &&
                      config_.min_poll_latency <= config_.max_poll_latency,
                  "bad safepoint poll latency bounds");
    cores_.resize(mach.cores().size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i].slice_end = std::make_unique<SliceEndEvent>(
            *this, static_cast<machine::CoreId>(i));
    }
}

Scheduler::GroupState &
Scheduler::groupState(std::uint32_t group)
{
    if (group >= groups_.size())
        groups_.resize(group + 1);
    GroupState &g = groups_[group];
    if (!g.parked_event) {
        // One STW per group is in flight at a time, so one reusable
        // zero-delay event per group flattens the parked callback.
        g.parked_event = std::make_unique<sim::CallbackEvent>(
            [this, group] {
                if (groups_[group].callback)
                    groups_[group].callback();
            },
            "stw-parked");
    }
    return g;
}

Scheduler::~Scheduler()
{
    // Deschedule core events so the queue never dispatches into a dead
    // scheduler if the Simulation outlives it.
    for (auto &cs : cores_) {
        if (cs.slice_end && cs.slice_end->scheduled())
            sim_.queue().deschedule(cs.slice_end.get());
    }
    for (auto &ev : wake_events_) {
        if (ev->scheduled())
            sim_.queue().deschedule(ev.get());
    }
    for (auto &g : groups_) {
        if (g.parked_event && g.parked_event->scheduled())
            sim_.queue().deschedule(g.parked_event.get());
    }
}

void
Scheduler::setPolicy(std::unique_ptr<SchedPolicy> policy)
{
    jscale_assert(policy != nullptr, "null scheduling policy");
    policy_ = std::move(policy);
    for (const auto &t : threads_)
        policy_->onRegister(*t);
}

OsThread *
Scheduler::registerThread(SchedClient *client, ThreadKind kind,
                          std::optional<machine::CoreId> home,
                          std::uint32_t group)
{
    jscale_assert(client != nullptr, "null scheduler client");
    const auto enabled = mach_.enabledCoreIds();
    jscale_assert(!enabled.empty(),
                  "registerThread before any core was enabled");
    machine::CoreId home_core;
    if (home) {
        jscale_assert(mach_.core(*home).enabled(),
                      "home core ", *home, " is not enabled");
        home_core = *home;
    } else {
        home_core = enabled[next_home_rr_ % enabled.size()];
        ++next_home_rr_;
    }
    auto thread = std::make_unique<OsThread>(
        static_cast<ThreadId>(threads_.size()), client, kind, home_core);
    OsThread *ptr = thread.get();
    GroupState &g = groupState(group);
    ptr->group_ = group;
    ptr->local_id_ = g.registered++;
    threads_.push_back(std::move(thread));
    policy_->onRegister(*ptr);
    return ptr;
}

void
Scheduler::start(OsThread *thread)
{
    jscale_assert(thread->state_ == ThreadState::New,
                  "start() on non-new thread '", thread->name(), "'");
    setThreadState(thread, ThreadState::Ready, sim_.now());
    enqueueReady(thread, thread->home_core_);
    if (!allStopped())
        kickAll();
}

void
Scheduler::setThreadState(OsThread *thread, ThreadState next, Ticks now)
{
    const ThreadState prev = thread->state_;
    thread->state_ = next;
    thread->state_since_ = now;
    if (!listeners_.empty()) {
        listeners_.dispatch([&](SchedulerListener &l) {
            l.onThreadState(*thread, prev, now);
        });
    }
}

std::size_t
Scheduler::totalReadyQueued() const
{
    std::size_t n = 0;
    for (const auto &cs : cores_)
        n += cs.ready.size();
    return n;
}

void
Scheduler::accountStateExit(OsThread *thread, Ticks now)
{
    const Ticks span = now - thread->state_since_;
    switch (thread->state_) {
      case ThreadState::Ready:
        thread->ready_time_ += span;
        break;
      case ThreadState::Blocked:
        thread->blocked_time_ += span;
        break;
      case ThreadState::Sleeping:
        thread->sleep_time_ += span;
        break;
      default:
        break;
    }
}

void
Scheduler::wake(OsThread *thread)
{
    jscale_assert(thread->state_ == ThreadState::Blocked ||
                      thread->state_ == ThreadState::Sleeping,
                  "wake() on thread '", thread->name(), "' in state ",
                  threadStateName(thread->state_));
    const Ticks now = sim_.now();
    accountStateExit(thread, now);
    setThreadState(thread, ThreadState::Ready, now);
    // Wake to the home core: after a block the home core is the one most
    // likely idle (its owner was the blocked thread), and restoring the
    // 1:1 placement avoids the cross-core drift that work stealing
    // introduces while threads are parked.
    enqueueReady(thread, thread->home_core_);
    if (!allStopped())
        kickAll();
}

void
Scheduler::armTimedWake(OsThread *thread, Ticks when)
{
    TimedWakeEvent *ev;
    if (!wake_free_.empty()) {
        ev = wake_free_.back();
        wake_free_.pop_back();
    } else {
        wake_events_.push_back(std::make_unique<TimedWakeEvent>(*this));
        ev = wake_events_.back().get();
    }
    ev->arm(thread);
    sim_.schedule(ev, when);
}

void
Scheduler::wakeAt(OsThread *thread, Ticks when)
{
    jscale_assert(when >= sim_.now(), "wakeAt in the past");
    // The caller is inside its burst; the Blocked outcome it is about to
    // return is recorded as Sleeping for accounting.
    thread->pending_sleep_ = true;
    armTimedWake(thread, when);
}

void
Scheduler::noteAdmissionPark(OsThread *thread)
{
    jscale_assert(thread->kind() == ThreadKind::Mutator,
                  "admission control parks mutators only");
    ++stats_.admission_parks;
}

void
Scheduler::unparkAdmitted(OsThread *thread)
{
    jscale_assert(stats_.admission_unparks < stats_.admission_parks,
                  "unpark without a matching admission park");
    ++stats_.admission_unparks;
    wake(thread);
}

void
Scheduler::timedWakeFired(TimedWakeEvent *ev)
{
    OsThread *thread = ev->thread();
    wake_free_.push_back(ev);
    // The wake may be stale: the thread could have been woken early
    // (e.g. by a notify) and even be sleeping again under a *newer*
    // timed wake. Waking a Sleeping thread spuriously early here is
    // indistinguishable from the old per-sleep closure behaviour, which
    // also keyed purely off the state.
    if (thread->state_ == ThreadState::Sleeping)
        wake(thread);
}

void
Scheduler::enqueueReady(OsThread *thread, machine::CoreId core_id)
{
    // An offline core (fault injection) accepts no work; redirect to the
    // least-loaded online core so displaced threads keep making progress.
    if (!mach_.core(core_id).enabled())
        core_id = migrationTarget(core_id);
    cores_[core_id].ready.push_back(thread);
}

machine::CoreId
Scheduler::migrationTarget(machine::CoreId from) const
{
    const machine::NodeId socket = mach_.socketOf(from);
    machine::CoreId best_id = 0;
    std::size_t best_len = 0;
    bool best_local = false;
    bool have = false;
    for (const auto id : mach_.enabledCoreIds()) {
        const std::size_t len = cores_[id].ready.size();
        const bool local = mach_.socketOf(id) == socket;
        // Prefer same-socket targets, then shortest queue, lowest id.
        if (!have || (local && !best_local) ||
            (local == best_local && len < best_len)) {
            best_id = id;
            best_len = len;
            best_local = local;
            have = true;
        }
    }
    jscale_assert(have, "no online core to migrate to");
    return best_id;
}

OsThread *
Scheduler::pickFromQueue(std::deque<OsThread *> &queue, Ticks now)
{
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        // A stopped group's threads stay parked in the queue until their
        // tenant's world resumes; other groups schedule around them.
        if (stopped_groups_ > 0 && groups_[(*it)->group_].stopped)
            continue;
        if (policy_->eligible(**it, now) || (*it)->client()->urgent()) {
            OsThread *t = *it;
            queue.erase(it);
            return t;
        }
    }
    return nullptr;
}

OsThread *
Scheduler::stealFor(machine::CoreId thief, Ticks now)
{
    if (!config_.stealing)
        return nullptr;
    // Deterministic victim selection, NUMA-aware: same-socket victims
    // are preferred; remote sockets are raided only for real imbalance
    // (two or more queued threads), since cross-socket migration is
    // expensive and would otherwise poison hot lock-handoff chains.
    const machine::NodeId my_socket = mach_.socketOf(thief);
    machine::CoreId victim = thief;
    std::size_t best = 0;
    bool best_local = false;
    for (const auto id : mach_.enabledCoreIds()) {
        if (id == thief)
            continue;
        const std::size_t len = cores_[id].ready.size();
        if (len == 0)
            continue;
        const bool local = mach_.socketOf(id) == my_socket;
        if (!local && len < 2)
            continue;
        // Local victims beat remote ones; then longest queue, lowest id.
        if ((local && !best_local) ||
            (local == best_local && len > best)) {
            best = len;
            victim = id;
            best_local = local;
        }
    }
    if (best == 0)
        return nullptr;
    OsThread *t = pickFromQueue(cores_[victim].ready, now);
    if (t)
        ++stats_.steals;
    return t;
}

void
Scheduler::maybeDispatch(machine::CoreId core_id)
{
    CoreState &cs = cores_[core_id];
    if (allStopped() || cs.running || !mach_.core(core_id).enabled())
        return;
    const Ticks now = sim_.now();
    OsThread *thread = pickFromQueue(cs.ready, now);
    bool stolen = false;
    if (!thread) {
        thread = stealFor(core_id, now);
        stolen = thread != nullptr;
    }
    if (!thread)
        return;
    dispatch(core_id, thread, stolen);
}

void
Scheduler::dispatch(machine::CoreId core_id, OsThread *thread, bool stolen)
{
    CoreState &cs = cores_[core_id];
    const Ticks now = sim_.now();
    jscale_assert(thread->state_ == ThreadState::Ready,
                  "dispatching thread in state ",
                  threadStateName(thread->state_));
    accountStateExit(thread, now);

    Ticks overhead = 0;
    if (cs.last_thread != thread) {
        overhead += mach_.config().context_switch_cost;
        ++stats_.context_switches;
    }
    const machine::CoreId prev_core = thread->last_core_;
    const bool migrated =
        thread->ever_ran_ &&
        mach_.socketOf(prev_core) != mach_.socketOf(core_id);
    if (migrated) {
        overhead += mach_.config().migration_cost;
        ++thread->migrations_;
        ++stats_.migrations;
    }

    setThreadState(thread, ThreadState::Running, now);
    thread->last_core_ = core_id;
    thread->ever_ran_ = true;
    ++thread->dispatches_;
    ++stats_.dispatches;
    if (!listeners_.empty()) {
        listeners_.dispatch([&](SchedulerListener &l) {
            if (migrated)
                l.onMigrate(*thread, prev_core, core_id, now);
            l.onDispatch(*thread, core_id, overhead, stolen, now);
        });
    }

    const Ticks planned = thread->client_->planBurst(now, config_.quantum);
    jscale_assert(planned > 0 && planned <= config_.quantum,
                  "planBurst of '", thread->name(),
                  "' returned out-of-range length ", planned);

    cs.running = thread;
    cs.last_thread = thread;
    cs.dispatched_at = now;
    cs.overhead = overhead;
    cs.planned = planned;
    // A throttled core (fault injection) stretches the burst in wall
    // time; sliceEnd converts elapsed wall time back to logical work.
    // The factor is captured here so a mid-burst recovery never bends a
    // burst already in flight.
    cs.speed = mach_.core(core_id).speedFactor();
    Ticks wall = planned;
    if (cs.speed < 1.0) {
        wall = static_cast<Ticks>(std::llround(
            static_cast<double>(planned) / cs.speed));
        wall = std::max(wall, planned);
    }
    ++running_count_;
    ++groups_[thread->group_].running;
    sim_.schedule(cs.slice_end.get(), now + overhead + wall);

    // A stop-the-world request may have raced in via the policy kick
    // path; keep the invariant that no dispatch happens while the
    // thread's own group is stopped.
    jscale_assert(!groups_[thread->group_].stopped,
                  "dispatch during stop-the-world");
}

void
Scheduler::sliceEnd(machine::CoreId core_id)
{
    CoreState &cs = cores_[core_id];
    OsThread *thread = cs.running;
    jscale_assert(thread != nullptr, "slice end on idle core ", core_id);
    const Ticks now = sim_.now();
    const Ticks elapsed_total = now - cs.dispatched_at;
    Ticks work = elapsed_total > cs.overhead
                     ? elapsed_total - cs.overhead
                     : 0;
    if (cs.speed < 1.0) {
        // Throttled core: wall time elapsed covers less logical work.
        work = std::min<Ticks>(
            cs.planned,
            static_cast<Ticks>(std::llround(
                static_cast<double>(work) * cs.speed)));
    } else {
        jscale_assert(work <= cs.planned, "burst overran its plan");
    }

    cs.running = nullptr;
    --running_count_;
    --groups_[thread->group_].running;
    thread->cpu_time_ += work;
    stats_.busy_ticks += elapsed_total;
    stats_.overhead_ticks += std::min(cs.overhead, elapsed_total);
    const bool preempted = work < cs.planned;
    if (preempted)
        ++stats_.preemptions;
    if (!listeners_.empty()) {
        listeners_.dispatch([&](SchedulerListener &l) {
            l.onBurstEnd(*thread, core_id, cs.dispatched_at, preempted,
                         now);
        });
    }

    // finishBurst may reenter the scheduler (wake peers, request a
    // stop-the-world); core state must already be consistent.
    const BurstOutcome outcome = thread->client_->finishBurst(now, work);

    switch (outcome) {
      case BurstOutcome::Ready:
        if (thread->forced_sleep_until_ > now) {
            // Forced stall (fault injection): hold the thread off-core
            // as if the host OS had descheduled it.
            setThreadState(thread, ThreadState::Sleeping, now);
            armTimedWake(thread, thread->forced_sleep_until_);
            ++stats_.forced_stalls;
        } else {
            setThreadState(thread, ThreadState::Ready, now);
            enqueueReady(thread, core_id);
        }
        thread->forced_sleep_until_ = 0;
        break;
      case BurstOutcome::Blocked:
        setThreadState(thread,
                       thread->pending_sleep_ ? ThreadState::Sleeping
                                              : ThreadState::Blocked,
                       now);
        thread->pending_sleep_ = false;
        thread->forced_sleep_until_ = 0;
        break;
      case BurstOutcome::Finished:
        setThreadState(thread, ThreadState::Finished, now);
        thread->forced_sleep_until_ = 0;
        ++finished_count_;
        if (finished_cb_)
            finished_cb_(thread);
        break;
    }

    if (stopped_groups_ > 0)
        maybeFireStwCallback(thread->group_);
    if (!allStopped())
        maybeDispatch(core_id);
}

void
Scheduler::stopTheWorld(std::uint32_t group,
                        std::function<void()> all_parked)
{
    GroupState &g = groupState(group);
    jscale_assert(!g.stopped, "nested stop-the-world for group ", group);
    g.stopped = true;
    g.callback = std::move(all_parked);
    g.cb_pending = true;
    ++stopped_groups_;

    const Ticks now = sim_.now();
    if (!listeners_.empty()) {
        listeners_.dispatch([&](SchedulerListener &l) {
            l.onWorldStopRequested(group, now);
        });
    }
    for (const auto id : mach_.enabledCoreIds()) {
        if (cores_[id].running && cores_[id].running->group_ == group)
            truncateAtPoll(id);
    }
    maybeFireStwCallback(group);
}

void
Scheduler::truncateAtPoll(machine::CoreId core_id)
{
    CoreState &cs = cores_[core_id];
    jscale_assert(cs.running != nullptr,
                  "truncateAtPoll on idle core ", core_id);
    // Truncate the running burst at its next safepoint poll.
    const Ticks poll = sim_.now() + static_cast<Ticks>(rng_.range(
        static_cast<std::int64_t>(config_.min_poll_latency),
        static_cast<std::int64_t>(config_.max_poll_latency)));
    if (cs.slice_end->scheduled() && cs.slice_end->when() > poll)
        sim_.queue().reschedule(cs.slice_end.get(), poll);
}

bool
Scheduler::setCoreOnline(machine::CoreId core_id, bool online)
{
    CoreState &cs = cores_[core_id];
    if (online) {
        if (!mach_.setCoreOnline(core_id, true))
            return false;
        ++stats_.core_onlines;
        // Queued threads whose home is this core flow back naturally at
        // their next wake; kick so an idle comeback core can steal work
        // or dispatch immediately.
        kickAll();
        return true;
    }
    if (!mach_.setCoreOnline(core_id, false))
        return false; // last online core: fault skipped
    ++stats_.core_offlines;
    // Migrate the ready queue FIFO-intact so displaced threads are
    // re-admitted in their original order.
    if (!cs.ready.empty()) {
        const machine::CoreId target = migrationTarget(core_id);
        stats_.displaced_threads += cs.ready.size();
        auto &dst = cores_[target].ready;
        dst.insert(dst.end(), cs.ready.begin(), cs.ready.end());
        cs.ready.clear();
    }
    // The running burst (if any) is truncated at its next poll; the
    // sliceEnd re-enqueue then redirects away from the offline core.
    if (cs.running)
        truncateAtPoll(core_id);
    if (!allStopped())
        kickAll();
    return true;
}

void
Scheduler::setCoreSpeed(machine::CoreId core_id, double factor)
{
    jscale_assert(factor > 0.0 && factor <= 1.0,
                  "core speed factor must be in (0, 1], got ", factor);
    mach_.core(core_id).setSpeedFactor(factor);
}

std::uint32_t
Scheduler::preemptLockHolders(Ticks hold_for)
{
    const Ticks now = sim_.now();
    std::uint32_t hit = 0;
    for (const auto id : mach_.enabledCoreIds()) {
        CoreState &cs = cores_[id];
        if (!cs.running || !cs.running->client()->urgent())
            continue;
        cs.running->forced_sleep_until_ = now + hold_for;
        truncateAtPoll(id);
        ++stats_.forced_preemptions;
        ++hit;
    }
    return hit;
}

void
Scheduler::stallThread(OsThread *thread, Ticks until)
{
    const Ticks now = sim_.now();
    if (until <= now)
        return;
    switch (thread->state_) {
      case ThreadState::Running: {
        thread->forced_sleep_until_ = until;
        const machine::CoreId core_id = thread->last_core_;
        if (cores_[core_id].running == thread)
            truncateAtPoll(core_id);
        break;
      }
      case ThreadState::Ready: {
        // Pull the thread out of whichever run queue holds it.
        for (auto &cs : cores_) {
            auto it = std::find(cs.ready.begin(), cs.ready.end(), thread);
            if (it != cs.ready.end()) {
                cs.ready.erase(it);
                break;
            }
        }
        accountStateExit(thread, now);
        setThreadState(thread, ThreadState::Sleeping, now);
        armTimedWake(thread, until);
        ++stats_.forced_stalls;
        break;
      }
      default:
        // Blocked/Sleeping/New/Finished threads are already off-core.
        break;
    }
}

void
Scheduler::maybeFireStwCallback(std::uint32_t group)
{
    GroupState &g = groups_[group];
    if (!g.cb_pending || g.running > 0)
        return;
    g.cb_pending = false;
    // Flatten the call stack: fire as a zero-delay event. One STW per
    // group is in flight at a time, so the group's reusable event is
    // never pending here (schedule() asserts that invariant).
    sim_.scheduleIn(g.parked_event.get(), 0);
}

void
Scheduler::resumeWorld(std::uint32_t group)
{
    jscale_assert(group < groups_.size() && groups_[group].stopped,
                  "resumeWorld without stopTheWorld");
    GroupState &g = groups_[group];
    jscale_assert(g.running == 0, "resumeWorld with running threads");
    g.stopped = false;
    g.callback = nullptr;
    --stopped_groups_;
    if (!listeners_.empty()) {
        const Ticks now = sim_.now();
        listeners_.dispatch([&](SchedulerListener &l) {
            l.onWorldResumed(group, now);
        });
    }
    kickAll();
}

void
Scheduler::kickAll()
{
    for (const auto id : mach_.enabledCoreIds())
        maybeDispatch(id);
}

} // namespace jscale::os
