/**
 * @file
 * The simulated OS CPU scheduler.
 *
 * Per-core FIFO run queues with round-robin time slices, home-core
 * affinity, deterministic idle stealing, context-switch and cross-socket
 * migration costs, and a stop-the-world protocol used by the JVM's
 * safepoint machinery: running threads are truncated at their next
 * (randomized) safepoint-poll boundary, so time-to-safepoint grows with
 * the number of running threads — one of the effects the paper measures.
 */

#ifndef JSCALE_OS_SCHEDULER_HH
#define JSCALE_OS_SCHEDULER_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "base/random.hh"
#include "base/units.hh"
#include "machine/machine.hh"
#include "os/policy.hh"
#include "os/sched_listener.hh"
#include "os/thread.hh"
#include "sim/simulation.hh"

namespace jscale::os {

/** Tunables for the scheduler. */
struct SchedulerConfig
{
    /** Round-robin time slice. */
    Ticks quantum = 4 * units::MS;
    /** Safepoint-poll latency bounds for truncating running threads. */
    Ticks min_poll_latency = 1 * units::US;
    Ticks max_poll_latency = 25 * units::US;
    /** Whether idle cores steal from loaded run queues. */
    bool stealing = true;
};

/** Aggregate scheduler statistics for one run. */
struct SchedulerStats
{
    std::uint64_t dispatches = 0;
    std::uint64_t context_switches = 0;
    std::uint64_t migrations = 0;
    std::uint64_t steals = 0;
    std::uint64_t preemptions = 0;
    /** Admission-control decisions (concurrency governor). */
    std::uint64_t admission_parks = 0;
    std::uint64_t admission_unparks = 0;
    /** Fault-injection activity (core offline/online, displacements,
     *  forced lock-holder preemptions and stalls). */
    std::uint64_t core_offlines = 0;
    std::uint64_t core_onlines = 0;
    std::uint64_t displaced_threads = 0;
    std::uint64_t forced_preemptions = 0;
    std::uint64_t forced_stalls = 0;
    Ticks busy_ticks = 0;
    Ticks overhead_ticks = 0;
};

/**
 * Deterministic manycore scheduler. Threads are registered once, started,
 * and then driven through the SchedClient burst protocol; all interleaving
 * decisions derive from the simulation's seeded random streams.
 */
class Scheduler
{
  public:
    Scheduler(sim::Simulation &sim, machine::Machine &mach,
              const SchedulerConfig &config = {});
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Install a scheduling policy (default: DefaultPolicy). Threads
     *  registered so far are re-announced to the new policy. */
    void setPolicy(std::unique_ptr<SchedPolicy> policy);

    /** Currently installed policy. */
    const SchedPolicy &policy() const { return *policy_; }

    /**
     * Register a thread. Home core defaults to round-robin over the
     * machine's enabled cores. @p group assigns the thread to a
     * scheduling group (tenant): stop-the-world is per-group, and the
     * thread's localId() is its registration index within the group.
     */
    OsThread *registerThread(SchedClient *client, ThreadKind kind,
                             std::optional<machine::CoreId> home = {},
                             std::uint32_t group = 0);

    /** Move a New thread to Ready and try to dispatch it. */
    void start(OsThread *thread);

    /** Wake a Blocked/Sleeping thread. */
    void wake(OsThread *thread);

    /**
     * Arrange for @p thread to sleep until @p when; the client must
     * return BurstOutcome::Blocked from the burst that called this.
     */
    void wakeAt(OsThread *thread, Ticks when);

    /** @name Admission control (concurrency governor)
     * A governor parks mutators at task-fetch boundaries: the client
     * calls noteAdmissionPark() and returns BurstOutcome::Blocked from
     * the same burst, and the thread stays Blocked until
     * unparkAdmitted() re-queues it. Parks and unparks are counted in
     * SchedulerStats so runs expose their admission activity. */
    /** @{ */
    void noteAdmissionPark(OsThread *thread);
    void unparkAdmitted(OsThread *thread);
    /** @} */

    /**
     * Park every thread of @p group (used by the JVM safepoint). The
     * group's running threads are truncated at their next poll point;
     * @p all_parked fires (as an event at the park-completion time) once
     * none of the group's threads is running. Other groups keep
     * dispatching — a tenant's safepoint stops only that tenant.
     */
    void stopTheWorld(std::uint32_t group,
                      std::function<void()> all_parked);

    /** Single-tenant convenience: stop group 0. */
    void stopTheWorld(std::function<void()> all_parked)
    {
        stopTheWorld(0, std::move(all_parked));
    }

    /** Resume dispatching for @p group after its stopTheWorld. */
    void resumeWorld(std::uint32_t group);

    /** Single-tenant convenience: resume group 0. */
    void resumeWorld() { resumeWorld(0); }

    /** Whether every scheduling group is stopped (or stopping) — the
     *  single-tenant reading of "the world is stopped". */
    bool worldStopped() const { return allStopped(); }

    /** Whether @p group is currently stopped (or stopping). */
    bool groupStopped(std::uint32_t group) const
    {
        return group < groups_.size() && groups_[group].stopped;
    }

    /** Threads of @p group currently executing on cores. */
    std::uint32_t groupRunningCount(std::uint32_t group) const
    {
        return group < groups_.size() ? groups_[group].running : 0;
    }

    /** Number of threads currently executing on cores. */
    std::uint32_t runningCount() const { return running_count_; }

    /** Number of registered threads that have finished. */
    std::uint32_t finishedCount() const { return finished_count_; }

    /** All registered threads, in registration order. */
    const std::vector<std::unique_ptr<OsThread>> &threads() const
    {
        return threads_;
    }

    /** Callback invoked whenever a thread finishes. */
    void setThreadFinishedCallback(std::function<void(OsThread *)> cb)
    {
        finished_cb_ = std::move(cb);
    }

    /** @name Fault injection
     * Runtime capacity faults. All are ordinary simulation-driven calls
     * (no host randomness), so faulted runs stay deterministic. */
    /** @{ */
    /**
     * Take @p core offline (online=false) or bring it back. Offlining
     * truncates the core's running burst at its next safepoint poll,
     * migrates the ready queue FIFO-intact to the least-loaded online
     * core, and future wakes redirect away from the core. Returns false
     * if the last online core would go away (the fault is skipped).
     */
    bool setCoreOnline(machine::CoreId core, bool online);

    /**
     * Throttle @p core to @p factor of nominal speed (0 < factor <= 1).
     * Takes effect at the next dispatch on that core; factor 1.0
     * restores nominal behaviour (and the exact unfaulted timing).
     */
    void setCoreSpeed(machine::CoreId core, double factor);

    /**
     * Preempt every running lock-holder (client()->urgent()) as if the
     * host OS descheduled it: the burst is truncated at its next poll
     * and the thread is held off-core for @p hold_for. Returns the
     * number of threads hit.
     */
    std::uint32_t preemptLockHolders(Ticks hold_for);

    /**
     * Forcibly keep @p thread off-core until @p until (mutator stall).
     * Running threads are truncated at the next poll first; blocked or
     * sleeping threads are left alone (already suspended).
     */
    void stallThread(OsThread *thread, Ticks until);

    /** Number of cores currently online. */
    std::uint32_t onlineCores() const { return mach_.enabledCores(); }
    /** @} */

    /** Re-examine all idle cores (used after policy phase rotations). */
    void kickAll();

    /** Probe chain; subscribe observation tools before start(). */
    SchedListenerChain &listeners() { return listeners_; }

    /** Threads queued (ready, not running) on @p core's run queue. */
    std::size_t readyQueueDepth(machine::CoreId core) const
    {
        return cores_[core].ready.size();
    }

    /** Threads queued on all run queues (total suspend-wait backlog). */
    std::size_t totalReadyQueued() const;

    /** Run statistics. */
    const SchedulerStats &schedStats() const { return stats_; }

    const SchedulerConfig &config() const { return config_; }

  private:
    class SliceEndEvent;
    class TimedWakeEvent;

    struct CoreState
    {
        std::deque<OsThread *> ready;
        OsThread *running = nullptr;
        OsThread *last_thread = nullptr;
        Ticks dispatched_at = 0;
        Ticks overhead = 0;
        Ticks planned = 0;
        /** Core speed factor captured at dispatch (burst stretching). */
        double speed = 1.0;
        std::unique_ptr<SliceEndEvent> slice_end;
    };

    /** Per-scheduling-group (tenant) stop-the-world state. */
    struct GroupState
    {
        bool stopped = false;
        bool cb_pending = false;
        std::function<void()> callback;
        /** Threads of this group currently on cores. */
        std::uint32_t running = 0;
        /** Threads registered so far (assigns localId). */
        std::uint32_t registered = 0;
        /** Reusable zero-delay event flattening the parked callback. */
        std::unique_ptr<sim::CallbackEvent> parked_event;
    };

    /** Group record for @p group, created on first use. */
    GroupState &groupState(std::uint32_t group);

    /** True when every known group is stopped (no dispatching at all). */
    bool allStopped() const
    {
        return stopped_groups_ > 0 && stopped_groups_ == groups_.size();
    }

    void maybeDispatch(machine::CoreId core_id);
    void dispatch(machine::CoreId core_id, OsThread *thread, bool stolen);
    void sliceEnd(machine::CoreId core_id);
    OsThread *pickFromQueue(std::deque<OsThread *> &queue, Ticks now);
    OsThread *stealFor(machine::CoreId thief, Ticks now);
    void enqueueReady(OsThread *thread, machine::CoreId core_id);
    void accountStateExit(OsThread *thread, Ticks now);
    void maybeFireStwCallback(std::uint32_t group);
    void timedWakeFired(TimedWakeEvent *ev);
    /** Schedule a pooled timed wake for @p thread at @p when. */
    void armTimedWake(OsThread *thread, Ticks when);
    /** Truncate @p core's running burst at its next safepoint poll. */
    void truncateAtPoll(machine::CoreId core_id);
    /** Least-loaded online core to absorb work from @p from. */
    machine::CoreId migrationTarget(machine::CoreId from) const;

    /** Commit a state transition and publish it to the probe chain. */
    void setThreadState(OsThread *thread, ThreadState next, Ticks now);

    sim::Simulation &sim_;
    machine::Machine &mach_;
    SchedulerConfig config_;
    std::unique_ptr<SchedPolicy> policy_;
    Rng rng_;

    std::vector<std::unique_ptr<OsThread>> threads_;
    std::vector<CoreState> cores_;
    std::uint32_t next_home_rr_ = 0;
    std::uint32_t running_count_ = 0;
    std::uint32_t finished_count_ = 0;

    /** Per-group stop-the-world records, indexed by group id. */
    std::vector<GroupState> groups_;
    /** Number of groups currently stopped (fast all-stopped check). */
    std::size_t stopped_groups_ = 0;
    std::function<void(OsThread *)> finished_cb_;
    SchedListenerChain listeners_;

    /**
     * Pooled timed-wake events: wakeAt() recycles fired events instead
     * of heap-allocating a closure per sleep. Several may be pending at
     * once (a thread woken early leaves its stale event in flight), so
     * this is a free list, not a per-thread slot.
     */
    std::vector<std::unique_ptr<TimedWakeEvent>> wake_events_;
    std::vector<TimedWakeEvent *> wake_free_;

    SchedulerStats stats_;
};

} // namespace jscale::os

#endif // JSCALE_OS_SCHEDULER_HH
