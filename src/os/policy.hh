/**
 * @file
 * Scheduling policies.
 *
 * The default policy is plain round-robin FIFO. BiasedPolicy implements
 * the paper's future-work suggestion (Sec. IV): worker threads are
 * grouped and the groups take turns being eligible to run, staggering
 * execution phases to reduce lifetime interference — fewer threads
 * allocate concurrently, so objects of off-phase threads stop inflating
 * the allocated-bytes lifespans of on-phase objects.
 */

#ifndef JSCALE_OS_POLICY_HH
#define JSCALE_OS_POLICY_HH

#include <cstdint>
#include <unordered_map>

#include "base/units.hh"
#include "os/thread.hh"

namespace jscale::sim { class Simulation; }

namespace jscale::os {

/**
 * Eligibility hook consulted by the scheduler before dispatching a ready
 * thread. Ineligible threads stay queued.
 */
class SchedPolicy
{
  public:
    virtual ~SchedPolicy() = default;

    /** Called when a thread is registered with the scheduler. */
    virtual void onRegister(const OsThread &thread) { (void)thread; }

    /** Whether @p thread may be dispatched at @p now. */
    virtual bool eligible(const OsThread &thread, Ticks now) const = 0;

    /** Diagnostic name. */
    virtual const char *policyName() const = 0;
};

/** Work-conserving FIFO round-robin: everything is always eligible. */
class DefaultPolicy : public SchedPolicy
{
  public:
    bool
    eligible(const OsThread &, Ticks) const override
    {
        return true;
    }

    const char *policyName() const override { return "default"; }
};

/**
 * Phase-staggered ("biased") scheduling of mutator threads.
 *
 * Mutators are assigned round-robin to @p groups groups; only one group
 * is phase-active at a time, rotating every @p phase_quantum. Helper and
 * daemon threads are unaffected. The rotation event is driven by the
 * owning Scheduler (see Scheduler::setPolicy), which also re-kicks idle
 * cores on each rotation.
 */
class BiasedPolicy : public SchedPolicy
{
  public:
    /**
     * @param groups number of phase groups (>= 1)
     * @param phase_quantum time each group stays active
     */
    BiasedPolicy(std::uint32_t groups, Ticks phase_quantum);

    void onRegister(const OsThread &thread) override;
    bool eligible(const OsThread &thread, Ticks now) const override;
    const char *policyName() const override { return "biased"; }

    /** Group that is phase-active at @p now. */
    std::uint32_t activeGroup(Ticks now) const;

    /** Group assigned to mutator thread @p id (only valid for mutators). */
    std::uint32_t groupOf(ThreadId id) const;

    std::uint32_t groups() const { return groups_; }
    Ticks phaseQuantum() const { return phase_quantum_; }

  private:
    std::uint32_t groups_;
    Ticks phase_quantum_;
    std::uint32_t next_group_ = 0;
    std::unordered_map<ThreadId, std::uint32_t> group_of_;
};

} // namespace jscale::os

#endif // JSCALE_OS_POLICY_HH
