/**
 * @file
 * Elephant-Tracks-style object tracing.
 *
 * The paper used Elephant Tracks [Ricci et al., ISMM'13] to produce an
 * in-order trace of per-object events from which object lifespans were
 * computed. This module provides the same pipeline for the simulated
 * runtime: an ObjectTracer subscribes to the VM's probe interface and
 * emits an ordered event stream into a TraceSink (in-memory, binary
 * file, or text); a LifespanAnalyzer consumes the stream and produces
 * the allocated-bytes lifespan distributions of Fig. 1c/1d.
 */

#ifndef JSCALE_TRACE_TRACE_HH
#define JSCALE_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "base/units.hh"
#include "jvm/runtime/listener.hh"
#include "stats/stats.hh"

namespace jscale::trace {

/** Kinds of events in an object trace. */
enum class TraceEventKind : std::uint8_t
{
    Alloc = 1,
    Death = 2,
    GcStart = 3,
    GcEnd = 4,
    ThreadStart = 5,
    ThreadEnd = 6,
};

/** Render a TraceEventKind name. */
const char *traceEventKindName(TraceEventKind k);

/** One trace record. Unused fields are zero for a given kind. */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::Alloc;
    /** GcKind for GC events (0 = minor, 1 = full). */
    std::uint8_t gc_kind = 0;
    /** Mutator thread index (alloc/death owner; thread events). */
    std::uint32_t thread = 0;
    /** Simulated time of the event. */
    Ticks time = 0;
    /** Object identity (alloc/death). */
    std::uint64_t object = 0;
    /** Object size in bytes (alloc/death). */
    Bytes size = 0;
    /** Allocated-bytes lifespan (death only). */
    Bytes lifespan = 0;
    /** Allocation site (alloc/death). */
    std::uint32_t site = 0;

    bool operator==(const TraceEvent &) const = default;
};

/** Consumer of an ordered event stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append one event; events arrive in simulation order. */
    virtual void append(const TraceEvent &ev) = 0;

    /** Flush any buffered output. */
    virtual void flush() {}
};

/** Keeps the whole trace in memory (tests, small runs). */
class MemoryTraceSink : public TraceSink
{
  public:
    void append(const TraceEvent &ev) override { events_.push_back(ev); }

    const std::vector<TraceEvent> &events() const { return events_; }

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Fixed-width little-endian binary trace writer. Format:
 *   header: magic "JSTR" (4 bytes), version u32
 *   records: kind u8, gc_kind u8, pad u16, thread u32, time u64,
 *            object u64, size u64, lifespan u64, site u32, pad u32
 * (48 bytes per record).
 */
class BinaryTraceWriter : public TraceSink
{
  public:
    static constexpr std::uint32_t kVersion = 1;

    /** Write to @p os; the header is emitted immediately. */
    explicit BinaryTraceWriter(std::ostream &os);

    void append(const TraceEvent &ev) override;
    void flush() override;

    /** Number of records written. */
    std::uint64_t recordCount() const { return records_; }

  private:
    std::ostream &os_;
    std::uint64_t records_ = 0;
};

/** Reader for the BinaryTraceWriter format. */
class BinaryTraceReader
{
  public:
    /** Validates the header; fatal on a foreign stream. */
    explicit BinaryTraceReader(std::istream &is);

    /** Read the next record. @return false at end of stream. */
    bool next(TraceEvent &ev);

  private:
    std::istream &is_;
};

/** Human-readable one-line-per-event writer. */
class TextTraceWriter : public TraceSink
{
  public:
    explicit TextTraceWriter(std::ostream &os) : os_(os) {}

    void append(const TraceEvent &ev) override;

  private:
    std::ostream &os_;
};

/**
 * The tracing agent: subscribes to the VM probe chain and forwards
 * runtime events into a sink in order, like an in-process Elephant
 * Tracks.
 */
class ObjectTracer : public jvm::RuntimeListener
{
  public:
    explicit ObjectTracer(TraceSink &sink) : sink_(sink) {}

    void onObjectAlloc(const jvm::ObjectRecord &obj, Ticks now) override;
    void onObjectDeath(const jvm::ObjectRecord &obj, Bytes lifespan,
                       Ticks now) override;
    void onGcStart(jvm::GcKind kind, std::uint64_t seq,
                   Ticks now) override;
    void onGcEnd(const jvm::GcEvent &event, Ticks now) override;
    void onThreadStart(jvm::MutatorIndex thread, Ticks now) override;
    void onThreadFinish(jvm::MutatorIndex thread, Ticks now) override;

    std::uint64_t eventsEmitted() const { return emitted_; }

  private:
    TraceSink &sink_;
    std::uint64_t emitted_ = 0;
};

/**
 * Computes lifespan distributions from a trace, reproducing the paper's
 * metric exactly: the lifespan of an object is the number of bytes
 * allocated (by any thread) between its creation and its death.
 */
class LifespanAnalyzer
{
  public:
    /** Feed one event (only Death events matter; others are counted). */
    void feed(const TraceEvent &ev);

    /** Feed a whole in-memory trace. */
    void feedAll(const std::vector<TraceEvent> &events);

    /** Lifespan histogram over all objects. */
    const stats::LogHistogram &histogram() const { return hist_; }

    /** Per-owner-thread lifespan histograms. */
    const std::map<std::uint32_t, stats::LogHistogram> &
    perThread() const
    {
        return per_thread_;
    }

    /** Per-allocation-site lifespan histograms. */
    const std::map<std::uint32_t, stats::LogHistogram> &
    perSite() const
    {
        return per_site_;
    }

    /** Per-site allocated object counts and bytes. */
    struct SiteSummary
    {
        std::uint32_t site = 0;
        std::uint64_t objects = 0;
        Bytes bytes = 0;
        /** Median lifespan of the site's objects. */
        Bytes median_lifespan = 0;
    };

    /** The @p n hottest allocation sites by byte volume, descending. */
    std::vector<SiteSummary> topSites(std::size_t n) const;

    /** Fraction of objects with lifespan < each threshold. */
    std::vector<double>
    cdf(const std::vector<std::uint64_t> &thresholds) const
    {
        return hist_.cdf(thresholds);
    }

    std::uint64_t deaths() const { return deaths_; }
    std::uint64_t allocs() const { return allocs_; }

  private:
    struct SiteCounts
    {
        std::uint64_t objects = 0;
        Bytes bytes = 0;
    };

    stats::LogHistogram hist_;
    std::map<std::uint32_t, stats::LogHistogram> per_thread_;
    std::map<std::uint32_t, stats::LogHistogram> per_site_;
    std::map<std::uint32_t, SiteCounts> site_counts_;
    std::uint64_t deaths_ = 0;
    std::uint64_t allocs_ = 0;
};

/** Thresholds used by the paper-style lifespan tables (64 B .. 16 MiB). */
std::vector<std::uint64_t> paperLifespanThresholds();

} // namespace jscale::trace

#endif // JSCALE_TRACE_TRACE_HH
