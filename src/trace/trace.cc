#include "trace/trace.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <istream>
#include <ostream>

#include "base/logging.hh"

namespace jscale::trace {

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::Alloc: return "alloc";
      case TraceEventKind::Death: return "death";
      case TraceEventKind::GcStart: return "gc-start";
      case TraceEventKind::GcEnd: return "gc-end";
      case TraceEventKind::ThreadStart: return "thread-start";
      case TraceEventKind::ThreadEnd: return "thread-end";
    }
    return "?";
}

namespace {

constexpr std::size_t kRecordSize = 48;
constexpr char kMagic[4] = {'J', 'S', 'T', 'R'};

void
putU16(unsigned char *p, std::uint16_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
}

void
putU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream &os)
    : os_(os)
{
    unsigned char header[8];
    std::memcpy(header, kMagic, 4);
    putU32(header + 4, kVersion);
    os_.write(reinterpret_cast<const char *>(header), sizeof(header));
}

void
BinaryTraceWriter::append(const TraceEvent &ev)
{
    unsigned char rec[kRecordSize];
    rec[0] = static_cast<unsigned char>(ev.kind);
    rec[1] = ev.gc_kind;
    putU16(rec + 2, 0);
    putU32(rec + 4, ev.thread);
    putU64(rec + 8, ev.time);
    putU64(rec + 16, ev.object);
    putU64(rec + 24, ev.size);
    putU64(rec + 32, ev.lifespan);
    putU32(rec + 40, ev.site);
    putU32(rec + 44, 0);
    os_.write(reinterpret_cast<const char *>(rec), sizeof(rec));
    ++records_;
}

void
BinaryTraceWriter::flush()
{
    os_.flush();
}

BinaryTraceReader::BinaryTraceReader(std::istream &is)
    : is_(is)
{
    unsigned char header[8];
    is_.read(reinterpret_cast<char *>(header), sizeof(header));
    if (!is_ || std::memcmp(header, kMagic, 4) != 0) {
        jscale_fatal("not a jscale trace stream (bad magic)");
    }
    const std::uint32_t version = getU32(header + 4);
    if (version != BinaryTraceWriter::kVersion) {
        jscale_fatal("unsupported trace version ", version);
    }
}

bool
BinaryTraceReader::next(TraceEvent &ev)
{
    unsigned char rec[kRecordSize];
    is_.read(reinterpret_cast<char *>(rec), sizeof(rec));
    if (is_.gcount() == 0)
        return false;
    if (is_.gcount() != static_cast<std::streamsize>(sizeof(rec))) {
        jscale_fatal("truncated trace record");
    }
    ev.kind = static_cast<TraceEventKind>(rec[0]);
    ev.gc_kind = rec[1];
    ev.thread = getU32(rec + 4);
    ev.time = getU64(rec + 8);
    ev.object = getU64(rec + 16);
    ev.size = getU64(rec + 24);
    ev.lifespan = getU64(rec + 32);
    ev.site = getU32(rec + 40);
    return true;
}

void
TextTraceWriter::append(const TraceEvent &ev)
{
    os_ << ev.time << ' ' << traceEventKindName(ev.kind) << " thread="
        << ev.thread;
    switch (ev.kind) {
      case TraceEventKind::Alloc:
        os_ << " obj=" << ev.object << " size=" << ev.size
            << " site=" << ev.site;
        break;
      case TraceEventKind::Death:
        os_ << " obj=" << ev.object << " size=" << ev.size
            << " lifespan=" << ev.lifespan << " site=" << ev.site;
        break;
      case TraceEventKind::GcStart:
      case TraceEventKind::GcEnd:
        os_ << " gc="
            << (ev.gc_kind == 0 ? "minor"
                                : ev.gc_kind == 1 ? "full" : "remark");
        break;
      default:
        break;
    }
    os_ << '\n';
}

void
ObjectTracer::onObjectAlloc(const jvm::ObjectRecord &obj, Ticks now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::Alloc;
    ev.thread = obj.owner;
    ev.time = now;
    ev.object = obj.id;
    ev.size = obj.size;
    ev.site = obj.site;
    sink_.append(ev);
    ++emitted_;
}

void
ObjectTracer::onObjectDeath(const jvm::ObjectRecord &obj, Bytes lifespan,
                            Ticks now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::Death;
    ev.thread = obj.owner;
    ev.time = now;
    ev.object = obj.id;
    ev.size = obj.size;
    ev.lifespan = lifespan;
    ev.site = obj.site;
    sink_.append(ev);
    ++emitted_;
}

void
ObjectTracer::onGcStart(jvm::GcKind kind, std::uint64_t seq, Ticks now)
{
    (void)seq;
    TraceEvent ev;
    ev.kind = TraceEventKind::GcStart;
    ev.gc_kind = static_cast<std::uint8_t>(kind);
    ev.time = now;
    sink_.append(ev);
    ++emitted_;
}

void
ObjectTracer::onGcEnd(const jvm::GcEvent &event, Ticks now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::GcEnd;
    ev.gc_kind = static_cast<std::uint8_t>(event.kind);
    ev.time = now;
    sink_.append(ev);
    ++emitted_;
}

void
ObjectTracer::onThreadStart(jvm::MutatorIndex thread, Ticks now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::ThreadStart;
    ev.thread = thread;
    ev.time = now;
    sink_.append(ev);
    ++emitted_;
}

void
ObjectTracer::onThreadFinish(jvm::MutatorIndex thread, Ticks now)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::ThreadEnd;
    ev.thread = thread;
    ev.time = now;
    sink_.append(ev);
    ++emitted_;
}

void
LifespanAnalyzer::feed(const TraceEvent &ev)
{
    switch (ev.kind) {
      case TraceEventKind::Alloc: {
        ++allocs_;
        auto &sc = site_counts_[ev.site];
        ++sc.objects;
        sc.bytes += ev.size;
        break;
      }
      case TraceEventKind::Death:
        ++deaths_;
        hist_.add(ev.lifespan);
        per_thread_[ev.thread].add(ev.lifespan);
        per_site_[ev.site].add(ev.lifespan);
        break;
      default:
        break;
    }
}

std::vector<LifespanAnalyzer::SiteSummary>
LifespanAnalyzer::topSites(std::size_t n) const
{
    std::vector<SiteSummary> sites;
    sites.reserve(site_counts_.size());
    for (const auto &[site, counts] : site_counts_) {
        SiteSummary s;
        s.site = site;
        s.objects = counts.objects;
        s.bytes = counts.bytes;
        const auto it = per_site_.find(site);
        if (it != per_site_.end())
            s.median_lifespan = it->second.percentile(0.5);
        sites.push_back(s);
    }
    std::sort(sites.begin(), sites.end(),
              [](const SiteSummary &a, const SiteSummary &b) {
                  if (a.bytes != b.bytes)
                      return a.bytes > b.bytes;
                  return a.site < b.site;
              });
    if (sites.size() > n)
        sites.resize(n);
    return sites;
}

void
LifespanAnalyzer::feedAll(const std::vector<TraceEvent> &events)
{
    for (const auto &ev : events)
        feed(ev);
}

std::vector<std::uint64_t>
paperLifespanThresholds()
{
    return {64,
            256,
            1 * units::KiB,
            4 * units::KiB,
            16 * units::KiB,
            64 * units::KiB,
            256 * units::KiB,
            1 * units::MiB,
            16 * units::MiB};
}

} // namespace jscale::trace
