#include "lockprof/lockprof.hh"

#include <algorithm>

#include "base/output.hh"

namespace jscale::lockprof {

void
LockProfiler::onMonitorAcquire(jvm::MutatorIndex thread,
                               jvm::MonitorId monitor, bool contended,
                               Ticks now)
{
    ++totals_.acquisitions;
    ++per_monitor_[monitor].acquisitions;
    ++per_thread_[thread].acquisitions;
    if (contended) {
        ++totals_.contended_acquisitions;
        ++per_monitor_[monitor].contended_acquisitions;
        if (per_monitor_[monitor].blocked_now > 0)
            --per_monitor_[monitor].blocked_now;
        ++per_thread_[thread].contended_acquisitions;
        auto it = block_since_.find(thread);
        if (it != block_since_.end()) {
            const Ticks blocked = now - it->second;
            totals_.total_block_time += blocked;
            per_monitor_[monitor].total_block_time += blocked;
            per_thread_[thread].total_block_time += blocked;
            block_.add(static_cast<double>(blocked));
            block_since_.erase(it);
        }
    }
}

void
LockProfiler::onMonitorContended(jvm::MutatorIndex thread,
                                 jvm::MonitorId monitor, Ticks now)
{
    ++totals_.contentions;
    auto &m = per_monitor_[monitor];
    ++m.contentions;
    ++m.blocked_now;
    m.max_blocked = std::max(m.max_blocked, m.blocked_now);
    ++per_thread_[thread].contentions;
    block_since_[thread] = now;
}

void
LockProfiler::onMonitorRelease(jvm::MutatorIndex thread,
                               jvm::MonitorId monitor, Ticks now)
{
    (void)thread;
    (void)now;
    ++totals_.releases;
    ++per_monitor_[monitor].releases;
}

void
LockProfiler::printReport(std::ostream &os) const
{
    TextTable t;
    t.header({"monitor", "acquisitions", "contentions", "contended-acq",
              "block-time", "max-queue"});
    for (const auto &[id, c] : per_monitor_) {
        t.row({"monitor-" + std::to_string(id),
               std::to_string(c.acquisitions),
               std::to_string(c.contentions),
               std::to_string(c.contended_acquisitions),
               formatTicks(c.total_block_time),
               std::to_string(c.max_blocked)});
    }
    t.row({"TOTAL", std::to_string(totals_.acquisitions),
           std::to_string(totals_.contentions),
           std::to_string(totals_.contended_acquisitions),
           formatTicks(totals_.total_block_time), ""});
    t.print(os);
}

void
LockProfiler::reset()
{
    *this = LockProfiler();
}

} // namespace jscale::lockprof
