/**
 * @file
 * DTrace-style lock profiling.
 *
 * The paper "used Dtrace to profile lock usage, from which instances of
 * contention during execution could be analyzed". LockProfiler plays the
 * same role here: it subscribes to the VM probe chain and aggregates,
 * per monitor and per thread, the acquisition counts (Fig. 1a series),
 * contention instance counts (Fig. 1b series) and block-time
 * distributions, without the runtime knowing it is being profiled.
 */

#ifndef JSCALE_LOCKPROF_LOCKPROF_HH
#define JSCALE_LOCKPROF_LOCKPROF_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "base/units.hh"
#include "jvm/runtime/listener.hh"
#include "stats/stats.hh"

namespace jscale::lockprof {

/** Aggregated probe counts for one monitor or one thread. */
struct LockCounters
{
    std::uint64_t acquisitions = 0;
    std::uint64_t contended_acquisitions = 0;
    std::uint64_t contentions = 0;
    std::uint64_t releases = 0;
    Ticks total_block_time = 0;
    /** Threads currently blocked (profiler view). */
    std::uint32_t blocked_now = 0;
    /** High-water mark of simultaneously blocked threads. */
    std::uint32_t max_blocked = 0;
};

/** The profiling agent. Subscribe to JavaVm::listeners() before run(). */
class LockProfiler : public jvm::RuntimeListener
{
  public:
    void onMonitorAcquire(jvm::MutatorIndex thread, jvm::MonitorId monitor,
                          bool contended, Ticks now) override;
    void onMonitorContended(jvm::MutatorIndex thread,
                            jvm::MonitorId monitor, Ticks now) override;
    void onMonitorRelease(jvm::MutatorIndex thread, jvm::MonitorId monitor,
                          Ticks now) override;

    /** Totals across all monitors. */
    const LockCounters &totals() const { return totals_; }

    /** Per-monitor counters (only monitors that saw events appear). */
    const std::map<jvm::MonitorId, LockCounters> &
    perMonitor() const
    {
        return per_monitor_;
    }

    /** Per-thread counters. */
    const std::map<jvm::MutatorIndex, LockCounters> &
    perThread() const
    {
        return per_thread_;
    }

    /** Distribution of individual block durations. */
    const stats::SampleStats &blockDurations() const { return block_; }

    /** Render an aligned per-monitor report. */
    void printReport(std::ostream &os) const;

    /** Clear all state. */
    void reset();

  private:
    LockCounters totals_;
    std::map<jvm::MonitorId, LockCounters> per_monitor_;
    std::map<jvm::MutatorIndex, LockCounters> per_thread_;
    /** Block-start time of each currently blocked thread. */
    std::map<jvm::MutatorIndex, Ticks> block_since_;
    stats::SampleStats block_;
};

} // namespace jscale::lockprof

#endif // JSCALE_LOCKPROF_LOCKPROF_HH
