#include "traffic/open_loop_app.hh"

#include "base/logging.hh"

namespace jscale::traffic {

/** One serving worker's accept loop. */
class OpenLoopApp::ServerSource : public workload::BufferedSource
{
  public:
    ServerSource(RequestModel &model, TrafficEngine &engine,
                 jvm::ChannelId channel, std::uint32_t thread_idx,
                 Rng rng)
        : model_(model), engine_(engine), channel_(channel),
          thread_idx_(thread_idx), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        if (!started_) {
            started_ = true;
            model_.emitStartup(out, rng_, thread_idx_);
            emitAccept(out);
            return true;
        }
        // Reached only with a granted permit in hand: either the next
        // queued request or an end-of-stream sentinel.
        if (!engine_.dispatchNext(thread_idx_))
            return false;
        model_.emitRequest(out, rng_);
        out.push_back(jvm::Action::taskDone());
        emitAccept(out);
        return true;
    }

  private:
    void
    emitAccept(std::vector<jvm::Action> &out)
    {
        out.push_back(jvm::Action::taskFetch());
        out.push_back(jvm::Action::channelAcquire(channel_));
    }

    RequestModel &model_;
    TrafficEngine &engine_;
    jvm::ChannelId channel_;
    std::uint32_t thread_idx_;
    Rng rng_;
    bool started_ = false;
};

void
OpenLoopApp::setup(jvm::AppContext &ctx)
{
    model_.setup(ctx);
    channel_ = ctx.createChannel(model_.name() + ".request-queue",
                                 /*permits=*/0);
    engine_.bind(channel_, ctx.threadCount());
    engine_.arm();
}

std::unique_ptr<jvm::ActionSource>
OpenLoopApp::threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx)
{
    return std::make_unique<ServerSource>(
        model_, engine_, channel_, thread_idx,
        ctx.forkThreadRng(thread_idx));
}

} // namespace jscale::traffic
