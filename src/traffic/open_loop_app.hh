/**
 * @file
 * OpenLoopApp: adapts a RequestModel + TrafficEngine into the
 * ApplicationModel contract.
 *
 * Worker threads run an accept loop instead of draining a task pool:
 * startup batch, then repeatedly (admission check, acquire a request
 * permit from the engine's hand-off channel, serve one request body,
 * TaskDone). The TaskFetch marker ahead of each acquire is the
 * concurrency governor's admission point, so governed open-loop runs
 * park surplus workers exactly where governed closed-loop runs do.
 */

#ifndef JSCALE_TRAFFIC_OPEN_LOOP_APP_HH
#define JSCALE_TRAFFIC_OPEN_LOOP_APP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "jvm/runtime/app.hh"
#include "traffic/engine.hh"
#include "traffic/request_model.hh"
#include "workload/source.hh"

namespace jscale::traffic {

/** The open-loop serving application. */
class OpenLoopApp : public jvm::ApplicationModel
{
  public:
    /** Neither the model nor the engine is owned. */
    OpenLoopApp(RequestModel &model, TrafficEngine &engine)
        : model_(model), engine_(engine)
    {}

    std::string appName() const override { return model_.name(); }

    void setup(jvm::AppContext &ctx) override;

    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx) override;

  private:
    class ServerSource;

    RequestModel &model_;
    TrafficEngine &engine_;
    jvm::ChannelId channel_ = 0;
};

} // namespace jscale::traffic

#endif // JSCALE_TRAFFIC_OPEN_LOOP_APP_HH
