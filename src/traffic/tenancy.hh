/**
 * @file
 * Multi-tenant hosting: several JVMs sharing one simulated machine.
 *
 * Each tenant is one JavaVm with its own heap, GC, monitors, helper
 * threads and arrival stream, all registered against the *same*
 * scheduler and core set — so tenants contend for CPUs exactly like
 * co-located server JVMs do, while safepoints stay per-tenant (a
 * tenant's stop-the-world pauses only its own scheduling group; the
 * neighbours keep running through it).
 *
 * Tenant spec grammar (';'-separated list, strict keys):
 *
 *   <app>:threads=<n>[:process=poisson|burst|diurnal]:rate=<req/s>
 *        [:requests=<n>][:queue=<cap>][:shed=drop|oldest]
 *        [:factor=..][:on_ms=..][:off_ms=..][:peak=..][:period_ms=..]
 *
 * e.g. --tenants "h2:threads=8:rate=2000;jython:threads=8:rate=1500"
 */

#ifndef JSCALE_TRAFFIC_TENANCY_HH
#define JSCALE_TRAFFIC_TENANCY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jvm/runtime/vm.hh"
#include "traffic/arrival.hh"
#include "traffic/engine.hh"
#include "traffic/open_loop_app.hh"
#include "traffic/request_model.hh"

namespace jscale::traffic {

/** One tenant: an application, its thread count and arrival stream. */
struct TenantSpec
{
    std::string app;
    std::uint32_t threads = 1;
    ArrivalSpec arrival;

    /** Parse one tenant (grammar above); false + @p err on failure. */
    static bool parse(const std::string &text, TenantSpec &out,
                      std::string &err);

    /** Parse a ';'-separated tenant list (at least one entry). */
    static bool parseList(const std::string &text,
                          std::vector<TenantSpec> &out, std::string &err);

    /** Canonical one-line description. */
    std::string describe() const;
};

/**
 * Runs N prepared VMs on one shared simulation/machine/scheduler.
 * Add tenants, optionally decorate their VMs (oracles, profilers),
 * then run() once; results come back in tenant order.
 */
class TenantHost
{
  public:
    TenantHost(sim::Simulation &sim, machine::Machine &mach,
               os::Scheduler &sched);
    ~TenantHost();

    TenantHost(const TenantHost &) = delete;
    TenantHost &operator=(const TenantHost &) = delete;

    /**
     * Build tenant @p spec with VM configuration @p config (its tenant
     * field is overwritten with the new tenant's index). Returns false
     * and sets @p err for an unknown application.
     */
    bool addTenant(const TenantSpec &spec, jvm::VmConfig config,
                   std::string &err);

    std::size_t tenantCount() const { return tenants_.size(); }

    /** Tenant @p i's VM (attach observers before run()). */
    jvm::JavaVm &vm(std::size_t i) { return *tenants_[i]->vm; }

    /** Tenant @p i's engine (live gauges during the run). */
    TrafficEngine &engine(std::size_t i) { return *tenants_[i]->engine; }

    /**
     * Prepare every VM, drive the shared simulation until all tenants
     * finish (or the longest max_run_time elapses), and collect one
     * RunResult per tenant, traffic summaries included. Call once.
     */
    std::vector<jvm::RunResult> run();

  private:
    struct Tenant
    {
        TenantSpec spec;
        std::unique_ptr<RequestModel> model;
        std::unique_ptr<jvm::JavaVm> vm;
        std::unique_ptr<TrafficEngine> engine;
        std::unique_ptr<OpenLoopApp> app;
    };

    sim::Simulation &sim_;
    machine::Machine &mach_;
    os::Scheduler &sched_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::size_t finished_ = 0;
    bool ran_ = false;
};

} // namespace jscale::traffic

#endif // JSCALE_TRAFFIC_TENANCY_HH
