#include "traffic/tenancy.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "base/logging.hh"
#include "sim/simulation.hh"
#include "workload/dacapo.hh"

namespace jscale::traffic {

namespace {

/** Split @p s on @p sep (no empty-field collapsing). */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t pos = s.find(sep); pos != std::string::npos;
         pos = s.find(sep, start)) {
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    out.push_back(s.substr(start));
    return out;
}

} // namespace

bool
TenantSpec::parse(const std::string &text, TenantSpec &out,
                  std::string &err)
{
    out = TenantSpec{};
    const std::vector<std::string> fields = split(text, ':');
    out.app = fields[0];
    if (out.app.empty()) {
        err = "tenant '" + text + "': missing application name";
        return false;
    }
    bool known = false;
    for (const std::string &name : workload::dacapoAppNames())
        known = known || name == out.app;
    if (!known) {
        err = "tenant '" + text + "': unknown application '" + out.app +
              "'";
        return false;
    }

    // Pull out threads= and process=; forward everything else to the
    // arrival-spec parser so both grammars stay in lock-step.
    std::string process = "poisson";
    std::vector<std::string> arrival_fields;
    bool have_threads = false;
    for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string &field = fields[i];
        const auto eq = field.find('=');
        const std::string key =
            eq == std::string::npos ? field : field.substr(0, eq);
        if (key == "threads") {
            if (have_threads) {
                err = "tenant '" + text + "': duplicate key 'threads'";
                return false;
            }
            char *end = nullptr;
            const std::string value = field.substr(eq + 1);
            const long n =
                value.empty() ? 0 : std::strtol(value.c_str(), &end, 10);
            if (value.empty() || end != value.c_str() + value.size() ||
                n < 1) {
                err = "tenant '" + text +
                      "': threads needs a count >= 1, got '" + value +
                      "'";
                return false;
            }
            out.threads = static_cast<std::uint32_t>(n);
            have_threads = true;
        } else if (key == "process") {
            process = field.substr(eq + 1);
        } else {
            arrival_fields.push_back(field);
        }
    }
    if (!have_threads) {
        err = "tenant '" + text + "': missing required key 'threads'";
        return false;
    }

    std::string arrival_spec = process;
    for (const std::string &f : arrival_fields)
        arrival_spec += ":" + f;
    if (!ArrivalSpec::parse(arrival_spec, out.arrival, err)) {
        err = "tenant '" + text + "': " + err;
        return false;
    }
    return true;
}

bool
TenantSpec::parseList(const std::string &text,
                      std::vector<TenantSpec> &out, std::string &err)
{
    out.clear();
    if (text.empty()) {
        err = "tenants: empty spec";
        return false;
    }
    for (const std::string &entry : split(text, ';')) {
        TenantSpec spec;
        if (!parse(entry, spec, err))
            return false;
        out.push_back(std::move(spec));
    }
    return true;
}

std::string
TenantSpec::describe() const
{
    std::ostringstream os;
    os << app << ":threads=" << threads << ":" << arrival.describe();
    return os.str();
}

TenantHost::TenantHost(sim::Simulation &sim, machine::Machine &mach,
                       os::Scheduler &sched)
    : sim_(sim), mach_(mach), sched_(sched)
{}

TenantHost::~TenantHost() = default;

bool
TenantHost::addTenant(const TenantSpec &spec, jvm::VmConfig config,
                      std::string &err)
{
    jscale_assert(!ran_, "host already ran");
    auto tenant = std::make_unique<Tenant>();
    tenant->spec = spec;
    tenant->model = makeRequestModel(spec.app, err);
    if (tenant->model == nullptr)
        return false;
    config.tenant = static_cast<std::uint32_t>(tenants_.size());
    tenant->vm = std::make_unique<jvm::JavaVm>(sim_, mach_, sched_,
                                               config);
    tenant->engine =
        std::make_unique<TrafficEngine>(*tenant->vm, spec.arrival);
    tenant->app = std::make_unique<OpenLoopApp>(*tenant->model,
                                                *tenant->engine);
    tenants_.push_back(std::move(tenant));
    return true;
}

std::vector<jvm::RunResult>
TenantHost::run()
{
    jscale_assert(!ran_, "host already ran");
    jscale_assert(!tenants_.empty(), "host has no tenants");
    ran_ = true;

    finished_ = 0;
    Ticks budget = 0;
    for (auto &t : tenants_) {
        t->vm->setRunCompletedCallback([this](Ticks) {
            if (++finished_ == tenants_.size())
                sim_.requestStop();
        });
        budget = std::max(budget, t->vm->config().max_run_time);
    }
    const Ticks start = sim_.now();
    for (auto &t : tenants_)
        t->vm->prepare(*t->app, t->spec.threads);
    sim_.run(start + budget);

    std::vector<jvm::RunResult> results;
    for (auto &t : tenants_) {
        jvm::RunResult r = t->vm->collectResult();
        r.traffic = t->engine->summary();
        results.push_back(std::move(r));
    }
    return results;
}

} // namespace jscale::traffic
