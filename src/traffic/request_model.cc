#include "traffic/request_model.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "base/logging.hh"
#include "workload/dacapo.hh"
#include "workload/interpreter_app.hh"
#include "workload/pipeline_app.hh"
#include "workload/serialized_app.hh"
#include "workload/source.hh"
#include "workload/task_queue_app.hh"

namespace jscale::traffic {

namespace {

using workload::emitPinnedData;
using workload::emitTaskBody;

Ticks
logNormalTicks(Rng &rng, Ticks mean, double sigma)
{
    return std::max<Ticks>(
        1, static_cast<Ticks>(rng.logNormal(
               std::log(static_cast<double>(mean)), sigma)));
}

/**
 * Scalable task-queue family (sunflow, lusearch, xalan). One request is
 * one task body plus the per-request share of the coordination traffic:
 * the closed-loop worker pays one queue critical section and
 * `sync_locks_per_chunk` sync stripes per *chunk*; an open-loop server
 * pays the queue (dispatch bookkeeping) on every request and one sync
 * stripe per request — lock traffic stays proportional to the work
 * rate, which is the property the scalability analysis depends on.
 */
class TaskQueueRequestModel : public RequestModel
{
  public:
    explicit TaskQueueRequestModel(workload::TaskQueueParams params)
        : params_(std::move(params))
    {}

    std::string name() const override { return params_.name; }

    void
    setup(jvm::AppContext &ctx) override
    {
        queue_lock_ = ctx.createMonitor(params_.name + ".task-queue");
        sync_stripes_.clear();
        for (std::uint32_t s = 0;
             s < std::max<std::uint32_t>(params_.sync_stripes, 1); ++s) {
            sync_stripes_.push_back(ctx.createMonitor(
                params_.name + ".phase-sync." + std::to_string(s)));
        }
        resources_.clear();
        for (const auto &spec : params_.resources) {
            Resource res;
            res.spec = spec;
            for (std::uint32_t s = 0; s < spec.stripes; ++s) {
                res.stripes.push_back(ctx.createMonitor(
                    params_.name + "." + spec.name + "." +
                    std::to_string(s)));
            }
            if (spec.stripes > 1 && spec.zipf_skew > 0.0)
                res.zipf.emplace(spec.stripes, spec.zipf_skew);
            resources_.push_back(std::move(res));
        }
    }

    void
    emitStartup(std::vector<jvm::Action> &out, Rng &rng,
                std::uint32_t thread_idx) override
    {
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.startup_compute, 1)));
        if (thread_idx == 0) {
            emitPinnedData(out, rng, params_.pinned_shared,
                           params_.pinned_shared_objects, /*site=*/1);
        }
        emitPinnedData(out, rng, params_.pinned_per_thread,
                       params_.pinned_thread_objects, /*site=*/2);
    }

    void
    emitRequest(std::vector<jvm::Action> &out, Rng &rng) override
    {
        // Dispatch bookkeeping under the shared queue lock.
        out.push_back(jvm::Action::monitorEnter(queue_lock_));
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.queue_cs, 1)));
        out.push_back(jvm::Action::monitorExit(queue_lock_));

        const Ticks compute = logNormalTicks(
            rng, params_.task_compute_mean, params_.task_compute_sigma);
        const std::uint32_t allocs =
            params_.allocs_per_task == 0
                ? 0
                : static_cast<std::uint32_t>(rng.range(
                      params_.allocs_per_task / 2,
                      params_.allocs_per_task +
                          params_.allocs_per_task / 2));

        emitTaskBody(out, rng, params_.alloc, compute / 2, allocs / 2,
                     /*site=*/3);

        for (auto &res : resources_) {
            double expected = res.spec.accesses_per_task;
            std::uint32_t accesses =
                static_cast<std::uint32_t>(expected);
            expected -= accesses;
            if (expected > 0.0 && rng.chance(expected))
                ++accesses;
            for (std::uint32_t a = 0; a < accesses; ++a) {
                const std::size_t stripe =
                    res.zipf ? res.zipf->sample(rng)
                             : (res.spec.stripes > 1
                                    ? rng.below(res.spec.stripes)
                                    : 0);
                out.push_back(jvm::Action::monitorEnter(
                    res.stripes[stripe]));
                for (std::uint32_t k = 0; k < res.spec.allocs_in_cs;
                     ++k) {
                    out.push_back(jvm::Action::allocate(
                        params_.alloc.drawSize(rng),
                        params_.alloc.drawTtl(rng), /*site=*/4));
                }
                out.push_back(jvm::Action::compute(
                    std::max<Ticks>(res.spec.cs_compute, 1)));
                out.push_back(jvm::Action::monitorExit(
                    res.stripes[stripe]));
            }
        }

        emitTaskBody(out, rng, params_.alloc, compute - compute / 2,
                     allocs - allocs / 2, /*site=*/3);

        // Per-request result merge on one sync stripe.
        const jvm::MonitorId stripe =
            sync_stripes_[rng.below(sync_stripes_.size())];
        out.push_back(jvm::Action::monitorEnter(stripe));
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.sync_cs, 1)));
        out.push_back(jvm::Action::monitorExit(stripe));
    }

  private:
    struct Resource
    {
        workload::SharedResourceSpec spec;
        std::vector<jvm::MonitorId> stripes;
        std::optional<ZipfDistribution> zipf;
    };

    workload::TaskQueueParams params_;
    jvm::MonitorId queue_lock_ = 0;
    std::vector<jvm::MonitorId> sync_stripes_;
    std::vector<Resource> resources_;
};

/**
 * h2: one request is one transaction — parallel parse/plan, striped
 * row-cache touches, then the commit under the coarse database lock.
 * Identical action stream to the closed-loop ClientSource's body.
 */
class SerializedRequestModel : public RequestModel
{
  public:
    explicit SerializedRequestModel(workload::SerializedParams params)
        : params_(std::move(params))
    {}

    std::string name() const override { return params_.name; }

    void
    setup(jvm::AppContext &ctx) override
    {
        db_lock_ = ctx.createMonitor(params_.name + ".db-lock");
        cache_stripes_.clear();
        for (std::uint32_t s = 0; s < params_.cache_stripes; ++s) {
            cache_stripes_.push_back(ctx.createMonitor(
                params_.name + ".row-cache." + std::to_string(s)));
        }
    }

    void
    emitStartup(std::vector<jvm::Action> &out, Rng &rng,
                std::uint32_t thread_idx) override
    {
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.startup_compute, 1)));
        if (thread_idx == 0) {
            emitPinnedData(out, rng, params_.pinned_shared,
                           params_.pinned_shared_objects, /*site=*/1);
        }
    }

    void
    emitRequest(std::vector<jvm::Action> &out, Rng &rng) override
    {
        const Ticks parse = logNormalTicks(
            rng, params_.parse_compute_mean, params_.parse_compute_sigma);
        emitTaskBody(out, rng, params_.alloc, parse,
                     params_.allocs_parse, /*site=*/3);

        double expected = params_.cache_accesses_per_txn;
        std::uint32_t accesses = static_cast<std::uint32_t>(expected);
        expected -= accesses;
        if (expected > 0.0 && rng.chance(expected))
            ++accesses;
        for (std::uint32_t a = 0; a < accesses; ++a) {
            const std::size_t stripe = rng.below(cache_stripes_.size());
            out.push_back(jvm::Action::monitorEnter(
                cache_stripes_[stripe]));
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.cache_cs, 1)));
            out.push_back(jvm::Action::monitorExit(
                cache_stripes_[stripe]));
        }

        const Ticks commit = logNormalTicks(
            rng, params_.commit_compute_mean,
            params_.commit_compute_sigma);
        out.push_back(jvm::Action::monitorEnter(db_lock_));
        emitTaskBody(out, rng, params_.alloc, commit,
                     params_.allocs_commit, /*site=*/4);
        out.push_back(jvm::Action::monitorExit(db_lock_));
    }

  private:
    workload::SerializedParams params_;
    jvm::MonitorId db_lock_ = 0;
    std::vector<jvm::MonitorId> cache_stripes_;
};

/**
 * jython: one request is one script unit — ops_per_unit interpreter
 * ops, each holding the global interpreter lock, with lock-released
 * gap compute in between. Every serving thread contends for the GIL,
 * so service time inflates with concurrency exactly like the
 * closed-loop model's worker pool does.
 */
class InterpreterRequestModel : public RequestModel
{
  public:
    explicit InterpreterRequestModel(workload::InterpreterParams params)
        : params_(std::move(params))
    {}

    std::string name() const override { return params_.name; }

    void
    setup(jvm::AppContext &ctx) override
    {
        gil_ = ctx.createMonitor(params_.name + ".interp-lock");
    }

    void
    emitStartup(std::vector<jvm::Action> &out, Rng &rng,
                std::uint32_t thread_idx) override
    {
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.startup_compute, 1)));
        if (thread_idx == 0) {
            emitPinnedData(out, rng, params_.pinned_shared,
                           params_.pinned_shared_objects, /*site=*/1);
        }
    }

    void
    emitRequest(std::vector<jvm::Action> &out, Rng &rng) override
    {
        for (std::uint32_t op = 0; op < params_.ops_per_unit; ++op) {
            out.push_back(jvm::Action::monitorEnter(gil_));
            emitTaskBody(out, rng, params_.alloc,
                         std::max<Ticks>(params_.interp_slice, 1),
                         params_.allocs_per_op, /*site=*/3);
            out.push_back(jvm::Action::monitorExit(gil_));
            if (params_.gap_compute > 0) {
                out.push_back(
                    jvm::Action::compute(params_.gap_compute));
            }
        }
    }

  private:
    workload::InterpreterParams params_;
    jvm::MonitorId gil_ = 0;
};

/**
 * eclipse: one request is one compilation unit end to end. The serial
 * parse stage of the closed-loop pipeline becomes a global parser lock
 * (at most one request parses at a time — the same width-1 bottleneck),
 * followed by the parallel typecheck/codegen body with its workspace
 * critical section.
 */
class PipelineRequestModel : public RequestModel
{
  public:
    explicit PipelineRequestModel(workload::PipelineParams params)
        : params_(std::move(params))
    {}

    std::string name() const override { return params_.name; }

    void
    setup(jvm::AppContext &ctx) override
    {
        parser_lock_ = ctx.createMonitor(params_.name + ".parser");
        workspace_lock_ = ctx.createMonitor(params_.name + ".workspace");
    }

    void
    emitStartup(std::vector<jvm::Action> &out, Rng &rng,
                std::uint32_t thread_idx) override
    {
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.startup_compute, 1)));
        if (thread_idx == 0) {
            emitPinnedData(out, rng, params_.pinned_shared,
                           params_.pinned_shared_objects, /*site=*/1);
        }
    }

    void
    emitRequest(std::vector<jvm::Action> &out, Rng &rng) override
    {
        const Ticks parse = logNormalTicks(
            rng, params_.producer_compute, params_.producer_sigma);
        out.push_back(jvm::Action::monitorEnter(parser_lock_));
        emitTaskBody(out, rng, params_.alloc, parse,
                     params_.allocs_producer, /*site=*/3);
        out.push_back(jvm::Action::monitorExit(parser_lock_));

        const Ticks consume = logNormalTicks(
            rng, params_.consumer_compute, params_.consumer_sigma);
        emitTaskBody(out, rng, params_.alloc, consume,
                     params_.allocs_consumer, /*site=*/4);

        out.push_back(jvm::Action::monitorEnter(workspace_lock_));
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.workspace_cs, 1)));
        out.push_back(jvm::Action::monitorExit(workspace_lock_));
    }

  private:
    workload::PipelineParams params_;
    jvm::MonitorId parser_lock_ = 0;
    jvm::MonitorId workspace_lock_ = 0;
};

} // namespace

std::unique_ptr<RequestModel>
makeRequestModel(const std::string &app, std::string &err)
{
    bool known = false;
    for (const std::string &name : workload::dacapoAppNames())
        known = known || name == app;
    if (!known) {
        err = "unknown application '" + app + "'";
        return nullptr;
    }

    // Read the calibrated parameters off the closed-loop model, so both
    // harnesses stay in lock-step on service behaviour.
    const auto base = workload::makeDacapoApp(app);
    if (const auto *tq =
            dynamic_cast<const workload::TaskQueueApp *>(base.get())) {
        return std::make_unique<TaskQueueRequestModel>(tq->params());
    }
    if (const auto *ser =
            dynamic_cast<const workload::SerializedApp *>(base.get())) {
        return std::make_unique<SerializedRequestModel>(ser->params());
    }
    if (const auto *interp =
            dynamic_cast<const workload::InterpreterApp *>(base.get())) {
        return std::make_unique<InterpreterRequestModel>(
            interp->params());
    }
    if (const auto *pipe =
            dynamic_cast<const workload::PipelineApp *>(base.get())) {
        return std::make_unique<PipelineRequestModel>(pipe->params());
    }
    err = "application '" + app + "' has no request model";
    return nullptr;
}

} // namespace jscale::traffic
