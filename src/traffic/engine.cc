#include "traffic/engine.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/simulation.hh"

namespace jscale::traffic {

namespace {

/** Arrival-process Rng stream id, salted per tenant so co-hosted
 *  streams are independent ("trfc" + tenant). */
std::uint64_t
arrivalStream(std::uint32_t tenant)
{
    return 0x7472'6663'0000'0000ULL + tenant;
}

} // namespace

TrafficEngine::TrafficEngine(jvm::JavaVm &vm, const ArrivalSpec &spec)
    : vm_(vm), sim_(vm.sim()), spec_(spec),
      process_(spec, vm.sim().forkRng(
                         arrivalStream(vm.config().tenant)))
{
    arrival_event_ = std::make_unique<sim::CallbackEvent>(
        [this] { onArrival(); }, "traffic-arrival");
    profiler_.attach(vm_);
    profiler_.setTaskSink([this](const jvm::SlowTaskRecord &rec) {
        onServiceComplete(rec);
    });
}

TrafficEngine::~TrafficEngine()
{
    if (arrival_event_->scheduled())
        sim_.queue().deschedule(arrival_event_.get());
    profiler_.detach();
}

void
TrafficEngine::bind(jvm::ChannelId channel, std::uint32_t n_workers)
{
    jscale_assert(!bound_, "traffic engine already bound");
    jscale_assert(n_workers > 0, "traffic needs at least one worker");
    channel_ = channel;
    n_workers_ = n_workers;
    bound_ = true;
}

void
TrafficEngine::arm()
{
    jscale_assert(bound_, "bind() must precede arm()");
    jscale_assert(spec_.requests > 0, "empty arrival stream");
    sim_.scheduleIn(arrival_event_.get(),
                    process_.nextGap(sim_.now()));
}

void
TrafficEngine::scheduleNext(Ticks now)
{
    if (arrivals_ < spec_.requests) {
        sim_.scheduleIn(arrival_event_.get(), process_.nextGap(now));
        return;
    }
    // Stream complete: one end-of-stream sentinel permit per worker.
    // Permits are anonymous and granted FIFO, so a granted worker finds
    // a queued request whenever any remains; only the last n_workers_
    // grants (with the queue empty) read as sentinels.
    vm_.monitors().channel(channel_).post(n_workers_, now);
}

void
TrafficEngine::onArrival()
{
    const Ticks now = sim_.now();
    const std::uint64_t id = ++arrivals_;
    auto &listeners = vm_.listeners();
    const std::uint32_t tenant = vm_.config().tenant;

    if (spec_.queue_limit > 0 && queue_.size() >= spec_.queue_limit) {
        if (spec_.shed == ShedPolicy::DropNewest) {
            // Reject at the door; the arrival is never admitted.
            ++shed_;
            listeners.dispatch([&](jvm::RuntimeListener &l) {
                l.onRequestShed(tenant, id, now);
            });
        } else {
            // Evict the oldest queued request; its already-posted
            // permit transfers to the new arrival, so no extra post.
            const Queued victim = queue_.front();
            queue_.pop_front();
            ++shed_;
            listeners.dispatch([&](jvm::RuntimeListener &l) {
                l.onRequestShed(tenant, victim.id, now);
            });
            ++admitted_;
            queue_.push_back(Queued{id, now});
            listeners.dispatch([&](jvm::RuntimeListener &l) {
                l.onRequestArrival(tenant, id, now);
            });
        }
    } else {
        ++admitted_;
        queue_.push_back(Queued{id, now});
        max_queue_depth_ =
            std::max<std::uint64_t>(max_queue_depth_, queue_.size());
        listeners.dispatch([&](jvm::RuntimeListener &l) {
            l.onRequestArrival(tenant, id, now);
        });
        vm_.monitors().channel(channel_).post(1, now);
    }

    scheduleNext(now);
}

bool
TrafficEngine::dispatchNext(jvm::MutatorIndex thread)
{
    if (queue_.empty())
        return false; // the granted permit was a sentinel
    const Ticks now = sim_.now();
    const Queued q = queue_.front();
    queue_.pop_front();
    ++dispatched_;
    if (thread >= inflight_.size())
        inflight_.resize(thread + 1);
    Inflight &fl = inflight_[thread];
    jscale_assert(!fl.active, "worker already serving a request");
    fl.active = true;
    fl.id = q.id;
    fl.arrival = q.arrival;
    fl.dispatch = now;
    // The probe restarts the embedded profiler's attribution window at
    // `now`, anchoring the service decomposition to this dispatch.
    vm_.listeners().dispatch([&](jvm::RuntimeListener &l) {
        l.onRequestDispatched(vm_.config().tenant, q.id, thread, now);
    });
    return true;
}

void
TrafficEngine::onServiceComplete(const jvm::SlowTaskRecord &rec)
{
    if (rec.thread >= inflight_.size())
        return;
    Inflight &fl = inflight_[rec.thread];
    if (!fl.active)
        return;
    jscale_assert(rec.start == fl.dispatch,
                  "service window must open at the dispatch stamp");
    jscale_assert(fl.dispatch >= fl.arrival,
                  "dispatch precedes arrival");
    const Ticks end = rec.end;
    const std::uint64_t id = fl.id;
    fl.active = false;

    sojourn_.add(end - fl.arrival);
    queueing_.add(fl.dispatch - fl.arrival);
    service_.add(end - fl.dispatch);
    for (std::size_t i = 0; i < jvm::kWaitBucketCount; ++i)
        service_bucket_total_[i] += rec.buckets[i];
    ++completed_;

    vm_.listeners().dispatch([&](jvm::RuntimeListener &l) {
        l.onRequestCompleted(vm_.config().tenant, id, rec.thread, end);
    });
}

std::uint64_t
TrafficEngine::inflightCount() const
{
    std::uint64_t n = 0;
    for (const Inflight &fl : inflight_)
        n += fl.active ? 1 : 0;
    return n;
}

jvm::TrafficSummary
TrafficEngine::summary() const
{
    jvm::TrafficSummary s;
    s.enabled = true;
    s.tenant = vm_.config().tenant;
    s.arrival_spec = spec_.describe();
    s.arrivals = arrivals_;
    s.admitted = admitted_;
    s.shed = shed_;
    s.dispatched = dispatched_;
    s.completed = completed_;
    s.max_queue_depth = max_queue_depth_;
    s.sojourn = sojourn_;
    s.queueing = queueing_;
    s.service = service_;
    std::copy(std::begin(service_bucket_total_),
              std::end(service_bucket_total_),
              std::begin(s.service_bucket_total));
    return s;
}

} // namespace jscale::traffic
