/**
 * @file
 * RequestModel: per-application request bodies for open-loop serving.
 *
 * The closed-loop application models drive themselves from shared task
 * pools; an open-loop run instead serves externally injected requests.
 * A RequestModel emits the action sequence of *one* request, mirroring
 * the corresponding closed-loop app's task body — same critical
 * sections against the same shared monitors, same compute and
 * allocation distributions — so the scalability character the paper
 * measures (lock serialization, GIL, allocation pressure) carries over
 * unchanged to the tail-latency study.
 *
 * Models are built from the same calibrated parameter sets as
 * makeDacapoApp, read straight off the closed-loop app classes, so a
 * recalibration there propagates here automatically.
 */

#ifndef JSCALE_TRAFFIC_REQUEST_MODEL_HH
#define JSCALE_TRAFFIC_REQUEST_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "jvm/runtime/app.hh"

namespace jscale::traffic {

/** The service behaviour of one application's requests. */
class RequestModel
{
  public:
    virtual ~RequestModel() = default;

    /** Stable application name ("h2", "sunflow", ...). */
    virtual std::string name() const = 0;

    /** Create shared state (monitors) for one run. */
    virtual void setup(jvm::AppContext &ctx) = 0;

    /**
     * Emit worker @p thread_idx's one-time startup batch (warmup
     * compute, pinned application-lifetime data).
     */
    virtual void emitStartup(std::vector<jvm::Action> &out, Rng &rng,
                             std::uint32_t thread_idx) = 0;

    /** Emit the body of one request (no trailing TaskDone). */
    virtual void emitRequest(std::vector<jvm::Action> &out, Rng &rng) = 0;
};

/**
 * Build the request model for @p app (any of the six modeled DaCapo
 * applications). Per-request service parameters come from the same
 * calibration as makeDacapoApp; the stream length is the arrival
 * spec's business, so no work-volume scale applies here. Returns
 * nullptr and sets @p err for an unknown name.
 */
std::unique_ptr<RequestModel>
makeRequestModel(const std::string &app, std::string &err);

} // namespace jscale::traffic

#endif // JSCALE_TRAFFIC_REQUEST_MODEL_HH
