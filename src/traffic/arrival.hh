/**
 * @file
 * Open-loop arrival processes.
 *
 * A closed-loop run (the classic DaCapo harness) keeps a fixed number
 * of threads busy: offered load adapts to the system's speed, so
 * saturation shows up as lower throughput, never as queueing delay. An
 * open-loop run injects requests on a schedule *independent* of the
 * system's state — the configuration every latency-sensitive server
 * actually faces — which is what makes tail latency and the
 * offered-load knee observable at all.
 *
 * Three seeded processes are modeled:
 *
 *  - poisson: memoryless arrivals at a fixed mean rate (M/G/k).
 *  - burst:   Markov-modulated on/off Poisson (MMPP-2); dwell times in
 *             each phase are exponential, the on phase multiplies the
 *             base rate by `factor` and the off phase divides by it.
 *  - diurnal: sinusoidally ramping rate between `rate` (trough) and
 *             `rate * peak` (crest) with period `period_ms`, sampled by
 *             thinning against the crest rate.
 *
 * All gap sampling draws from one forked Rng stream in arrival order,
 * so a (seed, spec) pair yields one exact arrival schedule regardless
 * of what the serving system does — byte-identical across --jobs
 * modes by construction.
 *
 * Spec grammar (strict: unknown or duplicate keys are errors):
 *
 *   poisson:rate=<req/s>[:requests=<n>][:queue=<cap>][:shed=drop|oldest]
 *   burst:rate=<req/s>:factor=<f>[:on_ms=<ms>][:off_ms=<ms>][...]
 *   diurnal:rate=<req/s>:peak=<f>[:period_ms=<ms>][...]
 */

#ifndef JSCALE_TRAFFIC_ARRIVAL_HH
#define JSCALE_TRAFFIC_ARRIVAL_HH

#include <cstdint>
#include <string>

#include "base/random.hh"
#include "base/units.hh"

namespace jscale::traffic {

/** The modeled arrival process families. */
enum class ArrivalKind : std::uint8_t
{
    Poisson,
    Bursty,
    Diurnal,
};

/** Spec-grammar name of @p kind ("poisson", "burst", "diurnal"). */
const char *arrivalKindName(ArrivalKind kind);

/** What a full admission queue does with the overflow. */
enum class ShedPolicy : std::uint8_t
{
    /** Reject the arriving request (classic admission control). */
    DropNewest,
    /** Evict the oldest queued request in favour of the new one. */
    DropOldest,
};

/** One parsed arrival stream description. */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Mean offered rate in requests per second (base rate for the
     *  modulated processes). */
    double rate = 1000.0;
    /** Total requests the stream offers before ending. */
    std::uint64_t requests = 1000;
    /** Admission-queue capacity; 0 = unbounded. */
    std::uint64_t queue_limit = 0;
    ShedPolicy shed = ShedPolicy::DropNewest;

    /** @name Bursty (MMPP-2) parameters */
    /** @{ */
    /** On-phase rate multiplier (off phase divides by it). */
    double burst_factor = 4.0;
    /** Mean dwell time in the on phase. */
    Ticks on_mean = 20 * units::MS;
    /** Mean dwell time in the off phase. */
    Ticks off_mean = 20 * units::MS;
    /** @} */

    /** @name Diurnal parameters */
    /** @{ */
    /** Crest rate multiplier (>= 1). */
    double peak_factor = 3.0;
    /** Full trough-to-trough period. */
    Ticks period = 1 * units::SEC;
    /** @} */

    /**
     * Parse the grammar above. On failure returns false and sets
     * @p err; @p out is unspecified.
     */
    static bool parse(const std::string &spec, ArrivalSpec &out,
                      std::string &err);

    /** Canonical one-line spec string (reporting / reproduction). */
    std::string describe() const;
};

/**
 * Deterministic gap sampler for one arrival stream. Consumes the Rng
 * strictly in arrival order; nothing else may share the stream.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalSpec &spec, Rng rng);

    /**
     * Sample the next inter-arrival gap (>= 1 tick). @p now is the
     * current arrival time, used only by the time-varying processes.
     */
    Ticks nextGap(Ticks now);

  private:
    Ticks poissonGap(double rate);

    ArrivalSpec spec_;
    Rng rng_;
    /** Bursty: current phase and its remaining dwell time. */
    bool phase_on_ = true;
    Ticks phase_left_ = 0;
};

} // namespace jscale::traffic

#endif // JSCALE_TRAFFIC_ARRIVAL_HH
