/**
 * @file
 * TrafficEngine: the open-loop request injector and latency pipeline.
 *
 * One engine drives one VM's request stream. It owns:
 *
 *  - the *arrival side*: a seeded ArrivalProcess scheduling arrival
 *    events on the simulation, a bounded admission queue with a
 *    configurable shed policy, and a counting-semaphore hand-off to
 *    the serving worker threads (one permit per admitted request, plus
 *    one end-of-stream sentinel per worker);
 *
 *  - the *latency side*: integer-exact arrival/dispatch/completion
 *    stamps per request, decomposed as
 *
 *        sojourn == queueing (arrival->dispatch)
 *                 + service  (dispatch->completion)
 *
 *    with the service half further attributed to the TaskProfiler's
 *    wait-state buckets (cpu, lock, gc-stw, ...). The engine embeds
 *    its own profiler: on every onRequestDispatched probe the profiler
 *    restarts the serving thread's attribution window, so the window
 *    it closes at TaskDone covers exactly [dispatch, completion] and
 *    its buckets sum to service time by construction.
 *
 * Every boundary is also published on the VM's RuntimeListener chain
 * (onRequestArrival/Shed/Dispatched/Completed), which is what the
 * conservation oracle, telemetry and tests observe.
 */

#ifndef JSCALE_TRAFFIC_ENGINE_HH
#define JSCALE_TRAFFIC_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "base/units.hh"
#include "jvm/runtime/vm.hh"
#include "profile/profiler.hh"
#include "sim/event.hh"
#include "traffic/arrival.hh"

namespace jscale::traffic {

/**
 * The injector. Construct against a VM, let the OpenLoopApp bind() and
 * arm() it during setup, read summary() after the run.
 */
class TrafficEngine
{
  public:
    TrafficEngine(jvm::JavaVm &vm, const ArrivalSpec &spec);
    ~TrafficEngine();

    TrafficEngine(const TrafficEngine &) = delete;
    TrafficEngine &operator=(const TrafficEngine &) = delete;

    /**
     * Connect the request hand-off channel and the worker count
     * (called by OpenLoopApp::setup).
     */
    void bind(jvm::ChannelId channel, std::uint32_t n_workers);

    /** Schedule the first arrival (after bind, before simulation). */
    void arm();

    /**
     * Serving worker @p thread claimed a permit and asks for its
     * request: pops the queue head, stamps the dispatch, and fires
     * onRequestDispatched. @return false when the permit was an
     * end-of-stream sentinel — the worker emits End and exits.
     */
    bool dispatchNext(jvm::MutatorIndex thread);

    /** Aggregate per-request results (valid after the run). */
    jvm::TrafficSummary summary() const;

    /** Requests currently queued (live gauge). */
    std::uint64_t queueDepth() const { return queue_.size(); }

    /** Requests dispatched but not yet completed (live gauge). */
    std::uint64_t inflightCount() const;

  private:
    void onArrival();
    void scheduleNext(Ticks now);
    void onServiceComplete(const jvm::SlowTaskRecord &rec);

    struct Queued
    {
        std::uint64_t id = 0;
        Ticks arrival = 0;
    };

    struct Inflight
    {
        bool active = false;
        std::uint64_t id = 0;
        Ticks arrival = 0;
        Ticks dispatch = 0;
    };

    jvm::JavaVm &vm_;
    sim::Simulation &sim_;
    ArrivalSpec spec_;
    ArrivalProcess process_;
    profile::TaskProfiler profiler_;
    std::unique_ptr<sim::CallbackEvent> arrival_event_;

    jvm::ChannelId channel_ = 0;
    bool bound_ = false;
    std::uint32_t n_workers_ = 0;

    std::deque<Queued> queue_;
    std::vector<Inflight> inflight_;

    std::uint64_t arrivals_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t max_queue_depth_ = 0;

    stats::LatencyHistogram sojourn_;
    stats::LatencyHistogram queueing_;
    stats::LatencyHistogram service_;
    Ticks service_bucket_total_[jvm::kWaitBucketCount] = {};
};

} // namespace jscale::traffic

#endif // JSCALE_TRAFFIC_ENGINE_HH
