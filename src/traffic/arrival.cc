#include "traffic/arrival.hh"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "base/logging.hh"

namespace jscale::traffic {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "burst";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    return "?";
}

namespace {

/** Parse a non-negative decimal number; false on any trailing junk. */
bool
parseNumber(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size() && out >= 0.0 &&
           std::isfinite(out);
}

Ticks
msToTicks(double ms)
{
    return static_cast<Ticks>(
        std::llround(ms * static_cast<double>(units::MS)));
}

/** Split @p s on @p sep (no empty-field collapsing). */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t pos = s.find(sep); pos != std::string::npos;
         pos = s.find(sep, start)) {
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    out.push_back(s.substr(start));
    return out;
}

} // namespace

bool
ArrivalSpec::parse(const std::string &spec, ArrivalSpec &out,
                   std::string &err)
{
    out = ArrivalSpec{};
    const std::vector<std::string> fields = split(spec, ':');
    const std::string &kind = fields[0];
    if (kind == "poisson") {
        out.kind = ArrivalKind::Poisson;
    } else if (kind == "burst") {
        out.kind = ArrivalKind::Bursty;
    } else if (kind == "diurnal") {
        out.kind = ArrivalKind::Diurnal;
    } else {
        err = "arrivals '" + spec + "': unknown process '" + kind +
              "' (expected poisson|burst|diurnal)";
        return false;
    }

    bool have_rate = false;
    std::vector<std::string> seen;
    for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string &field = fields[i];
        const auto eq = field.find('=');
        if (eq == std::string::npos || eq == 0) {
            err = "arrivals '" + spec + "': expected key=value, got '" +
                  field + "'";
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        for (const std::string &s : seen) {
            if (s == key) {
                err = "arrivals '" + spec + "': duplicate key '" + key +
                      "'";
                return false;
            }
        }
        seen.push_back(key);

        double num = 0.0;
        const bool numeric = parseNumber(value, num);
        const auto need = [&](bool ok, const char *what) {
            if (!ok)
                err = "arrivals '" + spec + "': " + key + " needs " +
                      what + ", got '" + value + "'";
            return ok;
        };

        if (key == "rate") {
            if (!need(numeric && num > 0.0, "a positive req/s number"))
                return false;
            out.rate = num;
            have_rate = true;
        } else if (key == "requests") {
            if (!need(numeric && num >= 1.0, "a count >= 1"))
                return false;
            out.requests = static_cast<std::uint64_t>(num);
        } else if (key == "queue") {
            if (!need(numeric, "a capacity (0 = unbounded)"))
                return false;
            out.queue_limit = static_cast<std::uint64_t>(num);
        } else if (key == "shed") {
            if (value == "drop") {
                out.shed = ShedPolicy::DropNewest;
            } else if (value == "oldest") {
                out.shed = ShedPolicy::DropOldest;
            } else {
                err = "arrivals '" + spec + "': shed must be " +
                      "drop|oldest, got '" + value + "'";
                return false;
            }
        } else if (key == "factor" && out.kind == ArrivalKind::Bursty) {
            if (!need(numeric && num >= 1.0, "a multiplier >= 1"))
                return false;
            out.burst_factor = num;
        } else if (key == "on_ms" && out.kind == ArrivalKind::Bursty) {
            if (!need(numeric && num > 0.0, "a positive ms duration"))
                return false;
            out.on_mean = msToTicks(num);
        } else if (key == "off_ms" && out.kind == ArrivalKind::Bursty) {
            if (!need(numeric && num > 0.0, "a positive ms duration"))
                return false;
            out.off_mean = msToTicks(num);
        } else if (key == "peak" && out.kind == ArrivalKind::Diurnal) {
            if (!need(numeric && num >= 1.0, "a multiplier >= 1"))
                return false;
            out.peak_factor = num;
        } else if (key == "period_ms" &&
                   out.kind == ArrivalKind::Diurnal) {
            if (!need(numeric && num > 0.0, "a positive ms period"))
                return false;
            out.period = msToTicks(num);
        } else {
            err = "arrivals '" + spec + "': unknown key '" + key +
                  "' for process '" + kind + "'";
            return false;
        }
    }

    if (!have_rate) {
        err = "arrivals '" + spec + "': missing required key 'rate'";
        return false;
    }
    return true;
}

std::string
ArrivalSpec::describe() const
{
    std::ostringstream os;
    os << arrivalKindName(kind) << ":rate=" << rate;
    if (kind == ArrivalKind::Bursty) {
        os << ":factor=" << burst_factor
           << ":on_ms=" << on_mean / units::MS
           << ":off_ms=" << off_mean / units::MS;
    } else if (kind == ArrivalKind::Diurnal) {
        os << ":peak=" << peak_factor
           << ":period_ms=" << period / units::MS;
    }
    os << ":requests=" << requests;
    if (queue_limit > 0) {
        os << ":queue=" << queue_limit << ":shed="
           << (shed == ShedPolicy::DropOldest ? "oldest" : "drop");
    }
    return os.str();
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec &spec, Rng rng)
    : spec_(spec), rng_(rng)
{}

Ticks
ArrivalProcess::poissonGap(double rate)
{
    jscale_assert(rate > 0.0, "arrival rate must be positive");
    const double mean_gap = static_cast<double>(units::SEC) / rate;
    const auto gap =
        static_cast<Ticks>(std::llround(rng_.exponential(mean_gap)));
    return gap > 0 ? gap : 1;
}

Ticks
ArrivalProcess::nextGap(Ticks now)
{
    switch (spec_.kind) {
      case ArrivalKind::Poisson:
        return poissonGap(spec_.rate);

      case ArrivalKind::Bursty: {
        // Walk simulated phase time until a candidate gap, drawn at the
        // current phase's rate, fits inside the phase's remaining dwell.
        Ticks gap = 0;
        for (;;) {
            if (phase_left_ == 0) {
                const Ticks mean =
                    phase_on_ ? spec_.on_mean : spec_.off_mean;
                phase_left_ = static_cast<Ticks>(std::llround(
                    rng_.exponential(static_cast<double>(mean))));
                if (phase_left_ == 0)
                    phase_left_ = 1;
            }
            const double rate = phase_on_
                                    ? spec_.rate * spec_.burst_factor
                                    : spec_.rate / spec_.burst_factor;
            const Ticks candidate = poissonGap(rate);
            if (candidate <= phase_left_) {
                phase_left_ -= candidate;
                return gap + candidate;
            }
            gap += phase_left_;
            phase_left_ = 0;
            phase_on_ = !phase_on_;
        }
      }

      case ArrivalKind::Diurnal: {
        // Thinning (Lewis-Shedler): sample at the crest rate, accept
        // with probability rate(t) / crest.
        constexpr double kTwoPi = 6.283185307179586;
        const double crest = spec_.rate * spec_.peak_factor;
        Ticks t = now;
        for (;;) {
            t += poissonGap(crest);
            const double phase =
                kTwoPi * (static_cast<double>(t % spec_.period) /
                          static_cast<double>(spec_.period));
            const double rate =
                spec_.rate *
                (1.0 + (spec_.peak_factor - 1.0) * 0.5 *
                           (1.0 - std::cos(phase)));
            if (rng_.chance(rate / crest))
                return t - now;
        }
      }
    }
    jscale_fatal("bad arrival kind");
}

} // namespace jscale::traffic
