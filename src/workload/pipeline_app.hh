/**
 * @file
 * PipelineApp: eclipse-style workload.
 *
 * Models an incremental-build pipeline: one producer thread parses
 * compilation units serially and hands them over a bounded channel to a
 * small fixed set of consumer threads that typecheck/generate code.
 * Effective parallelism is capped by the pipeline width no matter how
 * many threads are requested; surplus threads run a brief startup and
 * exit. Consumers allocate a heavy mix including long-lived AST/index
 * data, and since the set of allocating threads never grows, the
 * object-lifespan CDF is insensitive to the thread-count setting — the
 * paper's Fig. 1c.
 */

#ifndef JSCALE_WORKLOAD_PIPELINE_APP_HH
#define JSCALE_WORKLOAD_PIPELINE_APP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/units.hh"
#include "jvm/runtime/app.hh"
#include "workload/alloc_profile.hh"
#include "workload/source.hh"

namespace jscale::workload {

/** Parameters of a bounded-width pipeline application. */
struct PipelineParams
{
    std::string name = "eclipse";
    /** Fixed total compilation units, independent of thread count. */
    std::uint64_t total_units = 900;
    /** Serial parse compute per unit (producer). */
    Ticks producer_compute = 70 * units::US;
    double producer_sigma = 0.35;
    /** Typecheck/codegen compute per unit (consumers). */
    Ticks consumer_compute = 150 * units::US;
    double consumer_sigma = 0.4;
    /** Number of consumer threads actually doing work. */
    std::uint32_t consumer_count = 2;
    std::uint32_t allocs_producer = 10;
    std::uint32_t allocs_consumer = 22;
    AllocationProfile alloc;
    /** Workspace/index lock touched once per consumed unit. */
    Ticks workspace_cs = 2 * units::US;
    /** Long-lived workspace metadata, allocated by the producer. */
    Bytes pinned_shared = 2048 * units::KiB;
    std::uint32_t pinned_shared_objects = 256;
    Ticks startup_compute = 350 * units::US;
    /** Startup allocations of surplus threads. */
    std::uint32_t surplus_allocs = 4;
};

/** The eclipse-style application model. */
class PipelineApp : public jvm::ApplicationModel
{
  public:
    explicit PipelineApp(PipelineParams params);
    ~PipelineApp() override;

    std::string appName() const override { return params_.name; }
    void setup(jvm::AppContext &ctx) override;
    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx) override;

    const PipelineParams &params() const { return params_; }

  private:
    struct RunState;
    class ProducerSource;
    class ConsumerSource;
    class SurplusSource;
    class SoloSource;

    PipelineParams params_;
    std::shared_ptr<RunState> state_;
};

} // namespace jscale::workload

#endif // JSCALE_WORKLOAD_PIPELINE_APP_HH
