/**
 * @file
 * HotLockApp: a lock-saturated microbenchmark for the E19
 * scalability-collapse study.
 *
 * Every operation does a slice of private compute, then enters one
 * shared hot monitor for a short critical section — the h2 commit
 * bottleneck distilled to its essentials. Past the saturation point
 * (roughly 1 + think/hold threads) extra threads add nothing but
 * circulation width, so with the coherence-footprint handoff cost
 * model armed the FIFO baseline exhibits genuine throughput collapse
 * while admission-restricting policies (Malthusian, LCR) keep the
 * circulating set — and the handoff cost — small.
 */

#ifndef JSCALE_WORKLOAD_HOTLOCK_APP_HH
#define JSCALE_WORKLOAD_HOTLOCK_APP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/units.hh"
#include "jvm/runtime/app.hh"
#include "workload/alloc_profile.hh"
#include "workload/source.hh"

namespace jscale::workload {

/** Parameters of the hot-lock microbenchmark. */
struct HotLockParams
{
    std::string name = "hotlock";
    /** Fixed total operations, independent of thread count. */
    std::uint64_t total_ops = 6000;
    /** Private think-time compute per op (log-normal mean). */
    Ticks local_compute_mean = 8 * units::US;
    double local_compute_sigma = 0.25;
    /** Critical-section compute under the hot lock. */
    Ticks cs_compute_mean = 4 * units::US;
    double cs_compute_sigma = 0.2;
    /** Small allocations per op, made in the private phase. */
    std::uint32_t allocs_per_op = 2;
    AllocationProfile alloc;
    /** Long-lived shared table, allocated by thread 0. */
    Bytes pinned_shared = 256 * units::KiB;
    std::uint32_t pinned_shared_objects = 64;
    Ticks startup_compute = 100 * units::US;
};

/** The hot-lock application model. */
class HotLockApp : public jvm::ApplicationModel
{
  public:
    explicit HotLockApp(HotLockParams params);
    ~HotLockApp() override;

    std::string appName() const override { return params_.name; }
    void setup(jvm::AppContext &ctx) override;
    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx) override;

    const HotLockParams &params() const { return params_; }

  private:
    struct RunState;
    class WorkerSource;

    HotLockParams params_;
    std::shared_ptr<RunState> state_;
};

} // namespace jscale::workload

#endif // JSCALE_WORKLOAD_HOTLOCK_APP_HH
