/**
 * @file
 * BufferedSource: the common base for workload ActionSources.
 *
 * Concrete sources implement refill(), emitting one batch of actions at
 * a time (typically one task or one chunk of tasks). Batch boundaries
 * are where sources consult shared run state (task pools, unit
 * counters), so work claiming follows the simulated execution order
 * deterministically.
 */

#ifndef JSCALE_WORKLOAD_SOURCE_HH
#define JSCALE_WORKLOAD_SOURCE_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "base/units.hh"
#include "jvm/threads/action.hh"
#include "workload/alloc_profile.hh"

namespace jscale::workload {

/** Base ActionSource emitting refill()-produced batches. */
class BufferedSource : public jvm::ActionSource
{
  public:
    jvm::Action
    next() override
    {
        while (pos_ >= buf_.size()) {
            if (done_)
                return jvm::Action::end();
            buf_.clear();
            pos_ = 0;
            if (!refill(buf_))
                done_ = true;
        }
        return buf_[pos_++];
    }

  protected:
    /**
     * Emit the next batch into @p out. @return false when the thread is
     * done (a trailing partial batch is still consumed first).
     */
    virtual bool refill(std::vector<jvm::Action> &out) = 0;

  private:
    std::vector<jvm::Action> buf_;
    std::size_t pos_ = 0;
    bool done_ = false;
};

/** Shared pool of identical tasks claimed in chunks. */
struct TaskPool
{
    std::uint64_t remaining = 0;

    /** Claim up to @p chunk tasks; returns the number claimed. */
    std::uint64_t
    claim(std::uint64_t chunk)
    {
        const std::uint64_t n = std::min(chunk, remaining);
        remaining -= n;
        return n;
    }
};

/**
 * Emit a task body: `allocs` allocations interleaved with compute slices
 * summing to @p compute ticks.
 */
void emitTaskBody(std::vector<jvm::Action> &out, Rng &rng,
                  const AllocationProfile &profile, Ticks compute,
                  std::uint32_t allocs, jvm::AllocSiteId site);

/** Emit `count` pinned allocations totalling roughly `total` bytes. */
void emitPinnedData(std::vector<jvm::Action> &out, Rng &rng, Bytes total,
                    std::uint32_t count, jvm::AllocSiteId site);

} // namespace jscale::workload

#endif // JSCALE_WORKLOAD_SOURCE_HH
