#include "workload/task_queue_app.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "base/logging.hh"

namespace jscale::workload {

/** Per-run shared state: the task pool and the monitor ids. */
struct TaskQueueApp::RunState
{
    TaskPool pool;
    std::uint64_t chunk_size = 1;
    jvm::MonitorId queue_lock = 0;
    std::vector<jvm::MonitorId> sync_stripes;

    struct Resource
    {
        SharedResourceSpec spec;
        std::vector<jvm::MonitorId> stripes;
        std::optional<ZipfDistribution> zipf;
    };
    std::vector<Resource> resources;
};

/** One worker thread's behaviour stream. */
class TaskQueueApp::WorkerSource : public BufferedSource
{
  public:
    WorkerSource(std::shared_ptr<RunState> state,
                 const TaskQueueParams &params, std::uint32_t thread_idx,
                 Rng rng)
        : state_(std::move(state)), params_(params),
          thread_idx_(thread_idx), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        if (!started_) {
            started_ = true;
            emitStartup(out);
            return true;
        }
        return emitChunk(out);
    }

  private:
    void
    emitStartup(std::vector<jvm::Action> &out)
    {
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.startup_compute, 1)));
        if (thread_idx_ == 0) {
            emitPinnedData(out, rng_, params_.pinned_shared,
                           params_.pinned_shared_objects, /*site=*/1);
        }
        emitPinnedData(out, rng_, params_.pinned_per_thread,
                       params_.pinned_thread_objects, /*site=*/2);
    }

    bool
    emitChunk(std::vector<jvm::Action> &out)
    {
        // Fetch a chunk from the shared queue (always pays the queue
        // round-trip, including the final empty check). The fetch
        // marker ahead of the queue lock is the governor's admission
        // point: a parked thread stops *before* contending for the
        // queue, not while holding it.
        const std::uint64_t n = state_->pool.claim(state_->chunk_size);
        out.push_back(jvm::Action::taskFetch());
        out.push_back(jvm::Action::monitorEnter(state_->queue_lock));
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.queue_cs, 1)));
        out.push_back(jvm::Action::monitorExit(state_->queue_lock));
        if (n == 0)
            return false;

        for (std::uint64_t t = 0; t < n; ++t)
            emitTask(out);

        // Per-chunk coordination (phase sync, result merge) over the
        // striped sync structure.
        for (std::uint32_t s = 0; s < params_.sync_locks_per_chunk; ++s) {
            const jvm::MonitorId stripe =
                state_->sync_stripes[rng_.below(
                    state_->sync_stripes.size())];
            out.push_back(jvm::Action::monitorEnter(stripe));
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.sync_cs, 1)));
            out.push_back(jvm::Action::monitorExit(stripe));
        }
        return true;
    }

    void
    emitTask(std::vector<jvm::Action> &out)
    {
        const Ticks compute = std::max<Ticks>(
            1, static_cast<Ticks>(rng_.logNormal(
                   std::log(static_cast<double>(
                       params_.task_compute_mean)),
                   params_.task_compute_sigma)));
        const std::uint32_t allocs =
            params_.allocs_per_task == 0
                ? 0
                : static_cast<std::uint32_t>(rng_.range(
                      params_.allocs_per_task / 2,
                      params_.allocs_per_task + params_.allocs_per_task / 2));

        // First half of the task body.
        emitTaskBody(out, rng_, params_.alloc, compute / 2, allocs / 2,
                     /*site=*/3);

        // Shared-resource accesses in the middle of the task.
        for (auto &res : state_->resources) {
            double expected = res.spec.accesses_per_task;
            std::uint32_t accesses =
                static_cast<std::uint32_t>(expected);
            expected -= accesses;
            if (expected > 0.0 && rng_.chance(expected))
                ++accesses;
            for (std::uint32_t a = 0; a < accesses; ++a) {
                const std::size_t stripe =
                    res.zipf ? res.zipf->sample(rng_)
                             : (res.spec.stripes > 1
                                    ? rng_.below(res.spec.stripes)
                                    : 0);
                out.push_back(jvm::Action::monitorEnter(
                    res.stripes[stripe]));
                for (std::uint32_t k = 0; k < res.spec.allocs_in_cs; ++k) {
                    out.push_back(jvm::Action::allocate(
                        params_.alloc.drawSize(rng_),
                        params_.alloc.drawTtl(rng_), /*site=*/4));
                }
                out.push_back(jvm::Action::compute(
                    std::max<Ticks>(res.spec.cs_compute, 1)));
                out.push_back(jvm::Action::monitorExit(
                    res.stripes[stripe]));
            }
        }

        // Second half of the task body.
        emitTaskBody(out, rng_, params_.alloc, compute - compute / 2,
                     allocs - allocs / 2, /*site=*/3);
        out.push_back(jvm::Action::taskDone());
    }

    std::shared_ptr<RunState> state_;
    const TaskQueueParams &params_;
    std::uint32_t thread_idx_;
    Rng rng_;
    bool started_ = false;
};

TaskQueueApp::TaskQueueApp(TaskQueueParams params)
    : params_(std::move(params))
{
    jscale_assert(params_.total_tasks > 0, "app needs at least one task");
    jscale_assert(params_.chunk_divisor > 0.0,
                  "chunk divisor must be positive");
}

TaskQueueApp::~TaskQueueApp() = default;

void
TaskQueueApp::setup(jvm::AppContext &ctx)
{
    state_ = std::make_shared<RunState>();
    state_->pool.remaining = params_.total_tasks;
    state_->chunk_size = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(params_.total_tasks) /
               (params_.chunk_divisor *
                static_cast<double>(ctx.threadCount()))));
    state_->queue_lock = ctx.createMonitor(params_.name + ".task-queue");
    for (std::uint32_t s = 0; s < std::max<std::uint32_t>(
                                      params_.sync_stripes, 1);
         ++s) {
        state_->sync_stripes.push_back(ctx.createMonitor(
            params_.name + ".phase-sync." + std::to_string(s)));
    }
    for (const auto &spec : params_.resources) {
        RunState::Resource res;
        res.spec = spec;
        jscale_assert(spec.stripes >= 1, "resource needs >= 1 stripe");
        for (std::uint32_t s = 0; s < spec.stripes; ++s) {
            res.stripes.push_back(ctx.createMonitor(
                params_.name + "." + spec.name + "." + std::to_string(s)));
        }
        if (spec.stripes > 1 && spec.zipf_skew > 0.0)
            res.zipf.emplace(spec.stripes, spec.zipf_skew);
        state_->resources.push_back(std::move(res));
    }
}

std::unique_ptr<jvm::ActionSource>
TaskQueueApp::threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx)
{
    jscale_assert(state_ != nullptr, "setup() must precede threadSource()");
    return std::make_unique<WorkerSource>(
        state_, params_, thread_idx, ctx.forkThreadRng(thread_idx));
}

} // namespace jscale::workload
