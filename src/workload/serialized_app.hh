/**
 * @file
 * SerializedApp: h2-style transactional workload.
 *
 * All threads issue transactions against a shared database, but every
 * commit runs under one coarse database lock with a long critical
 * section — the classic serialization bottleneck. Parse work scales with
 * threads; commit work does not, so the application stops scaling after
 * a few threads while its total lock traffic stays constant (fixed
 * transaction count), matching the paper's non-scalable profile.
 */

#ifndef JSCALE_WORKLOAD_SERIALIZED_APP_HH
#define JSCALE_WORKLOAD_SERIALIZED_APP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/units.hh"
#include "jvm/runtime/app.hh"
#include "workload/alloc_profile.hh"
#include "workload/source.hh"

namespace jscale::workload {

/** Parameters of a coarse-lock transactional application. */
struct SerializedParams
{
    std::string name = "h2";
    /** Fixed total transactions, independent of thread count. */
    std::uint64_t total_transactions = 3000;
    /** Parallel parse/plan compute per transaction (log-normal mean). */
    Ticks parse_compute_mean = 60 * units::US;
    double parse_compute_sigma = 0.4;
    /** Serialized commit compute under the database lock. */
    Ticks commit_compute_mean = 110 * units::US;
    double commit_compute_sigma = 0.3;
    std::uint32_t allocs_parse = 14;
    std::uint32_t allocs_commit = 6;
    AllocationProfile alloc;
    /** Row-cache stripes touched per transaction outside the big lock. */
    std::uint32_t cache_stripes = 8;
    double cache_accesses_per_txn = 2.0;
    Ticks cache_cs = 1500;
    /** Long-lived database pages, allocated by thread 0. */
    Bytes pinned_shared = 1536 * units::KiB;
    std::uint32_t pinned_shared_objects = 192;
    Ticks startup_compute = 300 * units::US;
};

/** The h2-style application model. */
class SerializedApp : public jvm::ApplicationModel
{
  public:
    explicit SerializedApp(SerializedParams params);
    ~SerializedApp() override;

    std::string appName() const override { return params_.name; }
    void setup(jvm::AppContext &ctx) override;
    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx) override;

    const SerializedParams &params() const { return params_; }

  private:
    struct RunState;
    class ClientSource;

    SerializedParams params_;
    std::shared_ptr<RunState> state_;
};

} // namespace jscale::workload

#endif // JSCALE_WORKLOAD_SERIALIZED_APP_HH
