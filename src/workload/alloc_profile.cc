#include "workload/alloc_profile.hh"

#include <algorithm>
#include <cmath>

namespace jscale::workload {

Bytes
AllocationProfile::drawSize(Rng &rng) const
{
    const double v = rng.logNormal(size_log_mean, size_log_sigma);
    const Bytes b = static_cast<Bytes>(std::llround(v));
    return std::clamp(b, size_min, size_max);
}

Bytes
AllocationProfile::drawTtl(Rng &rng) const
{
    const double u = rng.uniform();
    if (u < frac_tiny)
        return static_cast<Bytes>(rng.below(tiny_max + 1));
    if (u < frac_tiny + frac_short) {
        return static_cast<Bytes>(rng.paretoBounded(
            short_alpha, static_cast<double>(short_lo),
            static_cast<double>(short_hi)));
    }
    if (u < frac_tiny + frac_short + frac_medium) {
        return static_cast<Bytes>(rng.paretoBounded(
            medium_alpha, static_cast<double>(medium_lo),
            static_cast<double>(medium_hi)));
    }
    return static_cast<Bytes>(rng.paretoBounded(
        long_alpha, static_cast<double>(medium_hi),
        static_cast<double>(long_hi)));
}

} // namespace jscale::workload
