/**
 * @file
 * InterpreterApp: jython-style workload.
 *
 * Models a dynamic-language runtime whose interpreter serializes through
 * a global interpreter lock and which, regardless of how many mutator
 * threads are requested, performs essentially all of its work on a small
 * fixed pool of worker threads (the paper: "jython mainly uses three to
 * four threads to do most of the work even when we set the number of
 * mutator threads to be larger than 16"). Surplus threads run a brief
 * startup and exit — the short-lived helpers the paper mentions.
 */

#ifndef JSCALE_WORKLOAD_INTERPRETER_APP_HH
#define JSCALE_WORKLOAD_INTERPRETER_APP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/units.hh"
#include "jvm/runtime/app.hh"
#include "workload/alloc_profile.hh"
#include "workload/source.hh"

namespace jscale::workload {

/** Parameters of a GIL-interpreter application. */
struct InterpreterParams
{
    std::string name = "jython";
    /** Maximum threads that ever perform interpreter work. */
    std::uint32_t worker_cap = 4;
    /** Fixed total script units, independent of thread count. */
    std::uint64_t total_units = 1400;
    /** Interpreter ops per script unit (each op holds the GIL once). */
    std::uint32_t ops_per_unit = 8;
    /** Compute while holding the interpreter lock, per op. */
    Ticks interp_slice = 22 * units::US;
    /** Compute between ops with the lock released (I/O, JNI). */
    Ticks gap_compute = 6 * units::US;
    /** Small object allocations per op (inside the lock). */
    std::uint32_t allocs_per_op = 3;
    AllocationProfile alloc;
    /** Long-lived interpreter state (code objects, module dicts). */
    Bytes pinned_shared = 640 * units::KiB;
    std::uint32_t pinned_shared_objects = 96;
    Ticks startup_compute = 250 * units::US;
    /** Startup allocations of surplus (non-worker) threads. */
    std::uint32_t surplus_allocs = 3;
};

/** The jython-style application model. */
class InterpreterApp : public jvm::ApplicationModel
{
  public:
    explicit InterpreterApp(InterpreterParams params);
    ~InterpreterApp() override;

    std::string appName() const override { return params_.name; }
    void setup(jvm::AppContext &ctx) override;
    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx) override;

    const InterpreterParams &params() const { return params_; }

  private:
    struct RunState;
    class WorkerSource;
    class SurplusSource;

    InterpreterParams params_;
    std::shared_ptr<RunState> state_;
};

} // namespace jscale::workload

#endif // JSCALE_WORKLOAD_INTERPRETER_APP_HH
