#include "workload/interpreter_app.hh"

#include <algorithm>

#include "base/logging.hh"

namespace jscale::workload {

struct InterpreterApp::RunState
{
    TaskPool pool;
    jvm::MonitorId gil = 0;
};

/** A worker thread: claims script units, interprets op by op. */
class InterpreterApp::WorkerSource : public BufferedSource
{
  public:
    WorkerSource(std::shared_ptr<RunState> state,
                 const InterpreterParams &params, std::uint32_t thread_idx,
                 Rng rng)
        : state_(std::move(state)), params_(params),
          thread_idx_(thread_idx), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        if (!started_) {
            started_ = true;
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.startup_compute, 1)));
            if (thread_idx_ == 0) {
                emitPinnedData(out, rng_, params_.pinned_shared,
                               params_.pinned_shared_objects, /*site=*/1);
            }
            return true;
        }
        if (state_->pool.claim(1) == 0)
            return false;

        for (std::uint32_t op = 0; op < params_.ops_per_unit; ++op) {
            out.push_back(jvm::Action::monitorEnter(state_->gil));
            // Interpret while holding the GIL; Python objects are born
            // (and mostly die) under the lock.
            emitTaskBody(out, rng_, params_.alloc,
                         std::max<Ticks>(params_.interp_slice, 1),
                         params_.allocs_per_op, /*site=*/3);
            out.push_back(jvm::Action::monitorExit(state_->gil));
            if (params_.gap_compute > 0) {
                out.push_back(
                    jvm::Action::compute(params_.gap_compute));
            }
        }
        out.push_back(jvm::Action::taskDone());
        return true;
    }

  private:
    std::shared_ptr<RunState> state_;
    const InterpreterParams &params_;
    std::uint32_t thread_idx_;
    Rng rng_;
    bool started_ = false;
};

/** A surplus thread: brief startup, then exit (short-lived). */
class InterpreterApp::SurplusSource : public BufferedSource
{
  public:
    SurplusSource(const InterpreterParams &params, Rng rng)
        : params_(params), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.startup_compute / 2, 1)));
        for (std::uint32_t i = 0; i < params_.surplus_allocs; ++i) {
            out.push_back(jvm::Action::allocate(
                params_.alloc.drawSize(rng_), params_.alloc.drawTtl(rng_),
                /*site=*/5));
        }
        return false; // one batch, then End
    }

  private:
    const InterpreterParams &params_;
    Rng rng_;
};

InterpreterApp::InterpreterApp(InterpreterParams params)
    : params_(std::move(params))
{
    jscale_assert(params_.worker_cap >= 1, "worker cap must be >= 1");
    jscale_assert(params_.total_units > 0, "app needs at least one unit");
}

InterpreterApp::~InterpreterApp() = default;

void
InterpreterApp::setup(jvm::AppContext &ctx)
{
    state_ = std::make_shared<RunState>();
    state_->pool.remaining = params_.total_units;
    state_->gil = ctx.createMonitor(params_.name + ".interpreter-lock");
}

std::unique_ptr<jvm::ActionSource>
InterpreterApp::threadSource(std::uint32_t thread_idx,
                             jvm::AppContext &ctx)
{
    jscale_assert(state_ != nullptr, "setup() must precede threadSource()");
    if (thread_idx < params_.worker_cap) {
        return std::make_unique<WorkerSource>(
            state_, params_, thread_idx, ctx.forkThreadRng(thread_idx));
    }
    return std::make_unique<SurplusSource>(params_,
                                           ctx.forkThreadRng(thread_idx));
}

} // namespace jscale::workload
