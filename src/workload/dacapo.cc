#include "workload/dacapo.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "workload/hotlock_app.hh"
#include "workload/interpreter_app.hh"
#include "workload/pipeline_app.hh"
#include "workload/serialized_app.hh"
#include "workload/task_queue_app.hh"

namespace jscale::workload {

namespace {

std::uint64_t
scaled(std::uint64_t base, double scale)
{
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               static_cast<double>(base) * scale)));
}

/** Short-lived-temporary-heavy profile (raytracing vectors, tokens). */
AllocationProfile
tinyHeavyProfile()
{
    AllocationProfile p;
    p.size_log_mean = 4.3; // ~74 B
    p.size_log_sigma = 0.6;
    p.frac_tiny = 0.58;
    p.frac_short = 0.32;
    p.frac_medium = 0.07;
    return p;
}

/** The xalan profile: calibrated so that, at 4 threads, >80% of objects
 *  die within 1 KB of global allocation (Fig. 1d). */
AllocationProfile
xalanProfile()
{
    AllocationProfile p;
    p.size_log_mean = 4.5; // ~90 B
    p.size_log_sigma = 0.7;
    p.frac_tiny = 0.56;
    p.tiny_max = 24;
    p.frac_short = 0.33;
    p.short_lo = 32;
    p.short_hi = 2 * units::KiB;
    p.short_alpha = 1.25;
    p.frac_medium = 0.07;
    return p;
}

/** Larger, longer-lived records (database rows, undo logs). */
AllocationProfile
recordProfile()
{
    AllocationProfile p;
    p.size_log_mean = 5.0; // ~148 B
    p.size_log_sigma = 0.8;
    p.frac_tiny = 0.40;
    p.frac_short = 0.38;
    p.frac_medium = 0.15;
    return p;
}

/** AST/metadata-heavy profile (eclipse). */
AllocationProfile
astProfile()
{
    AllocationProfile p;
    p.size_log_mean = 5.1;
    p.size_log_sigma = 0.9;
    p.frac_tiny = 0.38;
    p.frac_short = 0.32;
    p.frac_medium = 0.22;
    p.medium_hi = 512 * units::KiB;
    return p;
}

std::unique_ptr<jvm::ApplicationModel>
makeSunflow(double scale)
{
    TaskQueueParams p;
    p.name = "sunflow";
    p.total_tasks = scaled(3000, scale);
    p.chunk_divisor = 40.0;
    p.sync_locks_per_chunk = 2;
    p.sync_cs = 500;
    p.task_compute_mean = 300 * units::US;
    p.task_compute_sigma = 0.35;
    p.allocs_per_task = 18;
    p.alloc = tinyHeavyProfile();
    p.queue_cs = 600;
    SharedResourceSpec image;
    image.name = "image-buffer";
    image.stripes = 4;
    image.accesses_per_task = 0.5;
    image.cs_compute = 1200;
    p.resources = {image};
    p.pinned_shared = 192 * units::KiB;
    p.pinned_shared_objects = 48;
    return std::make_unique<TaskQueueApp>(p);
}

std::unique_ptr<jvm::ApplicationModel>
makeLusearch(double scale)
{
    TaskQueueParams p;
    p.name = "lusearch";
    p.total_tasks = scaled(4500, scale);
    p.chunk_divisor = 50.0;
    p.sync_locks_per_chunk = 2;
    p.sync_cs = 500;
    p.task_compute_mean = 120 * units::US;
    p.task_compute_sigma = 0.5;
    p.allocs_per_task = 26;
    p.alloc = tinyHeavyProfile();
    p.alloc.frac_tiny = 0.54;
    p.queue_cs = 600;
    SharedResourceSpec index;
    index.name = "index-cache";
    index.stripes = 8;
    index.zipf_skew = 0.8;
    index.accesses_per_task = 2.0;
    index.cs_compute = 1500;
    p.resources = {index};
    p.pinned_shared = 384 * units::KiB;
    p.pinned_shared_objects = 96;
    return std::make_unique<TaskQueueApp>(p);
}

std::unique_ptr<jvm::ApplicationModel>
makeXalan(double scale)
{
    TaskQueueParams p;
    p.name = "xalan";
    p.total_tasks = scaled(4200, scale);
    p.chunk_divisor = 60.0;
    p.sync_locks_per_chunk = 2;
    p.sync_cs = 600;
    p.task_compute_mean = 140 * units::US;
    p.task_compute_sigma = 0.45;
    p.allocs_per_task = 30;
    p.alloc = xalanProfile();
    p.queue_cs = 700;
    SharedResourceSpec output;
    output.name = "output-buffer";
    output.stripes = 2;
    output.accesses_per_task = 1.0;
    output.cs_compute = 1600;
    output.allocs_in_cs = 1;
    SharedResourceSpec dtm;
    dtm.name = "dtm-cache";
    dtm.stripes = 4;
    dtm.zipf_skew = 0.9;
    dtm.accesses_per_task = 1.0;
    dtm.cs_compute = 1800;
    p.resources = {output, dtm};
    p.pinned_shared = 320 * units::KiB;
    p.pinned_shared_objects = 80;
    return std::make_unique<TaskQueueApp>(p);
}

std::unique_ptr<jvm::ApplicationModel>
makeH2(double scale)
{
    SerializedParams p;
    p.name = "h2";
    p.total_transactions = scaled(3000, scale);
    p.parse_compute_mean = 60 * units::US;
    p.commit_compute_mean = 110 * units::US;
    p.allocs_parse = 14;
    p.allocs_commit = 6;
    p.alloc = recordProfile();
    p.cache_stripes = 8;
    p.cache_accesses_per_txn = 2.0;
    p.pinned_shared = 1536 * units::KiB;
    p.pinned_shared_objects = 192;
    return std::make_unique<SerializedApp>(p);
}

std::unique_ptr<jvm::ApplicationModel>
makeEclipse(double scale)
{
    PipelineParams p;
    p.name = "eclipse";
    p.total_units = scaled(900, scale);
    p.producer_compute = 70 * units::US;
    p.consumer_compute = 150 * units::US;
    p.consumer_count = 2;
    p.allocs_producer = 10;
    p.allocs_consumer = 22;
    p.alloc = astProfile();
    p.pinned_shared = 2048 * units::KiB;
    p.pinned_shared_objects = 256;
    return std::make_unique<PipelineApp>(p);
}

std::unique_ptr<jvm::ApplicationModel>
makeHotlock(double scale)
{
    HotLockParams p;
    p.name = "hotlock";
    p.total_ops = scaled(6000, scale);
    p.local_compute_mean = 8 * units::US;
    p.cs_compute_mean = 4 * units::US;
    p.allocs_per_op = 2;
    p.alloc = tinyHeavyProfile();
    return std::make_unique<HotLockApp>(p);
}

std::unique_ptr<jvm::ApplicationModel>
makeJython(double scale)
{
    InterpreterParams p;
    p.name = "jython";
    p.worker_cap = 4;
    p.total_units = scaled(1400, scale);
    p.ops_per_unit = 8;
    p.interp_slice = 22 * units::US;
    p.gap_compute = 6 * units::US;
    p.allocs_per_op = 3;
    p.alloc = tinyHeavyProfile();
    p.alloc.frac_tiny = 0.55;
    p.pinned_shared = 640 * units::KiB;
    p.pinned_shared_objects = 96;
    return std::make_unique<InterpreterApp>(p);
}

} // namespace

const std::vector<std::string> &
dacapoAppNames()
{
    static const std::vector<std::string> names = {
        "sunflow", "lusearch", "xalan", "h2", "eclipse", "jython"};
    return names;
}

bool
dacapoExpectedScalable(const std::string &name)
{
    return name == "sunflow" || name == "lusearch" || name == "xalan";
}

std::unique_ptr<jvm::ApplicationModel>
makeDacapoApp(const std::string &name, double scale)
{
    jscale_assert(scale > 0.0, "scale must be positive");
    if (name == "sunflow")
        return makeSunflow(scale);
    if (name == "lusearch")
        return makeLusearch(scale);
    if (name == "xalan")
        return makeXalan(scale);
    if (name == "h2")
        return makeH2(scale);
    if (name == "eclipse")
        return makeEclipse(scale);
    if (name == "jython")
        return makeJython(scale);
    // Not a DaCapo benchmark, but routed through the same factory so
    // the whole harness (runs, sweeps, golden, fuzz) can drive it: the
    // E19 lock-saturated microbenchmark.
    if (name == "hotlock")
        return makeHotlock(scale);
    jscale_fatal("unknown DaCapo app '", name,
                 "' (expected one of sunflow, lusearch, xalan, h2, ",
                 "eclipse, jython, hotlock)");
}

} // namespace jscale::workload
