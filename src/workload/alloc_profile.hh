/**
 * @file
 * Allocation behaviour profiles.
 *
 * Each application model draws object sizes and owner-local TTLs from an
 * AllocationProfile. TTLs are a four-component mixture tuned to the
 * generational hypothesis: a large mass of immediately-dying temporaries,
 * a short-lived bulk, a medium tail, and a small long-lived component —
 * plus pinned (application-lifetime) data allocated at startup.
 *
 * The TTL is in *owner-local* allocated bytes; the observable lifespan in
 * *global* allocated bytes then scales with the number of concurrently
 * allocating threads, which is precisely the interference effect of
 * Sec. III-B of the paper.
 */

#ifndef JSCALE_WORKLOAD_ALLOC_PROFILE_HH
#define JSCALE_WORKLOAD_ALLOC_PROFILE_HH

#include <cstdint>

#include "base/random.hh"
#include "base/units.hh"

namespace jscale::workload {

/** Size and lifetime distributions for one application's allocations. */
struct AllocationProfile
{
    /** @name Object sizes (log-normal, clamped) */
    /** @{ */
    double size_log_mean = 4.5;  ///< log-space mean (~90 B)
    double size_log_sigma = 0.7; ///< log-space sigma
    Bytes size_min = 16;
    Bytes size_max = 8 * units::KiB;
    /** @} */

    /** @name Owner-local TTL mixture */
    /** @{ */
    /** Immediately-dying temporaries: TTL uniform in [0, tiny_max]. */
    double frac_tiny = 0.50;
    Bytes tiny_max = 24;
    /** Short-lived bulk: bounded Pareto. */
    double frac_short = 0.35;
    Bytes short_lo = 32;
    Bytes short_hi = 2 * units::KiB;
    double short_alpha = 1.1;
    /** Medium-lived: bounded Pareto. */
    double frac_medium = 0.10;
    Bytes medium_lo = 2 * units::KiB;
    Bytes medium_hi = 256 * units::KiB;
    double medium_alpha = 1.0;
    /** Remainder is long-lived: bounded Pareto up to long_hi. */
    Bytes long_hi = 8 * units::MiB;
    double long_alpha = 0.9;
    /** @} */

    /** Draw an object size. */
    Bytes drawSize(Rng &rng) const;

    /** Draw an owner-local TTL in bytes. */
    Bytes drawTtl(Rng &rng) const;
};

} // namespace jscale::workload

#endif // JSCALE_WORKLOAD_ALLOC_PROFILE_HH
