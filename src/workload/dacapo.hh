/**
 * @file
 * Calibrated models of the paper's six DaCapo-9.12 applications.
 *
 * The factory returns ApplicationModels whose concurrency structure,
 * locking profile and allocation behaviour reproduce each benchmark's
 * published characteristics at the fidelity the study needs:
 *
 *  - sunflow  (scalable): embarrassingly parallel raytracing; heavy
 *    per-task compute, tiny short-lived allocations, light shared state.
 *  - lusearch (scalable): parallel text queries over a shared index;
 *    striped index-cache locks with skewed popularity.
 *  - xalan    (scalable): parallel XSLT transforms; allocation-heavy,
 *    contended shared output buffer + DTM cache.
 *  - h2       (non-scalable): transactions serialized by a coarse
 *    database lock with long critical sections.
 *  - eclipse  (non-scalable): fixed-width compile pipeline; long-lived
 *    AST/index data; thread-count-insensitive allocator set.
 *  - jython   (non-scalable): interpreter-lock runtime using at most
 *    3-4 worker threads regardless of the requested count.
 */

#ifndef JSCALE_WORKLOAD_DACAPO_HH
#define JSCALE_WORKLOAD_DACAPO_HH

#include <memory>
#include <string>
#include <vector>

#include "jvm/runtime/app.hh"

namespace jscale::workload {

/** Names of the six modeled applications, paper order. */
const std::vector<std::string> &dacapoAppNames();

/** Whether the paper classifies @p name as scalable. */
bool dacapoExpectedScalable(const std::string &name);

/**
 * Build the model for @p name ("sunflow", "lusearch", "xalan", "h2",
 * "eclipse", "jython", plus the non-DaCapo "hotlock" E19
 * microbenchmark). @p scale multiplies the fixed work volume
 * (task/unit/transaction counts) without changing the live footprint.
 * Fatal on an unknown name.
 */
std::unique_ptr<jvm::ApplicationModel>
makeDacapoApp(const std::string &name, double scale = 1.0);

} // namespace jscale::workload

#endif // JSCALE_WORKLOAD_DACAPO_HH
