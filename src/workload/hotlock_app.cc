#include "workload/hotlock_app.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace jscale::workload {

struct HotLockApp::RunState
{
    TaskPool pool;
    jvm::MonitorId hot_lock = 0;
};

class HotLockApp::WorkerSource : public BufferedSource
{
  public:
    WorkerSource(std::shared_ptr<RunState> state,
                 const HotLockParams &params, std::uint32_t thread_idx,
                 Rng rng)
        : state_(std::move(state)), params_(params),
          thread_idx_(thread_idx), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        if (!started_) {
            started_ = true;
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.startup_compute, 1)));
            if (thread_idx_ == 0) {
                emitPinnedData(out, rng_, params_.pinned_shared,
                               params_.pinned_shared_objects, /*site=*/1);
            }
            return true;
        }

        if (state_->pool.claim(1) == 0)
            return false;

        // Private phase: think-time compute plus a couple of small
        // allocations, fully parallel.
        const Ticks local = std::max<Ticks>(
            1, static_cast<Ticks>(rng_.logNormal(
                   std::log(static_cast<double>(
                       params_.local_compute_mean)),
                   params_.local_compute_sigma)));
        emitTaskBody(out, rng_, params_.alloc, local,
                     params_.allocs_per_op, /*site=*/2);

        // Serialized phase: the one hot lock, held briefly.
        const Ticks cs = std::max<Ticks>(
            1, static_cast<Ticks>(rng_.logNormal(
                   std::log(static_cast<double>(
                       params_.cs_compute_mean)),
                   params_.cs_compute_sigma)));
        out.push_back(jvm::Action::monitorEnter(state_->hot_lock));
        out.push_back(jvm::Action::compute(cs));
        out.push_back(jvm::Action::monitorExit(state_->hot_lock));
        out.push_back(jvm::Action::taskDone());
        return true;
    }

  private:
    std::shared_ptr<RunState> state_;
    const HotLockParams &params_;
    std::uint32_t thread_idx_;
    Rng rng_;
    bool started_ = false;
};

HotLockApp::HotLockApp(HotLockParams params) : params_(std::move(params))
{
    jscale_assert(params_.total_ops > 0, "app needs at least one op");
}

HotLockApp::~HotLockApp() = default;

void
HotLockApp::setup(jvm::AppContext &ctx)
{
    state_ = std::make_shared<RunState>();
    state_->pool.remaining = params_.total_ops;
    state_->hot_lock = ctx.createMonitor(params_.name + ".hot-lock");
}

std::unique_ptr<jvm::ActionSource>
HotLockApp::threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx)
{
    jscale_assert(state_ != nullptr, "setup() must precede threadSource()");
    return std::make_unique<WorkerSource>(
        state_, params_, thread_idx, ctx.forkThreadRng(thread_idx));
}

} // namespace jscale::workload
