/**
 * @file
 * TaskQueueApp: the scalable application family.
 *
 * Models data-parallel DaCapo applications (sunflow, lusearch, xalan): a
 * fixed body of identical tasks is claimed from a shared queue in chunks
 * whose size *shrinks* as threads are added (finer work division for
 * load balance, as fork-join runtimes do), so queue/synchronization lock
 * traffic grows with the thread count while total application work stays
 * fixed — reproducing the paper's Fig. 1a/1b behaviour for scalable
 * apps. Tasks also touch shared striped resources (index caches, output
 * buffers) under short critical sections.
 */

#ifndef JSCALE_WORKLOAD_TASK_QUEUE_APP_HH
#define JSCALE_WORKLOAD_TASK_QUEUE_APP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "jvm/runtime/app.hh"
#include "workload/alloc_profile.hh"
#include "workload/source.hh"

namespace jscale::workload {

/** A shared resource (striped monitors) touched by task bodies. */
struct SharedResourceSpec
{
    std::string name;
    /** Number of lock stripes guarding the resource. */
    std::uint32_t stripes = 1;
    /** Zipf skew of stripe popularity (0 = uniform). */
    double zipf_skew = 0.0;
    /** Expected accesses per task. */
    double accesses_per_task = 1.0;
    /** Compute time while holding the stripe. */
    Ticks cs_compute = 2 * units::US;
    /** Allocations performed while holding (e.g. output append). */
    std::uint32_t allocs_in_cs = 0;
};

/** Parameters of a task-queue application. */
struct TaskQueueParams
{
    std::string name = "taskqueue";
    /** Fixed total work, independent of thread count. */
    std::uint64_t total_tasks = 4000;
    /**
     * Work-division granularity: chunk size = total_tasks /
     * (chunk_divisor * threads), so chunk count (and queue lock traffic)
     * grows linearly with threads.
     */
    double chunk_divisor = 40.0;
    /** Lock acquisitions per chunk beyond the fetch itself (phase sync,
     *  result merge). */
    std::uint32_t sync_locks_per_chunk = 2;
    /** Stripes of the sync/merge structure (spreads the traffic). */
    std::uint32_t sync_stripes = 8;
    /** Critical-section compute of sync/merge operations. */
    Ticks sync_cs = 1800;
    /** Mean per-task computation (log-normal). */
    Ticks task_compute_mean = 150 * units::US;
    /** Log-space sigma of per-task computation. */
    double task_compute_sigma = 0.45;
    /** Mean allocations per task (uniform in [mean/2, 3*mean/2]). */
    std::uint32_t allocs_per_task = 24;
    AllocationProfile alloc;
    /** Queue critical-section compute per fetch. */
    Ticks queue_cs = 1500;
    std::vector<SharedResourceSpec> resources;
    /** Application-lifetime shared data allocated by thread 0. */
    Bytes pinned_shared = 256 * units::KiB;
    std::uint32_t pinned_shared_objects = 64;
    /** Application-lifetime per-thread data. */
    Bytes pinned_per_thread = 4 * units::KiB;
    std::uint32_t pinned_thread_objects = 4;
    /** Per-thread startup computation. */
    Ticks startup_compute = 200 * units::US;
};

/** The scalable task-queue application model. */
class TaskQueueApp : public jvm::ApplicationModel
{
  public:
    explicit TaskQueueApp(TaskQueueParams params);
    ~TaskQueueApp() override;

    std::string appName() const override { return params_.name; }
    void setup(jvm::AppContext &ctx) override;
    std::unique_ptr<jvm::ActionSource>
    threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx) override;

    const TaskQueueParams &params() const { return params_; }

  private:
    struct RunState;
    class WorkerSource;

    TaskQueueParams params_;
    std::shared_ptr<RunState> state_;
};

} // namespace jscale::workload

#endif // JSCALE_WORKLOAD_TASK_QUEUE_APP_HH
