#include "workload/source.hh"

#include <algorithm>

namespace jscale::workload {

void
emitTaskBody(std::vector<jvm::Action> &out, Rng &rng,
             const AllocationProfile &profile, Ticks compute,
             std::uint32_t allocs, jvm::AllocSiteId site)
{
    if (allocs == 0) {
        if (compute > 0)
            out.push_back(jvm::Action::compute(compute));
        return;
    }
    // Interleave: slice the compute time around the allocations so
    // preemption and safepoints land at realistic granularity.
    const Ticks slice = std::max<Ticks>(compute / allocs, 1);
    Ticks spent = 0;
    for (std::uint32_t i = 0; i < allocs; ++i) {
        out.push_back(jvm::Action::compute(slice));
        spent += slice;
        out.push_back(jvm::Action::allocate(profile.drawSize(rng),
                                            profile.drawTtl(rng), site));
    }
    if (compute > spent)
        out.push_back(jvm::Action::compute(compute - spent));
}

void
emitPinnedData(std::vector<jvm::Action> &out, Rng &rng, Bytes total,
               std::uint32_t count, jvm::AllocSiteId site)
{
    if (total == 0 || count == 0)
        return;
    const Bytes each = std::max<Bytes>(total / count, 16);
    for (std::uint32_t i = 0; i < count; ++i) {
        // Vary sizes a little so the pinned set is not perfectly uniform.
        const Bytes sz = std::max<Bytes>(
            16, each / 2 + rng.below(each));
        out.push_back(jvm::Action::allocatePinned(sz, site));
    }
}

} // namespace jscale::workload
