#include "workload/serialized_app.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace jscale::workload {

struct SerializedApp::RunState
{
    TaskPool pool;
    jvm::MonitorId db_lock = 0;
    std::vector<jvm::MonitorId> cache_stripes;
};

class SerializedApp::ClientSource : public BufferedSource
{
  public:
    ClientSource(std::shared_ptr<RunState> state,
                 const SerializedParams &params, std::uint32_t thread_idx,
                 Rng rng)
        : state_(std::move(state)), params_(params),
          thread_idx_(thread_idx), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        if (!started_) {
            started_ = true;
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.startup_compute, 1)));
            if (thread_idx_ == 0) {
                emitPinnedData(out, rng_, params_.pinned_shared,
                               params_.pinned_shared_objects, /*site=*/1);
            }
            return true;
        }

        if (state_->pool.claim(1) == 0)
            return false;

        // Parallel phase: parse and plan.
        const Ticks parse = std::max<Ticks>(
            1, static_cast<Ticks>(rng_.logNormal(
                   std::log(static_cast<double>(
                       params_.parse_compute_mean)),
                   params_.parse_compute_sigma)));
        emitTaskBody(out, rng_, params_.alloc, parse, params_.allocs_parse,
                     /*site=*/3);

        // Row-cache touches (striped, short).
        double expected = params_.cache_accesses_per_txn;
        std::uint32_t accesses = static_cast<std::uint32_t>(expected);
        expected -= accesses;
        if (expected > 0.0 && rng_.chance(expected))
            ++accesses;
        for (std::uint32_t a = 0; a < accesses; ++a) {
            const std::size_t stripe =
                rng_.below(state_->cache_stripes.size());
            out.push_back(jvm::Action::monitorEnter(
                state_->cache_stripes[stripe]));
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.cache_cs, 1)));
            out.push_back(jvm::Action::monitorExit(
                state_->cache_stripes[stripe]));
        }

        // Serialized phase: commit under the coarse database lock,
        // including the undo/redo-log allocations made while holding it.
        const Ticks commit = std::max<Ticks>(
            1, static_cast<Ticks>(rng_.logNormal(
                   std::log(static_cast<double>(
                       params_.commit_compute_mean)),
                   params_.commit_compute_sigma)));
        out.push_back(jvm::Action::monitorEnter(state_->db_lock));
        emitTaskBody(out, rng_, params_.alloc, commit,
                     params_.allocs_commit, /*site=*/4);
        out.push_back(jvm::Action::monitorExit(state_->db_lock));
        out.push_back(jvm::Action::taskDone());
        return true;
    }

  private:
    std::shared_ptr<RunState> state_;
    const SerializedParams &params_;
    std::uint32_t thread_idx_;
    Rng rng_;
    bool started_ = false;
};

SerializedApp::SerializedApp(SerializedParams params)
    : params_(std::move(params))
{
    jscale_assert(params_.total_transactions > 0,
                  "app needs at least one transaction");
    jscale_assert(params_.cache_stripes >= 1, "need >= 1 cache stripe");
}

SerializedApp::~SerializedApp() = default;

void
SerializedApp::setup(jvm::AppContext &ctx)
{
    state_ = std::make_shared<RunState>();
    state_->pool.remaining = params_.total_transactions;
    state_->db_lock = ctx.createMonitor(params_.name + ".db-lock");
    for (std::uint32_t s = 0; s < params_.cache_stripes; ++s) {
        state_->cache_stripes.push_back(ctx.createMonitor(
            params_.name + ".row-cache." + std::to_string(s)));
    }
}

std::unique_ptr<jvm::ActionSource>
SerializedApp::threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx)
{
    jscale_assert(state_ != nullptr, "setup() must precede threadSource()");
    return std::make_unique<ClientSource>(
        state_, params_, thread_idx, ctx.forkThreadRng(thread_idx));
}

} // namespace jscale::workload
