#include "workload/pipeline_app.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace jscale::workload {

struct PipelineApp::RunState
{
    /** Units the producer has yet to parse. */
    TaskPool produce_pool;
    /** Units consumers have yet to claim. */
    TaskPool consume_pool;
    jvm::ChannelId units_channel = 0;
    jvm::MonitorId workspace_lock = 0;
    std::uint32_t effective_consumers = 0;
};

namespace {

Ticks
drawCompute(Rng &rng, Ticks mean, double sigma)
{
    return std::max<Ticks>(
        1, static_cast<Ticks>(rng.logNormal(
               std::log(static_cast<double>(mean)), sigma)));
}

} // namespace

/** Thread 0: parses units serially and posts them to the channel. */
class PipelineApp::ProducerSource : public BufferedSource
{
  public:
    ProducerSource(std::shared_ptr<RunState> state,
                   const PipelineParams &params, Rng rng)
        : state_(std::move(state)), params_(params), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        if (!started_) {
            started_ = true;
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.startup_compute, 1)));
            emitPinnedData(out, rng_, params_.pinned_shared,
                           params_.pinned_shared_objects, /*site=*/1);
            return true;
        }
        if (state_->produce_pool.claim(1) == 0)
            return false;
        emitTaskBody(out, rng_, params_.alloc,
                     drawCompute(rng_, params_.producer_compute,
                                 params_.producer_sigma),
                     params_.allocs_producer, /*site=*/3);
        out.push_back(jvm::Action::channelPost(state_->units_channel));
        out.push_back(jvm::Action::taskDone());
        return true;
    }

  private:
    std::shared_ptr<RunState> state_;
    const PipelineParams &params_;
    Rng rng_;
    bool started_ = false;
};

/** A consumer thread: waits for units, typechecks and generates code. */
class PipelineApp::ConsumerSource : public BufferedSource
{
  public:
    ConsumerSource(std::shared_ptr<RunState> state,
                   const PipelineParams &params, Rng rng)
        : state_(std::move(state)), params_(params), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        if (!started_) {
            started_ = true;
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.startup_compute, 1)));
            return true;
        }
        if (state_->consume_pool.claim(1) == 0)
            return false;
        out.push_back(jvm::Action::channelAcquire(state_->units_channel));
        emitTaskBody(out, rng_, params_.alloc,
                     drawCompute(rng_, params_.consumer_compute,
                                 params_.consumer_sigma),
                     params_.allocs_consumer, /*site=*/4);
        out.push_back(jvm::Action::monitorEnter(state_->workspace_lock));
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.workspace_cs, 1)));
        out.push_back(jvm::Action::monitorExit(state_->workspace_lock));
        out.push_back(jvm::Action::taskDone());
        return true;
    }

  private:
    std::shared_ptr<RunState> state_;
    const PipelineParams &params_;
    Rng rng_;
    bool started_ = false;
};

/** Single-thread fallback: produce and consume inline. */
class PipelineApp::SoloSource : public BufferedSource
{
  public:
    SoloSource(std::shared_ptr<RunState> state,
               const PipelineParams &params, Rng rng)
        : state_(std::move(state)), params_(params), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        if (!started_) {
            started_ = true;
            out.push_back(jvm::Action::compute(
                std::max<Ticks>(params_.startup_compute, 1)));
            emitPinnedData(out, rng_, params_.pinned_shared,
                           params_.pinned_shared_objects, /*site=*/1);
            return true;
        }
        if (state_->produce_pool.claim(1) == 0)
            return false;
        emitTaskBody(out, rng_, params_.alloc,
                     drawCompute(rng_, params_.producer_compute,
                                 params_.producer_sigma),
                     params_.allocs_producer, /*site=*/3);
        emitTaskBody(out, rng_, params_.alloc,
                     drawCompute(rng_, params_.consumer_compute,
                                 params_.consumer_sigma),
                     params_.allocs_consumer, /*site=*/4);
        out.push_back(jvm::Action::monitorEnter(state_->workspace_lock));
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.workspace_cs, 1)));
        out.push_back(jvm::Action::monitorExit(state_->workspace_lock));
        // One produce + one consume completion, so task totals match the
        // pipelined mode.
        out.push_back(jvm::Action::taskDone());
        out.push_back(jvm::Action::taskDone());
        return true;
    }

  private:
    std::shared_ptr<RunState> state_;
    const PipelineParams &params_;
    Rng rng_;
    bool started_ = false;
};

/** Surplus thread: brief startup, then exit. */
class PipelineApp::SurplusSource : public BufferedSource
{
  public:
    SurplusSource(const PipelineParams &params, Rng rng)
        : params_(params), rng_(rng)
    {}

  protected:
    bool
    refill(std::vector<jvm::Action> &out) override
    {
        out.push_back(jvm::Action::compute(
            std::max<Ticks>(params_.startup_compute / 2, 1)));
        for (std::uint32_t i = 0; i < params_.surplus_allocs; ++i) {
            out.push_back(jvm::Action::allocate(
                params_.alloc.drawSize(rng_), params_.alloc.drawTtl(rng_),
                /*site=*/5));
        }
        return false;
    }

  private:
    const PipelineParams &params_;
    Rng rng_;
};

PipelineApp::PipelineApp(PipelineParams params)
    : params_(std::move(params))
{
    jscale_assert(params_.total_units > 0, "app needs at least one unit");
    jscale_assert(params_.consumer_count >= 1,
                  "pipeline needs >= 1 consumer");
}

PipelineApp::~PipelineApp() = default;

void
PipelineApp::setup(jvm::AppContext &ctx)
{
    state_ = std::make_shared<RunState>();
    state_->produce_pool.remaining = params_.total_units;
    state_->units_channel =
        ctx.createChannel(params_.name + ".units", /*permits=*/0);
    state_->workspace_lock =
        ctx.createMonitor(params_.name + ".workspace-lock");
    if (ctx.threadCount() == 1) {
        state_->effective_consumers = 0;
        state_->consume_pool.remaining = 0;
    } else {
        state_->effective_consumers =
            std::min(params_.consumer_count, ctx.threadCount() - 1);
        state_->consume_pool.remaining = params_.total_units;
    }
}

std::unique_ptr<jvm::ActionSource>
PipelineApp::threadSource(std::uint32_t thread_idx, jvm::AppContext &ctx)
{
    jscale_assert(state_ != nullptr, "setup() must precede threadSource()");
    Rng rng = ctx.forkThreadRng(thread_idx);
    if (ctx.threadCount() == 1)
        return std::make_unique<SoloSource>(state_, params_, rng);
    if (thread_idx == 0)
        return std::make_unique<ProducerSource>(state_, params_, rng);
    if (thread_idx <= state_->effective_consumers)
        return std::make_unique<ConsumerSource>(state_, params_, rng);
    return std::make_unique<SurplusSource>(params_, rng);
}

} // namespace jscale::workload
