#include "stats/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "base/logging.hh"
#include "base/output.hh"

namespace jscale::stats {

void
SampleStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
SampleStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

SampleStats
SampleStats::restore(std::uint64_t count, double sum, double mean,
                     double m2, double min, double max)
{
    SampleStats s;
    s.count_ = count;
    s.sum_ = sum;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
}

void
SampleStats::reset()
{
    *this = SampleStats();
}

std::size_t
LogHistogram::bucketIndex(std::uint64_t value)
{
    if (value == 0)
        return 0;
    return static_cast<std::size_t>(64 - std::countl_zero(value));
}

std::uint64_t
LogHistogram::bucketUpperEdge(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return std::numeric_limits<std::uint64_t>::max();
    return (1ULL << i) - 1;
}

void
LogHistogram::add(std::uint64_t value, std::uint64_t weight)
{
    buckets_[bucketIndex(value)] += weight;
    total_ += weight;
}

double
LogHistogram::fractionBelow(std::uint64_t threshold) const
{
    if (total_ == 0 || threshold == 0)
        return 0.0;
    const std::size_t idx = bucketIndex(threshold);
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < idx; ++i)
        below += buckets_[i];
    // Interpolate within the bucket containing the threshold.
    const std::uint64_t lo = idx == 0 ? 0 : (1ULL << (idx - 1));
    const std::uint64_t hi = idx >= 64
                                 ? std::numeric_limits<std::uint64_t>::max()
                                 : (1ULL << idx);
    double partial = 0.0;
    if (threshold > lo && hi > lo) {
        partial = static_cast<double>(buckets_[idx]) *
                  static_cast<double>(threshold - lo) /
                  static_cast<double>(hi - lo);
    }
    return (static_cast<double>(below) + partial) /
           static_cast<double>(total_);
}

std::uint64_t
LogHistogram::percentile(double p) const
{
    jscale_assert(p >= 0.0 && p <= 1.0, "percentile requires p in [0,1]");
    if (total_ == 0)
        return 0;
    const double target = p * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        const double next = cum + static_cast<double>(buckets_[i]);
        if (next >= target && buckets_[i] > 0) {
            const std::uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
            const std::uint64_t hi = bucketUpperEdge(i);
            const double frac = (target - cum) /
                                static_cast<double>(buckets_[i]);
            return lo + static_cast<std::uint64_t>(
                            frac * static_cast<double>(hi - lo));
        }
        cum = next;
    }
    return bucketUpperEdge(kBuckets - 1);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
}

void
LogHistogram::reset()
{
    *this = LogHistogram();
}

std::vector<double>
LogHistogram::cdf(const std::vector<std::uint64_t> &thresholds) const
{
    std::vector<double> out;
    out.reserve(thresholds.size());
    for (auto t : thresholds)
        out.push_back(fractionBelow(t));
    return out;
}

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    // The first two power-of-two groups are exact: one value per bucket.
    if (value < 2 * kSubBuckets)
        return static_cast<std::size_t>(value);
    const int exp = static_cast<int>(std::bit_width(value)) -
                    static_cast<int>(kSubBits) - 1;
    return static_cast<std::size_t>(exp + 1) * kSubBuckets +
           static_cast<std::size_t>((value >> exp) - kSubBuckets);
}

std::uint64_t
LatencyHistogram::bucketLowerEdge(std::size_t i)
{
    if (i < 2 * kSubBuckets)
        return i;
    const std::size_t exp = i / kSubBuckets - 1;
    const std::uint64_t sub = i % kSubBuckets;
    return (kSubBuckets + sub) << exp;
}

void
LatencyHistogram::add(std::uint64_t value, std::uint64_t weight)
{
    if (weight == 0)
        return;
    buckets_[bucketIndex(value)] += weight;
    total_ += weight;
    sum_ += value * weight;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::uint64_t
LatencyHistogram::quantile(double p) const
{
    jscale_assert(p >= 0.0 && p <= 1.0, "quantile requires p in [0,1]");
    if (total_ == 0)
        return 0;
    // Rank statistics on integer weights: ceil(p * total), min rank 1.
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total_)));
    target = std::clamp<std::uint64_t>(target, 1, total_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cum += buckets_[i];
        if (cum >= target)
            return std::clamp(bucketLowerEdge(i), min(), max());
    }
    return max_;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
LatencyHistogram::restoreBucket(std::size_t i, std::uint64_t weight)
{
    jscale_assert(i < kBuckets, "histogram bucket ", i, " out of range");
    total_ += weight - buckets_[i];
    buckets_[i] = weight;
}

void
LatencyHistogram::restoreAggregates(std::uint64_t sum, std::uint64_t min,
                                    std::uint64_t max)
{
    sum_ = sum;
    min_ = min;
    max_ = max;
}

void
LatencyHistogram::reset()
{
    *this = LatencyHistogram();
}

void
StatSnapshot::add(const std::string &name, double value,
                  const std::string &unit)
{
    index_[name] = values_.size();
    values_.push_back({name, value, unit});
}

void
StatSnapshot::add(const std::string &name, const Counter &c)
{
    add(name, static_cast<double>(c.value()), "count");
}

void
StatSnapshot::addSummary(const std::string &name, const SampleStats &s,
                         const std::string &unit)
{
    add(name + ".count", static_cast<double>(s.count()), "count");
    add(name + ".mean", s.mean(), unit);
    if (s.count() > 0) {
        add(name + ".min", s.min(), unit);
        add(name + ".max", s.max(), unit);
    }
}

double
StatSnapshot::get(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        return std::numeric_limits<double>::quiet_NaN();
    return values_[it->second].value;
}

bool
StatSnapshot::has(const std::string &name) const
{
    return index_.count(name) > 0;
}

void
StatSnapshot::print(std::ostream &os) const
{
    TextTable t;
    t.header({"stat", "value", "unit"});
    for (const auto &v : values_)
        t.row({v.name, formatFixed(v.value, 3), v.unit});
    t.print(os);
}

void
StatSnapshot::printCsv(std::ostream &os) const
{
    CsvWriter csv(os);
    csv.row({"stat", "value", "unit"});
    for (const auto &v : values_)
        csv.row({v.name, formatFixed(v.value, 6), v.unit});
}

} // namespace jscale::stats
