/**
 * @file
 * Statistics primitives used across the simulator: counters, running
 * scalar summaries (Welford), log2-bucketed histograms with CDF queries,
 * and a registry that renders a named snapshot of everything.
 *
 * These mirror the role of the gem5 stats package at the scale this
 * project needs: deterministic, allocation-light, and dumpable both as
 * aligned text and CSV.
 */

#ifndef JSCALE_STATS_STATS_HH
#define JSCALE_STATS_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "base/units.hh"

namespace jscale::stats {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running summary of a stream of samples: count, sum, mean, variance
 * (Welford's online algorithm), min and max.
 */
class SampleStats
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Sample mean (0 when empty). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum sample (+inf when empty). */
    double min() const { return min_; }

    /** Maximum sample (-inf when empty). */
    double max() const { return max_; }

    /** Welford running mean — internal state, for exact serialization
     *  only (mean() derives from sum; this is the recurrence value m2_
     *  updates depend on). */
    double welfordMean() const { return mean_; }

    /** Welford M2 accumulator (codec round-trip accessor). */
    double m2() const { return m2_; }

    /**
     * Rebuild a summary from its exact serialized state (the five
     * accessors above plus count). Enables byte-identical re-rendering
     * of a run restored from a shard's result cache.
     */
    static SampleStats restore(std::uint64_t count, double sum,
                               double mean, double m2, double min,
                               double max);

    /** Clear all state. */
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Log2-bucketed histogram over non-negative 64-bit values. Bucket 0 holds
 * value 0; bucket i >= 1 holds values in [2^(i-1), 2^i). Designed for
 * object-lifespan distributions where the paper's questions are of the
 * form "what fraction of objects live less than 1 KB of allocation?".
 */
class LogHistogram
{
  public:
    static constexpr std::size_t kBuckets = 65;

    /** Record a value with optional weight. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Total weight recorded. */
    std::uint64_t totalWeight() const { return total_; }

    /** Weight in bucket @p i. */
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

    /** Index of the bucket holding @p value. */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Inclusive upper edge of bucket @p i (2^i - 1; bucket 0 -> 0). */
    static std::uint64_t bucketUpperEdge(std::size_t i);

    /**
     * Fraction of recorded weight with value strictly below @p threshold.
     * Exact when @p threshold is a power of two (bucket edge); otherwise
     * interpolates linearly within the containing bucket.
     */
    double fractionBelow(std::uint64_t threshold) const;

    /** Approximate p-quantile (p in [0,1]) via bucket interpolation. */
    std::uint64_t percentile(double p) const;

    /** Merge another histogram into this one. */
    void merge(const LogHistogram &other);

    /** Clear all state. */
    void reset();

    /**
     * Evaluate the CDF at each of @p thresholds, returning fractions.
     * Convenience for emitting paper-style lifespan tables.
     */
    std::vector<double>
    cdf(const std::vector<std::uint64_t> &thresholds) const;

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t total_ = 0;
};

/**
 * HDR-style log-bucketed latency histogram over non-negative 64-bit
 * tick values. Each power-of-two range is split into 2^kSubBits linear
 * sub-buckets, so relative quantile error is bounded by 1/2^kSubBits
 * (~3%) while the structure stays a fixed-size integer array — adding,
 * merging and quantile queries are all deterministic, which keeps
 * profiled runs byte-identical across `--jobs` shard orders.
 *
 * Values below 2^(kSubBits+1) are recorded exactly (one value per
 * bucket). Quantiles return the *lower edge* of the containing bucket —
 * a deterministic integer, never an interpolated double.
 */
class LatencyHistogram
{
  public:
    /** Linear sub-buckets per power of two: 32. */
    static constexpr std::size_t kSubBits = 5;
    static constexpr std::size_t kSubBuckets = 1ULL << kSubBits;
    /** Total bucket count covering the full uint64 range. */
    static constexpr std::size_t kBuckets =
        kSubBuckets * (65 - kSubBits);

    /** Record a value with optional weight. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Total weight recorded. */
    std::uint64_t count() const { return total_; }

    /** Exact sum of recorded values (weighted). */
    std::uint64_t sum() const { return sum_; }

    /** Exact minimum recorded value (0 when empty). */
    std::uint64_t min() const { return total_ ? min_ : 0; }

    /** Exact maximum recorded value (0 when empty). */
    std::uint64_t max() const { return max_; }

    /** Weight in bucket @p i. */
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

    /** Index of the bucket holding @p value. */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Inclusive lower edge of bucket @p i. */
    static std::uint64_t bucketLowerEdge(std::size_t i);

    /**
     * p-quantile (p in [0,1]): the lower edge of the first bucket whose
     * cumulative weight reaches ceil(p * count), clamped to the exact
     * min/max. Returns 0 when empty. Deterministic integer result.
     */
    std::uint64_t quantile(double p) const;

    /**
     * Element-wise merge — associative and commutative, so any shard
     * merge order yields a byte-identical histogram.
     */
    void merge(const LatencyHistogram &other);

    /** @name Codec restore (exact round-trip from a result cache)
     * Bucketing discards the exact values, so a deserializer cannot
     * rebuild the histogram through add(); these set the serialized
     * state directly. */
    /** @{ */
    /** Set bucket @p i's weight, adjusting the running total. */
    void restoreBucket(std::size_t i, std::uint64_t weight);
    /** Set the exact sum/min/max aggregates (call once, count > 0). */
    void restoreAggregates(std::uint64_t sum, std::uint64_t min,
                           std::uint64_t max);
    /** @} */

    /** Clear all state. */
    void reset();

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/** One named scalar in a StatSnapshot. */
struct StatValue
{
    std::string name;
    double value;
    std::string unit;
};

/**
 * A flat, ordered collection of named stats, rendered as aligned text or
 * CSV. Subsystems contribute their counters into one snapshot after a run.
 */
class StatSnapshot
{
  public:
    /** Append a named scalar. */
    void add(const std::string &name, double value,
             const std::string &unit = "");

    /** Append a counter under @p name. */
    void add(const std::string &name, const Counter &c);

    /** Append mean/min/max/count of @p s under @p name. */
    void addSummary(const std::string &name, const SampleStats &s,
                    const std::string &unit = "");

    /** Look up a stat by exact name; returns NaN if missing. */
    double get(const std::string &name) const;

    /** True if a stat with this exact name exists. */
    bool has(const std::string &name) const;

    /** All values in insertion order. */
    const std::vector<StatValue> &values() const { return values_; }

    /** Render as aligned text. */
    void print(std::ostream &os) const;

    /** Render as CSV ("name,value,unit"). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<StatValue> values_;
    std::map<std::string, std::size_t> index_;
};

} // namespace jscale::stats

#endif // JSCALE_STATS_STATS_HH
