#include "fault/watchdog.hh"

#include <sstream>

#include "base/error.hh"
#include "base/logging.hh"
#include "jvm/runtime/vm.hh"
#include "os/scheduler.hh"
#include "os/thread.hh"
#include "sim/simulation.hh"

namespace jscale::fault {

RunWatchdog::RunWatchdog(sim::Simulation &sim, jvm::JavaVm &vm,
                         const WatchdogConfig &config)
    : sim_(sim), vm_(vm), config_(config),
      tick_(sim.queue(), static_cast<TickDelta>(config.interval),
            [this] { check(); }, "watchdog-check")
{
    jscale_assert(config_.interval > 0,
                  "watchdog interval must be positive");
    jscale_assert(config_.stalled_limit >= 1,
                  "watchdog needs at least one stalled interval");
}

void
RunWatchdog::start(Ticks now)
{
    tick_.start(now + config_.interval);
}

void
RunWatchdog::check()
{
    ++checks_;
    const std::uint64_t actions = vm_.mutatorActionsExecuted();
    const std::uint64_t gcs = vm_.gcEventsCompleted();
    const std::uint32_t finished = vm_.mutatorsFinished();
    const bool progressed = actions != last_actions_ ||
                            gcs != last_gcs_ ||
                            finished != last_finished_;
    last_actions_ = actions;
    last_gcs_ = gcs;
    last_finished_ = finished;
    if (progressed) {
        stalled_ = 0;
        return;
    }
    if (++stalled_ < config_.stalled_limit)
        return;
    // Stop the tick before throwing so the event is not left scheduled
    // while the stack unwinds out of the event loop.
    tick_.stop();
    throw WatchdogError(diagnostic());
}

std::string
RunWatchdog::diagnostic() const
{
    std::ostringstream os;
    os << "watchdog: no forward progress for "
       << formatTicks(static_cast<Ticks>(stalled_) * config_.interval)
       << " of simulated time (actions=" << last_actions_
       << ", collections=" << last_gcs_ << ", finished="
       << last_finished_ << "); thread states:";
    for (const auto &t : vm_.scheduler().threads()) {
        os << ' ' << t->name() << '='
           << os::threadStateName(t->state());
    }
    return os.str();
}

} // namespace jscale::fault
