/**
 * @file
 * FaultPlan: a deterministic, seed-driven schedule of fault injections.
 *
 * A plan is a list of FaultSpec entries, each naming a fault kind, an
 * injection time relative to run start, a magnitude and (for transient
 * faults) a recovery delay. Plans come from two sources:
 *
 *  - an explicit spec string, e.g.
 *      "coreoff@100:n=2:for=200,kill@250,heap@300:mb=24:for=100"
 *  - an intensity dial, "intensity=0.6:seed=7:horizon=2000", which
 *    expands into a reproducible mixed-fault schedule scaled by the
 *    intensity (fromIntensity) — the x-axis of the resilience study.
 *
 * The plan itself is pure data; fault::FaultInjector turns it into
 * ordinary simulation events, so an identical plan produces
 * byte-identical runs at any host parallelism.
 *
 * Spec grammar (times in simulated milliseconds, decimals allowed):
 *
 *   spec      := event ("," event)* | intensity
 *   event     := kind "@" time (":" key "=" value)*
 *   kind      := "coreoff" | "slow" | "preempt" | "kill" | "stall"
 *              | "heap" | "gcworkers"
 *   intensity := "intensity=" float [":seed=" int] [":horizon=" time]
 *
 * Options per kind (defaults in parentheses):
 *   coreoff   n=cores(1)      for=ms(0 = rest of run)
 *   slow      n=cores(1)      factor=f(0.5)   for=ms(0)
 *   preempt   n=bursts(1)     every=ms(5)     for=hold-ms(1)
 *   kill      n=mutators(1)
 *   stall     n=mutators(1)   for=ms(10)
 *   heap      mb=MiB(16)      for=ms(0)
 *   gcworkers n=workers(1)    for=ms(0)
 */

#ifndef JSCALE_FAULT_FAULT_HH
#define JSCALE_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/units.hh"

namespace jscale::fault {

/** Kinds of injectable faults. */
enum class FaultKind : std::uint8_t
{
    CoreOffline,        ///< take cores offline (scheduler migrates work)
    CoreSlowdown,       ///< throttle core frequency by a factor
    PreemptLockHolders, ///< lock-holder preemption burst(s)
    MutatorKill,        ///< kill mutators (task abandoned, objects die)
    MutatorStall,       ///< hold mutators off-CPU for a while
    HeapPressure,       ///< external eden reservation (pressure spike)
    GcWorkerLoss,       ///< remove GC workers (collector degrades)
};

/** Spec-grammar name of a fault kind ("coreoff", "slow", ...). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::CoreOffline;
    /** Injection time relative to run start. */
    Ticks at = 0;
    /** Recovery delay; 0 = permanent (kind-dependent meaning). */
    Ticks duration = 0;
    /** Cores / mutators / workers / bursts affected. */
    std::uint32_t count = 1;
    /** CoreSlowdown speed factor in (0, 1]. */
    double factor = 0.5;
    /** HeapPressure reservation. */
    Bytes bytes = 0;
    /** PreemptLockHolders burst spacing. */
    Ticks period = 0;

    /** One-line human-readable description. */
    std::string describe() const;
};

/** A full, ordered fault schedule for one run. */
struct FaultPlan
{
    std::vector<FaultSpec> faults;
    /** The originating spec string (reporting / reproduction). */
    std::string spec;

    bool empty() const { return faults.empty(); }

    /** Multi-line human-readable description of the schedule. */
    std::string describe() const;

    /**
     * Parse a spec string (grammar above). On failure returns false and
     * sets @p err; @p out is unspecified. An empty spec parses to an
     * empty plan.
     */
    static bool parse(const std::string &spec, FaultPlan &out,
                      std::string &err);

    /**
     * Expand an intensity dial into a reproducible mixed schedule:
     * @p intensity in [0, 1] scales both how many faults fire within
     * @p horizon and how hard each one hits. Identical arguments yield
     * an identical plan.
     */
    static FaultPlan fromIntensity(double intensity, std::uint64_t seed,
                                   Ticks horizon);
};

} // namespace jscale::fault

#endif // JSCALE_FAULT_FAULT_HH
