/**
 * @file
 * FaultInjector: executes a FaultPlan against a running VM.
 *
 * arm() schedules every injection (and its recovery) as ordinary
 * simulation events, so faults participate in the deterministic
 * (time, sequence) event order like any other activity — an identical
 * plan and seed produce byte-identical runs at any host parallelism.
 *
 * Victim selection is deterministic and happens at fire time: the
 * highest-numbered online cores and the highest-indexed alive mutators
 * are hit first, and the underlying runtime APIs refuse to take the
 * last core offline or kill the last alive mutator, so a plan can be
 * harsher than the machine and degrade instead of wedging the run.
 *
 * Every injection and recovery is reported through the optional probe
 * (the experiment runner bridges it onto a "faults" timeline track) and
 * tallied in a jvm::FaultSummary for the run report.
 */

#ifndef JSCALE_FAULT_INJECTOR_HH
#define JSCALE_FAULT_INJECTOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "fault/fault.hh"
#include "jvm/runtime/vm.hh"

namespace jscale::sim {
class Simulation;
class CallbackEvent;
} // namespace jscale::sim

namespace jscale::machine {
class Machine;
} // namespace jscale::machine

namespace jscale::fault {

/** The plan executor. Construct after the VM, arm() before run(). */
class FaultInjector
{
  public:
    /**
     * Injection/recovery notification: spec-grammar kind name, whether
     * this is the recovery edge, a short detail string, and the fire
     * time.
     */
    using Probe = std::function<void(const char *kind, bool recovery,
                                     const std::string &detail,
                                     Ticks now)>;

    FaultInjector(sim::Simulation &sim, machine::Machine &mach,
                  jvm::JavaVm &vm, FaultPlan plan);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Schedule the plan's events relative to run start @p start. */
    void arm(Ticks start);

    void setProbe(Probe probe) { probe_ = std::move(probe); }

    const FaultPlan &plan() const { return plan_; }

    /** Injection tallies (copied into RunResult by the harness). */
    const jvm::FaultSummary &summary() const { return summary_; }

  private:
    /** Offlined cores awaiting recovery (shared inject/recover state). */
    struct CoreFault
    {
        std::vector<std::uint32_t> cores;
    };

    void schedule(Ticks when, std::function<void()> fn,
                  const char *what);
    void emit(const char *kind, bool recovery, const std::string &detail,
              Ticks now);

    void injectCoreOffline(const FaultSpec &f,
                           const std::shared_ptr<CoreFault> &state);
    void recoverCoreOffline(const std::shared_ptr<CoreFault> &state);
    void injectSlowdown(const FaultSpec &f,
                        const std::shared_ptr<CoreFault> &state);
    void recoverSlowdown(const std::shared_ptr<CoreFault> &state);
    void injectPreempt(const FaultSpec &f);
    void injectKill(const FaultSpec &f);
    void injectStall(const FaultSpec &f);
    void injectHeapPressure(const FaultSpec &f);
    void recoverHeapPressure(Bytes bytes);
    void injectGcWorkerLoss(const FaultSpec &f,
                            const std::shared_ptr<std::uint32_t> &saved);
    void recoverGcWorkerLoss(const std::shared_ptr<std::uint32_t> &saved);

    /** Highest-numbered online cores, at most @p want of them. */
    std::vector<std::uint32_t> pickCores(std::uint32_t want) const;

    sim::Simulation &sim_;
    machine::Machine &mach_;
    jvm::JavaVm &vm_;
    FaultPlan plan_;
    Probe probe_;
    jvm::FaultSummary summary_;
    /** Sum of active heap-pressure reservations. */
    Bytes pressure_ = 0;
    std::vector<std::unique_ptr<sim::CallbackEvent>> events_;
};

} // namespace jscale::fault

#endif // JSCALE_FAULT_INJECTOR_HH
