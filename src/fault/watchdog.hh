/**
 * @file
 * RunWatchdog: sim-time livelock detector for one run.
 *
 * A recurring event samples the VM's progress gauges (mutator actions
 * executed, collections completed, mutators finished). When none of
 * them moves for a configurable number of consecutive intervals, the
 * run is livelocked (or deadlocked past the monitor table's cycle
 * detector) and the watchdog throws WatchdogError with a per-thread
 * state diagnostic. The experiment harness catches the error at the
 * run boundary and isolates it as a per-run failure artifact; the rest
 * of the study continues.
 *
 * The watchdog only reads simulation state, so attaching it never
 * changes a run's results.
 */

#ifndef JSCALE_FAULT_WATCHDOG_HH
#define JSCALE_FAULT_WATCHDOG_HH

#include <cstdint>
#include <string>

#include "base/units.hh"
#include "sim/event.hh"

namespace jscale::sim {
class Simulation;
} // namespace jscale::sim

namespace jscale::jvm {
class JavaVm;
} // namespace jscale::jvm

namespace jscale::fault {

/** Watchdog tunables. */
struct WatchdogConfig
{
    /** Gauge sampling period (simulated time). */
    Ticks interval = 1 * units::SEC;
    /** Consecutive no-progress intervals before aborting the run. */
    std::uint32_t stalled_limit = 3;
};

/** The detector. Construct after the VM, start() before run(). */
class RunWatchdog
{
  public:
    RunWatchdog(sim::Simulation &sim, jvm::JavaVm &vm,
                const WatchdogConfig &config = {});

    RunWatchdog(const RunWatchdog &) = delete;
    RunWatchdog &operator=(const RunWatchdog &) = delete;

    /** Arm the periodic check; first sample at @p now + interval. */
    void start(Ticks now);

    /** Samples taken so far. */
    std::uint64_t checks() const { return checks_; }

  private:
    /** Sample gauges; throws WatchdogError after stalled_limit misses. */
    void check();

    /** Per-thread state summary for the abort diagnostic. */
    std::string diagnostic() const;

    sim::Simulation &sim_;
    jvm::JavaVm &vm_;
    WatchdogConfig config_;
    sim::RecurringEvent tick_;

    std::uint64_t checks_ = 0;
    std::uint32_t stalled_ = 0;
    std::uint64_t last_actions_ = 0;
    std::uint64_t last_gcs_ = 0;
    std::uint32_t last_finished_ = 0;
};

} // namespace jscale::fault

#endif // JSCALE_FAULT_WATCHDOG_HH
