#include "fault/fault.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "base/random.hh"

namespace jscale::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CoreOffline:
        return "coreoff";
      case FaultKind::CoreSlowdown:
        return "slow";
      case FaultKind::PreemptLockHolders:
        return "preempt";
      case FaultKind::MutatorKill:
        return "kill";
      case FaultKind::MutatorStall:
        return "stall";
      case FaultKind::HeapPressure:
        return "heap";
      case FaultKind::GcWorkerLoss:
        return "gcworkers";
    }
    return "?";
}

namespace {

bool
kindFromName(const std::string &name, FaultKind &out)
{
    static const struct
    {
        const char *name;
        FaultKind kind;
    } kTable[] = {
        {"coreoff", FaultKind::CoreOffline},
        {"slow", FaultKind::CoreSlowdown},
        {"preempt", FaultKind::PreemptLockHolders},
        {"kill", FaultKind::MutatorKill},
        {"stall", FaultKind::MutatorStall},
        {"heap", FaultKind::HeapPressure},
        {"gcworkers", FaultKind::GcWorkerLoss},
    };
    for (const auto &e : kTable) {
        if (name == e.name) {
            out = e.kind;
            return true;
        }
    }
    return false;
}

/** Parse a non-negative decimal number; false on any trailing junk. */
bool
parseNumber(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size() && out >= 0.0 &&
           std::isfinite(out);
}

Ticks
msToTicks(double ms)
{
    return static_cast<Ticks>(
        std::llround(ms * static_cast<double>(units::MS)));
}

/** Split @p s on @p sep (no empty-field collapsing). */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t pos = s.find(sep); pos != std::string::npos;
         pos = s.find(sep, start)) {
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    out.push_back(s.substr(start));
    return out;
}

/** Set per-kind defaults not expressible as static initializers. */
void
applyDefaults(FaultSpec &f)
{
    switch (f.kind) {
      case FaultKind::PreemptLockHolders:
        f.period = 5 * units::MS;
        f.duration = 1 * units::MS;
        break;
      case FaultKind::MutatorStall:
        f.duration = 10 * units::MS;
        break;
      case FaultKind::HeapPressure:
        f.bytes = 16 * units::MiB;
        break;
      default:
        break;
    }
}

bool
parseEvent(const std::string &text, FaultSpec &out, std::string &err)
{
    const auto at_pos = text.find('@');
    if (at_pos == std::string::npos) {
        err = "fault '" + text + "': missing '@<time-ms>'";
        return false;
    }
    const std::string kind_name = text.substr(0, at_pos);
    if (!kindFromName(kind_name, out.kind)) {
        err = "unknown fault kind '" + kind_name + "'";
        return false;
    }
    applyDefaults(out);

    const std::vector<std::string> parts =
        split(text.substr(at_pos + 1), ':');
    double time_ms = 0;
    if (!parseNumber(parts[0], time_ms)) {
        err = "fault '" + text + "': bad injection time '" + parts[0] +
              "'";
        return false;
    }
    out.at = msToTicks(time_ms);

    for (std::size_t i = 1; i < parts.size(); ++i) {
        const auto eq = parts[i].find('=');
        if (eq == std::string::npos) {
            err = "fault '" + text + "': option '" + parts[i] +
                  "' is not key=value";
            return false;
        }
        const std::string key = parts[i].substr(0, eq);
        double value = 0;
        if (!parseNumber(parts[i].substr(eq + 1), value)) {
            err = "fault '" + text + "': bad value in '" + parts[i] +
                  "'";
            return false;
        }
        if (key == "n") {
            if (value < 1) {
                err = "fault '" + text + "': n must be >= 1";
                return false;
            }
            out.count = static_cast<std::uint32_t>(value);
        } else if (key == "for") {
            out.duration = msToTicks(value);
        } else if (key == "every") {
            out.period = msToTicks(value);
        } else if (key == "factor") {
            if (value <= 0.0 || value > 1.0) {
                err = "fault '" + text +
                      "': factor must be in (0, 1]";
                return false;
            }
            out.factor = value;
        } else if (key == "mb") {
            out.bytes = static_cast<Bytes>(value *
                                           static_cast<double>(units::MiB));
        } else {
            err = "fault '" + text + "': unknown option '" + key + "'";
            return false;
        }
    }

    if (out.kind == FaultKind::PreemptLockHolders && out.duration == 0) {
        err = "fault '" + text + "': preempt needs for > 0";
        return false;
    }
    if (out.kind == FaultKind::MutatorStall && out.duration == 0) {
        err = "fault '" + text + "': stall needs for > 0";
        return false;
    }
    if (out.kind == FaultKind::HeapPressure && out.bytes == 0) {
        err = "fault '" + text + "': heap needs mb > 0";
        return false;
    }
    return true;
}

bool
parseIntensity(const std::string &text, FaultPlan &out, std::string &err)
{
    double intensity = -1.0;
    std::uint64_t seed = 1;
    Ticks horizon = 2000 * units::MS;
    for (const std::string &part : split(text, ':')) {
        const auto eq = part.find('=');
        const std::string key =
            eq == std::string::npos ? part : part.substr(0, eq);
        const std::string val =
            eq == std::string::npos ? "" : part.substr(eq + 1);
        double value = 0;
        if (!parseNumber(val, value)) {
            err = "intensity spec: bad value in '" + part + "'";
            return false;
        }
        if (key == "intensity") {
            intensity = value;
        } else if (key == "seed") {
            seed = static_cast<std::uint64_t>(value);
        } else if (key == "horizon") {
            horizon = msToTicks(value);
        } else {
            err = "intensity spec: unknown option '" + key + "'";
            return false;
        }
    }
    if (intensity < 0.0 || intensity > 1.0) {
        err = "intensity must be in [0, 1]";
        return false;
    }
    out = FaultPlan::fromIntensity(intensity, seed, horizon);
    return true;
}

} // namespace

std::string
FaultSpec::describe() const
{
    std::ostringstream os;
    os << faultKindName(kind) << " @ " << formatTicks(at);
    switch (kind) {
      case FaultKind::CoreOffline:
        os << ": " << count << " core(s) offline";
        break;
      case FaultKind::CoreSlowdown:
        os << ": " << count << " core(s) at x" << factor;
        break;
      case FaultKind::PreemptLockHolders:
        os << ": " << count << " burst(s) every " << formatTicks(period)
           << ", holders held " << formatTicks(duration);
        break;
      case FaultKind::MutatorKill:
        os << ": " << count << " mutator(s) killed";
        break;
      case FaultKind::MutatorStall:
        os << ": " << count << " mutator(s) stalled "
           << formatTicks(duration);
        break;
      case FaultKind::HeapPressure:
        os << ": " << formatBytes(bytes) << " eden reservation";
        break;
      case FaultKind::GcWorkerLoss:
        os << ": " << count << " GC worker(s) lost";
        break;
    }
    if (duration > 0 && kind != FaultKind::PreemptLockHolders &&
        kind != FaultKind::MutatorStall) {
        os << ", recovers after " << formatTicks(duration);
    }
    return os.str();
}

std::string
FaultPlan::describe() const
{
    if (faults.empty())
        return "(no faults)";
    std::ostringstream os;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (i > 0)
            os << '\n';
        os << faults[i].describe();
    }
    return os.str();
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan &out,
                 std::string &err)
{
    out = FaultPlan{};
    out.spec = spec;
    if (spec.empty())
        return true;
    if (spec.rfind("intensity=", 0) == 0) {
        const bool ok = parseIntensity(spec, out, err);
        out.spec = spec;
        return ok;
    }
    for (const std::string &part : split(spec, ',')) {
        FaultSpec f;
        if (!parseEvent(part, f, err))
            return false;
        out.faults.push_back(f);
    }
    // Keep the schedule sorted by injection time (stable: equal times
    // preserve spec order) so arming is reproducible regardless of how
    // the spec was written.
    std::stable_sort(out.faults.begin(), out.faults.end(),
                     [](const FaultSpec &a, const FaultSpec &b) {
                         return a.at < b.at;
                     });
    return true;
}

FaultPlan
FaultPlan::fromIntensity(double intensity, std::uint64_t seed,
                         Ticks horizon)
{
    FaultPlan plan;
    plan.spec = "intensity=" + std::to_string(intensity);
    intensity = std::clamp(intensity, 0.0, 1.0);
    if (intensity == 0.0 || horizon == 0)
        return plan;

    // Mild kinds first so low intensities degrade gently; capacity loss
    // and kills only appear as the dial rises.
    static const FaultKind kLadder[] = {
        FaultKind::CoreSlowdown,       FaultKind::PreemptLockHolders,
        FaultKind::HeapPressure,       FaultKind::MutatorStall,
        FaultKind::CoreOffline,        FaultKind::GcWorkerLoss,
        FaultKind::MutatorKill,
    };
    const std::size_t n_kinds = std::size(kLadder);
    const auto n_events = static_cast<std::size_t>(std::max(
        1.0, std::round(intensity * static_cast<double>(n_kinds))));

    std::uint64_t state = seed ^ 0xfa17'5eedULL;
    const auto unit = [&state] {
        // 53-bit mantissa draw in [0, 1).
        return static_cast<double>(splitMix64(state) >> 11) *
               0x1.0p-53;
    };

    for (std::size_t i = 0; i < n_events; ++i) {
        FaultSpec f;
        f.kind = kLadder[i % n_kinds];
        applyDefaults(f);
        // Spread injections over the horizon with +-25% slot jitter.
        const double slot = static_cast<double>(horizon) /
                            static_cast<double>(n_events + 1);
        const double base = slot * static_cast<double>(i + 1);
        f.at = static_cast<Ticks>(
            std::llround(base + slot * 0.5 * (unit() - 0.5)));
        const Ticks dwell = static_cast<Ticks>(
            std::llround(static_cast<double>(horizon) / 4.0 *
                         (0.5 + 0.5 * intensity)));
        switch (f.kind) {
          case FaultKind::CoreSlowdown:
            f.count = 1 + static_cast<std::uint32_t>(
                              std::llround(intensity * 3.0));
            f.factor = std::max(0.2, 1.0 - 0.6 * intensity);
            f.duration = dwell;
            break;
          case FaultKind::PreemptLockHolders:
            f.count = 2 + static_cast<std::uint32_t>(
                              std::llround(intensity * 6.0));
            f.period = 5 * units::MS;
            f.duration = msToTicks(0.5 + 1.5 * intensity);
            break;
          case FaultKind::HeapPressure:
            f.bytes = static_cast<Bytes>(
                (8.0 + 24.0 * intensity) *
                static_cast<double>(units::MiB));
            f.duration = dwell;
            break;
          case FaultKind::MutatorStall:
            f.count = 1 + static_cast<std::uint32_t>(
                              std::llround(intensity * 2.0));
            f.duration = msToTicks(5.0 + 20.0 * intensity);
            break;
          case FaultKind::CoreOffline:
            f.count = 1 + static_cast<std::uint32_t>(
                              std::llround(intensity * 2.0));
            f.duration = dwell;
            break;
          case FaultKind::GcWorkerLoss:
            f.count = 1 + static_cast<std::uint32_t>(
                              std::llround(intensity * 2.0));
            f.duration = dwell;
            break;
          case FaultKind::MutatorKill:
            f.count = 1;
            break;
        }
        plan.faults.push_back(f);
    }
    std::stable_sort(plan.faults.begin(), plan.faults.end(),
                     [](const FaultSpec &a, const FaultSpec &b) {
                         return a.at < b.at;
                     });
    return plan;
}

} // namespace jscale::fault
